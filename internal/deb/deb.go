package deb

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tsr/internal/apk"
	"tsr/internal/keys"
)

// Format constants.
const (
	// versionMember is the mandatory first payload member.
	versionMember = "debian-binary"
	// formatVersion is its content.
	formatVersion = "2.0\n"
	// sigPrefix prefixes signature members (dpkg-sig style).
	sigPrefix     = "_gpgtsr."
	controlMember = "control.tar.gz"
	dataMember    = "data.tar.gz"
)

// Error sentinels.
var (
	ErrFormat      = errors.New("deb: malformed package")
	ErrContentHash = errors.New("deb: data member hash mismatch")
)

// hookToDeb maps the package model's hook names to Debian maintainer
// script names (the upgrade hooks keep their model names — a production
// dpkg integration would fold them into preinst/postinst arguments).
var hookToDeb = map[string]string{
	"pre-install":  "preinst",
	"post-install": "postinst",
	"pre-upgrade":  "pre-upgrade",
	"post-upgrade": "post-upgrade",
}

var debToHook = invert(hookToDeb)

func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

var tarEpoch = time.Unix(0, 0)

// Encode serializes a package (the shared apk.Package model) as a
// deb-style archive. Encoding is deterministic.
func Encode(p *apk.Package) ([]byte, error) {
	dataTgz, err := encodeData(p.Files)
	if err != nil {
		return nil, err
	}
	controlTgz, err := encodeControl(p, sha256.Sum256(dataTgz))
	if err != nil {
		return nil, err
	}
	var members []arMember
	sigNames := make([]string, 0, len(p.Signatures))
	for name := range p.Signatures {
		sigNames = append(sigNames, name)
	}
	sort.Strings(sigNames)
	for _, name := range sigNames {
		members = append(members, arMember{Name: sigPrefix + sanitizeMemberName(name), Data: p.Signatures[name]})
	}
	members = append(members,
		arMember{Name: versionMember, Data: []byte(formatVersion)},
		arMember{Name: controlMember, Data: controlTgz},
		arMember{Name: dataMember, Data: dataTgz},
	)
	return arEncode(members)
}

// sanitizeMemberName squeezes a key name into ar's 16-byte member name
// budget (minus the prefix) deterministically.
func sanitizeMemberName(keyName string) string {
	cleaned := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return -1
		}
	}, keyName)
	if len(cleaned) > 8 {
		cleaned = cleaned[:8]
	}
	if cleaned == "" {
		sum := sha256.Sum256([]byte(keyName))
		cleaned = hex.EncodeToString(sum[:4])
	}
	return cleaned
}

// Decode parses a deb-style archive into the shared package model,
// verifying the declared data hash.
//
// Note: signature member names are truncated key-name hints; signature
// verification (VerifyRaw) therefore tries every trusted key rather
// than matching by name.
func Decode(raw []byte) (*apk.Package, error) {
	members, err := arDecode(raw)
	if err != nil {
		return nil, err
	}
	p := &apk.Package{}
	var sawVersion bool
	var controlTgz, dataTgz []byte
	for _, m := range members {
		switch {
		case strings.HasPrefix(m.Name, sigPrefix):
			if p.Signatures == nil {
				p.Signatures = make(map[string][]byte)
			}
			p.Signatures[strings.TrimPrefix(m.Name, sigPrefix)] = m.Data
		case m.Name == versionMember:
			if string(m.Data) != formatVersion {
				return nil, fmt.Errorf("%w: unsupported format version %q", ErrFormat, m.Data)
			}
			sawVersion = true
		case m.Name == controlMember:
			controlTgz = m.Data
		case m.Name == dataMember:
			dataTgz = m.Data
		default:
			return nil, fmt.Errorf("%w: unexpected member %q", ErrFormat, m.Name)
		}
	}
	if !sawVersion || controlTgz == nil || dataTgz == nil {
		return nil, fmt.Errorf("%w: missing mandatory members", ErrFormat)
	}
	declared, err := decodeControl(controlTgz, p)
	if err != nil {
		return nil, err
	}
	if actual := sha256.Sum256(dataTgz); actual != declared {
		return nil, fmt.Errorf("%w: declared %x, actual %x", ErrContentHash, declared[:8], actual[:8])
	}
	if err := decodeData(dataTgz, p); err != nil {
		return nil, err
	}
	return p, nil
}

// RawControlSegment extracts the exact control member bytes — the data
// signatures cover.
func RawControlSegment(raw []byte) ([]byte, error) {
	members, err := arDecode(raw)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if m.Name == controlMember {
			return m.Data, nil
		}
	}
	return nil, fmt.Errorf("%w: no control member", ErrFormat)
}

// Sign issues a signature over the package's control member with the
// given key, recording it in the model's signature map.
func Sign(p *apk.Package, pair *keys.Pair) error {
	dataTgz, err := encodeData(p.Files)
	if err != nil {
		return err
	}
	controlTgz, err := encodeControl(p, sha256.Sum256(dataTgz))
	if err != nil {
		return err
	}
	sig, err := pair.Sign(controlTgz)
	if err != nil {
		return err
	}
	if p.Signatures == nil {
		p.Signatures = make(map[string][]byte)
	}
	p.Signatures[pair.Name] = sig
	return nil
}

// VerifyRaw checks that an encoded package carries a signature by a
// ring key over its control member, then decodes it.
func VerifyRaw(raw []byte, ring *keys.Ring) (*apk.Package, error) {
	control, err := RawControlSegment(raw)
	if err != nil {
		return nil, err
	}
	p, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	for _, sig := range p.Signatures {
		if _, err := ring.VerifyAny(control, sig); err == nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w: %s-%s", apk.ErrUntrusted, p.Name, p.Version)
}

// encodeControl renders the control member: a Debian control file plus
// maintainer scripts.
func encodeControl(p *apk.Package, dataHash [32]byte) ([]byte, error) {
	var control bytes.Buffer
	fmt.Fprintf(&control, "Package: %s\n", p.Name)
	fmt.Fprintf(&control, "Version: %s\n", p.Version)
	if p.Arch != "" {
		fmt.Fprintf(&control, "Architecture: %s\n", p.Arch)
	}
	if len(p.Depends) > 0 {
		deps := append([]string(nil), p.Depends...)
		sort.Strings(deps)
		fmt.Fprintf(&control, "Depends: %s\n", strings.Join(deps, ", "))
	}
	fmt.Fprintf(&control, "Data-Hash: %x\n", dataHash)

	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	write := func(name string, content []byte) error {
		hdr := &tar.Header{Name: "./" + name, Mode: 0o644, Size: int64(len(content)), ModTime: tarEpoch, Format: tar.FormatPAX}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(content)
		return err
	}
	if err := write("control", control.Bytes()); err != nil {
		return nil, fmt.Errorf("deb: control member: %w", err)
	}
	for _, hook := range p.ScriptNames() {
		name, ok := hookToDeb[hook]
		if !ok {
			name = hook
		}
		if err := write(name, []byte(p.Scripts[hook])); err != nil {
			return nil, fmt.Errorf("deb: control member: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeControl(tgz []byte, p *apk.Package) ([32]byte, error) {
	var dataHash [32]byte
	gz, err := gzip.NewReader(bytes.NewReader(tgz))
	if err != nil {
		return dataHash, fmt.Errorf("%w: control member: %v", ErrFormat, err)
	}
	tr := tar.NewReader(gz)
	sawControl := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return dataHash, fmt.Errorf("%w: control member: %v", ErrFormat, err)
		}
		content, err := io.ReadAll(tr)
		if err != nil {
			return dataHash, fmt.Errorf("%w: control member: %v", ErrFormat, err)
		}
		name := strings.TrimPrefix(hdr.Name, "./")
		if name == "control" {
			sawControl = true
			if err := parseControlFile(content, p, &dataHash); err != nil {
				return dataHash, err
			}
			continue
		}
		hook, ok := debToHook[name]
		if !ok {
			hook = name
		}
		if p.Scripts == nil {
			p.Scripts = make(map[string]string)
		}
		p.Scripts[hook] = string(content)
	}
	if !sawControl {
		return dataHash, fmt.Errorf("%w: missing control file", ErrFormat)
	}
	return dataHash, nil
}

func parseControlFile(content []byte, p *apk.Package, dataHash *[32]byte) error {
	for _, line := range strings.Split(string(content), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ": ")
		if !ok {
			return fmt.Errorf("%w: bad control line %q", ErrFormat, line)
		}
		switch key {
		case "Package":
			p.Name = value
		case "Version":
			p.Version = value
		case "Architecture":
			p.Arch = value
		case "Depends":
			for _, d := range strings.Split(value, ", ") {
				if d != "" {
					p.Depends = append(p.Depends, d)
				}
			}
		case "Data-Hash":
			decoded, err := hex.DecodeString(value)
			if err != nil || len(decoded) != 32 {
				return fmt.Errorf("%w: bad Data-Hash %q", ErrFormat, value)
			}
			copy(dataHash[:], decoded)
		default:
			return fmt.Errorf("%w: unknown control field %q", ErrFormat, key)
		}
	}
	if p.Name == "" || p.Version == "" {
		return fmt.Errorf("%w: control missing Package/Version", ErrFormat)
	}
	return nil
}

// encodeData renders the data member with PAX xattrs, as in apk.
func encodeData(files []apk.File) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	sorted := append([]apk.File(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, f := range sorted {
		if !strings.HasPrefix(f.Path, "/") {
			return nil, fmt.Errorf("%w: file path %q not absolute", ErrFormat, f.Path)
		}
		hdr := &tar.Header{
			Name:    "." + f.Path,
			Mode:    int64(f.Mode),
			Size:    int64(len(f.Content)),
			ModTime: tarEpoch,
			Format:  tar.FormatPAX,
		}
		if len(f.Xattrs) > 0 {
			hdr.PAXRecords = make(map[string]string, len(f.Xattrs))
			for k, v := range f.Xattrs {
				hdr.PAXRecords["SCHILY.xattr."+k] = string(v)
			}
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("deb: data member: %w", err)
		}
		if _, err := tw.Write(f.Content); err != nil {
			return nil, fmt.Errorf("deb: data member: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeData(tgz []byte, p *apk.Package) error {
	gz, err := gzip.NewReader(bytes.NewReader(tgz))
	if err != nil {
		return fmt.Errorf("%w: data member: %v", ErrFormat, err)
	}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: data member: %v", ErrFormat, err)
		}
		content, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("%w: data member: %v", ErrFormat, err)
		}
		f := apk.File{
			Path:    strings.TrimPrefix(hdr.Name, "."),
			Mode:    uint32(hdr.Mode),
			Content: content,
		}
		for k, v := range hdr.PAXRecords {
			if strings.HasPrefix(k, "SCHILY.xattr.") {
				if f.Xattrs == nil {
					f.Xattrs = make(map[string][]byte)
				}
				f.Xattrs[strings.TrimPrefix(k, "SCHILY.xattr.")] = []byte(v)
			}
		}
		p.Files = append(p.Files, f)
	}
}
