package deb

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"tsr/internal/apk"
	"tsr/internal/keys"
)

func samplePackage() *apk.Package {
	return &apk.Package{
		Name:    "ntpd",
		Version: "4.2.8-r0",
		Arch:    "amd64",
		Depends: []string{"libc6", "libssl3"},
		Scripts: map[string]string{
			"post-install": "addgroup -S ntp\nadduser -S -G ntp ntp\n",
			"pre-upgrade":  "mkdir -p /var/backup\n",
		},
		Files: []apk.File{
			{Path: "/usr/sbin/ntpd", Mode: 0o755, Content: []byte("ELF...")},
			{Path: "/etc/ntp.conf", Mode: 0o644, Content: []byte("server pool\n"),
				Xattrs: map[string][]byte{apk.XattrIMA: {0xAA, 0xBB}}},
		},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := samplePackage()
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Version != p.Version || got.Arch != p.Arch {
		t.Fatalf("identity = %s-%s %s", got.Name, got.Version, got.Arch)
	}
	if !reflect.DeepEqual(got.Depends, p.Depends) {
		t.Fatalf("depends = %v", got.Depends)
	}
	// Hook names roundtrip through the Debian script name mapping.
	if got.Scripts["post-install"] != p.Scripts["post-install"] {
		t.Fatalf("post-install = %q", got.Scripts["post-install"])
	}
	if got.Scripts["pre-upgrade"] != p.Scripts["pre-upgrade"] {
		t.Fatalf("pre-upgrade = %q", got.Scripts["pre-upgrade"])
	}
	if len(got.Files) != 2 {
		t.Fatalf("files = %d", len(got.Files))
	}
	if got.Files[0].Path != "/etc/ntp.conf" {
		t.Fatalf("path = %s", got.Files[0].Path)
	}
	if !bytes.Equal(got.Files[0].Xattrs[apk.XattrIMA], []byte{0xAA, 0xBB}) {
		t.Fatal("xattr lost across deb roundtrip")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(samplePackage())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(samplePackage())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode not deterministic")
	}
}

func TestArFormatShape(t *testing.T) {
	raw, err := Encode(samplePackage())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("!<arch>\n")) {
		t.Fatal("missing ar magic")
	}
	members, err := arDecode(raw)
	if err != nil {
		t.Fatal(err)
	}
	// debian-binary, control.tar.gz, data.tar.gz (no signatures yet).
	if len(members) != 3 || members[0].Name != "debian-binary" {
		t.Fatalf("members = %+v", memberNames(members))
	}
	if string(members[0].Data) != "2.0\n" {
		t.Fatalf("version member = %q", members[0].Data)
	}
}

func memberNames(ms []arMember) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

func TestSignVerify(t *testing.T) {
	signer := keys.Shared.MustGet("deb-signer")
	p := samplePackage()
	if err := Sign(p, signer); err != nil {
		t.Fatal(err)
	}
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyRaw(raw, keys.NewRing(signer.Public()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ntpd" {
		t.Fatalf("name = %s", got.Name)
	}
}

func TestVerifyRejectsUntrusted(t *testing.T) {
	evil := keys.Shared.MustGet("deb-evil")
	good := keys.Shared.MustGet("deb-signer")
	p := samplePackage()
	if err := Sign(p, evil); err != nil {
		t.Fatal(err)
	}
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyRaw(raw, keys.NewRing(good.Public())); !errors.Is(err, apk.ErrUntrusted) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsModifiedScript(t *testing.T) {
	signer := keys.Shared.MustGet("deb-signer")
	p := samplePackage()
	if err := Sign(p, signer); err != nil {
		t.Fatal(err)
	}
	p.Scripts["post-install"] = "adduser -u 0 backdoor\n"
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyRaw(raw, keys.NewRing(signer.Public())); !errors.Is(err, apk.ErrUntrusted) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeRejectsTamperedData(t *testing.T) {
	p := samplePackage()
	raw, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	members, err := arDecode(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the data member for another package's.
	other := samplePackage()
	other.Files[0].Content = []byte("TAMPERED")
	otherRaw, err := Encode(other)
	if err != nil {
		t.Fatal(err)
	}
	otherMembers, err := arDecode(otherRaw)
	if err != nil {
		t.Fatal(err)
	}
	members[len(members)-1] = otherMembers[len(otherMembers)-1]
	tampered, err := arEncode(members)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(tampered); !errors.Is(err, ErrContentHash) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not an archive")); !errors.Is(err, ErrAr) {
		t.Fatalf("garbage: err = %v", err)
	}
	// Valid ar but missing members.
	raw, err := arEncode([]arMember{{Name: "debian-binary", Data: []byte("2.0\n")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(raw); !errors.Is(err, ErrFormat) {
		t.Fatalf("missing members: err = %v", err)
	}
	// Wrong format version.
	raw, err = arEncode([]arMember{
		{Name: "debian-binary", Data: []byte("3.0\n")},
		{Name: "control.tar.gz", Data: nil},
		{Name: "data.tar.gz", Data: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(raw); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad version: err = %v", err)
	}
}

func TestArRoundtripProperty(t *testing.T) {
	f := func(blobs [][]byte) bool {
		if len(blobs) > 8 {
			blobs = blobs[:8]
		}
		var members []arMember
		for i, b := range blobs {
			members = append(members, arMember{Name: names16(i), Data: b})
		}
		raw, err := arEncode(members)
		if err != nil {
			return false
		}
		got, err := arDecode(raw)
		if err != nil || len(got) != len(members) {
			return false
		}
		for i := range members {
			if got[i].Name != members[i].Name || !bytes.Equal(got[i].Data, members[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func names16(i int) string {
	return string(rune('a'+i%26)) + "member"
}

func TestArEncodeRejectsBadNames(t *testing.T) {
	if _, err := arEncode([]arMember{{Name: "name with spaces"}}); !errors.Is(err, ErrAr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := arEncode([]arMember{{Name: "seventeen-chars-x"}}); !errors.Is(err, ErrAr) {
		t.Fatalf("err = %v", err)
	}
}

// Cross-format equivalence: a package converted through apk and deb
// wire formats carries identical semantic content, so the sanitizer is
// format-agnostic.
func TestCrossFormatEquivalence(t *testing.T) {
	p := samplePackage()
	apkRaw, err := apk.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	fromAPK, err := apk.Decode(apkRaw)
	if err != nil {
		t.Fatal(err)
	}
	debRaw, err := Encode(fromAPK)
	if err != nil {
		t.Fatal(err)
	}
	fromDeb, err := Decode(debRaw)
	if err != nil {
		t.Fatal(err)
	}
	if fromDeb.Name != p.Name || fromDeb.Version != p.Version {
		t.Fatal("identity changed across formats")
	}
	if !reflect.DeepEqual(fromDeb.Scripts, p.Scripts) {
		t.Fatalf("scripts = %+v", fromDeb.Scripts)
	}
	h1, err := fromAPK.DataHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := fromDeb.DataHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("semantic content hash changed across formats")
	}
}

func TestSanitizeMemberName(t *testing.T) {
	if got := sanitizeMemberName("alpine@alpinelinux.org-4a40"); len(got) > 8 || got == "" {
		t.Fatalf("sanitized = %q", got)
	}
	if got := sanitizeMemberName("@@@"); len(got) != 8 {
		t.Fatalf("fallback = %q", got)
	}
}

// Robustness: Decode never panics on arbitrary bytes.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw)
		_, _ = arDecode(raw)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
