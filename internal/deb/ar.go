// Package deb implements a Debian-style package codec over the same
// in-memory package model as package apk — the paper's stated future
// work ("In the future, we plan to add support for other formats (i.e.,
// deb, rpm)", §5.1). A .deb is an ar(1) archive with three members:
//
//	debian-binary   the format version string ("2.0\n")
//	control.tar.gz  package metadata and maintainer scripts
//	data.tar.gz     the filesystem payload (PAX xattrs carry the
//	                per-file IMA signatures, as in §5.3)
//
// Signatures are carried in an additional leading member per signer
// ("_gpgtsr.<key>"), mirroring the dpkg-sig convention; they cover the
// raw control.tar.gz bytes, so the same verification flow as apk
// applies. The codec converts losslessly to and from apk.Package, which
// keeps TSR's sanitizer format-agnostic.
package deb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrAr is the sentinel for malformed ar archives.
var ErrAr = errors.New("deb: malformed ar archive")

// arMagic is the global header of an ar(1) archive.
const arMagic = "!<arch>\n"

// arMember is one file inside an ar archive.
type arMember struct {
	Name string
	Data []byte
}

// arEncode renders members as a BSD/common ar archive with fixed
// metadata (deterministic output, like apk's fixed tar timestamps).
func arEncode(members []arMember) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(arMagic)
	for _, m := range members {
		if len(m.Name) > 16 {
			return nil, fmt.Errorf("%w: member name %q too long", ErrAr, m.Name)
		}
		if strings.ContainsAny(m.Name, " /\n") {
			return nil, fmt.Errorf("%w: member name %q has invalid characters", ErrAr, m.Name)
		}
		// name(16) mtime(12) uid(6) gid(6) mode(8) size(10) end(2)
		fmt.Fprintf(&b, "%-16s%-12d%-6d%-6d%-8s%-10d`\n",
			m.Name, 0, 0, 0, "100644", len(m.Data))
		b.Write(m.Data)
		if len(m.Data)%2 == 1 {
			b.WriteByte('\n') // ar pads members to even offsets
		}
	}
	return b.Bytes(), nil
}

// arDecode parses an ar archive.
func arDecode(raw []byte) ([]arMember, error) {
	if len(raw) < len(arMagic) || string(raw[:len(arMagic)]) != arMagic {
		return nil, fmt.Errorf("%w: missing global header", ErrAr)
	}
	r := bytes.NewReader(raw[len(arMagic):])
	var members []arMember
	hdr := make([]byte, 60)
	for {
		_, err := io.ReadFull(r, hdr)
		if err == io.EOF {
			return members, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated member header", ErrAr)
		}
		if hdr[58] != '`' || hdr[59] != '\n' {
			return nil, fmt.Errorf("%w: bad member header terminator", ErrAr)
		}
		name := strings.TrimRight(string(hdr[0:16]), " ")
		size, err := strconv.Atoi(strings.TrimRight(string(hdr[48:58]), " "))
		if err != nil || size < 0 {
			return nil, fmt.Errorf("%w: bad member size", ErrAr)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("%w: truncated member %q", ErrAr, name)
		}
		if size%2 == 1 {
			var pad [1]byte
			if _, err := io.ReadFull(r, pad[:]); err != nil {
				return nil, fmt.Errorf("%w: missing padding after %q", ErrAr, name)
			}
		}
		members = append(members, arMember{Name: name, Data: data})
	}
}
