package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// block parks one job in the scheduler and returns a release func plus
// a channel that closes once the job is running.
func block(t *testing.T, s *Scheduler, tenant string, pri Priority) (release func(), running chan struct{}) {
	t.Helper()
	running = make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(context.Background(), tenant, pri, func(context.Context, *Grant) error {
			close(running)
			<-gate
			return nil
		})
	}()
	return func() { close(gate); <-done }, running
}

// enqueue starts a Run that records its admission order, waiting until
// the scheduler has it queued before returning.
func enqueue(t *testing.T, s *Scheduler, tenant string, pri Priority, order *[]string, mu *sync.Mutex, wg *sync.WaitGroup) {
	t.Helper()
	before := s.Snapshot().QueueDepth
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Run(context.Background(), tenant, pri, func(context.Context, *Grant) error {
			mu.Lock()
			*order = append(*order, tenant)
			mu.Unlock()
			return nil
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().QueueDepth <= before {
		if time.Now().After(deadline) {
			t.Fatalf("job for %s never queued", tenant)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFairInterleaving pins the SFQ policy: with one job slot and two
// tenants backlogged five jobs each — the big tenant enqueued first —
// admissions alternate between the tenants instead of draining the
// first tenant's backlog. A 10x backlog cannot starve the small tenant.
func TestFairInterleaving(t *testing.T) {
	s := New(Config{MaxActive: 1})
	release, running := block(t, s, "warm", Background)
	<-running

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		enqueue(t, s, "big", Background, &order, &mu, &wg)
	}
	for i := 0; i < 5; i++ {
		enqueue(t, s, "small", Background, &order, &mu, &wg)
	}
	release()
	wg.Wait()

	want := []string{"big", "small", "big", "small", "big", "small", "big", "small", "big", "small"}
	if len(order) != len(want) {
		t.Fatalf("completed %d jobs, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want alternating %v", order, want)
		}
	}
}

// TestWeightedShare doubles one tenant's weight and expects it to win
// two admissions for every one of an equal-backlog competitor.
func TestWeightedShare(t *testing.T) {
	s := New(Config{MaxActive: 1})
	s.SetWeight("heavy", 2)
	release, running := block(t, s, "warm", Background)
	<-running

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		enqueue(t, s, "heavy", Background, &order, &mu, &wg)
	}
	for i := 0; i < 3; i++ {
		enqueue(t, s, "light", Background, &order, &mu, &wg)
	}
	release()
	wg.Wait()

	// heavy tags: .5 1 1.5 2 2.5 3 — light tags: 1 2 3. Ties go FIFO
	// (heavy enqueued first), so the drain is h h l h h l h h l.
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light", "heavy", "heavy", "light"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

// TestInteractivePreemptsQueuedBackground backlogs the Background band
// and then submits an Interactive job: it must be admitted before every
// queued Background job regardless of its later finish tag.
func TestInteractivePreemptsQueuedBackground(t *testing.T) {
	s := New(Config{MaxActive: 1})
	release, running := block(t, s, "warm", Background)
	<-running

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		enqueue(t, s, "auto", Background, &order, &mu, &wg)
	}
	enqueue(t, s, "operator", Interactive, &order, &mu, &wg)
	release()
	wg.Wait()

	if order[0] != "operator" {
		t.Fatalf("admission order %v: operator did not preempt the queued background backlog", order)
	}
}

// TestWorkerBoundNeverExceeded hammers the pool from many concurrent
// jobs and asserts the global invariant the chaos checker watches: the
// sum of granted slots never exceeds Workers, and active jobs never
// exceed MaxActive. Run under -race this also shakes out dispatch races.
func TestWorkerBoundNeverExceeded(t *testing.T) {
	const workers, maxActive = 4, 3
	s := New(Config{Workers: workers, MaxActive: maxActive})
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		tenant := string(rune('a' + i%6))
		go func() {
			defer wg.Done()
			_ = s.Run(context.Background(), tenant, Priority(i%2), func(_ context.Context, g *Grant) error {
				for rem := 5; rem > 0; {
					n := g.Acquire(rem)
					if cur := inFlight.Add(int64(n)); cur > peak.Load() {
						peak.Store(cur)
					}
					time.Sleep(200 * time.Microsecond)
					inFlight.Add(int64(-n))
					g.Release(n)
					rem -= n
				}
				return nil
			})
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.PeakSlots > workers {
		t.Fatalf("peak slots %d > pool %d", snap.PeakSlots, workers)
	}
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent granted slots > pool %d", peak.Load(), workers)
	}
	if snap.PeakActive > maxActive {
		t.Fatalf("peak active %d > max active %d", snap.PeakActive, maxActive)
	}
	if snap.Active != 0 || snap.SlotsInUse != 0 || snap.QueueDepth != 0 {
		t.Fatalf("scheduler did not drain: %+v", snap)
	}
	if got := snap.CompletedInteractive + snap.CompletedBackground; got != 24 {
		t.Fatalf("completed %d jobs, want 24", got)
	}
}

// TestGrantFairShare: a lone job leases the whole pool; once a second
// job is admitted, a fresh lease is capped at the fair share.
func TestGrantFairShare(t *testing.T) {
	s := New(Config{Workers: 8, MaxActive: 4})
	err := s.Run(context.Background(), "solo", Interactive, func(_ context.Context, g *Grant) error {
		if n := g.Acquire(16); n != 8 {
			return fmt.Errorf("lone job acquired %d, want the full pool 8", n)
		}
		g.Release(8)

		inner := make(chan int, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		hold := make(chan struct{})
		go func() {
			defer wg.Done()
			_ = s.Run(context.Background(), "other", Interactive, func(_ context.Context, g2 *Grant) error {
				inner <- g2.Acquire(16)
				<-hold
				return nil
			})
		}()
		got := <-inner
		if got > 4 {
			return fmt.Errorf("second active job acquired %d, want <= fair share 4", got)
		}
		close(hold)
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCancelWhileQueued: a queued job whose context dies leaves the
// queue and reports the context error without ever running.
func TestCancelWhileQueued(t *testing.T) {
	s := New(Config{MaxActive: 1})
	release, running := block(t, s, "warm", Background)
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	done := make(chan error, 1)
	go func() {
		done <- s.Run(ctx, "victim", Background, func(context.Context, *Grant) error {
			ran = true
			return nil
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("cancelled job still ran")
	}
	release()
	if snap := s.Snapshot(); snap.QueueDepth != 0 {
		t.Fatalf("queue not drained after cancel: %+v", snap)
	}
}

// TestSnapshotPerTenantHistograms: completed jobs land in per-tenant
// wait/run histograms, tenants sorted for deterministic output.
func TestSnapshotPerTenantHistograms(t *testing.T) {
	s := New(Config{Workers: 2, MaxActive: 2})
	for _, tenant := range []string{"zeta", "alpha", "zeta"} {
		if err := s.Run(context.Background(), tenant, Background, func(_ context.Context, g *Grant) error {
			n := g.Acquire(1)
			time.Sleep(time.Millisecond)
			g.Release(n)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap.Tenants) != 2 || snap.Tenants[0].Tenant != "alpha" || snap.Tenants[1].Tenant != "zeta" {
		t.Fatalf("tenants not sorted: %+v", snap.Tenants)
	}
	if snap.Tenants[1].Completed != 2 {
		t.Fatalf("zeta completed %d, want 2", snap.Tenants[1].Completed)
	}
	if snap.Tenants[1].Run.Count != 2 || snap.Tenants[1].Run.MeanMs <= 0 {
		t.Fatalf("zeta run histogram not populated: %+v", snap.Tenants[1].Run)
	}
	if snap.Tenants[0].Wait.Count != 1 {
		t.Fatalf("alpha wait histogram not populated: %+v", snap.Tenants[0].Wait)
	}
}

// TestStaggerJitterDeterministic pins the auto-refresh spreading
// helpers: stable across calls, inside their ranges, and actually
// spreading distinct ids.
func TestStaggerJitterDeterministic(t *testing.T) {
	period := 10 * time.Minute
	seen := map[time.Duration]bool{}
	for _, id := range []string{"r01", "r02", "r03", "r04", "r05", "r06", "r07", "r08"} {
		p := Stagger(id, period)
		if p != Stagger(id, period) {
			t.Fatalf("Stagger(%s) not stable", id)
		}
		if p < 0 || p >= period {
			t.Fatalf("Stagger(%s) = %v outside [0, %v)", id, p, period)
		}
		seen[p] = true
		j0, j1 := Jitter(id, 0, time.Minute), Jitter(id, 1, time.Minute)
		if j0 < 0 || j0 >= time.Minute || j1 < 0 || j1 >= time.Minute {
			t.Fatalf("Jitter(%s) out of range: %v %v", id, j0, j1)
		}
	}
	if len(seen) < 6 {
		t.Fatalf("8 ids landed on only %d distinct phases", len(seen))
	}
	if Stagger("x", 0) != 0 || Jitter("x", 0, 0) != 0 {
		t.Fatal("zero period/width must yield zero offset")
	}
}

// TestSlowTenantCannotStarveSmall models the byzantine-slow-mirror
// scenario at the scheduler layer: one tenant arrives with a 10x
// backlog of jobs that each take 10x as long (a slow upstream stalls
// the job body, exactly what a byzantine mirror does to a quorum
// fetch), then a small tenant submits a couple of quick jobs behind
// it, with one admission slot forcing them to share. FIFO would park
// the small tenant behind the entire slow backlog (~10 slow jobs); SFQ
// tags must admit it after roughly one. The wait histograms the
// assertion reads are the same ones /stats and the BENCH files report.
func TestSlowTenantCannotStarveSmall(t *testing.T) {
	const (
		slowJob   = 30 * time.Millisecond
		slowJobs  = 10
		smallJobs = 2
	)
	s := New(Config{MaxActive: 1})
	release, running := block(t, s, "warm", Background)
	<-running

	var wg sync.WaitGroup
	submit := func(tenant string, d time.Duration) {
		before := s.Snapshot().QueueDepth
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Run(context.Background(), tenant, Background, func(context.Context, *Grant) error {
				time.Sleep(d)
				return nil
			})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for s.Snapshot().QueueDepth <= before {
			if time.Now().After(deadline) {
				t.Fatalf("job for %s never queued", tenant)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i := 0; i < slowJobs; i++ {
		submit("slowbig", slowJob)
	}
	for i := 0; i < smallJobs; i++ {
		submit("small", slowJob/10)
	}
	release()
	wg.Wait()

	snap := s.Snapshot()
	var small, slow TenantSnapshot
	for _, ts := range snap.Tenants {
		switch ts.Tenant {
		case "small":
			small = ts
		case "slowbig":
			slow = ts
		}
	}
	if small.Completed != smallJobs || slow.Completed != slowJobs {
		t.Fatalf("completed small=%d slow=%d, want %d and %d", small.Completed, slow.Completed, smallJobs, slowJobs)
	}
	// Starvation would serialize the small tenant behind the whole
	// slow backlog: wait >= slowJobs*slowJob (300ms). Fair tags admit
	// its jobs after about one slow job each; 4 slow jobs of slack
	// stays far under the starvation floor.
	maxWaitMs := small.Wait.MaxMs
	if limit := float64(4*slowJob) / float64(time.Millisecond); maxWaitMs > limit {
		t.Fatalf("small tenant max wait %.1fms exceeds %.1fms: starved behind the slow tenant", maxWaitMs, limit)
	}
}
