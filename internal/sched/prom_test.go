package sched

import (
	"context"
	"strings"
	"testing"
)

// TestWriteSchedPrometheus pins the exposition shape: gauge headers,
// band labels, and per-tenant summaries for every tenant that ran.
func TestWriteSchedPrometheus(t *testing.T) {
	s := New(Config{Workers: 4, MaxActive: 2})
	for _, tenant := range []string{"ra", "rb"} {
		err := s.Run(context.Background(), tenant, Background, func(ctx context.Context, g *Grant) error {
			n := g.Acquire(2)
			g.Release(n)
			return nil
		})
		if err != nil {
			t.Fatalf("Run(%s): %v", tenant, err)
		}
	}
	var sb strings.Builder
	s.WriteSchedPrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE tsr_sched_workers gauge",
		"tsr_sched_workers 4",
		"tsr_sched_max_active 2",
		"tsr_sched_queue_depth{band=\"interactive\"} 0",
		"tsr_sched_jobs_total{band=\"background\"} 2",
		"# TYPE tsr_sched_tenant_wait_seconds summary",
		"tsr_sched_tenant_wait_seconds_count{tenant=\"ra\"} 1",
		"tsr_sched_tenant_run_seconds_count{tenant=\"rb\"} 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
