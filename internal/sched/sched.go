// Package sched is the global refresh scheduler: one admission
// controller shared by every tenant repository of a TSR origin,
// replacing the per-repo worker pools that let N tenants oversubscribe
// the box N-fold.
//
// Two resources are arbitrated:
//
//   - Job admission. Run() admits at most MaxActive refresh/ingest jobs
//     at once, picking the next job by start-time fair queueing (SFQ):
//     per-tenant virtual finish tags, weighted, so a tenant that
//     refreshes ten 10x-size repos cannot starve a small tenant — its
//     jobs simply carry later finish tags. Two priority bands sit above
//     the tags: an Interactive job (operator POST /refresh, bulk
//     ingest) always dispatches before any queued Background job
//     (auto-refresh), whatever the tags say.
//
//   - Worker slots. An admitted job does its parallel work (mirror
//     fetches, sanitizations) in batches of slots leased from one
//     shared pool of Config.Workers via Grant.Acquire, sized to the
//     job's fair share of the pool. The pool is the global bound: the
//     sum of every tenant's in-flight pipeline goroutines never exceeds
//     Workers, no matter how many repos are deployed — which also
//     bounds the enclave paging working set the batches generate.
//
// The scheduler owns no goroutines: the caller's goroutine IS the
// worker, blocking in Run until admitted. That keeps lifecycle trivial
// (nothing to shut down) and makes the scheduler safe to embed in every
// Service, including the hundreds constructed by tests.
//
// Both bounds are optional (0 = unbounded): a zero Config degrades to
// the historical per-repo behaviour while still recording per-tenant
// wait/run histograms and the busy watermarks the invariant checker
// asserts against.
package sched

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"tsr/internal/obs"
	"tsr/internal/trace"
)

// Priority selects the admission band.
type Priority int

const (
	// Background is the auto-refresh band: queued work is dispatched in
	// weighted-fair order, but always behind Interactive.
	Background Priority = iota
	// Interactive is the operator band (POST /refresh, bulk ingest):
	// it preempts every queued Background job.
	Interactive
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case Background:
		return "background"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Config sizes the scheduler.
type Config struct {
	// Workers is the shared slot pool leased out via Grant.Acquire —
	// the global bound on concurrently running pipeline goroutines
	// across every tenant. 0 = unbounded (per-repo caps only).
	Workers int
	// MaxActive bounds concurrently admitted jobs. 0 = unbounded.
	// Values above Workers still make progress: Acquire always grants
	// at least one slot to a job that waits its turn.
	MaxActive int
}

// waiter is one queued Run call.
type waiter struct {
	tenant string
	pri    Priority
	start  float64 // SFQ virtual start tag
	finish float64 // SFQ virtual finish tag
	seq    uint64  // FIFO tiebreak
	ready  chan struct{}
}

// tenantStats accumulates one tenant's scheduling history.
type tenantStats struct {
	wait      *obs.Histogram
	run       *obs.Histogram
	completed int64
}

// Scheduler is the global refresh scheduler. The zero value is NOT
// ready; use New.
type Scheduler struct {
	workers   int
	maxActive int

	mu         sync.Mutex
	slotCond   *sync.Cond // waiters for pool slots
	vtime      float64    // SFQ global virtual time
	lastFinish map[string]float64
	weights    map[string]float64
	queue      []*waiter // admission queue, picked by pickLocked
	seq        uint64
	active     int
	peakActive int
	slotsInUse int
	peakSlots  int
	queued     [2]int
	completed  [2]int64
	tenants    map[string]*tenantStats
}

// New builds a scheduler from cfg.
func New(cfg Config) *Scheduler {
	s := &Scheduler{
		workers:    max(cfg.Workers, 0),
		maxActive:  max(cfg.MaxActive, 0),
		lastFinish: make(map[string]float64),
		weights:    make(map[string]float64),
		tenants:    make(map[string]*tenantStats),
	}
	s.slotCond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the configured global slot bound (0 = unbounded).
func (s *Scheduler) Workers() int { return s.workers }

// SetWeight sets a tenant's fair-queueing weight (default 1). A weight
// of 2 halves the virtual cost of the tenant's jobs, doubling its
// admission share under contention. Weights <= 0 reset to 1.
func (s *Scheduler) SetWeight(tenant string, w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w <= 0 {
		delete(s.weights, tenant)
		return
	}
	s.weights[tenant] = w
}

func (s *Scheduler) weightLocked(tenant string) float64 {
	if w, ok := s.weights[tenant]; ok {
		return w
	}
	return 1
}

func (s *Scheduler) statsLocked(tenant string) *tenantStats {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{wait: &obs.Histogram{}, run: &obs.Histogram{}}
		s.tenants[tenant] = ts
	}
	return ts
}

// pickLocked removes and returns the next admissible waiter: the
// Interactive band drains first; within a band the smallest finish tag
// wins, FIFO on ties.
func (s *Scheduler) pickLocked() *waiter {
	best := -1
	for i, w := range s.queue {
		if best == -1 {
			best = i
			continue
		}
		b := s.queue[best]
		if w.pri != b.pri {
			if w.pri > b.pri {
				best = i
			}
			continue
		}
		if w.finish < b.finish || (w.finish == b.finish && w.seq < b.seq) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	w := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return w
}

// dispatchLocked admits queued jobs while capacity remains.
func (s *Scheduler) dispatchLocked() {
	for (s.maxActive == 0 || s.active < s.maxActive) && len(s.queue) > 0 {
		w := s.pickLocked()
		s.queued[w.pri]--
		s.admitLocked(w)
		close(w.ready)
	}
}

// admitLocked accounts one job becoming active and advances the SFQ
// virtual clock to its start tag, so tags assigned later never predate
// work already dispatched.
func (s *Scheduler) admitLocked(w *waiter) {
	if w.start > s.vtime {
		s.vtime = w.start
	}
	s.active++
	if s.active > s.peakActive {
		s.peakActive = s.active
	}
}

// Run executes fn as one scheduled job for tenant at the given
// priority, blocking the calling goroutine until the job is admitted.
// fn receives a Grant for leasing worker slots from the shared pool.
// ctx cancellation is honoured while queued; once fn starts, cancelling
// is fn's business. The queue wait and the job body are recorded as
// "sched.wait" / "sched.run" spans and in the tenant's wait/run
// histograms.
func (s *Scheduler) Run(ctx context.Context, tenant string, pri Priority, fn func(ctx context.Context, g *Grant) error) error {
	ctx, waitSp := trace.Start(ctx, "sched.wait")
	waitSp.SetAttr("tenant", tenant)
	waitSp.SetAttr("band", pri.String())
	enqueued := time.Now()

	s.mu.Lock()
	start := s.vtime
	if lf := s.lastFinish[tenant]; lf > start {
		start = lf
	}
	finish := start + 1/s.weightLocked(tenant)
	s.lastFinish[tenant] = finish
	w := &waiter{tenant: tenant, pri: pri, start: start, finish: finish, seq: s.seq, ready: make(chan struct{})}
	s.seq++
	if s.maxActive == 0 || (s.active < s.maxActive && len(s.queue) == 0) {
		s.admitLocked(w)
		close(w.ready)
	} else {
		s.queue = append(s.queue, w)
		s.queued[pri]++
	}
	s.mu.Unlock()

	select {
	case <-w.ready:
	case <-ctx.Done():
		s.mu.Lock()
		removed := false
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.queued[pri]--
				removed = true
				break
			}
		}
		s.mu.Unlock()
		if removed {
			waitSp.SetError(ctx.Err())
			waitSp.End()
			return ctx.Err()
		}
		// Lost the race: dispatch admitted us while we were cancelling.
		// Fall through as admitted and let fn observe ctx.Done.
		<-w.ready
	}
	wait := time.Since(enqueued)
	waitSp.End()

	ctx, runSp := trace.Start(ctx, "sched.run")
	runSp.SetAttr("tenant", tenant)
	started := time.Now()
	g := &Grant{s: s}
	err := fn(ctx, g)
	g.releaseAll()
	runSp.SetError(err)
	runSp.End()

	s.mu.Lock()
	s.active--
	ts := s.statsLocked(tenant)
	ts.wait.Observe(wait)
	ts.run.Observe(time.Since(started))
	ts.completed++
	s.completed[pri]++
	s.dispatchLocked()
	s.mu.Unlock()
	return err
}

// Grant is an admitted job's lease interface to the shared slot pool.
// It is not safe for concurrent use by multiple goroutines — one
// pipeline loop acquires, fans out that many goroutines, and releases.
type Grant struct {
	s    *Scheduler
	held int
}

// Acquire leases up to want slots, blocking until at least one is
// free. The lease is capped at the job's fair share of the pool —
// max(1, Workers/active) — so one early job cannot camp on the whole
// pool while others are admitted. With an unbounded pool (Workers 0)
// it returns want outright. Returns 0 only when want <= 0.
func (g *Grant) Acquire(want int) int {
	if want <= 0 {
		return 0
	}
	s := g.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workers == 0 {
		g.held += want
		s.slotsInUse += want
		if s.slotsInUse > s.peakSlots {
			s.peakSlots = s.slotsInUse
		}
		return want
	}
	for s.slotsInUse >= s.workers {
		s.slotCond.Wait()
	}
	share := 1
	if s.active > 0 {
		share = max(1, s.workers/s.active)
	}
	n := min(want, share)
	n = min(n, s.workers-s.slotsInUse)
	g.held += n
	s.slotsInUse += n
	if s.slotsInUse > s.peakSlots {
		s.peakSlots = s.slotsInUse
	}
	return n
}

// Release returns n slots to the pool.
func (g *Grant) Release(n int) {
	if n <= 0 {
		return
	}
	s := g.s
	s.mu.Lock()
	if n > g.held {
		n = g.held
	}
	g.held -= n
	s.slotsInUse -= n
	s.mu.Unlock()
	s.slotCond.Broadcast()
}

// releaseAll returns any slots a job leaked (fn returned or panicked
// while holding a lease).
func (g *Grant) releaseAll() { g.Release(g.held) }

// TenantSnapshot is one tenant's scheduling history.
type TenantSnapshot struct {
	Tenant    string                `json:"tenant"`
	Completed int64                 `json:"completed"`
	Wait      obs.HistogramSnapshot `json:"wait"`
	Run       obs.HistogramSnapshot `json:"run"`
}

// Snapshot is a point-in-time view of the scheduler, exposed via
// GET /stats and /metrics.
type Snapshot struct {
	// Workers and MaxActive echo the configured bounds (0 = unbounded).
	Workers   int `json:"workers"`
	MaxActive int `json:"max_active"`
	// QueueDepth is the current admission queue split by band.
	QueueDepth           int              `json:"queue_depth"`
	QueuedInteractive    int              `json:"queued_interactive"`
	QueuedBackground     int              `json:"queued_background"`
	Active               int              `json:"active"`
	PeakActive           int              `json:"peak_active"`
	SlotsInUse           int              `json:"slots_in_use"`
	PeakSlots            int              `json:"peak_slots"`
	CompletedInteractive int64            `json:"completed_interactive"`
	CompletedBackground  int64            `json:"completed_background"`
	Tenants              []TenantSnapshot `json:"tenants,omitempty"`
}

// Snapshot returns the current scheduler state, tenants sorted by id
// so output is deterministic.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Workers:              s.workers,
		MaxActive:            s.maxActive,
		QueueDepth:           len(s.queue),
		QueuedInteractive:    s.queued[Interactive],
		QueuedBackground:     s.queued[Background],
		Active:               s.active,
		PeakActive:           s.peakActive,
		SlotsInUse:           s.slotsInUse,
		PeakSlots:            s.peakSlots,
		CompletedInteractive: s.completed[Interactive],
		CompletedBackground:  s.completed[Background],
	}
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ts := s.tenants[id]
		snap.Tenants = append(snap.Tenants, TenantSnapshot{
			Tenant:    id,
			Completed: ts.completed,
			Wait:      ts.wait.Snapshot(),
			Run:       ts.run.Snapshot(),
		})
	}
	return snap
}

// SchedSnapshot implements obs.SchedSource.
func (s *Scheduler) SchedSnapshot() any { return s.Snapshot() }

// WriteSchedPrometheus implements obs.SchedSource: the scheduler state
// in Prometheus text exposition format 0.0.4, appended after the
// serving-tier metrics on a content-negotiated GET /metrics scrape.
// Per-tenant wait/run latencies are emitted as summaries (bucket-bound
// quantiles, like every histogram in this repo: ≤2x overestimates).
func (s *Scheduler) WriteSchedPrometheus(w io.Writer) {
	snap := s.Snapshot()
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	writeHeader("tsr_sched_workers", "Global worker-slot pool size (0 = unbounded).", "gauge")
	fmt.Fprintf(w, "tsr_sched_workers %d\n", snap.Workers)
	writeHeader("tsr_sched_max_active", "Admission bound on concurrently active jobs (0 = unbounded).", "gauge")
	fmt.Fprintf(w, "tsr_sched_max_active %d\n", snap.MaxActive)
	writeHeader("tsr_sched_queue_depth", "Jobs waiting for admission, by priority band.", "gauge")
	fmt.Fprintf(w, "tsr_sched_queue_depth{band=\"interactive\"} %d\n", snap.QueuedInteractive)
	fmt.Fprintf(w, "tsr_sched_queue_depth{band=\"background\"} %d\n", snap.QueuedBackground)
	writeHeader("tsr_sched_active", "Currently admitted jobs.", "gauge")
	fmt.Fprintf(w, "tsr_sched_active %d\n", snap.Active)
	writeHeader("tsr_sched_active_peak", "High-water mark of concurrently admitted jobs.", "gauge")
	fmt.Fprintf(w, "tsr_sched_active_peak %d\n", snap.PeakActive)
	writeHeader("tsr_sched_slots_in_use", "Worker slots currently leased from the shared pool.", "gauge")
	fmt.Fprintf(w, "tsr_sched_slots_in_use %d\n", snap.SlotsInUse)
	writeHeader("tsr_sched_slots_peak", "High-water mark of leased worker slots.", "gauge")
	fmt.Fprintf(w, "tsr_sched_slots_peak %d\n", snap.PeakSlots)
	writeHeader("tsr_sched_jobs_total", "Completed jobs by priority band.", "counter")
	fmt.Fprintf(w, "tsr_sched_jobs_total{band=\"interactive\"} %d\n", snap.CompletedInteractive)
	fmt.Fprintf(w, "tsr_sched_jobs_total{band=\"background\"} %d\n", snap.CompletedBackground)

	writeHeader("tsr_sched_tenant_wait_seconds", "Admission queue wait per tenant.", "summary")
	for _, t := range snap.Tenants {
		writeTenantSummary(w, "tsr_sched_tenant_wait_seconds", t.Tenant, t.Wait)
	}
	writeHeader("tsr_sched_tenant_run_seconds", "Job run time per tenant.", "summary")
	for _, t := range snap.Tenants {
		writeTenantSummary(w, "tsr_sched_tenant_run_seconds", t.Tenant, t.Run)
	}
}

// writeTenantSummary renders one tenant histogram as a Prometheus
// summary: quantile samples plus _sum/_count.
func writeTenantSummary(w io.Writer, name, tenant string, h obs.HistogramSnapshot) {
	fmt.Fprintf(w, "%s{tenant=%q,quantile=\"0.5\"} %g\n", name, tenant, h.P50Ms/1e3)
	fmt.Fprintf(w, "%s{tenant=%q,quantile=\"0.9\"} %g\n", name, tenant, h.P90Ms/1e3)
	fmt.Fprintf(w, "%s{tenant=%q,quantile=\"0.99\"} %g\n", name, tenant, h.P99Ms/1e3)
	fmt.Fprintf(w, "%s_sum{tenant=%q} %g\n", name, tenant, h.MeanMs*float64(h.Count)/1e3)
	fmt.Fprintf(w, "%s_count{tenant=%q} %d\n", name, tenant, h.Count)
}

// Stagger returns a deterministic phase offset in [0, period) for id,
// derived from a hash of the id: with R repos auto-refreshing every
// period, their cycles spread across the period instead of firing
// together (no thundering herd), and the spread is identical across
// restarts and replicas.
func Stagger(id string, period time.Duration) time.Duration {
	if period <= 0 {
		return 0
	}
	return time.Duration(hash64(id) % uint64(period))
}

// Jitter returns a deterministic per-round jitter in [0, width) for
// (id, round), decorrelating repos whose staggered deadlines drifted
// together. Purely hash-derived: no global RNG, reproducible anywhere.
func Jitter(id string, round uint64, width time.Duration) time.Duration {
	if width <= 0 {
		return 0
	}
	return time.Duration(hash64(fmt.Sprintf("%s#%d", id, round)) % uint64(width))
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
