package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Journal is a crash-safe intent log layered on a Store: every bulk
// operation (a batched package registration) appends one entry BEFORE
// any of its effects land, and commits (deletes) the entry only after
// the last effect — including the sealed checkpoint that makes the
// effects durable — has been written. A crash anywhere in between
// leaves the entry pending; Replay on the next boot re-runs it.
// Re-running must therefore be idempotent, which the TSR ingest path
// guarantees by keying every effect on content hashes.
//
// Entries are ordinary store blobs under one key prefix, named by a
// zero-padded sequence number so Iterate + sort recovers append order.
// The journal inherits the store's trust model: payloads are whatever
// the caller wrote (TSR seals them), and an adversary who owns the
// store can at worst delete entries — degrading a crash recovery to an
// incomplete ingest the operator retries — or re-expose a committed
// entry, which replays an operation the operator legitimately
// requested. Neither forges state: everything the replay produces is
// re-verified against signer rings exactly like the original request.
type Journal struct {
	store  Store
	prefix string

	mu   sync.Mutex
	next uint64
}

// JournalEntry is one pending operation.
type JournalEntry struct {
	Seq     uint64
	Payload []byte
}

// OpenJournal scans the store for existing entries under prefix (which
// must be non-empty and end with "/") and returns a journal whose next
// append continues after the highest pending sequence. Stores that
// implement Pinner get the prefix pinned so LRU pressure from package
// churn can never age out a pending intent.
func OpenJournal(st Store, prefix string) (*Journal, error) {
	if prefix == "" || !strings.HasSuffix(prefix, "/") {
		return nil, fmt.Errorf("store: journal prefix %q must end with /", prefix)
	}
	j := &Journal{store: st, prefix: prefix}
	if p, ok := st.(Pinner); ok {
		p.Pin(prefix)
	}
	it, ok := st.(Iterable)
	if !ok {
		return nil, fmt.Errorf("store: journal requires an iterable store, have %T", st)
	}
	err := it.Iterate(func(info Info) bool {
		if seq, ok := j.parseKey(info.Key); ok && seq >= j.next {
			j.next = seq + 1
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) key(seq uint64) string {
	return fmt.Sprintf("%s%016x", j.prefix, seq)
}

func (j *Journal) parseKey(key string) (uint64, bool) {
	if !strings.HasPrefix(key, j.prefix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimPrefix(key, j.prefix), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Append durably records one intent and returns its sequence number.
// The write must complete before the caller performs any effect of the
// operation — that ordering is the whole crash-safety argument.
func (j *Journal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	seq := j.next
	j.next++
	j.mu.Unlock()
	if err := j.store.Put(j.key(seq), payload); err != nil {
		return 0, fmt.Errorf("store: journal append: %w", err)
	}
	return seq, nil
}

// Commit marks the operation complete by deleting its entry. Deleting
// an already-absent entry is not an error (a replay may race a late
// commit after a partial crash).
func (j *Journal) Commit(seq uint64) error {
	if err := j.store.Delete(j.key(seq)); err != nil && err != ErrNotFound {
		return fmt.Errorf("store: journal commit %d: %w", seq, err)
	}
	return nil
}

// Pending returns every uncommitted entry in append order.
func (j *Journal) Pending() ([]JournalEntry, error) {
	it := j.store.(Iterable) // checked at OpenJournal
	var keys []string
	err := it.Iterate(func(info Info) bool {
		if _, ok := j.parseKey(info.Key); ok {
			keys = append(keys, info.Key)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	// Zero-padded hex keys: lexical order IS sequence order.
	sort.Strings(keys)
	out := make([]JournalEntry, 0, len(keys))
	for _, k := range keys {
		payload, err := j.store.Get(k)
		if err != nil {
			if err == ErrNotFound {
				continue // committed between Iterate and Get
			}
			return nil, err
		}
		seq, _ := j.parseKey(k)
		out = append(out, JournalEntry{Seq: seq, Payload: payload})
	}
	return out, nil
}

// Replay invokes fn for every pending entry in append order. An entry
// whose fn returns nil is committed; an entry whose fn errors stays
// pending (it will be offered again on the next Replay) and the error
// is returned after the remaining entries were still attempted — one
// poisoned intent must not wedge the ones behind it.
func (j *Journal) Replay(fn func(e JournalEntry) error) error {
	pending, err := j.Pending()
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range pending {
		if err := fn(e); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: journal replay %d: %w", e.Seq, err)
			}
			continue
		}
		if err := j.Commit(e.Seq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
