package store

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// memShards is the shard fan-out of Mem. Keys hash onto shards so
// concurrent refresh workers, serving-path reads, and edge pull-throughs
// contend on independent locks instead of one global mutex.
const memShards = 32

// Mem is a sharded in-memory Store. The zero budget stores everything;
// a positive budget turns it into a byte-bounded LRU cache. The Tamper
// and Snapshot/Restore hooks let tests and experiments play the §5.5
// cache attacks against it.
type Mem struct {
	budget    int64
	pins      []string      // pinned key prefixes (see Pinner); set before sharing
	clock     atomic.Uint64 // logical access clock driving LRU eviction
	bytes     atomic.Int64
	evictions atomic.Int64
	evictMu   sync.Mutex // serializes eviction sweeps
	shards    [memShards]memShard
}

type memShard struct {
	mu   sync.RWMutex
	data map[string]*memEntry
}

type memEntry struct {
	raw   []byte
	atime atomic.Uint64
}

// NewMem returns an empty unbounded store.
func NewMem() *Mem { return NewMemBudget(0) }

// NewMemBudget returns an empty store that evicts least-recently-used
// entries once its contents exceed budget bytes (0 = unbounded).
func NewMemBudget(budget int64) *Mem {
	m := &Mem{budget: budget}
	for i := range m.shards {
		m.shards[i].data = make(map[string]*memEntry)
	}
	return m
}

func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % memShards)
}

// Pin implements Pinner.
func (m *Mem) Pin(prefix string) { m.pins = append(m.pins, prefix) }

// Put implements Store. Under a budget, an unpinned blob larger than
// the whole budget is dropped silently — caching it would evict
// everything else for one entry that cannot even fit.
func (m *Mem) Put(key string, data []byte) error {
	if m.budget > 0 && int64(len(data)) > m.budget && !pinned(m.pins, key) {
		return nil
	}
	e := &memEntry{raw: append([]byte(nil), data...)}
	e.atime.Store(m.clock.Add(1))
	s := &m.shards[shardOf(key)]
	s.mu.Lock()
	if old, ok := s.data[key]; ok {
		m.bytes.Add(int64(len(data)) - int64(len(old.raw)))
	} else {
		m.bytes.Add(int64(len(data)))
	}
	s.data[key] = e
	s.mu.Unlock()
	m.maybeEvict()
	return nil
}

// Get implements Store.
func (m *Mem) Get(key string) ([]byte, error) {
	s := &m.shards[shardOf(key)]
	s.mu.RLock()
	e, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	e.atime.Store(m.clock.Add(1))
	return append([]byte(nil), e.raw...), nil
}

// Open implements Streamer. Mem has no payload larger than memory by
// construction, so the stream is a reader over a private copy — the
// value is streaming-shaped plumbing, not saved bytes.
func (m *Mem) Open(key string) (io.ReadCloser, int64, error) {
	data, err := m.Get(key)
	if err != nil {
		return nil, 0, err
	}
	return io.NopCloser(bytes.NewReader(data)), int64(len(data)), nil
}

// Delete implements Store.
func (m *Mem) Delete(key string) error {
	s := &m.shards[shardOf(key)]
	s.mu.Lock()
	if e, ok := s.data[key]; ok {
		m.bytes.Add(-int64(len(e.raw)))
		delete(s.data, key)
	}
	s.mu.Unlock()
	return nil
}

// Stat implements Stater.
func (m *Mem) Stat(key string) (Info, error) {
	s := &m.shards[shardOf(key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return Info{Key: key, Size: int64(len(e.raw))}, nil
}

// Iterate implements Iterable.
func (m *Mem) Iterate(fn func(Info) bool) error {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		infos := make([]Info, 0, len(s.data))
		for k, e := range s.data {
			infos = append(infos, Info{Key: k, Size: int64(len(e.raw))})
		}
		s.mu.RUnlock()
		for _, info := range infos {
			if !fn(info) {
				return nil
			}
		}
	}
	return nil
}

// Stats implements Monitored.
func (m *Mem) Stats() Stats {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.data)
		s.mu.RUnlock()
	}
	return Stats{Entries: n, Bytes: m.bytes.Load(), Evictions: m.evictions.Load()}
}

// Len returns the number of stored entries.
func (m *Mem) Len() int { return m.Stats().Entries }

// maybeEvict drops least-recently-used entries until the budget holds.
func (m *Mem) maybeEvict() {
	if m.budget <= 0 || m.bytes.Load() <= m.budget {
		return
	}
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	over := m.bytes.Load() - m.budget
	if over <= 0 {
		return
	}
	var cands []lruCandidate
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, e := range s.data {
			if pinned(m.pins, k) {
				continue
			}
			cands = append(cands, lruCandidate{key: k, size: int64(len(e.raw)), atime: e.atime.Load()})
		}
		s.mu.RUnlock()
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].atime < cands[b].atime })
	for _, c := range cands {
		if over <= 0 {
			break
		}
		s := &m.shards[shardOf(c.key)]
		s.mu.Lock()
		if e, ok := s.data[c.key]; ok {
			// Skip entries touched since the scan: they are no longer
			// the cold end.
			if e.atime.Load() != c.atime {
				s.mu.Unlock()
				continue
			}
			m.bytes.Add(-int64(len(e.raw)))
			delete(s.data, c.key)
			over -= int64(len(e.raw))
			m.evictions.Add(1)
		}
		s.mu.Unlock()
	}
}

// --- §5.5 adversary hooks ----------------------------------------------

// Tamper flips a byte in the stored value — the root adversary
// corrupting the cache in place.
func (m *Mem) Tamper(key string) error {
	s := &m.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if len(e.raw) > 0 {
		e.raw[len(e.raw)/2] ^= 0xFF
	}
	return nil
}

// Snapshot copies the full store state (for rollback attacks).
func (m *Mem) Snapshot() map[string][]byte {
	out := make(map[string][]byte)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, e := range s.data {
			out[k] = append([]byte(nil), e.raw...)
		}
		s.mu.RUnlock()
	}
	return out
}

// Restore overwrites the store with a previous snapshot (the rollback
// attack of §5.5: "reverting software packages and the metadata index
// to the outdated versions").
func (m *Mem) Restore(snap map[string][]byte) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, e := range s.data {
			m.bytes.Add(-int64(len(e.raw)))
			delete(s.data, k)
		}
		s.mu.Unlock()
	}
	for k, v := range snap {
		_ = m.Put(k, v)
	}
}
