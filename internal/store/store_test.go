package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// stores under test: both implementations must behave identically on
// the shared surface.
func openBoth(t *testing.T) map[string]Store {
	t.Helper()
	fsStore, err := OpenFS(t.TempDir(), FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "fs": fsStore}
}

func TestPutGetDeleteRoundtrip(t *testing.T) {
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			key := "r1/san/app@deadbeef"
			if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get absent = %v, want ErrNotFound", err)
			}
			if err := s.Put(key, []byte("payload")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(key)
			if err != nil || string(got) != "payload" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			// Overwrite.
			if err := s.Put(key, []byte("payload-2")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get(key); string(got) != "payload-2" {
				t.Fatalf("after overwrite Get = %q", got)
			}
			if err := s.Delete(key); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get deleted = %v, want ErrNotFound", err)
			}
			// Deleting an absent key is a no-op.
			if err := s.Delete(key); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIterateAndStat(t *testing.T) {
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			want := map[string]int64{"a": 1, "b/two": 2, "c@three": 3}
			for k, n := range want {
				if err := s.Put(k, make([]byte, n)); err != nil {
					t.Fatal(err)
				}
			}
			it := s.(Iterable)
			got := map[string]int64{}
			if err := it.Iterate(func(i Info) bool { got[i.Key] = i.Size; return true }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("Iterate saw %v, want %v", got, want)
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("Iterate[%q] = %d, want %d", k, got[k], n)
				}
				info, err := s.(Stater).Stat(k)
				if err != nil || info.Size != n {
					t.Fatalf("Stat(%q) = %+v, %v", k, info, err)
				}
			}
			if _, err := s.(Stater).Stat("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Stat absent = %v", err)
			}
		})
	}
}

// TestBudgetEvictsLRU: with a byte budget, the coldest entries go
// first, entries larger than the whole budget are not stored, and a
// re-accessed entry survives eviction of its colder peers.
func TestBudgetEvictsLRU(t *testing.T) {
	fsStore, err := OpenFS(t.TempDir(), FSOptions{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Store{"mem": NewMemBudget(100), "fs": fsStore} {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 4; i++ {
				if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 25)); err != nil {
					t.Fatal(err)
				}
			}
			// Touch k0 so k1 is now the cold end, then push it over.
			if _, err := s.Get("k0"); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k4", make([]byte, 25)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("k1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("cold k1 survived, err=%v", err)
			}
			for _, k := range []string{"k0", "k2", "k3", "k4"} {
				if _, err := s.Get(k); err != nil {
					t.Fatalf("%s evicted unexpectedly: %v", k, err)
				}
			}
			// Oversized blob: dropped silently, nothing else evicted.
			if err := s.Put("huge", make([]byte, 101)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("huge"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("oversized blob cached, err=%v", err)
			}
			st := s.(Monitored).Stats()
			if st.Bytes > 100 || st.Evictions == 0 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	fsStore, err := OpenFS(t.TempDir(), FSOptions{Budget: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Store{"mem": NewMemBudget(1 << 16), "fs": fsStore} {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("g%d/k%d", g, i%10)
						_ = s.Put(key, []byte(key))
						if raw, err := s.Get(key); err == nil && string(raw) != key {
							t.Errorf("Get(%q) = %q", key, raw)
						}
						if i%7 == 0 {
							_ = s.Delete(key)
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// --- FS-specific durability scenarios ----------------------------------

// TestFSReopenKeepsEntries: a clean reopen (restart) rebuilds the index
// from disk and every entry reads back.
func TestFSReopenKeepsEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"r1/orig/a@00ff", "r1/san/a@1122", "tsrstate/r1"}
	for _, k := range keys {
		if err := s.Put(k, []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kept, dropped := s2.ScrubReport()
	if kept != len(keys) || dropped != 0 {
		t.Fatalf("scrub kept=%d dropped=%d", kept, dropped)
	}
	sort.Strings(keys)
	for _, k := range keys {
		got, err := s2.Get(k)
		if err != nil || string(got) != "v:"+k {
			t.Fatalf("after reopen Get(%q) = %q, %v", k, got, err)
		}
	}
}

// TestFSCrashBetweenTempWriteAndRename: a kill after the temp file is
// written but before the rename must leave no corrupt entry visible
// after restart — the torn temp file is scrubbed away and the key
// reads as a clean miss (or its previous value, if one existed).
func TestFSCrashBetweenTempWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stable", []byte("old-value")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the frame bytes of a new entry (and of an
	// overwrite of "stable") land in temp files that never get renamed.
	for _, crash := range []struct{ key, val string }{
		{"never-renamed", "torn"},
		{"stable", "new-value-lost-in-crash"},
	} {
		parent := filepath.Dir(s.pathFor(crash.key))
		if err := os.MkdirAll(parent, 0o755); err != nil {
			t.Fatal(err)
		}
		tmp, err := os.CreateTemp(parent, ".put-*"+fsTmpSuffix)
		if err != nil {
			t.Fatal(err)
		}
		// Half a frame: exactly what a mid-write kill leaves behind.
		full := frame(crash.key, []byte(crash.val))
		if _, err := tmp.Write(full[:len(full)/2]); err != nil {
			t.Fatal(err)
		}
		tmp.Close()
	}

	s2, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, dropped := s2.ScrubReport(); dropped != 2 {
		t.Fatalf("scrub dropped %d temp leftovers, want 2", dropped)
	}
	if _, err := s2.Get("never-renamed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn write became visible: %v", err)
	}
	got, err := s2.Get("stable")
	if err != nil || string(got) != "old-value" {
		t.Fatalf("previous value lost: %q, %v", got, err)
	}
}

// TestFSScrubDropsCorruptAndMisplaced: flipped bytes fail the CRC and
// a file copied under another key's path fails the key echo; both are
// dropped at boot instead of being served.
func TestFSScrubDropsCorruptAndMisplaced(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("victim", []byte("payload-payload-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("other", []byte("other-bytes")); err != nil {
		t.Fatal(err)
	}
	// Bitrot: flip one payload byte in place.
	vpath := s.pathFor("victim")
	raw, err := os.ReadFile(vpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(vpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Entry swap: copy "other"'s (valid) file over a third key's path.
	swapped, err := os.ReadFile(s.pathFor("other"))
	if err != nil {
		t.Fatal(err)
	}
	spath := s.pathFor("swapped-in")
	if err := os.MkdirAll(filepath.Dir(spath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, swapped, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt entry survived scrub: %v", err)
	}
	if _, err := s2.Get("swapped-in"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("misplaced entry survived scrub: %v", err)
	}
	if got, err := s2.Get("other"); err != nil || string(got) != "other-bytes" {
		t.Fatalf("honest entry lost: %q, %v", got, err)
	}
}

// TestFSGetDetectsLiveTamper: corruption landing after the boot scrub
// is caught by the per-read CRC check; the entry degrades to a miss.
func TestFSGetDetectsLiveTamper(t *testing.T) {
	s, err := OpenFS(t.TempDir(), FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("sanitized-package-bytes")); err != nil {
		t.Fatal(err)
	}
	path := s.pathFor("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tampered read = %v, want ErrNotFound", err)
	}
	// Healed by a fresh Put, as the caller's miss path would do.
	if err := s.Put("k", []byte("sanitized-package-bytes")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("k"); err != nil || string(got) != "sanitized-package-bytes" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
}

// TestMemTamperSnapshotRestore keeps the §5.5 adversary hooks working
// on the sharded store.
func TestMemTamperSnapshotRestore(t *testing.T) {
	m := NewMem()
	if err := m.Put("a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Tamper("a"); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Get("a"); string(got) == "aaaa" {
		t.Fatal("Tamper did not change the value")
	}
	if err := m.Tamper("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Tamper absent = %v", err)
	}
	if err := m.Put("b", []byte("bb")); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)
	if got, _ := m.Get("a"); string(got) != "aaaa" {
		t.Fatalf("Restore: a = %q", got)
	}
	if _, err := m.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatal("Restore kept post-snapshot entry")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// TestPinnedKeysSurviveBudget: pinned prefixes are exempt from LRU
// eviction and from the oversized-blob drop — the journal an edge
// replica persists beside its package cache must survive arbitrary
// package churn.
func TestPinnedKeysSurviveBudget(t *testing.T) {
	fsStore, err := OpenFS(t.TempDir(), FSOptions{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemBudget(100)
	for name, s := range map[string]Store{"mem": mem, "fs": fsStore} {
		t.Run(name, func(t *testing.T) {
			s.(Pinner).Pin("meta/")
			if err := s.Put("meta/index", make([]byte, 30)); err != nil {
				t.Fatal(err)
			}
			// Churn far past the budget: the pinned journal is the
			// coldest entry but must survive every sweep.
			for i := 0; i < 20; i++ {
				if err := s.Put(fmt.Sprintf("pkg/%d", i), make([]byte, 25)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Get("meta/index"); err != nil {
				t.Fatalf("pinned journal evicted: %v", err)
			}
			// Oversized pinned blob is still stored.
			if err := s.Put("meta/index", make([]byte, 150)); err != nil {
				t.Fatal(err)
			}
			if raw, err := s.Get("meta/index"); err != nil || len(raw) != 150 {
				t.Fatalf("oversized pinned journal dropped: %d bytes, %v", len(raw), err)
			}
		})
	}
}
