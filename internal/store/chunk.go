package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Length-prefixed chunk framing (8-byte big-endian length + payload),
// shared by every persisted composite blob: sealed repository state
// and metadata (internal/tsr) and the edge replica's index journal
// (internal/edge). One codec, one set of bounds checks.

// WriteChunk appends one length-prefixed chunk to buf.
func WriteChunk(buf *bytes.Buffer, data []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(data)))
	buf.Write(n[:])
	buf.Write(data)
}

// ReadChunk consumes one length-prefixed chunk from buf.
func ReadChunk(buf *bytes.Reader) ([]byte, error) {
	var n [8]byte
	if _, err := buf.Read(n[:]); err != nil {
		return nil, fmt.Errorf("store: chunk: %w", err)
	}
	size := binary.BigEndian.Uint64(n[:])
	if size > uint64(buf.Len()) {
		return nil, fmt.Errorf("store: chunk size %d exceeds remainder", size)
	}
	out := make([]byte, size)
	if _, err := buf.Read(out); err != nil {
		return nil, fmt.Errorf("store: chunk: %w", err)
	}
	return out, nil
}
