package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed chunk framing (8-byte big-endian length + payload),
// shared by every persisted composite blob: sealed repository state
// and metadata (internal/tsr) and the edge replica's index journal
// (internal/edge). One codec, one set of bounds checks.
//
// This file also holds the content-defined chunker (ROADMAP item 4):
// a Gear rolling hash that cuts package bytes into ~8–64KiB chunks at
// content-determined boundaries, so a one-file version bump shares
// every chunk before (and usually after) the edit. Chunk hashes are
// untrusted transfer metadata — the reassembled bytes must still match
// the signed index entry hash end-to-end.

// WriteChunk appends one length-prefixed chunk to buf.
func WriteChunk(buf *bytes.Buffer, data []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(data)))
	buf.Write(n[:])
	buf.Write(data)
}

// ReadChunk consumes one length-prefixed chunk from buf.
func ReadChunk(buf *bytes.Reader) ([]byte, error) {
	var n [8]byte
	// io.ReadFull, not Read: a truncated frame must surface as
	// io.ErrUnexpectedEOF instead of a silent short read.
	if _, err := io.ReadFull(buf, n[:]); err != nil {
		return nil, fmt.Errorf("store: chunk: %w", err)
	}
	size := binary.BigEndian.Uint64(n[:])
	if size > uint64(buf.Len()) {
		return nil, fmt.Errorf("store: chunk size %d exceeds remainder", size)
	}
	out := make([]byte, size)
	if _, err := io.ReadFull(buf, out); err != nil {
		return nil, fmt.Errorf("store: chunk: %w", err)
	}
	return out, nil
}

// Content-defined chunking parameters. MinChunkSize bytes are skipped
// before the rolling hash is consulted, AvgChunkMask picks an expected
// ~16KiB gap between boundaries past the minimum, and MaxChunkSize
// forces a cut so a pathological stream cannot produce unbounded
// chunks. All three are part of the wire contract: client and server
// must cut identically for differential sync to find shared chunks.
const (
	MinChunkSize = 8 << 10
	MaxChunkSize = 64 << 10
	// AvgChunkMask has 14 low bits set: boundary when the rolling
	// hash masks to zero, i.e. every ~16KiB of content on average.
	AvgChunkMask = (1 << 14) - 1
)

// gearTable is the 256-entry random table driving the Gear hash. It is
// derived deterministically from splitmix64 so every build — and both
// sides of the wire — agree on chunk boundaries without shipping the
// table.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	// splitmix64 with a fixed seed; see Steele et al., "Fast
	// Splittable Pseudorandom Number Generators".
	state := uint64(0x746573725f636463) // "tsr_cdc"
	for i := range t {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Span is one chunk's position within the whole blob.
type Span struct {
	Offset int64 `json:"offset"`
	Size   int64 `json:"size"`
}

// CutChunks splits data at content-defined boundaries. Every byte of
// data is covered exactly once, in order; an empty input yields no
// spans. The cut points depend only on the bytes, so two blobs sharing
// a long run of identical bytes share the chunk boundaries inside it.
func CutChunks(data []byte) []Span {
	var spans []Span
	for off := 0; off < len(data); {
		end := off + MaxChunkSize
		if end > len(data) {
			end = len(data)
		}
		cut := end
		if end-off > MinChunkSize {
			var h uint64
			for i := off + MinChunkSize; i < end; i++ {
				h = (h << 1) + gearTable[data[i]]
				if h&AvgChunkMask == 0 {
					cut = i + 1
					break
				}
			}
		}
		spans = append(spans, Span{Offset: int64(off), Size: int64(cut - off)})
		off = cut
	}
	return spans
}

// ManifestChunk is one chunk entry in a manifest: its span plus the
// SHA-256 of its bytes.
type ManifestChunk struct {
	Span
	Hash [sha256.Size]byte
}

// ChunkManifest describes one package blob as content-defined chunks.
// PackageHash is the SHA-256 of the whole blob — the same value the
// signed index entry carries — which roots the manifest in the trust
// chain: a client accepts a manifest only when PackageHash matches the
// signed entry, and accepts the reassembled bytes only when they hash
// to it. The per-chunk hashes are pure transfer optimization and are
// never trusted on their own.
type ChunkManifest struct {
	PackageHash [sha256.Size]byte
	TotalSize   int64
	Chunks      []ManifestChunk
}

// BuildManifest chunks data and hashes every chunk plus the whole.
func BuildManifest(data []byte) *ChunkManifest {
	spans := CutChunks(data)
	m := &ChunkManifest{
		PackageHash: sha256.Sum256(data),
		TotalSize:   int64(len(data)),
		Chunks:      make([]ManifestChunk, len(spans)),
	}
	for i, s := range spans {
		m.Chunks[i] = ManifestChunk{
			Span: s,
			Hash: sha256.Sum256(data[s.Offset : s.Offset+s.Size]),
		}
	}
	return m
}

// Valid checks the manifest's internal consistency: chunks must tile
// [0, TotalSize) contiguously with sizes in (0, MaxChunkSize], and an
// empty blob must have no chunks. It does NOT vouch for the hashes —
// only reassembly against the signed entry hash does that.
func (m *ChunkManifest) Valid() error {
	if m.TotalSize < 0 {
		return fmt.Errorf("store: manifest: negative total size %d", m.TotalSize)
	}
	var off int64
	for i, c := range m.Chunks {
		if c.Offset != off {
			return fmt.Errorf("store: manifest: chunk %d offset %d, want %d", i, c.Offset, off)
		}
		if c.Size <= 0 || c.Size > MaxChunkSize {
			return fmt.Errorf("store: manifest: chunk %d size %d out of range", i, c.Size)
		}
		off += c.Size
	}
	if off != m.TotalSize {
		return fmt.Errorf("store: manifest: chunks cover %d bytes, total %d", off, m.TotalSize)
	}
	return nil
}
