package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FS is the durable disk-backed Store behind `tsrd -data-dir` and
// `tsredge -data-dir`. Entries live under fan-out subdirectories
// (objects/<aa>/<bb>/<hash>, keyed by the SHA-256 of the key, so one
// directory never accumulates the whole repository). Every write goes
// through a temp file in the target directory followed by an atomic
// rename, so a crash at any instant leaves either the old entry, the
// new entry, or a *.tmp leftover the boot scrub removes — never a
// half-written entry that Get could return.
//
// Each file carries a small frame (magic, key, sizes, CRC32 of the
// payload) that is re-checked on every read and during the boot scrub:
// torn writes and bitrot surface as ErrNotFound (the entry is dropped),
// so callers heal by re-fetching/re-sanitizing. The CRC is NOT a
// defense against the §5.5 root adversary — they can rewrite frame and
// checksum consistently — which is why callers re-verify content
// against signed indexes or unseal with the enclave key regardless.
type FS struct {
	dir    string
	budget int64
	fsync  bool
	pins   []string // pinned key prefixes (see Pinner); set before sharing

	clock     atomic.Uint64
	evictions atomic.Int64
	evictMu   sync.Mutex

	mu    sync.RWMutex
	index map[string]*fsEntry
	bytes int64

	scrubKept    int
	scrubDropped int
}

type fsEntry struct {
	size  int64
	atime atomic.Uint64
}

// FSOptions configure OpenFS.
type FSOptions struct {
	// Budget bounds the store in bytes; 0 keeps everything. With a
	// budget the store is a cache: least-recently-used entries are
	// evicted (by logical access clock) once the budget is exceeded.
	Budget int64
	// Fsync makes every Put fsync the entry file and its directory
	// before returning, trading write latency for power-loss
	// durability. Off, a crash can lose recent writes but — thanks to
	// the temp+rename protocol — never corrupt old ones.
	Fsync bool
}

const (
	fsMagic     = "TSR1"
	fsObjectDir = "objects"
	fsTmpSuffix = ".tmp"
	// fsHeaderLen is magic(4) + keyLen(4) + dataLen(8) + crc(4).
	fsHeaderLen = 20
)

// OpenFS opens (creating if needed) a disk store rooted at dir and
// scrubs it: *.tmp leftovers from interrupted writes are removed,
// every entry's frame header, key echo, and length are validated, and
// torn or misplaced files are dropped. The payload CRC is enforced on
// every Get rather than at boot, keeping restart cost proportional to
// the entry count instead of the cache size.
func OpenFS(dir string, opts FSOptions) (*FS, error) {
	s := &FS{
		dir:    dir,
		budget: opts.Budget,
		fsync:  opts.Fsync,
		index:  make(map[string]*fsEntry),
	}
	if err := os.MkdirAll(filepath.Join(dir, fsObjectDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if err := s.scrub(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *FS) Dir() string { return s.dir }

// ScrubReport returns how many entries the boot scrub kept and dropped
// (corrupt frames, bad CRCs, misplaced files, temp leftovers).
func (s *FS) ScrubReport() (kept, dropped int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scrubKept, s.scrubDropped
}

// pathFor maps a key to its fan-out file path. Hashing the key keeps
// arbitrary key strings (slashes, '@', long names) out of the
// filesystem namespace and spreads entries across 65536 directories.
func (s *FS) pathFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, fsObjectDir, h[:2], h[2:4], h[4:])
}

// scrub walks the object tree rebuilding the index.
func (s *FS) scrub() error {
	root := filepath.Join(s.dir, fsObjectDir)
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(d.Name(), fsTmpSuffix) {
			// A write that died between temp-write and rename: the
			// entry was never visible; discard the torn bytes.
			_ = os.Remove(path)
			s.scrubDropped++
			return nil
		}
		key, size, err := readFrameHeader(path)
		if err != nil || s.pathFor(key) != path {
			// Corrupt or truncated frame, or a file moved under a
			// different key's path (entry-swapping): drop it. Callers
			// treat the missing entry as a cache miss and heal. The
			// payload CRC is deliberately NOT checked here — boot cost
			// stays proportional to entry count, not cache bytes — and
			// is enforced on every Get instead.
			_ = os.Remove(path)
			s.scrubDropped++
			return nil
		}
		e := &fsEntry{size: size}
		e.atime.Store(s.clock.Add(1))
		s.index[key] = e
		s.bytes += size
		s.scrubKept++
		return nil
	})
}

// frame renders the on-disk representation of one entry.
func frame(key string, data []byte) []byte {
	buf := make([]byte, fsHeaderLen+len(key)+len(data))
	copy(buf[0:4], fsMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(key)))
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(data)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(data))
	copy(buf[fsHeaderLen:], key)
	copy(buf[fsHeaderLen+len(key):], data)
	return buf
}

// readFrameHeader parses one entry file's frame header and key,
// validating lengths against the file size without reading the
// payload.
func readFrameHeader(path string) (key string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", 0, err
	}
	var hdr [fsHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return "", 0, fmt.Errorf("store: %s: short frame header", path)
	}
	if string(hdr[0:4]) != fsMagic {
		return "", 0, fmt.Errorf("store: %s: bad frame magic", path)
	}
	keyLen := binary.BigEndian.Uint32(hdr[4:8])
	dataLen := binary.BigEndian.Uint64(hdr[8:16])
	if uint64(st.Size()) != uint64(fsHeaderLen)+uint64(keyLen)+dataLen {
		return "", 0, fmt.Errorf("store: %s: truncated frame", path)
	}
	rawKey := make([]byte, keyLen)
	if _, err := io.ReadFull(f, rawKey); err != nil {
		return "", 0, fmt.Errorf("store: %s: short key", path)
	}
	return string(rawKey), int64(dataLen), nil
}

// readFrame parses and validates one entry file, payload CRC included.
func readFrame(path string) (key string, data []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(raw) < fsHeaderLen || string(raw[0:4]) != fsMagic {
		return "", nil, fmt.Errorf("store: %s: bad frame header", path)
	}
	keyLen := binary.BigEndian.Uint32(raw[4:8])
	dataLen := binary.BigEndian.Uint64(raw[8:16])
	crc := binary.BigEndian.Uint32(raw[16:20])
	if uint64(len(raw)) != uint64(fsHeaderLen)+uint64(keyLen)+dataLen {
		return "", nil, fmt.Errorf("store: %s: truncated frame", path)
	}
	key = string(raw[fsHeaderLen : fsHeaderLen+keyLen])
	data = raw[fsHeaderLen+keyLen:]
	if crc32.ChecksumIEEE(data) != crc {
		return "", nil, fmt.Errorf("store: %s: CRC mismatch", path)
	}
	return key, data, nil
}

// Pin implements Pinner.
func (s *FS) Pin(prefix string) { s.pins = append(s.pins, prefix) }

// Put implements Store: temp-write then rename, so the entry becomes
// visible atomically. Under a budget, an unpinned blob larger than the
// whole budget is dropped silently (cache semantics).
func (s *FS) Put(key string, data []byte) error {
	if s.budget > 0 && int64(len(data)) > s.budget && !pinned(s.pins, key) {
		return nil
	}
	final := s.pathFor(key)
	parent := filepath.Dir(final)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(parent, ".put-*"+fsTmpSuffix)
	if err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(frame(key, data)); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if s.fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("store: put %q: %w", key, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if s.fsync {
		syncDir(parent)
	}
	e := &fsEntry{size: int64(len(data))}
	e.atime.Store(s.clock.Add(1))
	s.mu.Lock()
	if old, ok := s.index[key]; ok {
		s.bytes += int64(len(data)) - old.size
	} else {
		s.bytes += int64(len(data))
	}
	s.index[key] = e
	s.mu.Unlock()
	s.maybeEvict()
	return nil
}

// Get implements Store. The frame is re-validated on every read; an
// entry that fails validation (torn by a crash mid-sector, flipped by
// bitrot, or rewritten on disk) is dropped and reported as ErrNotFound
// so the caller re-fetches or re-sanitizes — the §5.5 "deleted cache
// degrades to a miss, never to bad data" behavior at the frame level.
func (s *FS) Get(key string) ([]byte, error) {
	s.mu.RLock()
	e, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	gotKey, data, err := readFrame(s.pathFor(key))
	if err != nil || gotKey != key {
		// Invalid on disk: drop the entry so the caller's heal path
		// (re-download, re-sanitize) repairs it.
		_ = s.Delete(key)
		return nil, fmt.Errorf("%w: %q (invalid on disk)", ErrNotFound, key)
	}
	e.atime.Store(s.clock.Add(1))
	return data, nil
}

// Open implements Streamer: the payload streams straight off disk
// after the frame header and key echo are validated. The payload CRC
// is deliberately NOT checked — that would force a full pre-read and
// defeat the point of streaming — so this path leans entirely on the
// caller's hash-as-you-copy verification against the signed entry.
// The returned reader holds an open fd, so a concurrent Put/Delete of
// the same key cannot corrupt an in-flight stream (rename/unlink leave
// the old inode readable).
func (s *FS) Open(key string) (io.ReadCloser, int64, error) {
	s.mu.RLock()
	e, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	f, err := os.Open(s.pathFor(key))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	var hdr [fsHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[0:4]) != fsMagic {
		f.Close()
		_ = s.Delete(key)
		return nil, 0, fmt.Errorf("%w: %q (invalid on disk)", ErrNotFound, key)
	}
	keyLen := binary.BigEndian.Uint32(hdr[4:8])
	dataLen := binary.BigEndian.Uint64(hdr[8:16])
	rawKey := make([]byte, keyLen)
	if _, err := io.ReadFull(f, rawKey); err != nil || string(rawKey) != key {
		f.Close()
		_ = s.Delete(key)
		return nil, 0, fmt.Errorf("%w: %q (invalid on disk)", ErrNotFound, key)
	}
	e.atime.Store(s.clock.Add(1))
	return &fsStream{f: f, r: io.LimitReader(f, int64(dataLen))}, int64(dataLen), nil
}

// fsStream is an open entry payload: a bounded reader over the fd.
type fsStream struct {
	f *os.File
	r io.Reader
}

func (st *fsStream) Read(p []byte) (int, error) { return st.r.Read(p) }
func (st *fsStream) Close() error               { return st.f.Close() }

// Delete implements Store.
func (s *FS) Delete(key string) error {
	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		s.bytes -= e.size
		delete(s.index, key)
	}
	s.mu.Unlock()
	if err := os.Remove(s.pathFor(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}

// Stat implements Stater (from the index; no disk read).
func (s *FS) Stat(key string) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.index[key]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return Info{Key: key, Size: e.size}, nil
}

// Iterate implements Iterable over the scrubbed index.
func (s *FS) Iterate(fn func(Info) bool) error {
	s.mu.RLock()
	infos := make([]Info, 0, len(s.index))
	for k, e := range s.index {
		infos = append(infos, Info{Key: k, Size: e.size})
	}
	s.mu.RUnlock()
	for _, info := range infos {
		if !fn(info) {
			return nil
		}
	}
	return nil
}

// Stats implements Monitored.
func (s *FS) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Entries: len(s.index), Bytes: s.bytes, Evictions: s.evictions.Load()}
}

// maybeEvict drops least-recently-used entries until the budget holds.
func (s *FS) maybeEvict() {
	if s.budget <= 0 {
		return
	}
	s.mu.RLock()
	over := s.bytes - s.budget
	s.mu.RUnlock()
	if over <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	s.mu.RLock()
	over = s.bytes - s.budget
	cands := make([]lruCandidate, 0, len(s.index))
	for k, e := range s.index {
		if pinned(s.pins, k) {
			continue
		}
		cands = append(cands, lruCandidate{key: k, size: e.size, atime: e.atime.Load()})
	}
	s.mu.RUnlock()
	if over <= 0 {
		return
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].atime < cands[b].atime })
	for _, c := range cands {
		if over <= 0 {
			break
		}
		s.mu.RLock()
		e, ok := s.index[c.key]
		fresh := ok && e.atime.Load() != c.atime
		s.mu.RUnlock()
		if !ok || fresh {
			continue // deleted meanwhile, or touched since the scan
		}
		if err := s.Delete(c.key); err == nil {
			over -= c.size
			s.evictions.Add(1)
		}
	}
}

// syncDir fsyncs a directory so a rename survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
