// Package store provides the content-addressed blob store every TSR
// storage site shares: the origin's untrusted package/sancache tier,
// the edge replicas' pull-through caches, and the sealed-state blobs
// that make a daemon restart warm.
//
// Two implementations exist. Mem is a sharded in-memory store for
// tests, experiments, and diskless deployments. FS is the durable
// disk-backed store behind `tsrd -data-dir` / `tsredge -data-dir`:
// fan-out subdirectories, atomic temp-file+rename writes, size/CRC
// framing, optional fsync, and a boot-time scrub that drops torn or
// corrupt entries before anything reads them.
//
// Neither implementation is trusted. The CRC in the FS framing catches
// crashes and bitrot, not adversaries — a root attacker can rewrite a
// frame and its checksum consistently. Callers therefore re-verify
// everything they read back (content hash against a signed index,
// AES-GCM unsealing for enclave state) exactly as §5.5 of the paper
// demands; the store's own integrity checks only decide whether an
// entry is worth handing back at all.
//
// Both implementations optionally enforce a byte budget: when set, the
// store behaves as a cache and evicts least-recently-used entries
// (tracked by a logical access clock) until the budget holds. Without
// a budget nothing is ever evicted.
package store

import (
	"errors"
	"io"
)

// ErrNotFound is returned by Get and Stat for absent keys — including
// keys whose on-disk entry failed the integrity scrub and was dropped.
var ErrNotFound = errors.New("store: key not found")

// Store is the minimal mutable blob-store surface.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
}

// Info describes one stored entry.
type Info struct {
	Key  string
	Size int64
}

// Iterable is implemented by stores that can enumerate their entries —
// what callers use to scrub, prune, and rebuild state on boot. The
// iteration order is unspecified. fn returning false stops the walk.
type Iterable interface {
	Iterate(fn func(Info) bool) error
}

// Stater is implemented by stores that can describe an entry without
// reading its bytes.
type Stater interface {
	Stat(key string) (Info, error)
}

// Streamer is implemented by stores that can hand back an entry as a
// stream instead of one buffered slice — what the daemons' streaming
// serve path (ROADMAP item 4) uses so large packages never sit fully
// in memory per request. The stream carries the same trust caveat as
// Get: bytes are NOT verified by the store (FS skips even the frame
// CRC on this path, to stay single-pass), so callers MUST hash the
// stream against the signed entry as they copy.
type Streamer interface {
	// Open returns the entry's bytes as a reader plus its size.
	// The reader must be closed; it is independent of later
	// Put/Delete calls on the same key.
	Open(key string) (io.ReadCloser, int64, error)
}

// Stats is a point-in-time occupancy snapshot.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Evictions int64 `json:"evictions"`
}

// Monitored is implemented by stores that report occupancy.
type Monitored interface {
	Stats() Stats
}

// Pinner is implemented by budget-bounded stores that can exempt a key
// prefix from cache semantics: pinned entries are never LRU-evicted
// and are stored even when they exceed the byte budget. Callers pin
// the small metadata they journal beside bulk cache entries (e.g. an
// edge replica's persisted index) so package churn cannot age it out.
// Pin before the store is shared across goroutines.
type Pinner interface {
	Pin(prefix string)
}

// pinned reports whether key falls under any pinned prefix.
func pinned(prefixes []string, key string) bool {
	for _, p := range prefixes {
		if len(key) >= len(p) && key[:len(p)] == p {
			return true
		}
	}
	return false
}

// lruCandidate is one entry considered for byte-budget eviction.
type lruCandidate struct {
	key   string
	size  int64
	atime uint64
}
