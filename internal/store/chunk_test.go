package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func TestChunkFramingRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	WriteChunk(&buf, []byte("alpha"))
	WriteChunk(&buf, nil)
	WriteChunk(&buf, []byte("bravo charlie"))
	r := bytes.NewReader(buf.Bytes())
	for i, want := range [][]byte{[]byte("alpha"), nil, []byte("bravo charlie")} {
		got, err := ReadChunk(r)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: got %q want %q", i, got, want)
		}
	}
	if _, err := ReadChunk(r); err == nil {
		t.Fatal("read past end: want error")
	}
}

// Regression: a frame truncated mid-header or mid-payload must fail
// loudly. The old bytes.Reader.Read-based decoder could short-read a
// partial header without error and misparse the remainder.
func TestReadChunkTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	WriteChunk(&buf, bytes.Repeat([]byte("x"), 100))
	whole := buf.Bytes()
	for _, cut := range []int{0, 1, 7, 8, 9, len(whole) - 1} {
		r := bytes.NewReader(whole[:cut])
		got, err := ReadChunk(r)
		if err == nil {
			t.Fatalf("cut=%d: want error, got %d bytes", cut, len(got))
		}
		if cut > 0 && cut < 8 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: want io.ErrUnexpectedEOF in %v", cut, err)
		}
	}
}

func randBytes(t *testing.T, seed int64, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func TestCutChunksCoversAndBounds(t *testing.T) {
	for _, n := range []int{0, 1, MinChunkSize - 1, MinChunkSize, MaxChunkSize, 1 << 20} {
		data := randBytes(t, int64(n), n)
		spans := CutChunks(data)
		if n == 0 {
			if len(spans) != 0 {
				t.Fatal("empty input: want no spans")
			}
			continue
		}
		var off int64
		for i, s := range spans {
			if s.Offset != off {
				t.Fatalf("n=%d span %d: offset %d want %d", n, i, s.Offset, off)
			}
			if s.Size <= 0 || s.Size > MaxChunkSize {
				t.Fatalf("n=%d span %d: size %d out of range", n, i, s.Size)
			}
			// Only the final chunk may be under the minimum (tail).
			if s.Size < MinChunkSize && i != len(spans)-1 {
				t.Fatalf("n=%d span %d: interior size %d < min", n, i, s.Size)
			}
			off += s.Size
		}
		if off != int64(n) {
			t.Fatalf("n=%d: spans cover %d bytes", n, off)
		}
	}
}

func TestCutChunksDeterministic(t *testing.T) {
	data := randBytes(t, 7, 512<<10)
	a := CutChunks(data)
	b := CutChunks(data)
	if len(a) != len(b) {
		t.Fatal("non-deterministic chunk count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) < 4 {
		t.Fatalf("512KiB should cut into several chunks, got %d", len(a))
	}
}

// The property differential sync depends on: editing bytes near the
// end leaves the chunks before the edit identical, because boundaries
// are content-defined rather than offset-defined.
func TestChunkReuseAfterTailEdit(t *testing.T) {
	oldData := randBytes(t, 11, 1<<20)
	newData := append([]byte(nil), oldData...)
	for i := len(newData) - 4096; i < len(newData); i++ {
		newData[i] ^= 0x5A
	}
	oldM, newM := BuildManifest(oldData), BuildManifest(newData)
	oldHashes := make(map[[sha256.Size]byte]bool, len(oldM.Chunks))
	for _, c := range oldM.Chunks {
		oldHashes[c.Hash] = true
	}
	reused := 0
	for _, c := range newM.Chunks {
		if oldHashes[c.Hash] {
			reused++
		}
	}
	if reused < len(newM.Chunks)*3/4 {
		t.Fatalf("tail edit: only %d/%d chunks reused", reused, len(newM.Chunks))
	}
}

func TestBuildManifestAndValid(t *testing.T) {
	data := randBytes(t, 3, 200<<10)
	m := BuildManifest(data)
	if m.PackageHash != sha256.Sum256(data) {
		t.Fatal("package hash mismatch")
	}
	if m.TotalSize != int64(len(data)) {
		t.Fatal("total size mismatch")
	}
	if err := m.Valid(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	for i, c := range m.Chunks {
		if sha256.Sum256(data[c.Offset:c.Offset+c.Size]) != c.Hash {
			t.Fatalf("chunk %d hash mismatch", i)
		}
	}

	// Tampered shapes must be rejected by Valid.
	bad := *m
	bad.Chunks = append([]ManifestChunk(nil), m.Chunks...)
	bad.Chunks[0].Size++
	if bad.Valid() == nil {
		t.Fatal("overlapping chunks accepted")
	}
	bad2 := *m
	bad2.TotalSize++
	if bad2.Valid() == nil {
		t.Fatal("short coverage accepted")
	}
	bad3 := *m
	bad3.Chunks = append([]ManifestChunk(nil), m.Chunks...)
	bad3.Chunks[len(bad3.Chunks)-1].Size += MaxChunkSize + 1
	if bad3.Valid() == nil {
		t.Fatal("oversized chunk accepted")
	}
}

func TestStreamerOpen(t *testing.T) {
	dir := t.TempDir()
	fsStore, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Store{NewMem(), fsStore} {
		sr, ok := st.(Streamer)
		if !ok {
			t.Fatalf("%T does not implement Streamer", st)
		}
		data := randBytes(t, 5, 96<<10)
		if err := st.Put("pkg/a", data); err != nil {
			t.Fatal(err)
		}
		rc, size, err := sr.Open("pkg/a")
		if err != nil {
			t.Fatal(err)
		}
		if size != int64(len(data)) {
			t.Fatalf("%T: size %d want %d", st, size, len(data))
		}
		got, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		rc.Close()
		if !bytes.Equal(got, data) {
			t.Fatalf("%T: streamed bytes differ", st)
		}
		if _, _, err := sr.Open("absent"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%T: open absent: %v", st, err)
		}
	}
}

// A stream opened before a Delete (or overwriting Put) must keep
// serving the original bytes — the serving path depends on this to
// avoid torn responses during concurrent sync.
func TestStreamerStableUnderDelete(t *testing.T) {
	dir := t.TempDir()
	fsStore, err := OpenFS(dir, FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(t, 9, 64<<10)
	if err := fsStore.Put("pkg/b", data); err != nil {
		t.Fatal(err)
	}
	rc, _, err := fsStore.Open("pkg/b")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := fsStore.Delete("pkg/b"); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stream changed under delete")
	}
}
