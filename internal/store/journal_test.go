package store

import (
	"errors"
	"fmt"
	"testing"
)

func TestJournalAppendReplayCommit(t *testing.T) {
	st := NewMem()
	j, err := OpenJournal(st, "journal/")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := j.Append([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := j.Append([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1+1 {
		t.Fatalf("sequences not consecutive: %d then %d", s1, s2)
	}
	if err := j.Commit(s1); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := j.Replay(func(e JournalEntry) error {
		got = append(got, string(e.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "two" {
		t.Fatalf("replayed %v, want [two]", got)
	}
	// Everything replayed successfully was committed.
	pending, err := j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("%d entries still pending after replay", len(pending))
	}
}

// TestJournalSurvivesReopen is the crash shape: entries appended by one
// journal instance are pending in a fresh instance over the same store,
// in append order, and new appends continue after them.
func TestJournalSurvivesReopen(t *testing.T) {
	st := NewMem()
	j1, err := OpenJournal(st, "journal/")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j1.Append([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": drop j1, reopen over the same store.
	j2, err := OpenJournal(st, "journal/")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j2.Append([]byte("op-3"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("reopened journal continued at %d, want 3", seq)
	}
	pending, err := j2.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 4 {
		t.Fatalf("%d pending, want 4", len(pending))
	}
	for i, e := range pending {
		if want := fmt.Sprintf("op-%d", i); string(e.Payload) != want {
			t.Fatalf("pending[%d] = %q, want %q (append order lost)", i, e.Payload, want)
		}
	}
}

// TestJournalReplayKeepsFailedEntry: a failing fn leaves its entry
// pending for the next replay but does not block entries behind it.
func TestJournalReplayKeepsFailedEntry(t *testing.T) {
	st := NewMem()
	j, err := OpenJournal(st, "journal/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("poison")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var seen []string
	err = j.Replay(func(e JournalEntry) error {
		seen = append(seen, string(e.Payload))
		if string(e.Payload) == "poison" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("replay error = %v, want wrapped boom", err)
	}
	if len(seen) != 2 {
		t.Fatalf("replay visited %v, want both entries", seen)
	}
	pending, err := j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || string(pending[0].Payload) != "poison" {
		t.Fatalf("pending = %v, want only the poisoned entry", pending)
	}
}

// TestJournalPinsPrefix: on a budgeted store, heavy churn outside the
// journal cannot evict a pending intent.
func TestJournalPinsPrefix(t *testing.T) {
	st := NewMemBudget(4 << 10)
	j, err := OpenJournal(st, "journal/")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.Append(make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := st.Put(fmt.Sprintf("bulk/%d", i), make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	pending, err := j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Seq != seq {
		t.Fatalf("pending intent evicted under churn: %v", pending)
	}
}

func TestJournalRejectsBadPrefixAndStore(t *testing.T) {
	if _, err := OpenJournal(NewMem(), "nojail"); err == nil {
		t.Fatal("prefix without trailing slash accepted")
	}
	if _, err := OpenJournal(flatStore{}, "journal/"); err == nil {
		t.Fatal("non-iterable store accepted")
	}
}

// flatStore is a Store without Iterate.
type flatStore struct{}

func (flatStore) Put(string, []byte) error   { return nil }
func (flatStore) Get(string) ([]byte, error) { return nil, ErrNotFound }
func (flatStore) Delete(string) error        { return nil }
