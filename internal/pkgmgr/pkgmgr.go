// Package pkgmgr implements the apk-style package manager of §2.2: it
// fetches the signed metadata index, verifies package authenticity and
// integrity (signature over the control segment, size and hash against
// the index), resolves dependencies, executes installation scripts
// against the OS image, extracts files together with their PAX-carried
// extended attributes, and maintains the installed-package database at
// /lib/apk/db/installed.
//
// Every file the manager writes is measured by IMA (Figure 4, step 4),
// so installations are visible to the integrity monitoring system.
package pkgmgr

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/script"
)

// DBPath is the installed-package database file.
const DBPath = "/lib/apk/db/installed"

// Error sentinels.
var (
	ErrNoIndex          = errors.New("pkgmgr: no index fetched yet (run Refresh)")
	ErrAlreadyInstalled = errors.New("pkgmgr: package already installed")
	ErrNotInstalled     = errors.New("pkgmgr: package not installed")
	ErrSizeMismatch     = errors.New("pkgmgr: package size does not match index (endless data defense)")
	ErrHashMismatch     = errors.New("pkgmgr: package hash does not match index")
	ErrStaleIndex       = errors.New("pkgmgr: refusing index older than previously seen (rollback defense)")
	ErrDependencyCycle  = errors.New("pkgmgr: dependency cycle")
	ErrScriptFailed     = errors.New("pkgmgr: installation script failed")
)

// Source serves an index and packages (satisfied by *mirror.Mirror and
// by the TSR client).
type Source interface {
	FetchIndex() (*index.Signed, error)
	FetchPackage(name string) ([]byte, error)
}

// NetModel optionally charges modeled network time for downloads on a
// virtual clock, so end-to-end latency experiments (Figure 11) include
// transfer time without real sleeps.
type NetModel struct {
	Local, Remote netsim.Continent
	Link          *netsim.LinkModel
	Clock         netsim.Clock
}

// charge returns the modeled transfer duration and advances the clock.
func (n *NetModel) charge(bytes int64) time.Duration {
	if n == nil || n.Link == nil {
		return 0
	}
	d := n.Link.RequestResponse(n.Local, n.Remote, bytes)
	if n.Clock != nil {
		n.Clock.Sleep(d)
	}
	return d
}

// Installed records one installed package in the database.
type Installed struct {
	Name    string
	Version string
	Hash    [32]byte
	Files   []string
}

// Report is the timing breakdown of one operation, the decomposition
// behind the paper's Figure 11 ("download and verify the update,
// prepare the system, unpack, launch installation scripts, copy files").
type Report struct {
	Download time.Duration // modeled network time
	Verify   time.Duration // signature + hash checks (measured)
	Script   time.Duration // installation script execution (measured)
	Extract  time.Duration // file extraction incl. xattrs (measured)
	Measure  time.Duration // IMA measurement (measured)
	// Bytes is the downloaded package size.
	Bytes int64
}

// Total returns the end-to-end duration.
func (r Report) Total() time.Duration {
	return r.Download + r.Verify + r.Script + r.Extract + r.Measure
}

// add accumulates another report (dependency installs).
func (r *Report) add(o Report) {
	r.Download += o.Download
	r.Verify += o.Verify
	r.Script += o.Script
	r.Extract += o.Extract
	r.Measure += o.Measure
	r.Bytes += o.Bytes
}

// Manager is the package manager for one OS image.
type Manager struct {
	img       *osimage.Image
	src       Source
	indexRing *keys.Ring
	pkgRing   *keys.Ring
	net       *NetModel

	idx       *index.Index
	lastSeq   uint64
	installed map[string]Installed
	measured  map[string][32]byte // last-measured content hash per path
}

// New creates a manager. indexRing verifies the repository index
// signature; pkgRing verifies package signatures (the distribution keys
// from /etc/apk/keys, or the TSR public key after reconfiguration).
func New(img *osimage.Image, src Source, indexRing, pkgRing *keys.Ring) *Manager {
	return &Manager{
		img:       img,
		src:       src,
		indexRing: indexRing,
		pkgRing:   pkgRing,
		installed: make(map[string]Installed),
		measured:  make(map[string][32]byte),
	}
}

// SetNetModel enables modeled download time.
func (m *Manager) SetNetModel(n *NetModel) { m.net = n }

// Refresh fetches and verifies the metadata index. It refuses an index
// with a lower sequence number than previously seen.
func (m *Manager) Refresh() error {
	signed, err := m.src.FetchIndex()
	if err != nil {
		return fmt.Errorf("pkgmgr: fetching index: %w", err)
	}
	m.net.charge(signed.Size())
	ix, err := signed.Verify(m.indexRing)
	if err != nil {
		return fmt.Errorf("pkgmgr: verifying index: %w", err)
	}
	if ix.Sequence < m.lastSeq {
		return fmt.Errorf("%w: have %d, got %d", ErrStaleIndex, m.lastSeq, ix.Sequence)
	}
	m.idx = ix
	m.lastSeq = ix.Sequence
	return nil
}

// Index returns the current index (nil before Refresh).
func (m *Manager) Index() *index.Index { return m.idx }

// IsInstalled reports whether the named package is installed.
func (m *Manager) IsInstalled(name string) bool {
	_, ok := m.installed[name]
	return ok
}

// InstalledVersion returns the installed version of a package.
func (m *Manager) InstalledVersion(name string) (string, error) {
	inst, ok := m.installed[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotInstalled, name)
	}
	return inst.Version, nil
}

// InstalledNames returns the sorted names of installed packages.
func (m *Manager) InstalledNames() []string {
	names := make([]string, 0, len(m.installed))
	for n := range m.installed {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Install installs the named package and its dependencies.
func (m *Manager) Install(name string) (Report, error) {
	if m.idx == nil {
		return Report{}, ErrNoIndex
	}
	if m.IsInstalled(name) {
		return Report{}, fmt.Errorf("%w: %q", ErrAlreadyInstalled, name)
	}
	return m.installRec(name, make(map[string]bool), false)
}

// Upgrade replaces an installed package with the index's version,
// running pre/post-upgrade scripts and removing files that the new
// version no longer ships.
func (m *Manager) Upgrade(name string) (Report, error) {
	if m.idx == nil {
		return Report{}, ErrNoIndex
	}
	old, ok := m.installed[name]
	if !ok {
		return Report{}, fmt.Errorf("%w: %q", ErrNotInstalled, name)
	}
	p, raw, rep, err := m.fetchVerified(name)
	if err != nil {
		return rep, err
	}
	start := time.Now()
	if err := m.runScript(p, "pre-upgrade"); err != nil {
		return rep, err
	}
	rep.Script += time.Since(start)

	// Remove files dropped by the new version.
	start = time.Now()
	newFiles := make(map[string]bool, len(p.Files))
	for _, f := range p.Files {
		newFiles[f.Path] = true
	}
	for _, path := range old.Files {
		if !newFiles[path] {
			if err := m.img.FS.RemoveAll(path); err != nil {
				return rep, fmt.Errorf("pkgmgr: upgrading %s: %w", name, err)
			}
			delete(m.measured, path)
		}
	}
	if err := m.extract(p); err != nil {
		return rep, err
	}
	rep.Extract += time.Since(start)

	start = time.Now()
	if err := m.runScript(p, "post-upgrade"); err != nil {
		return rep, err
	}
	rep.Script += time.Since(start)

	start = time.Now()
	if err := m.measureAfterChange(p); err != nil {
		return rep, err
	}
	rep.Measure += time.Since(start)

	m.recordInstalled(p, raw)
	if err := m.writeDB(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Remove uninstalls a package (no dependency checking — matching apk
// del's permissiveness for leaf experiments).
func (m *Manager) Remove(name string) error {
	inst, ok := m.installed[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotInstalled, name)
	}
	for _, path := range inst.Files {
		if err := m.img.FS.RemoveAll(path); err != nil {
			return fmt.Errorf("pkgmgr: removing %s: %w", name, err)
		}
		delete(m.measured, path)
	}
	delete(m.installed, name)
	return m.writeDB()
}

// installRec installs name after its dependencies. visiting detects
// cycles; upgrade selects the upgrade script path.
func (m *Manager) installRec(name string, visiting map[string]bool, upgrade bool) (Report, error) {
	if visiting[name] {
		return Report{}, fmt.Errorf("%w: via %q", ErrDependencyCycle, name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	entry, err := m.idx.Lookup(name)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	for _, dep := range entry.Depends {
		if m.IsInstalled(dep) {
			continue
		}
		depRep, err := m.installRec(dep, visiting, false)
		rep.add(depRep)
		if err != nil {
			return rep, err
		}
	}

	p, raw, fetchRep, err := m.fetchVerified(name)
	rep.add(fetchRep)
	if err != nil {
		return rep, err
	}

	start := time.Now()
	if err := m.runScript(p, "pre-install"); err != nil {
		return rep, err
	}
	rep.Script += time.Since(start)

	start = time.Now()
	if err := m.extract(p); err != nil {
		return rep, err
	}
	rep.Extract += time.Since(start)

	start = time.Now()
	if err := m.runScript(p, "post-install"); err != nil {
		return rep, err
	}
	rep.Script += time.Since(start)

	start = time.Now()
	if err := m.measureAfterChange(p); err != nil {
		return rep, err
	}
	rep.Measure += time.Since(start)

	m.recordInstalled(p, raw)
	if err := m.writeDB(); err != nil {
		return rep, err
	}
	return rep, nil
}

// fetchVerified downloads a package and performs the index size/hash
// checks plus the signature verification.
func (m *Manager) fetchVerified(name string) (*apk.Package, []byte, Report, error) {
	var rep Report
	entry, err := m.idx.Lookup(name)
	if err != nil {
		return nil, nil, rep, err
	}
	raw, err := m.src.FetchPackage(name)
	if err != nil {
		return nil, nil, rep, fmt.Errorf("pkgmgr: downloading %s: %w", name, err)
	}
	rep.Bytes = int64(len(raw))
	rep.Download = m.net.charge(int64(len(raw)))

	start := time.Now()
	if int64(len(raw)) != entry.Size {
		return nil, nil, rep, fmt.Errorf("%w: %s: index %d, wire %d", ErrSizeMismatch, name, entry.Size, len(raw))
	}
	if sha256.Sum256(raw) != entry.Hash {
		return nil, nil, rep, fmt.Errorf("%w: %s", ErrHashMismatch, name)
	}
	p, _, err := apk.VerifyRaw(raw, m.pkgRing)
	rep.Verify = time.Since(start)
	if err != nil {
		return nil, nil, rep, err
	}
	return p, raw, rep, nil
}

// runScript executes the named hook against the OS image.
func (m *Manager) runScript(p *apk.Package, hook string) error {
	src, ok := p.Scripts[hook]
	if !ok {
		return nil
	}
	parsed, err := script.Parse(src)
	if err != nil {
		return fmt.Errorf("%w: %s %s: %v", ErrScriptFailed, p.Name, hook, err)
	}
	if err := script.Exec(parsed, m.img); err != nil {
		return fmt.Errorf("%w: %s %s: %v", ErrScriptFailed, p.Name, hook, err)
	}
	return nil
}

// extract writes package files (and their xattrs) into the filesystem.
func (m *Manager) extract(p *apk.Package) error {
	for _, f := range p.Files {
		if err := m.img.FS.WriteFile(f.Path, f.Content, f.Mode); err != nil {
			return fmt.Errorf("pkgmgr: extracting %s: %w", f.Path, err)
		}
		for name, value := range f.Xattrs {
			if err := m.img.FS.SetXattr(f.Path, name, value); err != nil {
				return fmt.Errorf("pkgmgr: xattr on %s: %w", f.Path, err)
			}
		}
	}
	return nil
}

// measureAfterChange measures every package file plus any predicted
// configuration file whose content changed since its last measurement —
// modeling IMA's measure-on-next-load of modified files.
func (m *Manager) measureAfterChange(p *apk.Package) error {
	paths := make([]string, 0, len(p.Files)+4)
	for _, f := range p.Files {
		paths = append(paths, f.Path)
	}
	paths = append(paths, osimage.ConfigDigestPaths()...)
	for _, path := range paths {
		content, err := m.img.FS.ReadFile(path)
		if err != nil {
			if strings.HasPrefix(path, "/etc/") {
				continue // config file not present on this image
			}
			return err
		}
		sum := sha256.Sum256(content)
		if m.measured[path] == sum {
			continue
		}
		if _, err := m.img.IMA.MeasureFile(path); err != nil {
			return err
		}
		m.measured[path] = sum
	}
	return nil
}

func (m *Manager) recordInstalled(p *apk.Package, raw []byte) {
	files := make([]string, 0, len(p.Files))
	for _, f := range p.Files {
		files = append(files, f.Path)
	}
	sort.Strings(files)
	m.installed[p.Name] = Installed{
		Name:    p.Name,
		Version: p.Version,
		Hash:    sha256.Sum256(raw),
		Files:   files,
	}
}

// writeDB renders the installed database file.
func (m *Manager) writeDB() error {
	var b strings.Builder
	for _, name := range m.InstalledNames() {
		inst := m.installed[name]
		fmt.Fprintf(&b, "%s %s %x\n", inst.Name, inst.Version, inst.Hash)
	}
	return m.img.FS.WriteFile(DBPath, []byte(b.String()), 0o644)
}

// ForceVersion overwrites the recorded version of an installed package,
// in memory and in the database file. This is the experiment hook of
// §6.1/Figure 11: "we tamper with the OS configuration to pretend the
// installed package is outdated by modifying the package version number
// and its integrity hash stored in the file-based database".
func (m *Manager) ForceVersion(name, version string) error {
	inst, ok := m.installed[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotInstalled, name)
	}
	inst.Version = version
	inst.Hash = sha256.Sum256([]byte("tampered:" + version))
	m.installed[name] = inst
	return m.writeDB()
}
