package pkgmgr

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/ima"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/repo"
)

// fixture wires repository -> mirror -> manager -> OS image.
type fixture struct {
	repo   *repo.Repository
	mirror *mirror.Mirror
	img    *osimage.Image
	mgr    *Manager
	signer *keys.Pair
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	indexSigner := keys.Shared.MustGet("repo-index-signer")
	pkgSigner := keys.Shared.MustGet("alpine-pkg-signer")
	r := repo.New("alpine-main", indexSigner)
	m := mirror.New("https://mirror0/", netsim.Europe)
	img, err := osimage.New(keys.Shared.MustGet("os-ak"), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(img, m,
		keys.NewRing(indexSigner.Public()),
		keys.NewRing(pkgSigner.Public()))
	return &fixture{repo: r, mirror: m, img: img, mgr: mgr, signer: pkgSigner}
}

// publish signs and publishes packages, then syncs the mirror.
func (fx *fixture) publish(t *testing.T, pkgs ...*apk.Package) {
	t.Helper()
	for _, p := range pkgs {
		if err := apk.Sign(p, fx.signer); err != nil {
			t.Fatal(err)
		}
	}
	if err := fx.repo.Publish(pkgs...); err != nil {
		t.Fatal(err)
	}
	fx.mirror.Sync(fx.repo)
}

func signedFile(t *testing.T, signer *keys.Pair, path string, content []byte, mode uint32) apk.File {
	t.Helper()
	sig, err := ima.SignFileDigest(signer, content)
	if err != nil {
		t.Fatal(err)
	}
	return apk.File{
		Path: path, Mode: mode, Content: content,
		Xattrs: map[string][]byte{apk.XattrIMA: sig},
	}
}

func basicPkg(name, version string, deps ...string) *apk.Package {
	return &apk.Package{
		Name: name, Version: version, Depends: deps,
		Files: []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + "-" + version)}},
	}
}

func TestRefreshAndInstall(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("hello", "1.0-r0"))
	if _, err := fx.mgr.Install("hello"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("install before refresh: err = %v", err)
	}
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	rep, err := fx.mgr.Install("hello")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes == 0 {
		t.Fatal("report bytes = 0")
	}
	if !fx.mgr.IsInstalled("hello") {
		t.Fatal("not recorded installed")
	}
	got, err := fx.img.FS.ReadFile("/usr/bin/hello")
	if err != nil || string(got) != "hello-1.0-r0" {
		t.Fatalf("file = %q, %v", got, err)
	}
	// Installed DB rendered.
	db, err := fx.img.FS.ReadFile(DBPath)
	if err != nil || !strings.Contains(string(db), "hello 1.0-r0") {
		t.Fatalf("db = %q, %v", db, err)
	}
	// IMA measured the new file.
	var measured bool
	for _, e := range fx.img.IMA.Log() {
		if e.Path == "/usr/bin/hello" {
			measured = true
		}
	}
	if !measured {
		t.Fatal("installed file not measured")
	}
}

func TestInstallResolvesDependencies(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t,
		basicPkg("musl", "1.1-r0"),
		basicPkg("zlib", "1.2-r0", "musl"),
		basicPkg("app", "0.1-r0", "zlib", "musl"),
	)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("app"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"musl", "zlib", "app"} {
		if !fx.mgr.IsInstalled(name) {
			t.Fatalf("%s not installed", name)
		}
	}
	names := fx.mgr.InstalledNames()
	if len(names) != 3 {
		t.Fatalf("installed = %v", names)
	}
}

func TestInstallDetectsDependencyCycle(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t,
		basicPkg("a", "1", "b"),
		basicPkg("b", "1", "a"),
	)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("a"); !errors.Is(err, ErrDependencyCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestInstallRunsScripts(t *testing.T) {
	fx := newFixture(t)
	p := basicPkg("ntpd", "4.2-r0")
	p.Scripts = map[string]string{
		"pre-install":  "addgroup -S -g 123 ntp\nadduser -S -u 123 -s /sbin/nologin ntp\n",
		"post-install": "mkdir -p /var/lib/ntp\nchown ntp /var/lib/ntp\n",
	}
	fx.publish(t, p)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("ntpd"); err != nil {
		t.Fatal(err)
	}
	passwd, _ := fx.img.FS.ReadFile(osimage.PasswdPath)
	if !strings.Contains(string(passwd), "ntp:x:123:") {
		t.Fatalf("passwd = %q", passwd)
	}
	info, err := fx.img.FS.Stat("/var/lib/ntp")
	if err != nil || info.Owner != "ntp" {
		t.Fatalf("dir = %+v, %v", info, err)
	}
}

func TestInstallMeasuresChangedConfig(t *testing.T) {
	fx := newFixture(t)
	p := basicPkg("svc", "1-r0")
	p.Scripts = map[string]string{"post-install": "adduser -S svc\n"}
	fx.publish(t, p)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("svc"); err != nil {
		t.Fatal(err)
	}
	var passwdMeasured bool
	for _, e := range fx.img.IMA.Log() {
		if e.Path == osimage.PasswdPath {
			passwdMeasured = true
		}
	}
	if !passwdMeasured {
		t.Fatal("/etc/passwd change not measured — monitoring could not see it")
	}
}

func TestInstallExtractsXattrs(t *testing.T) {
	fx := newFixture(t)
	tsrKey := keys.Shared.MustGet("tsr-signing-key")
	p := &apk.Package{
		Name: "lib", Version: "1-r0",
		Files: []apk.File{signedFile(t, tsrKey, "/lib/lib.so", []byte("code"), 0o755)},
	}
	fx.publish(t, p)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("lib"); err != nil {
		t.Fatal(err)
	}
	sig, err := fx.img.FS.GetXattr("/lib/lib.so", apk.XattrIMA)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != keys.SignatureSize {
		t.Fatalf("sig len = %d", len(sig))
	}
	// The IMA log entry carries the signature.
	for _, e := range fx.img.IMA.Log() {
		if e.Path == "/lib/lib.so" && len(e.Sig) == keys.SignatureSize {
			return
		}
	}
	t.Fatal("IMA log entry missing signature")
}

func TestInstallRejectsUntrustedSignature(t *testing.T) {
	fx := newFixture(t)
	evil := keys.Shared.MustGet("evil-signer")
	p := basicPkg("trojan", "1-r0")
	if err := apk.Sign(p, evil); err != nil {
		t.Fatal(err)
	}
	if err := fx.repo.Publish(p); err != nil {
		t.Fatal(err)
	}
	fx.mirror.Sync(fx.repo)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("trojan"); !errors.Is(err, apk.ErrUntrusted) {
		t.Fatalf("err = %v", err)
	}
	if fx.mgr.IsInstalled("trojan") {
		t.Fatal("untrusted package recorded as installed")
	}
}

func TestInstallRejectsCorruptMirror(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("hello", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	fx.mirror.SetBehavior(mirror.Corrupt)
	_, err := fx.mgr.Install("hello")
	if !errors.Is(err, ErrHashMismatch) && !errors.Is(err, apk.ErrFormat) {
		t.Fatalf("err = %v", err)
	}
}

// TestRefreshRejectsOlderSequence drives the rollback check directly.
func TestRefreshRejectsOlderSequence(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("hello", "1.0-r0")) // seq 1
	// Capture a stale source before the repo advances.
	staleMirror := mirror.New("https://stale/", netsim.Europe)
	staleMirror.Sync(fx.repo)
	staleMirror.SetBehavior(mirror.Freeze)

	fx.publish(t, basicPkg("hello", "1.1-r0")) // seq 2
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Switch the manager to the stale mirror: replay attack.
	fx.mgr.src = staleMirror
	if err := fx.mgr.Refresh(); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpgradeReplacesFilesAndRunsHooks(t *testing.T) {
	fx := newFixture(t)
	v1 := &apk.Package{
		Name: "app", Version: "1.0-r0",
		Files: []apk.File{
			{Path: "/usr/bin/app", Mode: 0o755, Content: []byte("v1")},
			{Path: "/usr/share/app/legacy.dat", Mode: 0o644, Content: []byte("old")},
		},
	}
	fx.publish(t, v1)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("app"); err != nil {
		t.Fatal(err)
	}

	v2 := &apk.Package{
		Name: "app", Version: "2.0-r0",
		Scripts: map[string]string{
			"pre-upgrade":  "mkdir -p /var/backup\n",
			"post-upgrade": "touch /var/backup/done\n",
		},
		Files: []apk.File{{Path: "/usr/bin/app", Mode: 0o755, Content: []byte("v2")}},
	}
	fx.publish(t, v2)
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Upgrade("app"); err != nil {
		t.Fatal(err)
	}
	got, _ := fx.img.FS.ReadFile("/usr/bin/app")
	if string(got) != "v2" {
		t.Fatalf("binary = %q", got)
	}
	if fx.img.FS.Exists("/usr/share/app/legacy.dat") {
		t.Fatal("dropped file survived upgrade")
	}
	if !fx.img.FS.Exists("/var/backup/done") {
		t.Fatal("post-upgrade hook not run")
	}
	if v, _ := fx.mgr.InstalledVersion("app"); v != "2.0-r0" {
		t.Fatalf("version = %s", v)
	}
}

func TestUpgradeNotInstalled(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("app", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Upgrade("app"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("app", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("app"); err != nil {
		t.Fatal(err)
	}
	if err := fx.mgr.Remove("app"); err != nil {
		t.Fatal(err)
	}
	if fx.mgr.IsInstalled("app") || fx.img.FS.Exists("/usr/bin/app") {
		t.Fatal("remove left traces")
	}
	if err := fx.mgr.Remove("app"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoubleInstall(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("app", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("app"); !errors.Is(err, ErrAlreadyInstalled) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetModelChargesVirtualTime(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("app", "1.0-r0"))
	clock := netsim.NewVirtualClock(time.Time{})
	fx.mgr.SetNetModel(&NetModel{
		Local:  netsim.Europe,
		Remote: netsim.Europe,
		Link:   netsim.DataCenterLinkModel(nil),
		Clock:  clock,
	})
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	rep, err := fx.mgr.Install("app")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Download <= 0 {
		t.Fatalf("download time = %v", rep.Download)
	}
	if clock.Now().Equal(time.Time{}) {
		t.Fatal("virtual clock did not advance")
	}
	if rep.Total() < rep.Download {
		t.Fatal("total < download")
	}
}

func TestForceVersion(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("app", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("app"); err != nil {
		t.Fatal(err)
	}
	if err := fx.mgr.ForceVersion("app", "0.9-r0"); err != nil {
		t.Fatal(err)
	}
	if v, _ := fx.mgr.InstalledVersion("app"); v != "0.9-r0" {
		t.Fatalf("version = %s", v)
	}
	db, _ := fx.img.FS.ReadFile(DBPath)
	if !strings.Contains(string(db), "app 0.9-r0") {
		t.Fatalf("db = %q", db)
	}
	if err := fx.mgr.ForceVersion("ghost", "1"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err = %v", err)
	}
}

func TestInstallMissingPackage(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("app", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.mgr.Install("ghost"); err == nil {
		t.Fatal("want error")
	}
}

// paddingSource wraps a Source and appends garbage to package bodies —
// the "endless data" attack the index size field defends against.
type paddingSource struct {
	Source
	extra int
}

func (p paddingSource) FetchPackage(name string) ([]byte, error) {
	raw, err := p.Source.FetchPackage(name)
	if err != nil {
		return nil, err
	}
	return append(raw, make([]byte, p.extra)...), nil
}

func TestInstallRejectsEndlessData(t *testing.T) {
	fx := newFixture(t)
	fx.publish(t, basicPkg("hello", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	fx.mgr.src = paddingSource{Source: fx.mirror, extra: 1 << 20}
	if _, err := fx.mgr.Install("hello"); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

// substitutionSource serves a different (validly signed!) package body
// than the index entry promises — caught by the index hash.
type substitutionSource struct {
	Source
	raw []byte
}

func (s substitutionSource) FetchPackage(name string) ([]byte, error) {
	return s.raw, nil
}

func TestInstallRejectsSubstitutedPackage(t *testing.T) {
	fx := newFixture(t)
	evil := basicPkg("hello", "1.0-r0")
	evil.Files[0].Content = []byte("trojan payload")
	if err := apk.Sign(evil, fx.signer); err != nil {
		t.Fatal(err)
	}
	evilRaw, err := apk.Encode(evil)
	if err != nil {
		t.Fatal(err)
	}
	fx.publish(t, basicPkg("hello", "1.0-r0"))
	if err := fx.mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Same name, same version, same signer — but not the indexed bytes.
	fx.mgr.src = substitutionSource{Source: fx.mirror, raw: evilRaw}
	_, err = fx.mgr.Install("hello")
	if !errors.Is(err, ErrHashMismatch) && !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("err = %v", err)
	}
}
