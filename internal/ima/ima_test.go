package ima

import (
	"crypto/sha256"
	"errors"
	"testing"

	"tsr/internal/keys"
	"tsr/internal/tpm"
	"tsr/internal/vfs"
)

type fixture struct {
	fs  *vfs.FS
	tpm *tpm.TPM
	ima *IMA
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	fs := vfs.New()
	tp := tpm.New(keys.Shared.MustGet("ima-test-ak"))
	return &fixture{fs: fs, tpm: tp, ima: New(fs, tp)}
}

func TestMeasureFileAppendsLogAndExtendsPCR(t *testing.T) {
	fx := newFixture(t)
	if err := fx.fs.WriteFile("/usr/bin/x", []byte("binary"), 0o755); err != nil {
		t.Fatal(err)
	}
	before, _ := fx.tpm.PCR(tpm.PCRIMA)
	e, err := fx.ima.MeasureFile("/usr/bin/x")
	if err != nil {
		t.Fatal(err)
	}
	if e.Path != "/usr/bin/x" || e.FileHash != sha256.Sum256([]byte("binary")) {
		t.Fatalf("entry = %+v", e)
	}
	after, _ := fx.tpm.PCR(tpm.PCRIMA)
	if before == after {
		t.Fatal("PCR not extended")
	}
	if got := fx.ima.Log(); len(got) != 1 || got[0].Path != "/usr/bin/x" {
		t.Fatalf("log = %+v", got)
	}
}

func TestMeasureFilePicksUpXattrSignature(t *testing.T) {
	fx := newFixture(t)
	signer := keys.Shared.MustGet("distro-signer")
	content := []byte("lib content")
	sig, err := SignFileDigest(signer, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.WriteFile("/lib/libz.so", content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.SetXattr("/lib/libz.so", XattrIMA, sig); err != nil {
		t.Fatal(err)
	}
	e, err := fx.ima.MeasureFile("/lib/libz.so")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sig) != keys.SignatureSize {
		t.Fatalf("sig len = %d", len(e.Sig))
	}
	// The signature must verify against the signer via the digest.
	if _, err := keys.NewRing(signer.Public()).VerifyAnyDigest(e.FileHash, e.Sig); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureMissingFile(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.ima.MeasureFile("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppraisalRejectsUnsigned(t *testing.T) {
	fx := newFixture(t)
	signer := keys.Shared.MustGet("distro-signer")
	fx.ima.EnableAppraisal(keys.NewRing(signer.Public()))
	if !fx.ima.AppraisalEnabled() {
		t.Fatal("appraisal not enabled")
	}
	if err := fx.fs.WriteFile("/usr/bin/unsigned", []byte("x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/usr/bin/unsigned"); !errors.Is(err, ErrAppraisal) {
		t.Fatalf("err = %v", err)
	}
	if len(fx.ima.Log()) != 0 {
		t.Fatal("denied file was logged")
	}
}

func TestAppraisalRejectsWrongSigner(t *testing.T) {
	fx := newFixture(t)
	trusted := keys.Shared.MustGet("distro-signer")
	rogue := keys.Shared.MustGet("rogue-signer")
	fx.ima.EnableAppraisal(keys.NewRing(trusted.Public()))
	content := []byte("evil")
	sig, err := SignFileDigest(rogue, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.WriteFile("/usr/bin/evil", content, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.SetXattr("/usr/bin/evil", XattrIMA, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/usr/bin/evil"); !errors.Is(err, ErrAppraisal) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppraisalRejectsModifiedContent(t *testing.T) {
	// Signature was issued for the original content; an adversary
	// modifying the file breaks appraisal.
	fx := newFixture(t)
	signer := keys.Shared.MustGet("distro-signer")
	fx.ima.EnableAppraisal(keys.NewRing(signer.Public()))
	orig := []byte("original")
	sig, err := SignFileDigest(signer, orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.WriteFile("/usr/bin/app", []byte("modified"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.SetXattr("/usr/bin/app", XattrIMA, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/usr/bin/app"); !errors.Is(err, ErrAppraisal) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppraisalAcceptsValid(t *testing.T) {
	fx := newFixture(t)
	signer := keys.Shared.MustGet("distro-signer")
	fx.ima.EnableAppraisal(keys.NewRing(signer.Public()))
	content := []byte("good")
	sig, err := SignFileDigest(signer, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.WriteFile("/usr/bin/good", content, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.SetXattr("/usr/bin/good", XattrIMA, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/usr/bin/good"); err != nil {
		t.Fatal(err)
	}
}

func TestReplayPCRMatchesTPM(t *testing.T) {
	fx := newFixture(t)
	for _, f := range []struct{ p, c string }{
		{"/bin/sh", "shell"},
		{"/etc/passwd", "root:x:0:0\n"},
		{"/lib/ld.so", "loader"},
	} {
		if err := fx.fs.WriteFile(f.p, []byte(f.c), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fx.ima.MeasureFile(f.p); err != nil {
			t.Fatal(err)
		}
	}
	replayed := ReplayPCR(fx.ima.Log())
	actual, _ := fx.tpm.PCR(tpm.PCRIMA)
	if replayed != actual {
		t.Fatal("log replay does not match TPM PCR")
	}
}

func TestReplayPCRDetectsLogTamper(t *testing.T) {
	fx := newFixture(t)
	if err := fx.fs.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/f"); err != nil {
		t.Fatal(err)
	}
	log := fx.ima.Log()
	log[0].FileHash = sha256.Sum256([]byte("forged"))
	actual, _ := fx.tpm.PCR(tpm.PCRIMA)
	if ReplayPCR(log) == actual {
		t.Fatal("tampered log still replays to the same PCR")
	}
}

func TestMeasureTree(t *testing.T) {
	fx := newFixture(t)
	for _, p := range []string{"/app/bin/x", "/app/etc/conf", "/other/y"} {
		if err := fx.fs.WriteFile(p, []byte(p), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := fx.ima.MeasureTree("/app"); err != nil {
		t.Fatal(err)
	}
	log := fx.ima.Log()
	if len(log) != 2 {
		t.Fatalf("log = %+v", log)
	}
	// Deterministic path order.
	if log[0].Path != "/app/bin/x" || log[1].Path != "/app/etc/conf" {
		t.Fatalf("order = %v, %v", log[0].Path, log[1].Path)
	}
}

func TestTemplateHashBindsPathAndSig(t *testing.T) {
	base := Entry{PCR: 10, Path: "/a", FileHash: sha256.Sum256([]byte("x"))}
	diffPath := base
	diffPath.Path = "/b"
	if base.TemplateHash() == diffPath.TemplateHash() {
		t.Fatal("template hash ignores path")
	}
	diffSig := base
	diffSig.Sig = []byte{1}
	if base.TemplateHash() == diffSig.TemplateHash() {
		t.Fatal("template hash ignores signature")
	}
}

func TestMeasureWithoutTPM(t *testing.T) {
	fs := vfs.New()
	m := New(fs, nil)
	if err := fs.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeasureFile("/f"); !errors.Is(err, ErrNoTPM) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppraisalTogglesMidStream(t *testing.T) {
	// Files measured before enforcement stay in the log; enforcement
	// only gates subsequent measurements — matching IMA's behavior when
	// the appraise policy is switched to enforce.
	fx := newFixture(t)
	if err := fx.fs.WriteFile("/early", []byte("pre-enforcement"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/early"); err != nil {
		t.Fatal(err)
	}
	signer := keys.Shared.MustGet("distro-signer")
	fx.ima.EnableAppraisal(keys.NewRing(signer.Public()))
	if err := fx.fs.WriteFile("/late", []byte("post"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/late"); err == nil {
		t.Fatal("unsigned post-enforcement file accepted")
	}
	if got := len(fx.ima.Log()); got != 1 {
		t.Fatalf("log = %d entries", got)
	}
}

func TestMeasureFileTwiceExtendsTwice(t *testing.T) {
	// IMA measures on each (re)load of changed content; our model
	// appends an entry per MeasureFile call, and replay still matches.
	fx := newFixture(t)
	if err := fx.fs.WriteFile("/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fx.fs.WriteFile("/f", []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ima.MeasureFile("/f"); err != nil {
		t.Fatal(err)
	}
	log := fx.ima.Log()
	if len(log) != 2 || log[0].FileHash == log[1].FileHash {
		t.Fatalf("log = %+v", log)
	}
	pcr, _ := fx.tpm.PCR(tpm.PCRIMA)
	if ReplayPCR(log) != pcr {
		t.Fatal("replay mismatch after re-measurement")
	}
}
