// Package ima simulates the Linux kernel integrity measurement
// architecture (IMA) over the virtual filesystem: every file is measured
// (hashed) before it is "loaded", the measurement is appended to the IMA
// log together with the file's security.ima signature (read from its
// extended attributes, §5.3), and the log entry's template hash is
// extended into TPM PCR 10.
//
// With appraisal enabled (IMA-appraisal, §3.2), the kernel additionally
// refuses to load files whose signature does not verify against the
// trusted keyring — the local enforcement counterpart of remote
// attestation.
package ima

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"tsr/internal/keys"
	"tsr/internal/tpm"
	"tsr/internal/vfs"
)

// XattrIMA is the extended attribute carrying a file's signature.
const XattrIMA = "security.ima"

// Error sentinels.
var (
	ErrAppraisal = errors.New("ima: appraisal denied file")
	ErrNoTPM     = errors.New("ima: no TPM attached")
)

// Entry is one IMA log record (ima-sig template: PCR, template hash,
// file hash, path, signature).
type Entry struct {
	// PCR is the PCR the entry was extended into (always 10 here).
	PCR int
	// Path is the measured file path.
	Path string
	// FileHash is SHA-256 of the file content.
	FileHash [32]byte
	// Sig is the file's security.ima signature (nil if the file carries
	// none — e.g. files installed before signature support).
	Sig []byte
}

// TemplateHash is the digest extended into the PCR for this entry.
func (e Entry) TemplateHash() [32]byte {
	h := sha256.New()
	h.Write(e.FileHash[:])
	h.Write([]byte(e.Path))
	h.Write(e.Sig)
	return [32]byte(h.Sum(nil))
}

// IMA is the measurement engine for one OS instance.
type IMA struct {
	fs  *vfs.FS
	tpm *tpm.TPM

	mu        sync.Mutex
	log       []Entry
	appraisal *keys.Ring // nil: measurement-only (no enforcement)
}

// New creates an IMA engine measuring files from fs into t's PCR 10.
func New(fs *vfs.FS, t *tpm.TPM) *IMA {
	return &IMA{fs: fs, tpm: t}
}

// EnableAppraisal turns on IMA-appraisal against the given trusted
// keyring: subsequently measured files must carry a valid signature.
func (m *IMA) EnableAppraisal(ring *keys.Ring) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appraisal = ring
}

// AppraisalEnabled reports whether appraisal is enforced.
func (m *IMA) AppraisalEnabled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appraisal != nil
}

// MeasureFile measures the file at path: hashes its content, reads its
// security.ima xattr, appends a log entry, and extends PCR 10. With
// appraisal enabled it returns ErrAppraisal (before logging) if the
// signature is missing or does not verify.
func (m *IMA) MeasureFile(path string) (Entry, error) {
	content, err := m.fs.ReadFile(path)
	if err != nil {
		return Entry{}, fmt.Errorf("ima: measuring %q: %w", path, err)
	}
	e := Entry{PCR: tpm.PCRIMA, Path: path, FileHash: sha256.Sum256(content)}
	if sig, err := m.fs.GetXattr(path, XattrIMA); err == nil {
		e.Sig = sig
	}
	m.mu.Lock()
	ring := m.appraisal
	m.mu.Unlock()
	if ring != nil {
		if e.Sig == nil {
			return Entry{}, fmt.Errorf("%w: %q has no %s signature", ErrAppraisal, path, XattrIMA)
		}
		if _, err := ring.VerifyAnyDigest(e.FileHash, e.Sig); err != nil {
			return Entry{}, fmt.Errorf("%w: %q: %v", ErrAppraisal, path, err)
		}
	}
	if m.tpm == nil {
		return Entry{}, ErrNoTPM
	}
	if err := m.tpm.Extend(tpm.PCRIMA, e.TemplateHash()); err != nil {
		return Entry{}, err
	}
	m.mu.Lock()
	m.log = append(m.log, e)
	m.mu.Unlock()
	return e, nil
}

// MeasureTree measures every regular file under root in path order,
// as boot-time IMA does for an initramfs, or as the package manager
// triggers for freshly installed files.
func (m *IMA) MeasureTree(root string) error {
	var paths []string
	err := m.fs.Walk(root, func(info vfs.FileInfo) error {
		if info.Type == vfs.Regular {
			paths = append(paths, info.Path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, p := range paths {
		if _, err := m.MeasureFile(p); err != nil {
			return err
		}
	}
	return nil
}

// Log returns a copy of the measurement log.
func (m *IMA) Log() []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, len(m.log))
	copy(out, m.log)
	return out
}

// ReplayPCR computes the PCR-10 value implied by a measurement log.
// Verifiers compare it against the quoted PCR to detect log tampering.
func ReplayPCR(log []Entry) [32]byte {
	var pcr [32]byte
	for _, e := range log {
		th := e.TemplateHash()
		h := sha256.New()
		h.Write(pcr[:])
		h.Write(th[:])
		copy(pcr[:], h.Sum(nil))
	}
	return pcr
}

// SignFileDigest issues a security.ima signature for a file content
// digest with the given key — the operation the OS distribution (or TSR
// during sanitization) performs at package build time.
func SignFileDigest(pair *keys.Pair, content []byte) ([]byte, error) {
	digest := sha256.Sum256(content)
	return pair.SignDigest(digest)
}
