package experiments

import "testing"

// TestEdgeFanoutAbsorption: with warm replicas on every continent, the
// edge tier must absorb ≥90% of package requests and beat the
// single-replica configuration on aggregate throughput.
func TestEdgeFanoutAbsorption(t *testing.T) {
	one, err := EdgeFanoutRun(testCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := EdgeFanoutRun(testCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*EdgeFanoutResult{one, four} {
		if res.Absorption < 0.9 {
			t.Fatalf("replicas=%d: absorption = %.2f, want >= 0.90 (origin pulls %d of %d)",
				res.Replicas, res.Absorption, res.OriginPackagePulls, res.PackageRequests)
		}
		if res.Throughput <= 0 {
			t.Fatalf("replicas=%d: throughput = %v", res.Replicas, res.Throughput)
		}
	}
	// More replicas → nearer edges → higher aggregate modeled
	// throughput. Both runs are deterministic (jitter-free link, virtual
	// clocks), so a strict comparison is safe.
	if four.Throughput <= one.Throughput {
		t.Fatalf("throughput did not scale: 1 replica %.1f pkg/s, 4 replicas %.1f pkg/s",
			one.Throughput, four.Throughput)
	}
}

// TestEdgeFanoutByzantine: one frozen and one tampering replica out of
// four. Clients must converge on the origin's current sequence, reject
// the stale index and the tampered bytes, and accept zero unverified
// bytes.
func TestEdgeFanoutByzantine(t *testing.T) {
	res, err := EdgeFanoutByzantine(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSequence != res.CurrentSequence {
		t.Fatalf("clients converged on sequence %d, origin is at %d", res.FinalSequence, res.CurrentSequence)
	}
	if res.RejectedStale == 0 {
		t.Fatal("frozen replica's stale index was never rejected")
	}
	if res.RejectedBytes == 0 {
		t.Fatal("tampering replica's bytes were never rejected")
	}
	if res.Failovers == 0 {
		t.Fatal("no failovers recorded despite byzantine replicas")
	}
	if res.UnverifiedBytes != 0 {
		t.Fatalf("unverified bytes accepted: %d", res.UnverifiedBytes)
	}
}
