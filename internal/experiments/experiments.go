// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) on the synthetic workload. Each experiment
// returns a Table whose rows mirror the paper's presentation, so the
// output of cmd/experiments can be compared side by side with the
// published numbers (see EXPERIMENTS.md for the comparison).
//
// Timing methodology: CPU-bound work (sanitization, crypto, archive
// processing) is measured for real; network transfers and SGX overhead
// are modeled virtual time (see DESIGN.md, "Substitutions").
package experiments

import (
	"fmt"
	"strings"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
	"tsr/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale scales the package population (1.0 = full 11,581 packages).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// MaxPackages caps per-package experiment loops (0 = no cap); used
	// to keep the end-to-end install experiment tractable by default.
	MaxPackages int
	// QuorumTrials is the number of reads per Figure 13 cell
	// (default 20, matching the paper's methodology).
	QuorumTrials int
	// EPC overrides the SGX cost model (zero value: paper defaults).
	EPC enclave.CostModel
	// BenchDir, when set, is where experiments that emit machine-readable
	// BENCH_*.json results (fleet-soak) write them. Empty disables
	// emission.
	BenchDir string
	// Tenants is the tenant repository count for the multi-tenant
	// scale-out experiment (0 = its default of 100).
	Tenants int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.03
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EPC == (enclave.CostModel{}) {
		c.EPC = enclave.DefaultCostModel()
	}
	if c.QuorumTrials <= 0 {
		c.QuorumTrials = 20
	}
	return c
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// World is the full simulated deployment used by the latency and
// end-to-end experiments: original repository, mirrors, and a TSR
// service with one deployed tenant repository.
type World struct {
	Cfg       Config
	Gen       *workload.Generator
	Repo      *repo.Repository
	Mirrors   []*mirror.Mirror
	Service   *tsr.Service
	Tenant    *tsr.Repo
	Store     *tsr.MemStore // nil when WorldDeps injected a non-Mem store
	Backing   tsr.Store
	Clock     *netsim.VirtualClock
	Distro    *keys.Pair
	PolicyRaw []byte
}

// WorldDeps override the host-side pieces of a world — the store, the
// TPM, the SGX platform — so restart experiments can carry them across
// simulated process lifetimes (same disk, same TPM counters, same CPU
// sealing root). Zero value: fresh in-memory everything.
type WorldDeps struct {
	Store       tsr.Store
	TPM         *tpm.TPM
	Platform    *enclave.Platform
	AutoPersist bool
	// SkipRefresh leaves the deployed tenant unrefreshed (restart
	// experiments refresh under their own timers).
	SkipRefresh bool
	// SkipDeploy builds the world without deploying a tenant at all —
	// the restart path deploys via Service.RestoreAll instead.
	SkipDeploy bool
	// RefreshWorkers / SchedMaxActive bound the service's global
	// refresh scheduler (tsr.Config fields of the same name). Zero
	// leaves the scheduler unbounded — the historical behaviour.
	RefreshWorkers int
	SchedMaxActive int
}

// mirrorLayout describes the mirror fleet to build.
type mirrorSpec struct {
	host      string
	continent netsim.Continent
	location  string
}

// NewWorld builds the deployment: generates the scaled population,
// publishes it to the original repository, syncs the mirrors, deploys a
// policy, and runs the initial Refresh.
func NewWorld(cfg Config, mirrors []mirrorSpec, dataCenterLink bool) (*World, error) {
	return NewWorldWith(cfg, mirrors, dataCenterLink, WorldDeps{})
}

// NewWorldWith is NewWorld with host-side dependencies injected.
func NewWorldWith(cfg Config, mirrors []mirrorSpec, dataCenterLink bool, deps WorldDeps) (*World, error) {
	cfg = cfg.withDefaults()
	if len(mirrors) == 0 {
		mirrors = []mirrorSpec{
			{"https://mirror0/", netsim.Europe, "Europe"},
			{"https://mirror1/", netsim.Europe, "Europe"},
			{"https://mirror2/", netsim.Europe, "Europe"},
		}
	}
	distro, err := keys.Shared.Get("exp-distro-key")
	if err != nil {
		return nil, err
	}
	if deps.Store == nil {
		deps.Store = tsr.NewMemStore()
	}
	w := &World{
		Cfg:     cfg,
		Gen:     workload.New(workload.Config{Seed: cfg.Seed, Scale: cfg.Scale}),
		Repo:    repo.New("alpine", distro),
		Backing: deps.Store,
		Clock:   netsim.NewVirtualClock(time.Time{}),
		Distro:  distro,
	}
	if ms, ok := deps.Store.(*tsr.MemStore); ok {
		w.Store = ms
	}

	// Publish the population.
	var pkgs []*apk.Package
	for _, spec := range w.Gen.Specs() {
		p, err := w.Gen.Build(spec)
		if err != nil {
			return nil, err
		}
		if err := apk.Sign(p, distro); err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		// Publish in batches to bound memory.
		if len(pkgs) >= 64 {
			if err := w.Repo.Publish(pkgs...); err != nil {
				return nil, err
			}
			pkgs = pkgs[:0]
		}
	}
	if len(pkgs) > 0 {
		if err := w.Repo.Publish(pkgs...); err != nil {
			return nil, err
		}
	}

	byHost := make(map[string]*mirror.Mirror, len(mirrors))
	for _, ms := range mirrors {
		m := mirror.New(ms.host, ms.continent)
		m.Sync(w.Repo)
		w.Mirrors = append(w.Mirrors, m)
		byHost[ms.host] = m
	}

	// Policy.
	pem, err := distro.Public().MarshalPEM()
	if err != nil {
		return nil, err
	}
	pol := policy.Policy{
		SignerKeys: []string{strings.TrimRight(string(pem), "\n")},
		InitConfigFiles: []policy.ConfigFile{
			{Path: osimage.PasswdPath, Content: "root:x:0:0:root:/root:/bin/ash"},
			{Path: osimage.GroupPath, Content: "root:x:0:"},
		},
	}
	for _, ms := range mirrors {
		pol.Mirrors = append(pol.Mirrors, policy.Mirror{Hostname: ms.host, Location: ms.location})
	}
	w.PolicyRaw = pol.Marshal()

	platform := deps.Platform
	if platform == nil {
		platform, err = enclave.NewPlatform(keys.Shared.MustGet("exp-quoting"))
		if err != nil {
			return nil, err
		}
	}
	hostTPM := deps.TPM
	if hostTPM == nil {
		hostTPM = newHostTPM()
	}
	link := netsim.DefaultLinkModel(netsim.NewRNG(cfg.Seed + 1))
	if dataCenterLink {
		link = netsim.DataCenterLinkModel(netsim.NewRNG(cfg.Seed + 1))
	}
	svc, err := tsr.New(tsr.Config{
		Platform:       platform,
		TPM:            hostTPM,
		Clock:          w.Clock,
		Link:           link,
		Local:          netsim.Europe,
		Store:          w.Backing,
		AutoPersist:    deps.AutoPersist,
		RefreshWorkers: deps.RefreshWorkers,
		SchedMaxActive: deps.SchedMaxActive,
		EPC:            cfg.EPC,
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := byHost[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("experiments: unknown mirror %q", m.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		return nil, err
	}
	w.Service = svc
	if deps.SkipDeploy {
		return w, nil
	}
	id, _, _, err := svc.DeployPolicy(w.PolicyRaw)
	if err != nil {
		return nil, err
	}
	w.Tenant, err = svc.Repo(id)
	if err != nil {
		return nil, err
	}
	if deps.SkipRefresh {
		return w, nil
	}
	if _, err := w.Tenant.Refresh(); err != nil {
		return nil, err
	}
	return w, nil
}

func newHostTPM() *tpm.TPM {
	return tpm.New(keys.Shared.MustGet("exp-host-tpm"))
}

// fmtDuration renders a duration in the paper's preferred unit (ms with
// sub-ms precision).
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}

// fmtMinutes renders minutes like Table 3.
func fmtMinutes(d time.Duration) string {
	return fmt.Sprintf("%.1f min", d.Minutes())
}

func fmtBytesMB(n int64) string {
	return fmt.Sprintf("%.0f MB", float64(n)/1e6)
}
