package experiments

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"tsr/internal/apk"
	"tsr/internal/edge"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/store"
	"tsr/internal/tsr"
)

// The wire-sync experiment measures the wire-efficiency work end to
// end over real HTTP: negotiated gzip on the signed index (the
// canonical text stays what the signature and ETag cover), and
// chunk-aware differential package sync (a one-file version bump
// moves only the changed chunks plus the manifest, not the package).
// The acceptance floors mirror the PR's: gzip index <= 0.5x the
// identity bytes with byte-identical signature headers, and >= 5x
// byte reduction on the version-bump sync versus a full refetch.

// wireProbePkg builds a chunking probe package: nFiles of
// incompressible (seeded-random) content, with only the last-sorted
// file's content tied to the version — so a version bump changes a
// suffix of the deterministic apk stream and chunking can reuse the
// shared prefix. The wire-sync experiment and the fleet soak both
// publish these.
func wireProbePkg(name, version string, nFiles, fileSize int) *apk.Package {
	p := &apk.Package{Name: name, Version: version}
	for i := 0; i < nFiles; i++ {
		seed := int64(i + 1)
		path := fmt.Sprintf("/usr/share/%s/%03d.bin", name, i)
		if i == nFiles-1 {
			path = "/usr/share/" + name + "/zz-last.bin"
			for _, c := range version {
				seed = seed*131 + int64(c)
			}
		}
		content := make([]byte, fileSize)
		rand.New(rand.NewSource(seed)).Read(content)
		p.Files = append(p.Files, apk.File{Path: path, Mode: 0o644, Content: content})
	}
	return p
}

// WireSyncResult is the measured outcome; it is also the
// BENCH_wire_sync.json document.
type WireSyncResult struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`

	// Index compression.
	IndexIdentityBytes    int64   `json:"index_identity_bytes"`
	IndexGzipBytes        int64   `json:"index_gzip_bytes"`
	IndexGzipRatio        float64 `json:"index_gzip_ratio"`
	IndexHeadersIdentical bool    `json:"index_headers_identical"`

	// Differential package sync (edge replica over tsr.Client over
	// HTTP; wire bytes counted at the client).
	PackageSizeBytes int64   `json:"package_size_bytes"`
	ColdWireBytes    int64   `json:"cold_wire_bytes"`
	BumpDiffBytes    int64   `json:"bump_diff_bytes"`
	FullRefetchBytes int64   `json:"full_refetch_bytes"`
	DiffReductionX   float64 `json:"diff_reduction_x"`
	DiffBytesReused  int64   `json:"diff_bytes_reused"`
	DiffBytesFetched int64   `json:"diff_bytes_fetched"`
	EdgeDiffPulls    int64   `json:"edge_diff_pulls"`
}

// WriteBench writes the BENCH_wire_sync.json document and returns its
// path.
func (r *WireSyncResult) WriteBench(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_wire_sync.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WireSyncRun performs the measurement and returns the raw result.
func WireSyncRun(cfg Config) (*WireSyncResult, error) {
	cfg = cfg.withDefaults()
	w, err := NewWorld(cfg, nil, true)
	if err != nil {
		return nil, err
	}
	res := &WireSyncResult{Scale: cfg.Scale, Seed: cfg.Seed}

	publish := func(version string) error {
		p := wireProbePkg("wire-sync-probe", version, 32, 32<<10)
		if err := apk.Sign(p, w.Distro); err != nil {
			return err
		}
		if err := w.Repo.Publish(p); err != nil {
			return err
		}
		for _, m := range w.Mirrors {
			m.Sync(w.Repo)
		}
		_, err := w.Tenant.Refresh()
		return err
	}
	if err := publish("1.0-r0"); err != nil {
		return nil, err
	}

	srv := httptest.NewServer(tsr.Handler(w.Service))
	defer srv.Close()

	// --- index compression -------------------------------------------
	// DisableCompression so the raw wire form (not the transport's
	// transparently decoded one) is what gets measured.
	rawClient := &http.Client{
		Timeout:   60 * time.Second,
		Transport: &http.Transport{DisableCompression: true},
	}
	fetchIndex := func(encoding string) ([]byte, http.Header, error) {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet,
			srv.URL+"/repos/"+w.Tenant.ID+"/index", nil)
		if err != nil {
			return nil, nil, err
		}
		if encoding != "" {
			req.Header.Set("Accept-Encoding", encoding)
		}
		resp, err := rawClient.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, nil, fmt.Errorf("wire-sync: index fetch (%q): HTTP %d", encoding, resp.StatusCode)
		}
		return body, resp.Header, nil
	}
	identity, idHdr, err := fetchIndex("")
	if err != nil {
		return nil, err
	}
	zipped, gzHdr, err := fetchIndex("gzip")
	if err != nil {
		return nil, err
	}
	if gzHdr.Get("Content-Encoding") != "gzip" {
		return nil, fmt.Errorf("wire-sync: index not served gzip-encoded")
	}
	zr, err := gzip.NewReader(bytes.NewReader(zipped))
	if err != nil {
		return nil, err
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(unzipped, identity) {
		return nil, fmt.Errorf("wire-sync: gzip index does not decompress to the canonical signed text")
	}
	res.IndexIdentityBytes = int64(len(identity))
	res.IndexGzipBytes = int64(len(zipped))
	res.IndexGzipRatio = float64(len(zipped)) / float64(len(identity))
	res.IndexHeadersIdentical = idHdr.Get("ETag") == gzHdr.Get("ETag") &&
		idHdr.Get("X-Tsr-Key-Name") == gzHdr.Get("X-Tsr-Key-Name") &&
		idHdr.Get("X-Tsr-Signature") == gzHdr.Get("X-Tsr-Signature")
	if !res.IndexHeadersIdentical {
		return res, fmt.Errorf("wire-sync: gzip transfer changed the signature headers")
	}

	// --- differential package sync -----------------------------------
	client := &tsr.Client{
		BaseURL:  srv.URL,
		RepoID:   w.Tenant.ID,
		PkgCache: store.NewMem(),
	}
	rep := &edge.Replica{
		RepoID:    w.Tenant.ID,
		Origin:    client,
		TrustRing: keys.NewRing(w.Tenant.PublicKey()),
	}
	if err := rep.Sync(); err != nil {
		return nil, err
	}
	if _, err := rep.FetchPackage("wire-sync-probe"); err != nil {
		return nil, err
	}
	cold := client.WireStats()
	res.ColdWireBytes = cold.PackageBytes + cold.ManifestBytes

	if err := publish("2.0-r0"); err != nil {
		return nil, err
	}
	if err := rep.Sync(); err != nil {
		return nil, err
	}
	signed, _, err := rep.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return nil, err
	}
	entry, err := ix.Lookup("wire-sync-probe")
	if err != nil {
		return nil, err
	}
	before := client.WireStats()
	if _, err := rep.FetchPackage("wire-sync-probe"); err != nil {
		return nil, err
	}
	after := client.WireStats()

	res.PackageSizeBytes = entry.Size
	res.FullRefetchBytes = entry.Size
	res.BumpDiffBytes = (after.PackageBytes - before.PackageBytes) +
		(after.ManifestBytes - before.ManifestBytes)
	repStats := rep.Stats()
	res.DiffBytesReused = repStats.DiffBytesReused
	res.DiffBytesFetched = repStats.DiffBytesFetched
	res.EdgeDiffPulls = repStats.DiffPulls
	if res.BumpDiffBytes > 0 {
		res.DiffReductionX = float64(res.FullRefetchBytes) / float64(res.BumpDiffBytes)
	}
	return res, nil
}

// wireSyncCheck applies the acceptance floors shared by the
// experiment and BenchmarkWireSync.
func wireSyncCheck(res *WireSyncResult) error {
	if !res.IndexHeadersIdentical {
		return fmt.Errorf("wire-sync: signature headers differ between identity and gzip")
	}
	if res.IndexGzipRatio > 0.5 {
		return fmt.Errorf("wire-sync: gzip index is %.2fx the identity bytes, want <= 0.5x", res.IndexGzipRatio)
	}
	if res.EdgeDiffPulls != 1 {
		return fmt.Errorf("wire-sync: version bump performed %d differential pulls, want exactly 1", res.EdgeDiffPulls)
	}
	if res.DiffBytesReused == 0 {
		return fmt.Errorf("wire-sync: differential pull reused nothing from the cached previous version")
	}
	if res.DiffReductionX < 5 {
		return fmt.Errorf("wire-sync: version-bump sync moved %d of %d bytes (%.1fx reduction), want >= 5x",
			res.BumpDiffBytes, res.FullRefetchBytes, res.DiffReductionX)
	}
	return nil
}

// WireSync is the registered experiment: it runs the measurement,
// emits the BENCH document when Config.BenchDir is set, and fails —
// after emitting — when an acceptance floor is missed.
func WireSync(cfg Config) (*Table, error) {
	res, err := WireSyncRun(cfg)
	if err != nil {
		return nil, err
	}
	var notes []string
	if cfg.BenchDir != "" {
		path, err := res.WriteBench(cfg.BenchDir)
		if err != nil {
			return nil, err
		}
		notes = append(notes, "machine-readable results: "+path)
	}
	if err := wireSyncCheck(res); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Wire efficiency (gzip-negotiated index + chunked differential package sync)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"index identity bytes", fmt.Sprintf("%d", res.IndexIdentityBytes)},
			{"index gzip bytes", fmt.Sprintf("%d (%.2fx)", res.IndexGzipBytes, res.IndexGzipRatio)},
			{"signature headers identical", fmt.Sprintf("%v", res.IndexHeadersIdentical)},
			{"probe package size", fmt.Sprintf("%d B", res.PackageSizeBytes)},
			{"cold sync wire bytes", fmt.Sprintf("%d", res.ColdWireBytes)},
			{"version-bump diff bytes", fmt.Sprintf("%d (%.1fx reduction)", res.BumpDiffBytes, res.DiffReductionX)},
			{"diff bytes reused / fetched", fmt.Sprintf("%d / %d", res.DiffBytesReused, res.DiffBytesFetched)},
		},
		Notes: notes,
	}
	return t, nil
}
