package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsr/internal/apk"
	"tsr/internal/chaos"
	"tsr/internal/edge"
	"tsr/internal/enclave"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/obs"
	"tsr/internal/sched"
	"tsr/internal/store"
	"tsr/internal/tpm"
	"tsr/internal/trace"
	"tsr/internal/tsr"
)

// Fleet-soak shape. Slot 0 is the protected front edge: it stays
// honest and alive for the whole run so the HTTP/admission invariants
// (ETag == sha256(body), shed contract, in-flight bound) are checkable
// on every response it serves; the chaos schedule only ever targets
// slots 1..soakEdges-1.
const (
	soakTicks       = 16
	soakEdges       = 4
	soakClients     = 6
	soakBaseReads   = 4 // package reads per client per tick at diurnal peak
	soakMaxInflight = 8
	soakCrowdRounds = 3
	// The origin's global refresh scheduler runs bounded during the
	// soak, so the sched-bound invariant is checkable: the primary
	// tenant's refreshes and the churn tenant's journaled ingest share
	// one slot pool.
	soakRefreshWorkers = 4
	soakSchedMaxActive = 2
	// Packages the churn tenant bulk-ingests at TenantDeploy.
	soakChurnBatch = 4
)

// errOriginDown models the crashed origin process: connections to it
// fail until the warm restart brings it back.
var errOriginDown = errors.New("fleet-soak: origin is down")

// originGate is the swappable origin endpoint: OriginCrash stores nil,
// OriginRestart stores the restored tenant. It satisfies the same read
// surface as *tsr.Repo, so countingOrigin and the replicas sit on top
// unchanged.
type originGate struct {
	tenant atomic.Pointer[tsr.Repo]
}

func (g *originGate) FetchIndexTagged() (*index.Signed, string, error) {
	t := g.tenant.Load()
	if t == nil {
		return nil, "", errOriginDown
	}
	return t.FetchIndexTagged()
}

func (g *originGate) FetchIndexDelta(since string) (*index.Delta, error) {
	t := g.tenant.Load()
	if t == nil {
		return nil, errOriginDown
	}
	return t.FetchIndexDelta(since)
}

func (g *originGate) FetchPackage(name string) ([]byte, error) {
	t := g.tenant.Load()
	if t == nil {
		return nil, errOriginDown
	}
	return t.FetchPackage(name)
}

// The differential-sync surface forwards too, so chunked package sync
// stays in the replicas' pull path throughout the soak.
func (g *originGate) FetchChunkManifest(name string) (*store.ChunkManifest, error) {
	t := g.tenant.Load()
	if t == nil {
		return nil, errOriginDown
	}
	return t.FetchChunkManifest(name)
}

func (g *originGate) FetchPackageRange(name string, off, length int64) ([]byte, error) {
	t := g.tenant.Load()
	if t == nil {
		return nil, errOriginDown
	}
	return t.FetchPackageRange(name, off, length)
}

// edgeSlot is one edge position in the fleet. The slot — not the
// replica — is the client-facing Fetcher: EdgeKill swaps the replica
// pointer to nil and EdgeRestart/EdgeRollback swap in a fresh Replica
// over the slot's surviving store, while FailoverClient.rank keeps
// reading a stable Endpoints slice. The cache is the slot's "data
// dir": it survives kills, and journal0 snapshots its first persisted
// index journal so EdgeRollback can play old state back over it.
type edgeSlot struct {
	name      string
	continent netsim.Continent
	cache     *store.Mem
	journal0  []byte
	rep       atomic.Pointer[edge.Replica]
}

func (s *edgeSlot) FetchIndexTagged() (*index.Signed, string, error) {
	rep := s.rep.Load()
	if rep == nil {
		return nil, "", fmt.Errorf("%w: %s killed", edge.ErrOffline, s.name)
	}
	return rep.FetchIndexTagged()
}

func (s *edgeSlot) FetchPackage(name string) ([]byte, error) {
	rep := s.rep.Load()
	if rep == nil {
		return nil, fmt.Errorf("%w: %s killed", edge.ErrOffline, s.name)
	}
	return rep.FetchPackage(name)
}

func (s *edgeSlot) FetchChunkManifest(name string) (*store.ChunkManifest, error) {
	rep := s.rep.Load()
	if rep == nil {
		return nil, fmt.Errorf("%w: %s killed", edge.ErrOffline, s.name)
	}
	return rep.FetchChunkManifest(name)
}

func (s *edgeSlot) FetchPackageRange(name string, off, length int64) ([]byte, error) {
	rep := s.rep.Load()
	if rep == nil {
		return nil, fmt.Errorf("%w: %s killed", edge.ErrOffline, s.name)
	}
	return rep.FetchPackageRange(name, off, length)
}

// FleetSoakResult is the measured outcome of one soak run; it is also
// the BENCH_fleet_soak.json document.
type FleetSoakResult struct {
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	Ticks       int     `json:"ticks"`
	Edges       int     `json:"edges"`
	Clients     int     `json:"clients"`
	MaxInflight int64   `json:"max_inflight"`

	// Events tallies the executed schedule by kind;
	// ComposedFailures counts the fault events among them (the
	// acceptance floor is >= 5).
	Events           map[string]int `json:"events"`
	ComposedFailures int            `json:"composed_failures"`
	Schedule         []string       `json:"schedule"`

	// Client-side reads through the failover clients. FailedReads is
	// availability (endpoints down mid-churn), never a violation.
	IndexReads   int64 `json:"index_reads"`
	PackageReads int64 `json:"package_reads"`
	FailedReads  int64 `json:"failed_reads"`

	// Refresh control plane: generations published during the soak.
	RefreshesOK      int `json:"refreshes_ok"`
	RefreshesFailed  int `json:"refreshes_failed"`
	RefreshesSkipped int `json:"refreshes_skipped"` // origin was down

	// Wall-clock read latency through the soak (internal/obs
	// histograms; quantiles are bucket upper bounds, so nonzero
	// whenever any read completed).
	IndexLatency   obs.HistogramSnapshot `json:"index_latency"`
	PackageLatency obs.HistogramSnapshot `json:"package_latency"`

	// Flash crowds through the obs-wrapped front edge handler.
	FrontHTTP    obs.Snapshot `json:"front_http"`
	CrowdOffered int64        `json:"crowd_offered"`
	CrowdServed  int64        `json:"crowd_served"`
	CrowdShed    int64        `json:"crowd_shed"`
	ShedRate     float64      `json:"shed_rate"`

	// Trace observability. FrontTraces counts the front edge's kept
	// span trees (every flash-crowd 200 also had its X-Tsr-Trace-Id
	// checked by InvTraceHeader); RefreshStages is the origin's
	// per-stage refresh latency breakdown aggregated over every
	// generation published during the soak.
	FrontTraces   trace.StoreStats          `json:"front_traces"`
	RefreshStages map[string]trace.StageAgg `json:"refresh_stages,omitempty"`

	// Coalescing across live replicas at the end of the run (killed
	// replicas take their counters with them).
	CoalescedPulls int64 `json:"coalesced_pulls"`
	CoalescedSyncs int64 `json:"coalesced_syncs"`

	// Wire efficiency under churn: chunked differential pulls across
	// live replicas at the end of the run (the soak-wire-probe is
	// version-bumped with every generation), manifest/range requests
	// that reached the origin, streamed (hash-as-you-copy) serves, and
	// verified 206 Range reads through the front handler.
	DiffPulls        int64 `json:"diff_pulls"`
	DiffFallbacks    int64 `json:"diff_fallbacks"`
	DiffBytesReused  int64 `json:"diff_bytes_reused"`
	DiffBytesFetched int64 `json:"diff_bytes_fetched"`
	OriginManifests  int64 `json:"origin_manifests"`
	OriginRanges     int64 `json:"origin_ranges"`
	StreamedServes   int64 `json:"streamed_serves"`
	RangeReads       int64 `json:"range_reads_206"`

	// Client defense counters summed over the fleet: byzantine edges
	// were detected and routed around this many times.
	Failovers         int64 `json:"failovers"`
	RejectedStale     int64 `json:"rejected_stale"`
	RejectedBytes     int64 `json:"rejected_bytes"`
	RejectedSignature int64 `json:"rejected_signature"`

	// OriginWarmRestart reports that the mid-soak origin restart came
	// back warm from the -data-dir store (no re-sanitization), in
	// WarmRestartMs.
	OriginWarmRestart bool    `json:"origin_warm_restart"`
	WarmRestartMs     float64 `json:"warm_restart_ms"`

	// Tenant churn: an extra tenant deployed on the shared origin
	// mid-soak, bulk-ingested a batch through the crash-safe journal,
	// and was undeployed later — all through the same bounded
	// scheduler as the primary tenant's refreshes.
	ChurnDeploys  int `json:"churn_deploys"`
	ChurnIngested int `json:"churn_ingested"`
	ChurnKills    int `json:"churn_kills"`

	// Sched is the origin scheduler at quiesce (current life); its
	// peaks are asserted against the configured bounds by the
	// sched-bound invariant.
	Sched sched.Snapshot `json:"sched"`

	// Invariants (internal/chaos). Violations must be empty.
	LaggingAtQuiesce    int               `json:"lagging_at_quiesce"`
	InvariantChecks     int64             `json:"invariant_checks"`
	InvariantViolations int               `json:"invariant_violations"`
	Violations          []chaos.Violation `json:"violations,omitempty"`
}

// soakPackage builds the deterministic package a Refresh event
// publishes; the origin restart republishes the same list byte-for-byte
// so regenerated entries hash identically to what clients already hold.
func soakPackage(name string) *apk.Package {
	const version = "1.0-r0"
	return &apk.Package{
		Name: name, Version: version,
		Files: []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + version)}},
	}
}

// soakWireName is the chunking probe: a multi-chunk package whose
// content is version-bumped with every published generation, so the
// replicas' chunked differential pull path stays exercised — under
// the same invariant checker — all soak long.
const soakWireName = "soak-wire-probe"

func soakWireProbe(version string) *apk.Package {
	return wireProbePkg(soakWireName, version, 8, 16<<10)
}

// FleetSoakRun drives the composed-failure soak: soakClients failover
// clients read through a fleet of soakEdges replicas plus the origin
// while the seeded chaos schedule kills, rolls back, and corrupts edges
// under them, crashes and warm-restarts the origin, takes mirrors out,
// and publishes new generations — with every client-visible read fed to
// the continuous invariant checker.
func FleetSoakRun(cfg Config) (*FleetSoakResult, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.006)

	dir, err := os.MkdirTemp("", "tsr-soak-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Host hardware that survives the origin crash (restart.go): the
	// platform sealing root and the TPM counters. The store handle does
	// not — each life reopens and re-scrubs the data dir.
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("exp-quoting"))
	if err != nil {
		return nil, err
	}
	hostTPM := tpm.New(keys.Shared.MustGet("exp-host-tpm"))
	openStore := func() (*store.FS, error) {
		return store.OpenFS(dir, store.FSOptions{})
	}

	// --- first life --------------------------------------------------
	st1, err := openStore()
	if err != nil {
		return nil, err
	}
	w, err := NewWorldWith(cfg, nil, false, WorldDeps{
		Store: st1, TPM: hostTPM, Platform: platform, AutoPersist: true, SkipDeploy: true,
		RefreshWorkers: soakRefreshWorkers, SchedMaxActive: soakSchedMaxActive,
	})
	if err != nil {
		return nil, err
	}
	repoID, _, _, err := w.Service.DeployPolicy(w.PolicyRaw)
	if err != nil {
		return nil, err
	}
	tenant, err := w.Service.Repo(repoID)
	if err != nil {
		return nil, err
	}
	// The chunking probe's first generation goes out with the initial
	// refresh; every Refresh event bumps it. The full version history
	// is kept because the origin restart must replay every publish —
	// the upstream index sequence is monotonic, and a regenerated
	// upstream with fewer publishes would (correctly) trip the tenant's
	// TPM anti-rollback check.
	probeVersions := []string{"0.0-r0"}
	publishProbe := func(w *World, version string) error {
		p := soakWireProbe(version)
		if err := apk.Sign(p, w.Distro); err != nil {
			return err
		}
		return w.Repo.Publish(p)
	}
	if err := publishProbe(w, probeVersions[0]); err != nil {
		return nil, err
	}
	for _, m := range w.Mirrors {
		m.Sync(w.Repo)
	}
	if _, err := tenant.Refresh(); err != nil {
		return nil, err
	}
	w.Tenant = tenant

	trust := keys.NewRing(tenant.PublicKey())
	checker := chaos.NewChecker(trust)
	gate := &originGate{}
	gate.tenant.Store(tenant)
	counted := &countingOrigin{tenant: gate}

	// Control-plane state. ctlMu serializes the control goroutines
	// (refreshes, origin restart, mirror toggles) against each other;
	// the data plane reads only through the gate and slot atomics.
	var ctlMu sync.Mutex
	cur := w
	var published []string
	// ctlErrs has its own mutex: several ctlFail callers (doRefresh, the
	// churn deploy) already hold ctlMu when they fail, so reporting the
	// error must not re-acquire it.
	var ctlErrMu sync.Mutex
	var ctlErrs []error
	res := &FleetSoakResult{
		Scale: cfg.Scale, Seed: cfg.Seed,
		Ticks: soakTicks, Edges: soakEdges, Clients: soakClients,
		MaxInflight: soakMaxInflight,
	}
	ctlFail := func(err error) {
		ctlErrMu.Lock()
		ctlErrs = append(ctlErrs, err)
		ctlErrMu.Unlock()
	}
	firstCtlErr := func() error {
		ctlErrMu.Lock()
		defer ctlErrMu.Unlock()
		if len(ctlErrs) > 0 {
			return ctlErrs[0]
		}
		return nil
	}

	// --- edge fleet ---------------------------------------------------
	newReplica := func(s *edgeSlot) *edge.Replica {
		return &edge.Replica{
			RepoID:       repoID,
			Origin:       counted,
			Continent:    s.continent,
			TrustRing:    trust,
			Cache:        s.cache,
			PersistIndex: true,
		}
	}
	slots := make([]*edgeSlot, soakEdges)
	for i := range slots {
		slots[i] = &edgeSlot{
			name:      fmt.Sprintf("edge-%d", i),
			continent: edgeContinents[i%len(edgeContinents)],
			cache:     store.NewMemBudget(1 << 30),
		}
		rep := newReplica(slots[i])
		if err := rep.Sync(); err != nil {
			return nil, err
		}
		slots[i].rep.Store(rep)
		if j, err := slots[i].cache.Get(edge.StateKey); err == nil {
			slots[i].journal0 = append([]byte(nil), j...)
		}
	}

	// --- clients ------------------------------------------------------
	var endpoints []edge.Endpoint
	for _, s := range slots {
		endpoints = append(endpoints, edge.Endpoint{Name: s.name, Continent: s.continent, Fetcher: s})
	}
	endpoints = append(endpoints, edge.Endpoint{Name: "origin", Continent: netsim.Europe, Fetcher: counted})
	link := netsim.DefaultLinkModel(nil)
	type soakClient struct {
		name string
		fc   *edge.FailoverClient
		rng  *netsim.RNG
	}
	clients := make([]*soakClient, soakClients)
	for i := range clients {
		clients[i] = &soakClient{
			name: fmt.Sprintf("client-%d", i),
			fc: &edge.FailoverClient{
				Local:     edgeContinents[i%len(edgeContinents)],
				Link:      link,
				Clock:     netsim.NewVirtualClock(time.Time{}),
				TrustRing: trust,
				Endpoints: endpoints,
			},
			rng: netsim.NewRNG(cfg.Seed + 100 + int64(i)),
		}
	}

	// --- front HTTP handler (admission + ETag invariants) -------------
	// The front replica never changes, so binding it into the handler
	// once is safe; the service floor models saturated hardware exactly
	// like the flash-crowd experiment.
	inner := edge.Handler(map[string]*edge.Replica{repoID: slots[0].rep.Load()}, "soak-front")
	slowed := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		time.Sleep(flashServiceFloor)
		inner.ServeHTTP(rw, r)
	})
	// Every flash-crowd response gets a span tree (HeadEvery 1): the
	// TraceHeader invariant quotes the echoed ID against this store.
	frontTracer := trace.NewTracer(trace.Config{Tier: "edge", HeadEvery: 1, Capacity: 4096})
	originTracer := trace.NewTracer(trace.Config{Tier: "origin", HeadEvery: 1, Capacity: 4096})
	o := obs.New(obs.Options{MaxInflight: soakMaxInflight, Tracer: frontTracer})
	handler := o.Wrap(slowed)

	// --- instruments --------------------------------------------------
	var idxHist, pkgHist obs.Histogram
	var indexReads, packageReads, failedReads atomic.Int64
	var crowdOffered, crowdServed, rangeReads atomic.Int64

	// --- event handlers ----------------------------------------------
	doRefresh := func(tick int) {
		ctlMu.Lock()
		defer ctlMu.Unlock()
		if gate.tenant.Load() == nil {
			res.RefreshesSkipped++
			return
		}
		name := fmt.Sprintf("soak-gen-%03d", tick)
		published = append(published, name)
		// Bump the chunking probe into this generation: replicas that
		// cached the previous version pull the new one differentially.
		version := fmt.Sprintf("%d.0-r0", tick+1)
		if err := publishProbe(cur, version); err != nil {
			ctlFail(fmt.Errorf("fleet-soak: probe publish: %w", err))
			return
		}
		probeVersions = append(probeVersions, version)
		if err := advanceWorldCtx(trace.NewContext(context.Background(), originTracer), cur, name, "1.0-r0"); err != nil {
			// A refresh failing during a mirror outage is availability;
			// the previous snapshot keeps serving.
			res.RefreshesFailed++
			return
		}
		res.RefreshesOK++
	}

	// Tenant churn. The churn tenant shares the origin's scheduler,
	// journal, and store with the primary tenant, but never enters the
	// client data plane: what the soak asserts is that its deploy,
	// journaled bulk-ingest, and undeploy bend no invariant the primary
	// is checked against. All churn state is guarded by ctlMu; churnID
	// survives an origin crash because RestoreAll restores the churn
	// tenant from the same data dir. deployChurnLocked requires ctlMu.
	var churnID string
	var churnPending bool // deploy arrived while the origin was down
	var churnTick int
	deployChurnLocked := func(tick int) {
		id, _, _, err := cur.Service.DeployPolicy(cur.PolicyRaw)
		if err != nil {
			ctlFail(fmt.Errorf("fleet-soak: churn deploy: %w", err))
			return
		}
		churn, err := cur.Service.Repo(id)
		if err != nil {
			ctlFail(err)
			return
		}
		raws := make([][]byte, 0, soakChurnBatch)
		for i := 0; i < soakChurnBatch; i++ {
			p := soakPackage(fmt.Sprintf("churn-tool-%02d-%d", tick, i))
			if err := apk.Sign(p, cur.Distro); err != nil {
				ctlFail(err)
				return
			}
			raw, err := apk.Encode(p)
			if err != nil {
				ctlFail(err)
				return
			}
			raws = append(raws, raw)
		}
		st, err := churn.RegisterPackages(trace.NewContext(context.Background(), originTracer), raws)
		if err != nil {
			ctlFail(fmt.Errorf("fleet-soak: churn ingest: %w", err))
			return
		}
		churnID = id
		res.ChurnDeploys++
		res.ChurnIngested += st.Registered
	}

	doOriginRestart := func() error {
		ctlMu.Lock()
		defer ctlMu.Unlock()
		if gate.tenant.Load() != nil {
			return nil
		}
		st, err := openStore()
		if err != nil {
			return err
		}
		w2, err := NewWorldWith(cfg, nil, false, WorldDeps{
			Store: st, TPM: hostTPM, Platform: platform, AutoPersist: true, SkipDeploy: true,
			RefreshWorkers: soakRefreshWorkers, SchedMaxActive: soakSchedMaxActive,
		})
		if err != nil {
			return err
		}
		//lint:allow detrand timing block: the warm-restart-under-load duration is a headline soak metric, measured in real time
		t0 := time.Now()
		restored, err := w2.Service.RestoreAll()
		if err != nil {
			return err
		}
		restoreDur := time.Since(t0)
		// The primary tenant must come back; the churn tenant (when it
		// was deployed at crash time) rides along in the same restore.
		var prim *tsr.RestoredRepo
		for i := range restored {
			if restored[i].ID == repoID {
				prim = &restored[i]
			}
		}
		if prim == nil {
			return fmt.Errorf("fleet-soak: RestoreAll restored %d repositories, primary %s missing", len(restored), repoID)
		}
		tenant2, err := w2.Service.Repo(repoID)
		if err != nil {
			return err
		}
		w2.Tenant = tenant2
		// Republish the soak generations into the regenerated upstream
		// before the next refresh, so no generation ever retracts
		// packages clients already verified.
		for _, name := range published {
			p := soakPackage(name)
			if err := apk.Sign(p, w2.Distro); err != nil {
				return err
			}
			if err := w2.Repo.Publish(p); err != nil {
				return err
			}
		}
		for _, v := range probeVersions {
			if err := publishProbe(w2, v); err != nil {
				return err
			}
		}
		for _, m := range w2.Mirrors {
			m.Sync(w2.Repo)
		}
		if _, err := tenant2.Refresh(); err != nil {
			return err
		}
		cur = w2
		res.OriginWarmRestart = prim.Warm
		res.WarmRestartMs = float64(restoreDur) / float64(time.Millisecond)
		gate.tenant.Store(tenant2)
		if churnPending {
			// A churn deploy queued while the origin was down: the
			// operator's retry lands right after the warm restart, so the
			// journaled bulk-ingest overlaps catch-up refresh traffic.
			churnPending = false
			deployChurnLocked(churnTick)
		}
		return nil
	}

	restartEdge := func(s *edgeSlot) {
		if s.rep.Load() != nil {
			return
		}
		rep := newReplica(s)
		if err := rep.LoadState(); err != nil && !errors.Is(err, edge.ErrNoState) {
			ctlFail(fmt.Errorf("fleet-soak: %s restart: %w", s.name, err))
			return
		}
		// Catch-up sync is best-effort: the origin may be down, and the
		// replica serves its persisted generation until it isn't.
		_ = rep.Sync()
		s.rep.Store(rep)
	}

	rollbackEdge := func(s *edgeSlot) {
		s.rep.Store(nil)
		if s.journal0 == nil {
			restartEdge(s)
			return
		}
		if err := s.cache.Put(edge.StateKey, s.journal0); err != nil {
			ctlFail(fmt.Errorf("fleet-soak: %s rollback: %w", s.name, err))
			return
		}
		rep := newReplica(s)
		if err := rep.LoadState(); err != nil {
			ctlFail(fmt.Errorf("fleet-soak: %s rollback load: %w", s.name, err))
			return
		}
		// Deliberately no sync: the replica comes back serving the
		// rolled-back generation, and the clients' freshness floor has
		// to reject it (RejectedStale) until the next sync round.
		s.rep.Store(rep)
	}

	flashCrowd := func() {
		signed, _, err := slots[0].FetchIndexTagged()
		if err != nil {
			ctlFail(fmt.Errorf("fleet-soak: flash crowd probe: %w", err))
			return
		}
		probe, err := firstPackageName(signed)
		if err != nil {
			ctlFail(err)
			return
		}
		path := "/repos/" + repoID + "/packages/" + probe
		_ = inParallel(2*soakMaxInflight, func(int) error {
			for r := 0; r < soakCrowdRounds; r++ {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				crowdOffered.Add(1)
				if rec.Code == http.StatusOK {
					crowdServed.Add(1)
				}
				checker.HTTPResponse("soak-front", rec.Code,
					rec.Header().Get("ETag"), rec.Header().Get("Retry-After"), rec.Body.Bytes())
				checker.TraceHeader("soak-front", rec.Code, rec.Header().Get(trace.HeaderTraceID))
			}
			return nil
		})
		// One Range read per crowd, pinned to a fresh full representation
		// with If-Range: the 206 must be a verified slice of the full
		// body under the FULL body's strong ETag (range-consistent). A
		// republish between the two requests downgrades to a full 200,
		// which the checker treats as availability.
		full := httptest.NewRecorder()
		handler.ServeHTTP(full, httptest.NewRequest(http.MethodGet, path, nil))
		if full.Code == http.StatusOK {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			req.Header.Set("Range", "bytes=0-1023")
			req.Header.Set("If-Range", full.Header().Get("ETag"))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code == http.StatusPartialContent {
				rangeReads.Add(1)
			}
			checker.RangeResponse("soak-front", rec.Code, rec.Header().Get("ETag"),
				rec.Header().Get("Content-Range"), rec.Body.Bytes(), full.Body.Bytes())
		}
		checker.AdmissionSnapshot("soak-front", o.Snapshot())
	}

	// Remaining tenant-churn wiring (deployChurnLocked and its state are
	// declared above doOriginRestart, which replays a queued deploy).
	doTenantDeploy := func(tick int) {
		ctlMu.Lock()
		defer ctlMu.Unlock()
		if churnID != "" || churnPending {
			return // a previous churn tenant is still alive or queued
		}
		if gate.tenant.Load() == nil {
			// The deploy raced the origin crash (control actions queue on
			// ctlMu behind in-flight refreshes, so the crash may land
			// first in wall time even when the schedule orders it later).
			// Model the operator retry: the deploy fires at the warm
			// restart instead of being dropped.
			churnPending, churnTick = true, tick
			return
		}
		deployChurnLocked(tick)
	}
	doTenantKill := func() {
		ctlMu.Lock()
		defer ctlMu.Unlock()
		if churnID == "" || gate.tenant.Load() == nil {
			return // nothing deployed (or queued), or the origin is down
		}
		if err := cur.Service.Undeploy(churnID); err != nil {
			ctlFail(fmt.Errorf("fleet-soak: churn undeploy: %w", err))
			return
		}
		churnID = ""
		res.ChurnKills++
	}

	setMirror := func(i int, b mirror.Behavior) {
		ctlMu.Lock()
		defer ctlMu.Unlock()
		if i < len(cur.Mirrors) {
			cur.Mirrors[i].SetBehavior(b)
		}
	}

	// Long-running control actions (refresh, origin restart) run
	// concurrently with client traffic — that is the point of the soak —
	// and are joined before quiesce.
	var ctlWG sync.WaitGroup
	applyEvent := func(ev chaos.Event) {
		switch ev.Kind {
		case chaos.Refresh:
			ctlWG.Add(1)
			go func() {
				defer ctlWG.Done()
				doRefresh(ev.Tick)
			}()
		case chaos.FlashCrowd:
			flashCrowd()
		case chaos.EdgeKill:
			slots[ev.Target].rep.Store(nil)
		case chaos.EdgeRestart:
			restartEdge(slots[ev.Target])
		case chaos.EdgeRollback:
			rollbackEdge(slots[ev.Target])
		case chaos.ByzantineFlip:
			if rep := slots[ev.Target].rep.Load(); rep != nil {
				rep.SetBehavior(ev.Behavior)
			}
		case chaos.OriginCrash:
			gate.tenant.Store(nil)
		case chaos.OriginRestart:
			ctlWG.Add(1)
			go func() {
				defer ctlWG.Done()
				if err := doOriginRestart(); err != nil {
					ctlFail(err)
				}
			}()
		case chaos.MirrorOutage:
			setMirror(ev.Target, mirror.Offline)
		case chaos.MirrorRecover:
			setMirror(ev.Target, mirror.Honest)
		case chaos.TenantDeploy:
			ctlWG.Add(1)
			go func() {
				defer ctlWG.Done()
				doTenantDeploy(ev.Tick)
			}()
		case chaos.TenantKill:
			ctlWG.Add(1)
			go func() {
				defer ctlWG.Done()
				doTenantKill()
			}()
		}
	}

	readPackage := func(c *soakClient, e index.Entry) {
		//lint:allow detrand timing block: client-observed package latency feeds the BENCH histogram, measured in real time
		t1 := time.Now()
		body, err := c.fc.FetchPackage(e.Name)
		if err != nil {
			failedReads.Add(1)
			return
		}
		pkgHist.ObserveSince(t1)
		packageReads.Add(1)
		if e.Name != soakWireName {
			checker.PackageAccepted(c.name, e, body)
			return
		}
		// The probe changes content under a fixed name, so a republish
		// landing between the index read and the package read makes the
		// strict single-entry pairing race; the bytes must instead match
		// SOME accepted generation. On a miss, feed the client's
		// refreshed index through the checker first — the client may
		// have re-verified mid-read against a generation the checker has
		// not recorded yet.
		if !checker.PackageMatchesAnyGen(e.Name, body) {
			if signed, err := c.fc.FetchIndex(); err == nil {
				checker.IndexAccepted(c.name, signed)
			}
		}
		checker.PackageAcceptedAnyGen(c.name, e.Name, body)
	}

	clientTick := func(c *soakClient, reads int) {
		//lint:allow detrand timing block: client-observed index latency feeds the BENCH histogram, measured in real time
		t0 := time.Now()
		signed, err := c.fc.FetchIndex()
		if err != nil {
			failedReads.Add(1)
			return
		}
		idxHist.ObserveSince(t0)
		indexReads.Add(1)
		ix := checker.IndexAccepted(c.name, signed)
		if ix == nil || len(ix.Entries) == 0 {
			return
		}
		for j := 0; j < reads; j++ {
			readPackage(c, ix.Entries[c.rng.Intn(len(ix.Entries))])
		}
		// Every tick ends on a probe read, so the replicas' differential
		// pull path is driven continuously, not only when the RNG lands
		// on the probe.
		if e, err := ix.Lookup(soakWireName); err == nil {
			readPackage(c, e)
		}
	}

	// --- the soak -----------------------------------------------------
	schedule := chaos.BuildSchedule(netsim.NewRNG(cfg.Seed+7), soakTicks, soakEdges, len(w.Mirrors))
	byTick := make(map[int][]chaos.Event)
	for _, ev := range schedule {
		byTick[ev.Tick] = append(byTick[ev.Tick], ev)
		res.Schedule = append(res.Schedule, ev.String())
	}
	res.Events = chaos.CountByKind(schedule)
	res.ComposedFailures = chaos.ComposedFailures(schedule)
	curve := netsim.DefaultDiurnal(time.Duration(soakTicks) * time.Hour)

	for tick := 0; tick < soakTicks; tick++ {
		for _, ev := range byTick[tick] {
			applyEvent(ev)
		}
		reads := int(math.Round(soakBaseReads * curve.At(time.Duration(tick)*time.Hour)))
		if reads < 1 {
			reads = 1
		}
		var wg sync.WaitGroup
		for _, c := range clients {
			wg.Add(1)
			go func(c *soakClient) {
				defer wg.Done()
				clientTick(c, reads)
			}(c)
		}
		// Live replicas chase the origin concurrently with the traffic.
		for _, s := range slots {
			if rep := s.rep.Load(); rep != nil {
				wg.Add(1)
				go func(r *edge.Replica) {
					defer wg.Done()
					_ = r.Sync()
				}(rep)
			}
		}
		wg.Wait()
	}
	ctlWG.Wait()
	if err := firstCtlErr(); err != nil {
		return nil, err
	}

	// --- quiesce: heal everything, then assert convergence ------------
	if gate.tenant.Load() == nil {
		if err := doOriginRestart(); err != nil {
			return nil, err
		}
	}
	ctlMu.Lock()
	for _, m := range cur.Mirrors {
		m.SetBehavior(mirror.Honest)
	}
	tenantNow := gate.tenant.Load()
	ctlMu.Unlock()
	for _, s := range slots {
		if s.rep.Load() == nil {
			restartEdge(s)
		}
		rep := s.rep.Load()
		if rep == nil {
			return nil, fmt.Errorf("fleet-soak: %s failed to restart at quiesce", s.name)
		}
		rep.SetBehavior(edge.Honest)
		if err := rep.Sync(); err != nil {
			return nil, fmt.Errorf("fleet-soak: quiesce sync %s: %w", s.name, err)
		}
		st := rep.Stats()
		res.CoalescedPulls += st.CoalescedPulls
		res.CoalescedSyncs += st.CoalescedSyncs
		res.DiffPulls += st.DiffPulls
		res.DiffFallbacks += st.DiffFallbacks
		res.DiffBytesReused += st.DiffBytesReused
		res.DiffBytesFetched += st.DiffBytesFetched
		res.StreamedServes += st.StreamedServes
	}
	for _, c := range clients {
		signed, err := c.fc.FetchIndex()
		if err != nil {
			return nil, fmt.Errorf("fleet-soak: quiesce read %s: %w", c.name, err)
		}
		checker.IndexAccepted(c.name, signed)
		st := c.fc.Stats()
		res.Failovers += st.Failovers
		res.RejectedStale += st.RejectedStale
		res.RejectedBytes += st.RejectedBytes
		res.RejectedSignature += st.RejectedSignature
	}
	curSigned, _, err := tenantNow.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	curIx, err := index.Decode(curSigned.Raw)
	if err != nil {
		return nil, err
	}
	res.LaggingAtQuiesce = checker.Quiesced(curIx.Sequence)

	// Scheduler bound: the current life's peaks must respect the
	// configured pool, with the churn tenant's ingest and every refresh
	// counted against the same slots.
	ctlMu.Lock()
	res.Sched = cur.Service.Scheduler().Snapshot()
	ctlMu.Unlock()
	checker.SchedSnapshot("origin", res.Sched)

	// The quiesce-time origin restart can replay a queued churn deploy,
	// whose failures report through ctlFail — re-check before reporting.
	if err := firstCtlErr(); err != nil {
		return nil, err
	}

	// --- report -------------------------------------------------------
	res.IndexReads = indexReads.Load()
	res.PackageReads = packageReads.Load()
	res.FailedReads = failedReads.Load()
	res.IndexLatency = idxHist.Snapshot()
	res.PackageLatency = pkgHist.Snapshot()
	res.FrontHTTP = o.Snapshot()
	res.CrowdOffered = crowdOffered.Load()
	res.CrowdServed = crowdServed.Load()
	res.RangeReads = rangeReads.Load()
	res.OriginManifests = counted.manifests.Load()
	res.OriginRanges = counted.ranges.Load()
	res.CrowdShed = res.FrontHTTP.ShedTotal
	if res.CrowdOffered > 0 {
		res.ShedRate = float64(res.CrowdShed) / float64(res.CrowdOffered)
	}
	res.FrontTraces = frontTracer.Store().Stats()
	res.RefreshStages = originTracer.Store().Stages()
	res.Violations = checker.Violations()
	res.InvariantChecks = checker.Checks()
	res.InvariantViolations = len(res.Violations)
	return res, nil
}

// refreshStageRow renders the refresh.* stage aggregates as one
// deterministic table cell, slowest mean first.
func refreshStageRow(stages map[string]trace.StageAgg) string {
	type row struct {
		name string
		agg  trace.StageAgg
	}
	var rows []row
	for name, agg := range stages {
		if strings.HasPrefix(name, "refresh.") {
			rows = append(rows, row{name, agg})
		}
	}
	if len(rows) == 0 {
		return "none recorded"
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].agg.MeanMs != rows[j].agg.MeanMs {
			return rows[i].agg.MeanMs > rows[j].agg.MeanMs
		}
		return rows[i].name < rows[j].name
	})
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%s %.2f ms", strings.TrimPrefix(r.name, "refresh."), r.agg.MeanMs)
	}
	return strings.Join(parts, ", ")
}

// WriteBench writes the BENCH_fleet_soak.json document and returns its
// path.
func (r *FleetSoakResult) WriteBench(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_fleet_soak.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// FleetSoak is the registered experiment: it runs the soak, emits the
// BENCH document when Config.BenchDir is set, and fails — after
// emitting — when any invariant was violated, so CI turns red on the
// violation rather than on a missing artifact.
func FleetSoak(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	res, err := FleetSoakRun(cfg)
	if err != nil {
		return nil, err
	}
	var notes []string
	if cfg.BenchDir != "" {
		path, err := res.WriteBench(cfg.BenchDir)
		if err != nil {
			return nil, err
		}
		notes = append(notes, "machine-readable results: "+path)
	}
	if res.InvariantViolations > 0 {
		max := res.InvariantViolations
		if max > 8 {
			max = 8
		}
		msg := ""
		for _, v := range res.Violations[:max] {
			msg += "\n  " + v.String()
		}
		return nil, fmt.Errorf("fleet-soak: %d invariant violation(s):%s", res.InvariantViolations, msg)
	}
	t := &Table{
		Title:  "Fleet soak (composed failures under a diurnal load curve; every read invariant-checked)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"fleet", fmt.Sprintf("%d edges + origin, %d clients, %d ticks", res.Edges, res.Clients, res.Ticks)},
			{"composed failure events", fmt.Sprintf("%d (of %d scheduled events)", res.ComposedFailures, len(res.Schedule))},
			{"generations published", fmt.Sprintf("%d ok / %d failed / %d skipped (origin down)",
				res.RefreshesOK, res.RefreshesFailed, res.RefreshesSkipped)},
			{"client reads", fmt.Sprintf("%d index + %d package (%d failed-over endpoints, %d unavailable)",
				res.IndexReads, res.PackageReads, res.Failovers, res.FailedReads)},
			{"index read latency", fmt.Sprintf("p50 %.3f ms / p99 %.3f ms", res.IndexLatency.P50Ms, res.IndexLatency.P99Ms)},
			{"package read latency", fmt.Sprintf("p50 %.3f ms / p99 %.3f ms", res.PackageLatency.P50Ms, res.PackageLatency.P99Ms)},
			{"byzantine rejections", fmt.Sprintf("%d stale / %d tampered / %d bad signature",
				res.RejectedStale, res.RejectedBytes, res.RejectedSignature)},
			{"flash crowds", fmt.Sprintf("%d offered, %d served, %d shed (%.0f%%), peak inflight %d <= max %d",
				res.CrowdOffered, res.CrowdServed, res.CrowdShed, res.ShedRate*100,
				res.FrontHTTP.PeakInflight, res.MaxInflight)},
			{"coalesced pulls / syncs", fmt.Sprintf("%d / %d", res.CoalescedPulls, res.CoalescedSyncs)},
			{"chunked differential pulls", fmt.Sprintf("%d (%d B reused / %d B fetched, %d fallbacks; origin saw %d manifests + %d ranges)",
				res.DiffPulls, res.DiffBytesReused, res.DiffBytesFetched, res.DiffFallbacks,
				res.OriginManifests, res.OriginRanges)},
			{"streamed serves / verified 206s", fmt.Sprintf("%d / %d", res.StreamedServes, res.RangeReads)},
			{"origin warm restart under load", fmt.Sprintf("%v (%.1f ms)", res.OriginWarmRestart, res.WarmRestartMs)},
			{"tenant churn", fmt.Sprintf("%d deploys (%d pkgs via journaled ingest) / %d undeploys",
				res.ChurnDeploys, res.ChurnIngested, res.ChurnKills)},
			{"sched peaks", fmt.Sprintf("slots %d <= workers %d, active %d <= max %d",
				res.Sched.PeakSlots, res.Sched.Workers, res.Sched.PeakActive, res.Sched.MaxActive)},
			{"clients lagging at quiesce", fmt.Sprint(res.LaggingAtQuiesce)},
			{"front-edge traces kept", fmt.Sprintf("%d (merged %d, evicted %d)",
				res.FrontTraces.Kept, res.FrontTraces.Merged, res.FrontTraces.Evicted)},
			{"refresh stage means", refreshStageRow(res.RefreshStages)},
			{"invariant checks / violations", fmt.Sprintf("%d / %d", res.InvariantChecks, res.InvariantViolations)},
		},
		Notes: append([]string{
			"invariants (docs/SOAK.md): verified bytes, index signature, monotone sequence, ETag==sha256(body),",
			"range-consistent 206s, shed contract, admission bound, bounded staleness after quiesce — one violation fails the run",
		}, notes...),
	}
	return t, nil
}
