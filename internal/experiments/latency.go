package experiments

import (
	"crypto/sha256"
	"fmt"
	"time"

	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/pkgmgr"
	"tsr/internal/quorum"
	"tsr/internal/stats"
	"tsr/internal/tsr"
	"tsr/internal/workload"
)

// Fig10 reproduces "Comparison of package download latencies" for the
// three cache scenarios (Sanitized / Original / None). Latency is the
// server-side time to produce the package: cache read + verification
// for hits, re-sanitization for original-only, and modeled mirror
// download plus sanitization for the no-cache case.
func Fig10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := NewWorld(cfg, nil, false)
	if err != nil {
		return nil, err
	}
	names := mustIndexNames(w)
	if cfg.MaxPackages > 0 && len(names) > cfg.MaxPackages {
		names = names[:cfg.MaxPackages]
	}
	scenarios := []struct {
		label string
		mode  tsr.CacheMode
	}{
		{"Sanitized", tsr.CacheBoth},
		{"Original", tsr.CacheOriginalOnly},
		{"None", tsr.CacheNone},
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 10: package download latency by cache scenario (n=%d)", len(names)),
		Header: []string{"Cached", "p50", "p95", "Mean"},
	}
	means := map[string]float64{}
	for _, sc := range scenarios {
		w.Tenant.SetCacheMode(sc.mode)
		var lats []time.Duration
		for _, name := range names {
			_, res, err := w.Tenant.FetchPackageTraced(name)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %s: %w", sc.label, name, err)
			}
			lats = append(lats, res.Latency)
		}
		sum, err := stats.DurationSummary(lats)
		if err != nil {
			return nil, err
		}
		means[sc.label] = sum.Mean
		t.Rows = append(t.Rows, []string{
			sc.label,
			fmt.Sprintf("%.3f ms", sum.P50),
			fmt.Sprintf("%.3f ms", sum.P95),
			fmt.Sprintf("%.3f ms", sum.Mean),
		})
	}
	if means["Sanitized"] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"speedup vs no cache: sanitized %.0fx, original %.1fx (paper: 129x, 2.7x)",
			means["None"]/means["Sanitized"], means["None"]/means["Original"]))
	}
	w.Tenant.SetCacheMode(tsr.CacheBoth)
	return t, nil
}

// Fig11 reproduces "End-to-end latency of installing software updates":
// a package manager updates packages from TSR vs. directly from an
// Alpine mirror, both in the same data center. Following §6.1, each
// trial installs the package, tampers with the installed-DB version to
// make it look outdated, and measures the Upgrade.
func Fig11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxPackages == 0 {
		cfg.MaxPackages = 150
	}
	w, err := NewWorld(cfg, nil, true)
	if err != nil {
		return nil, err
	}
	// Restrict the trial set to packages whose full dependency closure
	// survived sanitization (TSR prunes rejected packages, so a package
	// depending on one cannot be installed through TSR).
	names := installableNames(w)
	if len(names) > cfg.MaxPackages {
		names = names[:cfg.MaxPackages]
	}

	measure := func(src pkgmgr.Source, indexKey, pkgKey *keys.Public) ([]time.Duration, error) {
		img, err := osimage.New(keys.Shared.MustGet("exp-os-ak"), w.Tenant.Policy().InitConfigFiles)
		if err != nil {
			return nil, err
		}
		mgr := pkgmgr.New(img, src, keys.NewRing(indexKey), keys.NewRing(pkgKey))
		mgr.SetNetModel(&pkgmgr.NetModel{
			Local:  netsim.Europe,
			Remote: netsim.Europe,
			Link:   netsim.DataCenterLinkModel(netsim.NewRNG(cfg.Seed + 2)),
			Clock:  w.Clock,
		})
		if err := mgr.Refresh(); err != nil {
			return nil, err
		}
		var lats []time.Duration
		for _, name := range names {
			if mgr.IsInstalled(name) {
				// Installed as a dependency of an earlier trial:
				// proceed straight to the tamper+upgrade measurement.
			} else if _, err := mgr.Install(name); err != nil {
				return nil, fmt.Errorf("install %s: %w", name, err)
			}
			if err := mgr.ForceVersion(name, "0.0-r0"); err != nil {
				return nil, err
			}
			rep, err := mgr.Upgrade(name)
			if err != nil {
				return nil, fmt.Errorf("upgrade %s: %w", name, err)
			}
			lats = append(lats, rep.Total())
		}
		return lats, nil
	}

	// Scenario A: updates via TSR.
	tsrLats, err := measure(w.Tenant, w.Tenant.PublicKey(), w.Tenant.PublicKey())
	if err != nil {
		return nil, err
	}
	// Scenario B: updates straight from an Alpine mirror.
	mirrorLats, err := measure(w.Mirrors[0], w.Distro.Public(), w.Distro.Public())
	if err != nil {
		return nil, err
	}

	st, err := stats.DurationSummary(tsrLats)
	if err != nil {
		return nil, err
	}
	sm, err := stats.DurationSummary(mirrorLats)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 11: end-to-end update installation latency (n=%d)", len(names)),
		Header: []string{"Repository", "p50", "p95", "Mean"},
		Rows: [][]string{
			{"TSR", fmt.Sprintf("%.2f ms", st.P50), fmt.Sprintf("%.2f ms", st.P95), fmt.Sprintf("%.2f ms", st.Mean)},
			{"Alpine mirror", fmt.Sprintf("%.2f ms", sm.P50), fmt.Sprintf("%.2f ms", sm.P95), fmt.Sprintf("%.2f ms", sm.Mean)},
		},
		Notes: []string{
			fmt.Sprintf("TSR/mirror mean ratio: %.2fx (paper: 141 ms vs 110 ms = 1.28x)", st.Mean/sm.Mean),
			"higher TSR latency stems from installing the per-file signatures",
		},
	}
	return t, nil
}

// fullScaleSignedIndex builds a signed metadata index with the FULL
// 11,581-package population (entries only — no package bodies), because
// Figure 13's latency is dominated by transferring the real-size index
// from f+1 mirrors in parallel.
func fullScaleSignedIndex(cfg Config) (*index.Signed, *keys.Ring, error) {
	gen := workload.New(workload.Config{Seed: cfg.Seed, Scale: 1.0})
	ix := &index.Index{Origin: "alpine", Sequence: 1}
	for _, spec := range gen.Specs() {
		ix.Add(index.Entry{
			Name:    spec.Name,
			Version: spec.Version,
			Size:    spec.TotalSize / 2, // compressed wire size estimate
			Hash:    sha256.Sum256([]byte(spec.Name + spec.Version)),
			Depends: spec.Depends,
		})
	}
	distro, err := keys.Shared.Get("exp-distro-key")
	if err != nil {
		return nil, nil, err
	}
	signed, err := index.Sign(ix, distro)
	if err != nil {
		return nil, nil, err
	}
	return signed, keys.NewRing(distro.Public()), nil
}

// staticSource serves a fixed signed index (a mirror whose only job is
// answering metadata reads).
type staticSource struct{ signed *index.Signed }

// FetchIndex implements quorum.Source.
func (s staticSource) FetchIndex() (*index.Signed, error) { return s.signed.Clone(), nil }

// Fig13 reproduces "Latency of downloading the repository index from
// TSR" for 1..10 mirrors across continent scenarios, with the TSR
// instance in Europe. Each cell is a 10% trimmed mean of 20 reads of
// the full-scale signed index.
func Fig13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	signedIdx, ring, err := fullScaleSignedIndex(cfg)
	if err != nil {
		return nil, err
	}

	scenarios := []struct {
		label      string
		continents func(i int) netsim.Continent
	}{
		{"Europe", func(int) netsim.Continent { return netsim.Europe }},
		{"North America", func(int) netsim.Continent { return netsim.NorthAmerica }},
		{"Asia", func(int) netsim.Continent { return netsim.Asia }},
		{"All", func(i int) netsim.Continent { return netsim.Continents()[i%3] }},
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 13: metadata index quorum latency (index %.1f MB, TSR in Europe, 10%% trimmed mean of %d reads)", float64(signedIdx.Size())/1e6, cfg.QuorumTrials),
		Header: []string{"Mirrors", "Europe", "North America", "Asia", "All"},
	}
	rng := netsim.NewRNG(cfg.Seed + 3)
	link := netsim.DefaultLinkModel(rng)
	for n := 1; n <= 10; n++ {
		row := []string{fmt.Sprint(n)}
		for _, sc := range scenarios {
			var members []quorum.Member
			for i := 0; i < n; i++ {
				members = append(members, quorum.Member{
					Host:      fmt.Sprintf("https://%s-%d/", sc.label, i),
					Continent: sc.continents(i),
					Source:    staticSource{signedIdx},
				})
			}
			reader := &quorum.Reader{
				Local:     netsim.Europe,
				Link:      link,
				TrustRing: ring,
				Members:   members,
			}
			var samples []float64
			for trial := 0; trial < cfg.QuorumTrials; trial++ {
				res, err := reader.Read()
				if err != nil {
					return nil, fmt.Errorf("fig13 %s n=%d: %w", sc.label, n, err)
				}
				samples = append(samples, float64(res.Elapsed)/float64(time.Millisecond))
			}
			mean, err := stats.TrimmedMean(samples, 0.1)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f ms", mean))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: <400 ms for up to 5 same-continent mirrors, <1.2 s for 10; ~2.2 s for 9 mirrors across three continents",
		"'All' tracks the faster continents because TSR contacts the fastest f+1 mirrors first")
	return t, nil
}

// AblationQuorumStrategy compares the fastest-f+1 strategy against
// waiting for all 2f+1 responses — the DESIGN.md quorum ablation.
func AblationQuorumStrategy(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	signedIdx, ring, err := fullScaleSignedIndex(cfg)
	if err != nil {
		return nil, err
	}
	rng := netsim.NewRNG(cfg.Seed + 4)
	link := netsim.DefaultLinkModel(rng)
	t := &Table{
		Title:  "Ablation: fastest-f+1 quorum vs waiting for all mirrors (9 mirrors over 3 continents)",
		Header: []string{"Strategy", "Mean latency"},
	}
	var members []quorum.Member
	for i := 0; i < 9; i++ {
		members = append(members, quorum.Member{
			Host:      fmt.Sprintf("https://abl-%d/", i),
			Continent: netsim.Continents()[i%3],
			Source:    staticSource{signedIdx},
		})
	}
	reader := &quorum.Reader{Local: netsim.Europe, Link: link, TrustRing: ring, Members: members}
	var fast, all []float64
	for trial := 0; trial < cfg.QuorumTrials; trial++ {
		res, err := reader.Read()
		if err != nil {
			return nil, err
		}
		fast = append(fast, float64(res.Elapsed)/float64(time.Millisecond))
		// "Wait for all": every mirror transfers concurrently and the
		// slowest response gates the read.
		var worst time.Duration
		for _, m := range members {
			d := link.RequestResponseShared(netsim.Europe, m.Continent, signedIdx.Size(), len(members))
			if d > worst {
				worst = d
			}
		}
		all = append(all, float64(worst)/float64(time.Millisecond))
	}
	mf, _ := stats.Mean(fast)
	ma, _ := stats.Mean(all)
	t.Rows = append(t.Rows,
		[]string{"fastest f+1 (TSR)", fmt.Sprintf("%.0f ms", mf)},
		[]string{"wait for all 2f+1", fmt.Sprintf("%.0f ms", ma)},
	)
	t.Notes = append(t.Notes, fmt.Sprintf("fastest-f+1 is %.1fx faster on this topology", ma/mf))
	return t, nil
}

// installableNames lists tenant packages whose dependency closure is
// fully served by the tenant.
func installableNames(w *World) []string {
	signed, err := w.Tenant.FetchIndex()
	if err != nil {
		return nil
	}
	ix, err := signed.Verify(keys.NewRing(w.Tenant.PublicKey()))
	if err != nil {
		return nil
	}
	have := make(map[string]bool, len(ix.Entries))
	for _, e := range ix.Entries {
		have[e.Name] = true
	}
	// Iterate to a fixed point: drop packages with missing deps, which
	// may orphan their dependents in turn.
	for changed := true; changed; {
		changed = false
		for _, e := range ix.Entries {
			if !have[e.Name] {
				continue
			}
			for _, d := range e.Depends {
				if !have[d] {
					have[e.Name] = false
					changed = true
					break
				}
			}
		}
	}
	var out []string
	for _, e := range ix.Entries {
		if have[e.Name] {
			out = append(out, e.Name)
		}
	}
	return out
}

// mustIndexNames lists the packages the tenant currently serves.
func mustIndexNames(w *World) []string {
	signed, err := w.Tenant.FetchIndex()
	if err != nil {
		return nil
	}
	ix, err := signed.Verify(keys.NewRing(w.Tenant.PublicKey()))
	if err != nil {
		return nil
	}
	return ix.Names()
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// AblationParallelDownload implements the paper's stated future work
// ("the download time can be greatly reduced by enabling parallel
// downloading", Table 3): it sweeps the Refresh download parallelism
// and reports the modeled download wall time for a cold repository
// initialization.
func AblationParallelDownload(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01) // downloads dominate; a small population suffices
	w, err := NewWorld(cfg, nil, false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: repository initialization download time vs parallelism (future work of Table 3)",
		Header: []string{"Parallel transfers", "Downloaded", "Modeled download time"},
	}
	for _, parallel := range []int{1, 2, 4, 8} {
		// Each parallelism level gets a fresh tenant on the shared
		// service; tenants have isolated caches, so every refresh
		// downloads the full population again.
		id, _, _, err := w.Service.DeployPolicy(w.PolicyRaw)
		if err != nil {
			return nil, err
		}
		tenant, err := w.Service.Repo(id)
		if err != nil {
			return nil, err
		}
		tenant.SetDownloadParallelism(parallel)
		stats, err := tenant.Refresh()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(parallel),
			fmt.Sprint(stats.Downloaded),
			fmtDuration(stats.DownloadTime),
		})
	}
	t.Notes = append(t.Notes,
		"transfers share path bandwidth: the speedup comes from overlapping round trips, so it saturates")
	return t, nil
}
