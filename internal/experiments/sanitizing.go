package experiments

//lint:file-allow detrand the sanitization experiments time real CPU-bound work (Fig 8/11); wall-clock by design

import (
	"fmt"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/sanitize"
	"tsr/internal/stats"
	"tsr/internal/workload"
)

// sanitizeSweep sanitizes the whole (scaled) population package by
// package and collects per-package results. It avoids building the full
// repository in memory: each package is generated, encoded, sanitized,
// and released.
func sanitizeSweep(cfg Config, epc enclave.CostModel) ([]*sanitize.Result, time.Duration, int64, error) {
	gen := workload.New(workload.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	signer, err := keys.Shared.Get("exp-distro-key")
	if err != nil {
		return nil, 0, 0, err
	}
	tsrKey, err := keys.Shared.Get("exp-tsr-key")
	if err != nil {
		return nil, 0, 0, err
	}

	// Plan scan over the full population's scripts (cheap: specs only).
	specs := gen.Specs()
	planSrc := &specScriptSource{gen: gen, specs: specs}
	plan, err := sanitize.BuildPlan(planSrc, nil, tsrKey)
	if err != nil {
		return nil, 0, 0, err
	}
	san := &sanitize.Sanitizer{
		Plan:      plan,
		TrustRing: keys.NewRing(signer.Public()),
		SignKey:   tsrKey,
		EPC:       epc,
	}

	var results []*sanitize.Result
	var download int64
	start := time.Now()
	for _, spec := range specs {
		if !spec.Category.SupportedByTSR() {
			continue
		}
		p, err := gen.Build(spec)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := apk.Sign(p, signer); err != nil {
			return nil, 0, 0, err
		}
		raw, err := apk.Encode(p)
		if err != nil {
			return nil, 0, 0, err
		}
		download += int64(len(raw))
		res, err := san.Sanitize(raw)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("sanitizing %s: %w", spec.Name, err)
		}
		results = append(results, res)
	}
	return results, time.Since(start), download, nil
}

// specScriptSource feeds BuildPlan directly from workload specs.
type specScriptSource struct {
	gen   *workload.Generator
	specs []workload.Spec
	pos   int
}

// NextScripts implements sanitize.PackageSource.
func (s *specScriptSource) NextScripts() (string, map[string]string, bool) {
	for s.pos < len(s.specs) {
		spec := s.specs[s.pos]
		s.pos++
		if !spec.Category.HasScript() {
			return spec.Name, nil, true
		}
		p, err := s.gen.Build(spec)
		if err != nil {
			continue
		}
		return spec.Name, p.Scripts, true
	}
	return "", nil, false
}

// Table3 reproduces "Time required to initialize a repository"
// (pessimistic: download + deploy + sanitize; optimistic: cached
// originals).
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()

	// Policy deployment: key generation inside the enclave (measured).
	deployStart := time.Now()
	if _, err := keys.Generate("table3-tenant-key"); err != nil {
		return nil, err
	}
	deploy := time.Since(deployStart)

	results, sanitizeWall, downloadBytes, err := sanitizeSweep(cfg, cfg.EPC)
	if err != nil {
		return nil, err
	}
	// Modeled download time over the paper's intra-continent mirror.
	link := netsim.DefaultLinkModel(nil)
	downloadTime := link.RequestResponse(netsim.Europe, netsim.Europe, downloadBytes)

	var sgx time.Duration
	for _, r := range results {
		sgx += r.SGXOverhead
	}
	sanitizeTotal := sanitizeWall + sgx

	t := &Table{
		Title:  fmt.Sprintf("Table 3: repository initialization time (scale %.2f, %d packages)", cfg.Scale, len(results)),
		Header: []string{"Pessimistic", "Optimistic", "Operation"},
		Rows: [][]string{
			{fmtMinutes(downloadTime), "0.0 min", "Download packages (modeled)"},
			{fmtMinutes(deploy), fmtMinutes(deploy), "Policy deployment"},
			{fmtMinutes(sanitizeTotal), fmtMinutes(sanitizeTotal), "Sanitize packages (measured + SGX model)"},
			{fmtMinutes(downloadTime + deploy + sanitizeTotal), fmtMinutes(deploy + sanitizeTotal), "Total"},
		},
		Notes: []string{
			fmt.Sprintf("downloaded %s of packages", fmtBytesMB(downloadBytes)),
			"paper (full scale): pessimistic 30 min, optimistic 13 min",
		},
	}
	return t, nil
}

// Table4 reproduces the Spearman correlations between package
// properties and the proportional time contribution of each
// sanitization phase.
func Table4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	results, _, _, err := sanitizeSweep(cfg, cfg.EPC)
	if err != nil {
		return nil, err
	}
	var files, sizes []float64
	shares := map[string][]float64{}
	phaseNames := []string{"archive, compress", "check integrity", "generate signatures", "modify scripts"}
	for _, r := range results {
		total := float64(r.Phases.Total())
		if total == 0 {
			continue
		}
		files = append(files, float64(r.FileCount))
		sizes = append(sizes, float64(r.UncompressedSize))
		shares["archive, compress"] = append(shares["archive, compress"], float64(r.Phases.Archive)/total)
		shares["check integrity"] = append(shares["check integrity"], float64(r.Phases.CheckIntegrity)/total)
		shares["generate signatures"] = append(shares["generate signatures"], float64(r.Phases.GenerateSigs)/total)
		shares["modify scripts"] = append(shares["modify scripts"], float64(r.Phases.ModifyScripts)/total)
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 4: Spearman ρ of phase time share vs package properties (n=%d)", len(files)),
		Header: []string{"Operation", "vs number of files", "vs package size"},
	}
	for _, name := range phaseNames {
		cf, err := stats.Spearman(files, shares[name])
		if err != nil {
			return nil, err
		}
		cs, err := stats.Spearman(sizes, shares[name])
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name, cf.String(), cs.String()})
	}
	t.Notes = append(t.Notes,
		"paper: archive vs size +.61; check integrity vs size -.93; signatures vs files +.69")
	return t, nil
}

// Fig8 reproduces "Time required to sanitize a package, depending on
// the number of files and size".
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	results, _, _, err := sanitizeSweep(cfg, cfg.EPC)
	if err != nil {
		return nil, err
	}
	var times []float64
	var exceeds int
	for _, r := range results {
		times = append(times, float64(r.InSGXTime())/float64(time.Millisecond))
		if r.ExceedsEPC {
			exceeds++
		}
	}
	sum, err := stats.Summarize(times)
	if err != nil {
		return nil, err
	}
	// Correlations with the two axes of the figure.
	var files, sizes []float64
	for _, r := range results {
		files = append(files, float64(r.FileCount))
		sizes = append(sizes, float64(r.UncompressedSize))
	}
	corrFiles, err := stats.Spearman(files, times)
	if err != nil {
		return nil, err
	}
	corrSize, err := stats.Spearman(sizes, times)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 8: per-package sanitization time (n=%d, in-SGX model)", len(times)),
		Header: []string{"Percentile", "Time"},
		Rows: [][]string{
			{"p50", fmt.Sprintf("%.1f ms", sum.P50)},
			{"p75", fmt.Sprintf("%.1f ms", sum.P75)},
			{"p95", fmt.Sprintf("%.1f ms", sum.P95)},
			{"p100 (max)", fmt.Sprintf("%.1f ms", sum.Max)},
		},
		Notes: []string{
			fmt.Sprintf("time vs files: %s; time vs size: %s", corrFiles, corrSize),
			fmt.Sprintf("%d packages exceed the EPC", exceeds),
			"paper: p50 11 ms, p75 36 ms, p95 422 ms, max 30 s",
		},
	}
	return t, nil
}

// Fig9 reproduces "Increase of package size caused by sanitization".
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	results, _, _, err := sanitizeSweep(cfg, cfg.EPC)
	if err != nil {
		return nil, err
	}
	var overheads, files []float64
	var before, after int64
	for _, r := range results {
		overheads = append(overheads, r.SizeOverheadPercent())
		files = append(files, float64(r.FileCount))
		before += r.OriginalSize
		after += r.SanitizedSize
	}
	sum, err := stats.Summarize(overheads)
	if err != nil {
		return nil, err
	}
	corr, err := stats.Spearman(files, overheads)
	if err != nil {
		return nil, err
	}
	total := 100 * float64(after-before) / float64(before)
	t := &Table{
		Title:  fmt.Sprintf("Figure 9: package size overhead after sanitization (n=%d)", len(overheads)),
		Header: []string{"Percentile", "Size overhead"},
		Rows: [][]string{
			{"p50", fmt.Sprintf("%.0f%%", sum.P50)},
			{"p75", fmt.Sprintf("%.0f%%", sum.P75)},
			{"p95", fmt.Sprintf("%.0f%%", sum.P95)},
		},
		Notes: []string{
			fmt.Sprintf("total repository size: %s -> %s (+%.1f%%)", fmtBytesMB(before), fmtBytesMB(after), total),
			fmt.Sprintf("overhead vs file count: %s", corr),
			"paper: p50 +12%, p75 +27%, p95 +76%; total +3.6% (3000 MB -> 3110 MB)",
		},
	}
	return t, nil
}

// Fig12 reproduces the in-SGX vs native sanitization comparison.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	// One sweep yields both series: native times are measured and the
	// SGX model adds the enclave overhead per package.
	results, _, _, err := sanitizeSweep(cfg, cfg.EPC)
	if err != nil {
		return nil, err
	}
	var native, inSGX []time.Duration
	var nativeTotal, sgxTotal time.Duration
	var exceed []float64
	for _, r := range results {
		native = append(native, r.Phases.Total())
		inSGX = append(inSGX, r.InSGXTime())
		nativeTotal += r.Phases.Total()
		sgxTotal += r.InSGXTime()
		if r.ExceedsEPC {
			exceed = append(exceed, float64(r.InSGXTime())/float64(r.Phases.Total()))
		}
	}
	sn, err := stats.DurationSummary(native)
	if err != nil {
		return nil, err
	}
	ss, err := stats.DurationSummary(inSGX)
	if err != nil {
		return nil, err
	}
	ratio := stats.Ratio(ss, sn)
	t := &Table{
		Title:  fmt.Sprintf("Figure 12: sanitization inside vs outside SGX (n=%d)", len(native)),
		Header: []string{"Percentile", "Without SGX", "With SGX", "Overhead"},
		Rows: [][]string{
			{"p50", fmt.Sprintf("%.2f ms", sn.P50), fmt.Sprintf("%.2f ms", ss.P50), fmt.Sprintf("%.2fx", ratio.P50)},
			{"p75", fmt.Sprintf("%.2f ms", sn.P75), fmt.Sprintf("%.2f ms", ss.P75), fmt.Sprintf("%.2fx", ratio.P75)},
			{"p95", fmt.Sprintf("%.2f ms", sn.P95), fmt.Sprintf("%.2f ms", ss.P95), fmt.Sprintf("%.2fx", ratio.P95)},
		},
		Notes: []string{
			fmt.Sprintf("total: %s native -> %s in SGX (%.2fx)",
				fmtMinutes(nativeTotal), fmtMinutes(sgxTotal), float64(sgxTotal)/float64(nativeTotal)),
			"paper: 1.18x p50, 1.12x p75, 1.16x p95; 1.96x above EPC; total 9.5 -> 13.6 min (1.43x)",
		},
	}
	if len(exceed) > 0 {
		m, _ := stats.Mean(exceed)
		t.Notes = append(t.Notes, fmt.Sprintf("%d packages exceed EPC, mean overhead %.2fx", len(exceed), m))
	}
	return t, nil
}

// AblationEPCSize sweeps the enclave page cache size against a ladder
// of package working sets, showing how the paging threshold moves — the
// DESIGN.md ablation for the EPC cost model. (The factors come from the
// calibrated cost model directly; Figure 12 measures the same model
// against real sanitization runs.)
func AblationEPCSize(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	workingSets := []int64{16 << 20, 64 << 20, 128 << 20, 192 << 20, 256 << 20, 512 << 20}
	epcSizes := []int64{32, 64, 128, 256}
	t := &Table{
		Title:  "Ablation: modeled SGX slowdown factor vs EPC size and package working set",
		Header: []string{"Working set"},
	}
	for _, epcMB := range epcSizes {
		t.Header = append(t.Header, fmt.Sprintf("EPC %d MB", epcMB))
	}
	for _, ws := range workingSets {
		row := []string{fmt.Sprintf("%d MB", ws>>20)}
		for _, epcMB := range epcSizes {
			epc := enclave.DefaultCostModel()
			epc.EPCBytes = epcMB << 20
			row = append(row, fmt.Sprintf("%.2fx", epc.Factor(ws)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"below the EPC the factor is the constant in-enclave overhead (1.18x); above it, paging ramps to 1.96x",
		"the paper's testbed reserves 128 MB (SGXv1); larger EPCs push the paging cliff to larger packages")
	return t, nil
}
