package experiments

import "testing"

// TestSeedDeterminism runs registered experiments twice with the same
// Config.Seed and requires byte-identical rendered tables. The subset
// covers each deterministic-by-construction family — census counts
// (table1/table2), seeded quorum trials (fig13), and the edge tier's
// modeled-clock client simulation (edge-fanout); experiments that
// render wall-clock CPU measurements (fig10/fig11, sanitization,
// restart, soak) are inherently run-to-run variable and are excluded,
// but their row structure is covered by their own tests.
func TestSeedDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "table2", "fig13", "edge-fanout"} {
		t.Run(id, func(t *testing.T) {
			r, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			run := func() string {
				tbl, err := r.Run(testCfg())
				if err != nil {
					t.Fatal(err)
				}
				return tbl.Render()
			}
			first, second := run(), run()
			if first != second {
				t.Fatalf("two runs with the same seed differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
			}
		})
	}
}
