package experiments

//lint:file-allow detrand read-under-refresh measures real read latencies while a sanitization cycle runs; wall-clock by design

import (
	"fmt"
	"time"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/stats"
	"tsr/internal/tsr"
)

// ReadUnderRefresh measures the read tier while the trusted pipeline
// runs: index and package fetch latencies with the repository idle,
// versus the same reads issued while a worst-case refresh — a plan
// change forcing a full re-sanitization — is in flight. Because reads
// are served from the atomically published snapshot, they never wait on
// the refresh lock; the QoS separation between the serving tier and the
// trusted pipeline that the paper's plain-mirror deployment model
// (§4.3) requires.
func ReadUnderRefresh(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01)
	w, err := NewWorld(cfg, nil, false) // runs the initial refresh
	if err != nil {
		return nil, err
	}
	signed, err := w.Tenant.FetchIndex()
	if err != nil {
		return nil, err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return nil, err
	}
	if len(ix.Entries) == 0 {
		return nil, fmt.Errorf("read-under-refresh: served index is empty")
	}
	probe := ix.Entries[0].Name

	sample := func(stop func() bool) (idx, pkg []float64, err error) {
		for !stop() {
			t0 := time.Now()
			if _, err := w.Tenant.FetchIndex(); err != nil {
				return nil, nil, err
			}
			idx = append(idx, float64(time.Since(t0))/float64(time.Millisecond))
			t0 = time.Now()
			if _, err := w.Tenant.FetchPackage(probe); err != nil {
				return nil, nil, err
			}
			pkg = append(pkg, float64(time.Since(t0))/float64(time.Millisecond))
		}
		return idx, pkg, nil
	}

	// Idle baseline: a fixed number of read pairs.
	baseReads := 0
	baseIdx, basePkg, err := sample(func() bool { baseReads++; return baseReads > 400 })
	if err != nil {
		return nil, err
	}

	// Invalidate the sanitization plan: a new account-creating package
	// changes the canonical preamble, so the next refresh re-sanitizes
	// the whole population — the longest cycle the pipeline has.
	p := &apk.Package{
		Name: "zzz-read-under-refresh", Version: "1.0-r0",
		Files:   []apk.File{{Path: "/usr/bin/zzz-rur", Mode: 0o755, Content: []byte("rur")}},
		Scripts: map[string]string{"post-install": "adduser -S readpath\n"},
	}
	if err := apk.Sign(p, w.Distro); err != nil {
		return nil, err
	}
	if err := w.Repo.Publish(p); err != nil {
		return nil, err
	}
	for _, m := range w.Mirrors {
		m.Sync(w.Repo)
	}

	done := make(chan struct{})
	var refreshErr error
	var refreshStats *tsr.RefreshStats
	start := time.Now()
	go func() {
		defer close(done)
		refreshStats, refreshErr = w.Tenant.Refresh()
	}()
	duringIdx, duringPkg, err := sample(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	if err != nil {
		return nil, err
	}
	<-done
	wall := time.Since(start)
	if refreshErr != nil {
		return nil, refreshErr
	}

	t := &Table{
		Title:  "Read latency under refresh (snapshot read path; ms)",
		Header: []string{"Phase", "Read", "Samples", "p50", "p99", "Max"},
	}
	row := func(phase, read string, xs []float64) {
		if len(xs) == 0 {
			t.Rows = append(t.Rows, []string{phase, read, "0", "-", "-", "-"})
			return
		}
		t.Rows = append(t.Rows, []string{
			phase, read, fmt.Sprint(len(xs)),
			fmt.Sprintf("%.3f ms", stats.MustPercentile(xs, 50)),
			fmt.Sprintf("%.3f ms", stats.MustPercentile(xs, 99)),
			fmt.Sprintf("%.3f ms", stats.MustPercentile(xs, 100)),
		})
	}
	row("idle", "index", baseIdx)
	row("idle", "package", basePkg)
	row("during refresh", "index", duringIdx)
	row("during refresh", "package", duringPkg)
	t.Notes = append(t.Notes,
		fmt.Sprintf("refresh wall clock %s (re-sanitized %d packages after a plan change) — reads were served from the previous snapshot the whole time",
			fmtDuration(wall), refreshStats.Sanitized),
		"byte caches are content-addressed per generation: the pipeline writes the new generation beside the served one, so stale-snapshot reads stay cache hits until the swap",
	)
	return t, nil
}
