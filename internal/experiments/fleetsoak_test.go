package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestFleetSoak runs the full composed-failure soak at test scale and
// asserts the PR's acceptance criteria: zero invariant violations
// across at least five composed failure events, full convergence at
// quiesce, and a BENCH document with nonzero latency quantiles.
func TestFleetSoak(t *testing.T) {
	cfg := testCfg()
	cfg.Seed = 3
	res, err := FleetSoakRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations: %v", res.InvariantViolations, res.Violations)
	}
	if res.ComposedFailures < 5 {
		t.Fatalf("only %d composed failure events, want >= 5", res.ComposedFailures)
	}
	if res.LaggingAtQuiesce != 0 {
		t.Fatalf("%d clients lagging at quiesce", res.LaggingAtQuiesce)
	}
	if res.IndexReads == 0 || res.PackageReads == 0 {
		t.Fatalf("no successful reads: %d index / %d package", res.IndexReads, res.PackageReads)
	}
	if res.IndexLatency.P50Ms <= 0 || res.IndexLatency.P99Ms <= 0 {
		t.Fatalf("index latency quantiles not populated: %+v", res.IndexLatency)
	}
	if res.PackageLatency.P50Ms <= 0 || res.PackageLatency.P99Ms <= 0 {
		t.Fatalf("package latency quantiles not populated: %+v", res.PackageLatency)
	}
	if !res.OriginWarmRestart {
		t.Fatal("origin restart did not come back warm")
	}
	if res.CrowdShed == 0 {
		t.Fatal("flash crowds at 2x max-inflight shed nothing")
	}
	if res.InvariantChecks == 0 {
		t.Fatal("invariant checker saw no reads")
	}

	// The BENCH document round-trips and carries the violation count.
	dir := t.TempDir()
	path, err := res.WriteBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH document is not valid JSON: %v", err)
	}
	if v, ok := doc["invariant_violations"].(float64); !ok || v != 0 {
		t.Fatalf("BENCH invariant_violations = %v, want 0", doc["invariant_violations"])
	}
	if _, ok := doc["index_latency"].(map[string]any); !ok {
		t.Fatalf("BENCH missing index_latency: %s", data)
	}
}

// TestFleetSoakTableAndBenchEmission exercises the registered runner:
// the table renders and the BENCH file lands in Config.BenchDir.
func TestFleetSoakTableAndBenchEmission(t *testing.T) {
	cfg := testCfg()
	cfg.Seed = 3
	cfg.BenchDir = t.TempDir()
	tbl, err := FleetSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
	if _, err := os.Stat(cfg.BenchDir + "/BENCH_fleet_soak.json"); err != nil {
		t.Fatalf("BENCH file not emitted: %v", err)
	}
}
