package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"tsr/internal/apk"
	"tsr/internal/edge"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/stats"
	"tsr/internal/store"
)

// countingOrigin wraps the tenant repository and counts every request
// that actually reaches the origin — the quantity the edge tier exists
// to reduce.
type countingOrigin struct {
	tenant    origin
	indexes   atomic.Int64
	deltas    atomic.Int64
	packages  atomic.Int64
	manifests atomic.Int64
	ranges    atomic.Int64
}

// origin is the read surface of *tsr.Repo the experiment wraps.
type origin interface {
	FetchIndexTagged() (*index.Signed, string, error)
	FetchIndexDelta(sinceETag string) (*index.Delta, error)
	FetchPackage(name string) ([]byte, error)
}

func (o *countingOrigin) FetchIndexTagged() (*index.Signed, string, error) {
	o.indexes.Add(1)
	return o.tenant.FetchIndexTagged()
}

func (o *countingOrigin) FetchIndexDelta(since string) (*index.Delta, error) {
	o.deltas.Add(1)
	return o.tenant.FetchIndexDelta(since)
}

func (o *countingOrigin) FetchPackage(name string) ([]byte, error) {
	o.packages.Add(1)
	return o.tenant.FetchPackage(name)
}

// The differential-sync surface forwards when the wrapped origin has
// one (*tsr.Repo and originGate both do), counting manifest and range
// requests the way whole-package pulls are counted.
func (o *countingOrigin) FetchChunkManifest(name string) (*store.ChunkManifest, error) {
	t, ok := o.tenant.(interface {
		FetchChunkManifest(string) (*store.ChunkManifest, error)
	})
	if !ok {
		return nil, fmt.Errorf("experiments: origin %T has no chunk-manifest surface", o.tenant)
	}
	o.manifests.Add(1)
	return t.FetchChunkManifest(name)
}

func (o *countingOrigin) FetchPackageRange(name string, off, length int64) ([]byte, error) {
	t, ok := o.tenant.(interface {
		FetchPackageRange(string, int64, int64) ([]byte, error)
	})
	if !ok {
		return nil, fmt.Errorf("experiments: origin %T has no range surface", o.tenant)
	}
	o.ranges.Add(1)
	return t.FetchPackageRange(name, off, length)
}

func (o *countingOrigin) reset() {
	o.indexes.Store(0)
	o.deltas.Store(0)
	o.packages.Store(0)
	o.manifests.Store(0)
	o.ranges.Store(0)
}

// edgeContinents is the replica placement rotation: the paper's three
// mirror continents first, then the edge-only ones.
var edgeContinents = []netsim.Continent{
	netsim.Europe, netsim.NorthAmerica, netsim.Asia, netsim.SouthAmerica, netsim.Oceania,
}

// EdgeFanoutResult is one measured configuration of the edge tier.
type EdgeFanoutResult struct {
	// Replicas is the edge count (0 = clients read the origin only).
	Replicas int
	// Clients is the simulated client count (spread over continents).
	Clients int
	// PackageRequests is the number of warm package fetches measured.
	PackageRequests int
	// OriginPackagePulls counts how many of those reached the origin.
	OriginPackagePulls int64
	// Absorption is the fraction of measured package requests the edge
	// tier absorbed (1 - origin pulls / requests).
	Absorption float64
	// Throughput is the aggregate client fetch rate in packages per
	// modeled second: clients run concurrently, so it is total requests
	// over the slowest client's modeled elapsed time.
	Throughput float64
	// MeanLatencyMs / P99LatencyMs are per-request modeled latencies.
	MeanLatencyMs, P99LatencyMs float64
}

// EdgeFanoutRun measures one replica count: a world is built, replicas
// are placed round-robin across continents and synced, clients on every
// continent warm the edge caches with one pass over the probe set, and
// a second (measured) pass reports origin absorption and aggregate
// throughput. Client-side network time is modeled on per-client virtual
// clocks over the jitter-free default WAN model, so results are
// deterministic and clients are genuinely concurrent in modeled time.
func EdgeFanoutRun(cfg Config, replicaCount int) (*EdgeFanoutResult, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01)
	w, err := NewWorld(cfg, nil, false)
	if err != nil {
		return nil, err
	}
	counted := &countingOrigin{tenant: w.Tenant}
	trust := keys.NewRing(w.Tenant.PublicKey())

	// Edges come before the origin in the endpoint list: the ranking is
	// stable, so on an RTT tie (a client on the origin's own continent)
	// the edge still absorbs the request and the origin stays the
	// fallback of last resort. The cache budget is sized to hold the
	// probe set — the warm steady state this experiment measures.
	replicas := make([]*edge.Replica, replicaCount)
	var endpoints []edge.Endpoint
	for i := range replicas {
		replicas[i] = &edge.Replica{
			RepoID:      w.Tenant.ID,
			Origin:      counted,
			Continent:   edgeContinents[i%len(edgeContinents)],
			TrustRing:   trust,
			CacheBudget: 1 << 30,
		}
		if err := replicas[i].Sync(); err != nil {
			return nil, err
		}
		endpoints = append(endpoints, edge.Endpoint{
			Name:      fmt.Sprintf("edge-%d-%s", i, replicas[i].Continent),
			Continent: replicas[i].Continent,
			Fetcher:   replicas[i],
		})
	}
	endpoints = append(endpoints, edge.Endpoint{Name: "origin", Continent: netsim.Europe, Fetcher: counted})

	// Probe set: every client fetches the same packages, the favorable
	// (and realistic) case for a pull-through cache.
	signed, _, err := w.Tenant.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return nil, err
	}
	probes := ix.Names()
	if max := cfg.MaxPackages; max > 0 && len(probes) > max {
		probes = probes[:max]
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("edge-fanout: empty index")
	}

	// Two clients per continent, each with its own virtual clock.
	link := netsim.DefaultLinkModel(nil) // jitter-free: deterministic
	type simClient struct {
		fc    *edge.FailoverClient
		clock *netsim.VirtualClock
	}
	var clients []simClient
	for _, cont := range edgeContinents {
		for i := 0; i < 2; i++ {
			clock := netsim.NewVirtualClock(time.Time{})
			clients = append(clients, simClient{
				fc: &edge.FailoverClient{
					Local:     cont,
					Link:      link,
					Clock:     clock,
					TrustRing: trust,
					Endpoints: endpoints,
				},
				clock: clock,
			})
		}
	}

	pass := func() error {
		for _, c := range clients {
			if _, err := c.fc.FetchIndex(); err != nil {
				return err
			}
			for _, name := range probes {
				if _, err := c.fc.FetchPackage(name); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Warm-up: fills the edge pull-through caches.
	if err := pass(); err != nil {
		return nil, err
	}

	// Measured pass over warm edges.
	counted.reset()
	baseline := make([]time.Time, len(clients))
	for i, c := range clients {
		baseline[i] = c.clock.Now()
	}
	if err := pass(); err != nil {
		return nil, err
	}
	res := &EdgeFanoutResult{
		Replicas:           replicaCount,
		Clients:            len(clients),
		PackageRequests:    len(clients) * len(probes),
		OriginPackagePulls: counted.packages.Load(),
	}
	res.Absorption = 1 - float64(res.OriginPackagePulls)/float64(res.PackageRequests)
	var slowest time.Duration
	var latencies []float64
	for i, c := range clients {
		elapsed := c.clock.Now().Sub(baseline[i])
		if elapsed > slowest {
			slowest = elapsed
		}
		perReq := float64(elapsed) / float64(len(probes)+1) / float64(time.Millisecond)
		latencies = append(latencies, perReq)
	}
	if slowest > 0 {
		res.Throughput = float64(res.PackageRequests) / slowest.Seconds()
	}
	sort.Float64s(latencies)
	if mean, err := stats.Mean(latencies); err == nil {
		res.MeanLatencyMs = mean
	}
	res.P99LatencyMs = stats.MustPercentile(latencies, 99)
	return res, nil
}

// EdgeByzantineResult is the frozen/tampering-replica scenario.
type EdgeByzantineResult struct {
	// RejectedStale counts validly-signed-but-frozen indexes refused.
	RejectedStale int64
	// RejectedBytes counts tampered package bodies refused.
	RejectedBytes int64
	// Failovers counts requests rerouted to honest endpoints.
	Failovers int64
	// FinalSequence is the index sequence every client converged on;
	// CurrentSequence is the origin's.
	FinalSequence, CurrentSequence uint64
	// UnverifiedBytes counts bytes returned to clients without hash
	// verification — zero by construction; reported to make the claim
	// measurable.
	UnverifiedBytes int64
}

// EdgeFanoutByzantine runs the adversarial scenario: four replicas, the
// one nearest to the clients replays a frozen snapshot and a second one
// tampers with package bodies. Clients (quorum mode K=3 for the index)
// must converge on the honest edges: every accepted index carries the
// origin's current sequence and every returned package verified against
// it.
func EdgeFanoutByzantine(cfg Config) (*EdgeByzantineResult, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01)
	w, err := NewWorld(cfg, nil, false)
	if err != nil {
		return nil, err
	}
	trust := keys.NewRing(w.Tenant.PublicKey())
	conts := []netsim.Continent{netsim.Europe, netsim.Europe, netsim.NorthAmerica, netsim.Asia}
	replicas := make([]*edge.Replica, len(conts))
	var endpoints []edge.Endpoint
	for i, cont := range conts {
		replicas[i] = &edge.Replica{RepoID: w.Tenant.ID, Origin: w.Tenant, Continent: cont, TrustRing: trust}
		if err := replicas[i].Sync(); err != nil {
			return nil, err
		}
		endpoints = append(endpoints, edge.Endpoint{
			Name: fmt.Sprintf("edge-%d-%s", i, cont), Continent: cont, Fetcher: replicas[i],
		})
	}

	// The adversary: the clients' nearest replica freezes at the
	// current generation; another tampers with every package body.
	replicas[0].SetBehavior(edge.Freeze)
	replicas[1].SetBehavior(edge.Corrupt)

	// The origin moves on (a new generation); honest replicas follow.
	if err := advanceWorld(w, "zzz-byzantine-edge", "1.0-r0"); err != nil {
		return nil, err
	}
	for _, rep := range replicas {
		if err := rep.Sync(); err != nil {
			return nil, err
		}
	}

	cur, _, err := w.Tenant.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	curIx, err := index.Decode(cur.Raw)
	if err != nil {
		return nil, err
	}

	res := &EdgeByzantineResult{CurrentSequence: curIx.Sequence}
	// The probe set ends with the freshly published package: the frozen
	// replica does not have it, so serving it forces the failover chain
	// frozen → tampering → honest. The name sorts last in the index, so
	// it is filtered from the prefix before being appended exactly once.
	probes := curIx.Names()
	if n := len(probes); n > 0 && probes[n-1] == "zzz-byzantine-edge" {
		probes = probes[:n-1]
	}
	if len(probes) > 7 {
		probes = probes[:7]
	}
	probes = append(probes, "zzz-byzantine-edge")
	for i := 0; i < 4; i++ {
		fc := &edge.FailoverClient{
			Local:     netsim.Europe,
			Link:      netsim.DefaultLinkModel(nil),
			Clock:     netsim.NewVirtualClock(time.Time{}),
			TrustRing: trust,
			Endpoints: endpoints,
			QuorumK:   3,
		}
		// Quorum read: the two honest edges outvote the frozen one, so
		// the client learns the current sequence despite its nearest
		// edge replaying the past.
		signed, err := fc.FetchIndex()
		if err != nil {
			return nil, err
		}
		ix, err := index.Decode(signed.Raw)
		if err != nil {
			return nil, err
		}
		if res.FinalSequence == 0 || ix.Sequence < res.FinalSequence {
			res.FinalSequence = ix.Sequence
		}
		// Single-endpoint read after the quorum: the frozen replica is
		// now rejected by the freshness floor alone and the client fails
		// over to a current edge.
		fc.QuorumK = 0
		if _, err := fc.FetchIndex(); err != nil {
			return nil, fmt.Errorf("byzantine scenario: client %d: post-quorum read: %w", i, err)
		}
		for _, name := range probes {
			if _, err := fc.FetchPackage(name); err != nil {
				return nil, fmt.Errorf("byzantine scenario: client %d: %w", i, err)
			}
		}
		s := fc.Stats()
		res.RejectedStale += s.RejectedStale
		res.RejectedBytes += s.RejectedBytes
		res.Failovers += s.Failovers
	}
	return res, nil
}

// advanceWorld publishes one new package and refreshes the tenant,
// producing a new origin index generation.
func advanceWorld(w *World, name, version string) error {
	return advanceWorldCtx(context.Background(), w, name, version)
}

// advanceWorldCtx is advanceWorld under a caller context, so a traced
// ctx yields an origin.refresh span tree per published generation (the
// fleet soak reports the per-stage breakdown from these).
func advanceWorldCtx(ctx context.Context, w *World, name, version string) error {
	p := &apk.Package{
		Name: name, Version: version,
		Files: []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + version)}},
	}
	if err := apk.Sign(p, w.Distro); err != nil {
		return err
	}
	if err := w.Repo.Publish(p); err != nil {
		return err
	}
	for _, m := range w.Mirrors {
		m.Sync(w.Repo)
	}
	_, err := w.Tenant.RefreshCtx(ctx)
	return err
}

// EdgeFanout renders the experiment table: origin absorption and
// aggregate client throughput at 1, 4, and 16 replicas, plus the
// byzantine scenario.
func EdgeFanout(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Edge fanout (warm replicas; aggregate over clients on 5 continents)",
		Header: []string{"Replicas", "Clients", "Pkg reqs", "Origin pulls", "Absorbed", "Throughput", "Mean lat", "p99 lat"},
	}
	for _, n := range []int{1, 4, 16} {
		res, err := EdgeFanoutRun(cfg, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(res.Replicas),
			fmt.Sprint(res.Clients),
			fmt.Sprint(res.PackageRequests),
			fmt.Sprint(res.OriginPackagePulls),
			fmt.Sprintf("%.1f%%", res.Absorption*100),
			fmt.Sprintf("%.0f pkg/s", res.Throughput),
			fmt.Sprintf("%.1f ms", res.MeanLatencyMs),
			fmt.Sprintf("%.1f ms", res.P99LatencyMs),
		})
	}
	byz, err := EdgeFanoutByzantine(cfg)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"replicas sync via index deltas and serve the origin's signatures verbatim; clients verify end-to-end",
		fmt.Sprintf("byzantine scenario (1 frozen + 1 tampering of 4): clients converged on sequence %d (origin: %d), %d stale indexes and %d tampered packages rejected, %d failovers, 0 unverified bytes accepted",
			byz.FinalSequence, byz.CurrentSequence, byz.RejectedStale, byz.RejectedBytes, byz.Failovers),
	)
	return t, nil
}
