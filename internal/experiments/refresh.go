package experiments

//lint:file-allow detrand the workers ablation reports real wall-clock refresh times; wall-clock by design

import (
	"fmt"
	"time"
)

// AblationRefreshWorkers sweeps the refresh pipeline concurrency over a
// cold repository initialization: each worker count gets a fresh tenant
// (isolated caches), so every run downloads and sanitizes the full
// population. The wall-clock column is real time — the sanitization
// parallelism is real CPU parallelism, while the download column is
// modeled virtual time (batched transfers share the path bandwidth and
// save round trips). A final row refreshes the last tenant a second
// time after a forced replan: with an unchanged plan every package is a
// content-addressed cache hit and nothing is re-sanitized.
func AblationRefreshWorkers(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01)
	t := &Table{
		Title:  "Ablation: cold refresh vs pipeline workers (content-addressed cache, worker-batched costs)",
		Header: []string{"Workers", "Wall clock", "Sanitized", "Cache hits", "Modeled download"},
	}
	var baseline time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		// A fresh world per row: sharing one store across rows would
		// grow the heap with every tenant's private cache copy and
		// penalize the later (wider) rows with GC pressure.
		w, err := NewWorld(cfg, nil, false)
		if err != nil {
			return nil, err
		}
		id, _, _, err := w.Service.DeployPolicy(w.PolicyRaw)
		if err != nil {
			return nil, err
		}
		tenant, err := w.Service.Repo(id)
		if err != nil {
			return nil, err
		}
		tenant.SetWorkers(workers)
		start := time.Now()
		stats, err := tenant.Refresh()
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		if workers == 1 {
			baseline = wall
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(workers),
			fmtDuration(wall),
			fmt.Sprint(stats.Sanitized),
			fmt.Sprint(stats.CacheHits),
			fmtDuration(stats.DownloadTime),
		})
		if workers == 8 {
			// Warm path: force a replan (as a restart would) and
			// refresh again — the rebuilt plan hashes identically, so
			// the whole population returns as cache hits.
			tenant.ForceReplan()
			start = time.Now()
			warm, err := tenant.Refresh()
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				"8 (replan, warm cache)",
				fmtDuration(time.Since(start)),
				fmt.Sprint(warm.Sanitized),
				fmt.Sprint(warm.CacheHits),
				fmtDuration(warm.DownloadTime),
			})
		}
	}
	if baseline > 0 && len(t.Rows) >= 3 {
		t.Notes = append(t.Notes, fmt.Sprintf("sequential baseline %s; the speedup is bounded by CPU cores and the per-package critical path", fmtDuration(baseline)))
	}
	t.Notes = append(t.Notes,
		"per-package failures no longer abort a cycle; they surface in RefreshStats.Errors and retry next refresh")
	return t, nil
}
