package experiments

import (
	"fmt"
	"sort"
)

// Runner is one registered experiment.
type Runner struct {
	// ID is the command-line name ("table1", "fig13", ...).
	ID string
	// Paper identifies the table/figure reproduced.
	Paper string
	// Run executes the experiment.
	Run func(Config) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"table1", "Table 1", Table1},
		{"table2", "Table 2", Table2},
		{"table3", "Table 3", Table3},
		{"table4", "Table 4", Table4},
		{"fig8", "Figure 8", Fig8},
		{"fig9", "Figure 9", Fig9},
		{"fig10", "Figure 10", Fig10},
		{"fig11", "Figure 11", Fig11},
		{"fig12", "Figure 12", Fig12},
		{"fig13", "Figure 13", Fig13},
		{"ablation-epc", "DESIGN.md ablation 5", AblationEPCSize},
		{"ablation-quorum", "DESIGN.md ablation 1", AblationQuorumStrategy},
		{"ablation-parallel", "Table 3 future work", AblationParallelDownload},
		{"ablation-workers", "refresh pipeline scaling", AblationRefreshWorkers},
		{"read-under-refresh", "non-blocking snapshot read path", ReadUnderRefresh},
		{"edge-fanout", "edge replication tier", EdgeFanout},
		{"crash-restart", "durable store warm restart", CrashRestart},
		{"flash-crowd", "request coalescing + admission control", FlashCrowd},
		{"fleet-soak", "ROADMAP item 5: composed-failure soak", FleetSoak},
		{"wire-sync", "wire efficiency: gzip index + chunked differential sync", WireSync},
		{"multi-tenant-scale", "multi-tenant origin scale-out under the shared scheduler", MultiTenantScale},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	var ids []string
	for _, r := range All() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return Runner{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
