package experiments

//lint:file-allow detrand this experiment measures real wall-clock latency under admission control; its headline numbers are timings, not deterministic tables

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsr/internal/edge"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/obs"
	"tsr/internal/stats"
	"tsr/internal/store"
	"tsr/internal/trace"
	"tsr/internal/tsr"
)

// FlashCrowdResult measures the serving path under correlated load:
// request coalescing (the same cold package hit by K clients at once)
// and admission control (offered load at 2x the in-flight bound).
type FlashCrowdResult struct {
	// Clients is K, the concurrent requester count.
	Clients int

	// Coalescing tier. Seed behavior was K pulls / K fills / K fetches
	// for each of these; the acceptance floor is exactly 1.
	// EdgeOriginPulls: origin package pulls for K concurrent cold
	// misses of one package at an edge replica.
	EdgeOriginPulls int64
	// EdgeCoalesced: the K-1 requests that shared the one pull.
	EdgeCoalesced int64
	// OriginFills: download+re-sanitization runs for K concurrent
	// requests of one uncached package at the origin.
	OriginFills int64
	// OriginCoalesced: the K-1 requests that shared the one fill.
	OriginCoalesced int64
	// SyncFetches: origin index/delta round trips for K concurrent
	// Sync calls against one stale replica (a POST /sync storm).
	SyncFetches int64
	// SyncCoalesced: the K-1 syncs that shared the one fetch.
	SyncCoalesced int64

	// Admission control tier (over the obs-wrapped edge HTTP handler).
	MaxInflight int64
	// Offered / Served / Shed requests during the overload phase
	// (offered concurrency = 2x MaxInflight).
	Offered, Served int
	Shed            int64
	// UncontendedP99Ms is the served p99 with one client;
	// OverloadP99Ms the served p99 during the overload phase. The
	// acceptance criterion is Overload <= 10x Uncontended: shedding
	// must keep the served tail flat instead of letting queues grow.
	UncontendedP99Ms, OverloadP99Ms float64
}

// flashMaxInflight is the admission bound the overload phase runs
// against; offered concurrency is 2x this.
const flashMaxInflight = 8

// flashSettle is how long the orchestrator lets followers pile onto an
// open coalescing window before releasing the leader's gated upstream
// call. The leader is parked on a channel, so even on one CPU every
// follower gets scheduled into the flight within this window.
const flashSettle = 100 * time.Millisecond

// gatedOrigin wraps the counting origin and can hold one upstream call
// type open: the flash-crowd scenarios park the leader's origin pull
// (or delta fetch) on a gate while the other K-1 requesters arrive, so
// the coalescing window is deterministically open even on a single
// CPU, where fast CPU-bound fills would otherwise run to completion
// back-to-back and never overlap. This models the real condition the
// coalescing exists for — an upstream round trip that is slow relative
// to the arrival rate — without depending on host parallelism.
type gatedOrigin struct {
	inner *countingOrigin
	// pkgGate/deltaGate, when non-nil, block the corresponding call
	// until closed. pkgHit/deltaHit are closed when the first gated
	// call arrives (the leader is inside the window). Fields are set
	// and cleared only between scenarios, never while requesters run.
	pkgGate, deltaGate chan struct{}
	pkgHit, deltaHit   chan struct{}
	pkgOnce, deltaOnce sync.Once
}

func (g *gatedOrigin) FetchIndexTagged() (*index.Signed, string, error) {
	return g.inner.FetchIndexTagged()
}

func (g *gatedOrigin) FetchIndexDelta(since string) (*index.Delta, error) {
	if g.deltaGate != nil {
		g.deltaOnce.Do(func() { close(g.deltaHit) })
		<-g.deltaGate
	}
	return g.inner.FetchIndexDelta(since)
}

func (g *gatedOrigin) FetchPackage(name string) ([]byte, error) {
	if g.pkgGate != nil {
		g.pkgOnce.Do(func() { close(g.pkgHit) })
		<-g.pkgGate
	}
	return g.inner.FetchPackage(name)
}

// latchStore wraps the world's backing store and holds Get calls for
// keys matching an armed prefix — the same leader-parking trick as
// gatedOrigin, applied to the origin's own fill path (the original
// package read that feeds re-sanitization).
type latchStore struct {
	tsr.Store
	prefix string // armed key prefix ("" = disarmed)
	gate   chan struct{}
	hit    chan struct{}
	once   *sync.Once
	// hits counts Gets matching the armed prefix. During the origin
	// fill phase the armed prefix is the probe's original-package key,
	// read exactly once per resanitize run — so this IS the fill
	// count, measured at the source rather than derived from k minus
	// coalesced (which would miscount a late requester that got a
	// plain cache hit as an extra fill).
	hits atomic.Int64
}

func (s *latchStore) Get(key string) ([]byte, error) {
	if s.prefix != "" && strings.HasPrefix(key, s.prefix) {
		s.hits.Add(1)
		s.once.Do(func() { close(s.hit) })
		<-s.gate
	}
	return s.Store.Get(key)
}

// arm configures the latch for one scenario; the returned release
// opens the gate.
func (s *latchStore) arm(prefix string) (hit chan struct{}, release func()) {
	s.prefix = prefix
	s.gate = make(chan struct{})
	s.hit = make(chan struct{})
	s.once = &sync.Once{}
	return s.hit, func() { close(s.gate) }
}

func (s *latchStore) disarm() { s.prefix = "" }

// Iterate forwards the optional Iterable capability, keeping the
// wrapper transparent to the store's consumers.
func (s *latchStore) Iterate(fn func(store.Info) bool) error {
	if it, ok := s.Store.(store.Iterable); ok {
		return it.Iterate(fn)
	}
	return fmt.Errorf("latchStore: inner store is not iterable")
}

// flashServiceFloor is a synthetic per-request service time injected
// under the admission middleware for the overload phase. Real handler
// time at experiment scale is microseconds, which no finite offered
// load could saturate reproducibly; the floor models a saturated
// hardware service time so the shed/served split is deterministic.
const flashServiceFloor = 2 * time.Millisecond

// FlashCrowdRun measures one flash crowd of k clients.
func FlashCrowdRun(cfg Config, k int) (*FlashCrowdResult, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01)
	backing := &latchStore{Store: tsr.NewMemStore()}
	w, err := NewWorldWith(cfg, nil, false, WorldDeps{Store: backing})
	if err != nil {
		return nil, err
	}
	counted := &countingOrigin{tenant: w.Tenant}
	gated := &gatedOrigin{inner: counted}
	rep := &edge.Replica{
		RepoID:      w.Tenant.ID,
		Origin:      gated,
		Continent:   netsim.Europe,
		TrustRing:   keys.NewRing(w.Tenant.PublicKey()),
		CacheBudget: 1 << 30,
	}
	if err := rep.Sync(); err != nil {
		return nil, err
	}
	signed, _, err := w.Tenant.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	probe, err := firstPackageName(signed)
	if err != nil {
		return nil, err
	}
	res := &FlashCrowdResult{Clients: k}

	// release parks the main goroutine until the leader is inside its
	// gated upstream call, gives followers flashSettle to join the
	// flight, then opens the gate.
	release := func(hit chan struct{}, open func()) {
		<-hit
		time.Sleep(flashSettle)
		open()
	}

	// --- Edge coalescing: K concurrent cold misses, one package. The
	// leader's origin pull is held open while the crowd arrives. ---
	counted.reset()
	pkgGate, pkgHit := make(chan struct{}), make(chan struct{})
	gated.pkgGate, gated.pkgHit = pkgGate, pkgHit
	go release(pkgHit, func() { close(pkgGate) })
	if err := inParallel(k, func(int) error {
		_, err := rep.FetchPackage(probe)
		return err
	}); err != nil {
		return nil, err
	}
	gated.pkgGate = nil
	res.EdgeOriginPulls = counted.packages.Load()
	res.EdgeCoalesced = rep.Stats().CoalescedPulls

	// --- Origin fill coalescing: evict the probe's sanitized bytes so
	// every request needs the re-sanitization fill, and hold the
	// leader's original-package read open while the crowd arrives. ---
	if err := evictSanitized(backing, w.Tenant.ID, probe); err != nil {
		return nil, err
	}
	hit, open := backing.arm(w.Tenant.ID + "/orig/" + probe + "@")
	go release(hit, open)
	before := w.Tenant.CacheStats()
	backing.hits.Store(0)
	if err := inParallel(k, func(int) error {
		_, err := w.Tenant.FetchPackage(probe)
		return err
	}); err != nil {
		return nil, err
	}
	backing.disarm()
	after := w.Tenant.CacheStats()
	res.OriginCoalesced = after.CoalescedFills - before.CoalescedFills
	res.OriginFills = backing.hits.Load()

	// --- Sync storm: advance the origin one generation, then hit the
	// stale replica with K concurrent Sync calls; the leader's delta
	// fetch is held open while the storm arrives. ---
	if err := advanceWorld(w, "zzz-flash-crowd", "1.0-r0"); err != nil {
		return nil, err
	}
	counted.reset()
	syncsBefore := rep.Stats().CoalescedSyncs
	deltaGate, deltaHit := make(chan struct{}), make(chan struct{})
	gated.deltaGate, gated.deltaHit = deltaGate, deltaHit
	go release(deltaHit, func() { close(deltaGate) })
	if err := inParallel(k, func(int) error { return rep.Sync() }); err != nil {
		return nil, err
	}
	gated.deltaGate = nil
	res.SyncFetches = counted.deltas.Load() + counted.indexes.Load()
	res.SyncCoalesced = rep.Stats().CoalescedSyncs - syncsBefore

	// --- Admission control over the HTTP handler. ---
	if err := measureAdmission(rep, w.Tenant.ID, probe, res); err != nil {
		return nil, err
	}
	return res, nil
}

// evict deletes every store entry under a key prefix.
func (s *latchStore) evict(prefix string) error {
	var keys []string
	err := s.Iterate(func(info store.Info) bool {
		if strings.HasPrefix(info.Key, prefix) {
			keys = append(keys, info.Key)
		}
		return true
	})
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return fmt.Errorf("flash-crowd: no cached entry under %q to evict", prefix)
	}
	for _, key := range keys {
		if err := s.Delete(key); err != nil {
			return err
		}
	}
	return nil
}

// evictSanitized deletes the probe's sanitized cache entry, making the
// next request for it a cold fill.
func evictSanitized(s *latchStore, repoID, name string) error {
	return s.evict(repoID + "/san/" + name + "@")
}

// measureAdmission drives the obs-wrapped edge handler: a sequential
// uncontended phase, then an overload phase at 2x the in-flight bound,
// recording the shed count and the served latency tails.
func measureAdmission(rep *edge.Replica, repoID, probe string, res *FlashCrowdResult) error {
	res.MaxInflight = flashMaxInflight
	inner := edge.Handler(map[string]*edge.Replica{repoID: rep}, "flash-edge")
	slowed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(flashServiceFloor)
		inner.ServeHTTP(w, r)
	})
	// Tracing on at production defaults (head-sampled): the flash-crowd
	// latency tails are measured with the span layer in the path, so a
	// tracing regression shows up here before it ships.
	o := obs.New(obs.Options{MaxInflight: flashMaxInflight, Tracer: trace.NewTracer(trace.Config{Tier: "edge"})})
	handler := o.Wrap(slowed)
	path := "/repos/" + repoID + "/packages/" + probe

	request := func() (int, time.Duration) {
		rec := httptest.NewRecorder()
		start := time.Now()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, time.Since(start)
	}

	// Uncontended: one client, sequential.
	const uncontendedReqs = 24
	var uncontended []float64
	for i := 0; i < uncontendedReqs; i++ {
		code, d := request()
		if code != http.StatusOK {
			return fmt.Errorf("flash-crowd: uncontended request got HTTP %d", code)
		}
		uncontended = append(uncontended, float64(d)/float64(time.Millisecond))
	}
	sort.Float64s(uncontended)
	res.UncontendedP99Ms = stats.MustPercentile(uncontended, 99)

	// Overload: 2x max-inflight concurrent clients, several rounds
	// each, no backoff — the worst-case storm the limiter exists for.
	const rounds = 6
	clients := 2 * flashMaxInflight
	var mu sync.Mutex
	var served []float64
	var servedCount int
	err := inParallel(clients, func(int) error {
		for r := 0; r < rounds; r++ {
			code, d := request()
			switch code {
			case http.StatusOK:
				mu.Lock()
				served = append(served, float64(d)/float64(time.Millisecond))
				servedCount++
				mu.Unlock()
			case http.StatusTooManyRequests:
				// Shed: counted by the middleware.
			default:
				return fmt.Errorf("flash-crowd: overload request got HTTP %d", code)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	res.Offered = clients * rounds
	res.Served = servedCount
	res.Shed = o.Snapshot().ShedTotal
	sort.Float64s(served)
	if len(served) > 0 {
		res.OverloadP99Ms = stats.MustPercentile(served, 99)
	}
	return nil
}

// inParallel runs fn in k goroutines released together and returns the
// first error.
func inParallel(k int, fn func(i int) error) error {
	gate := make(chan struct{})
	errs := make(chan error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			errs <- fn(i)
		}(i)
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// firstPackageName returns the first package of a signed index — the
// shared probe every flash-crowd client requests.
func firstPackageName(signed *index.Signed) (string, error) {
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return "", err
	}
	names := ix.Names()
	if len(names) == 0 {
		return "", fmt.Errorf("flash-crowd: empty index")
	}
	return names[0], nil
}

// FlashCrowd renders the experiment table at K = 64.
func FlashCrowd(cfg Config) (*Table, error) {
	const k = 64
	res, err := FlashCrowdRun(cfg, k)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Flash crowd (K=%d concurrent requesters; seed behavior was K of each)", k),
		Header: []string{"Scenario", "Upstream work", "Coalesced", "Shed", "p99"},
		Rows: [][]string{
			{"edge cold miss x K", fmt.Sprintf("%d origin pull(s)", res.EdgeOriginPulls),
				fmt.Sprint(res.EdgeCoalesced), "-", "-"},
			{"origin cache fill x K", fmt.Sprintf("%d fill(s)", res.OriginFills),
				fmt.Sprint(res.OriginCoalesced), "-", "-"},
			{"sync storm x K", fmt.Sprintf("%d origin fetch(es)", res.SyncFetches),
				fmt.Sprint(res.SyncCoalesced), "-", "-"},
			{fmt.Sprintf("overload 2x max-inflight=%d", res.MaxInflight),
				fmt.Sprintf("%d/%d served", res.Served, res.Offered),
				"-", fmt.Sprint(res.Shed),
				fmt.Sprintf("%.1f ms (uncontended %.1f ms)", res.OverloadP99Ms, res.UncontendedP99Ms)},
		},
		Notes: []string{
			"coalescing: concurrent identical misses share one upstream pull/fill/delta fetch (internal/flight)",
			"admission: -max-inflight sheds excess load with 429 + Retry-After; served p99 must stay within 10x uncontended",
		},
	}
	return t, nil
}
