package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsr/internal/apk"
	"tsr/internal/chaos"
	"tsr/internal/enclave"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/obs"
	"tsr/internal/sched"
	"tsr/internal/tsr"
)

// Multi-tenant origin scale-out: one TSR service hosting 100+ tenant
// repositories through the shared bounded refresh scheduler
// (internal/sched). The experiment measures what the scheduler is for:
//
//   - the global worker bound holds while every tenant refreshes at
//     once (sched-bound invariant, internal/chaos);
//   - a tenant's read path stays fast under that saturation — reads
//     are lock-free snapshot serves, so the p99 must stay within 2x of
//     the single-tenant baseline (with a small floor so sub-millisecond
//     bucket noise cannot fail the run);
//   - a bulk ingest journaled right before a crash replays to
//     completion on the next warm restart, with all tenants restored.
const (
	mtDefaultTenants = 100
	mtMaxScale       = 0.002 // packages per tenant stay small; tenancy is the variable
	mtWorkers        = 8     // global refresh slot pool
	mtMaxActive      = 4     // concurrently active scheduler jobs
	mtRepoWorkers    = 4     // per-tenant pipeline width: jobs contend for pool slots
	mtReads          = 200   // latency samples per phase
	mtReadPace       = 500 * time.Microsecond
	// mtP99FloorMs keeps the ratio assertion meaningful: when the
	// baseline p99 lands in a sub-5ms histogram bucket, the comparison
	// floor is 5ms, so one-bucket measurement noise cannot fail a run
	// whose absolute latencies are all trivially small.
	mtP99FloorMs = 5.0
	// mtMaxP99Ratio is the acceptance bound: per-tenant read p99 under
	// full saturation stays within 2x the single-tenant baseline.
	mtMaxP99Ratio = 2.0
)

// mtIngestName is the operator package staged into the journal right
// before the simulated crash.
const mtIngestName = "mt-operator-tool"

// MultiTenantResult is the measured outcome; it is also the
// BENCH_multi_tenant.json document. Sched carries the per-tenant
// wait/run latency quantiles from the scheduler snapshot.
type MultiTenantResult struct {
	Scale     float64 `json:"scale"`
	Seed      int64   `json:"seed"`
	Tenants   int     `json:"tenants"`
	Workers   int     `json:"workers"`
	MaxActive int     `json:"max_active"`

	PackagesPerTenant int `json:"packages_per_tenant"`

	// Refresh control plane during the saturation phase.
	RefreshesOK     int `json:"refreshes_ok"`
	RefreshesFailed int `json:"refreshes_failed"`

	// Read latency on one tenant: alone, then with every other tenant
	// refreshing through the shared pool.
	BaselineReads  int                   `json:"baseline_reads"`
	SaturatedReads int                   `json:"saturated_reads"`
	Baseline       obs.HistogramSnapshot `json:"baseline_latency"`
	Saturated      obs.HistogramSnapshot `json:"saturated_latency"`
	P99FloorMs     float64               `json:"p99_floor_ms"`
	P99Ratio       float64               `json:"p99_ratio"`

	// Sched is the scheduler at the end of the saturation phase; its
	// peaks are asserted against the configured bounds, and
	// Sched.Tenants carries the per-tenant wait/run quantiles.
	Sched sched.Snapshot `json:"sched"`

	// Crash-mid-ingest: a batch staged into the journal with no
	// effects applied, then a new service life over the same store.
	WarmRestored    int     `json:"warm_restored"`
	ColdRestored    int     `json:"cold_restored"`
	WarmRestartMs   float64 `json:"warm_restart_ms"`
	ReplayedIngests int     `json:"replayed_ingests"`
	IngestServed    bool    `json:"ingest_served_after_replay"`

	// Invariants (internal/chaos). Violations must be empty.
	InvariantChecks     int64             `json:"invariant_checks"`
	InvariantViolations int               `json:"invariant_violations"`
	Violations          []chaos.Violation `json:"violations,omitempty"`
}

// mtDeps builds the host hardware shared by both service lives: the
// sealing root, the TPM counters, and the store "disk".
func mtDeps() (WorldDeps, error) {
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("exp-quoting"))
	if err != nil {
		return WorldDeps{}, err
	}
	return WorldDeps{
		Store: tsr.NewMemStore(), TPM: newHostTPM(), Platform: platform,
		AutoPersist: true, SkipDeploy: true,
		RefreshWorkers: mtWorkers, SchedMaxActive: mtMaxActive,
	}, nil
}

// MultiTenantScaleRun drives the scale-out measurement.
func MultiTenantScaleRun(cfg Config) (*MultiTenantResult, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, mtMaxScale)
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = mtDefaultTenants
	}
	if tenants < 2 {
		return nil, fmt.Errorf("multi-tenant-scale: need at least 2 tenants, have %d", tenants)
	}

	deps, err := mtDeps()
	if err != nil {
		return nil, err
	}
	w, err := NewWorldWith(cfg, nil, true, deps)
	if err != nil {
		return nil, err
	}
	res := &MultiTenantResult{
		Scale: cfg.Scale, Seed: cfg.Seed, Tenants: tenants,
		Workers: mtWorkers, MaxActive: mtMaxActive, P99FloorMs: mtP99FloorMs,
	}
	checker := chaos.NewChecker(nil)

	// Deploy the fleet: every tenant is a full repository with its own
	// enclave-generated signing key, all on one service.
	ids := make([]string, 0, tenants)
	for i := 0; i < tenants; i++ {
		id, _, _, err := w.Service.DeployPolicy(w.PolicyRaw)
		if err != nil {
			return nil, fmt.Errorf("multi-tenant-scale: deploy %d: %w", i, err)
		}
		ids = append(ids, id)
		// Every tenant asks for a wide pipeline; the scheduler divides
		// the global pool among the active jobs, so the slot bound is
		// genuinely contended rather than trivially satisfied.
		r, err := w.Service.Repo(id)
		if err != nil {
			return nil, err
		}
		r.SetWorkers(mtRepoWorkers)
	}
	probe, err := w.Service.Repo(ids[0])
	if err != nil {
		return nil, err
	}

	// --- baseline: one tenant, idle service ---------------------------
	if _, err := probe.Refresh(); err != nil {
		return nil, fmt.Errorf("multi-tenant-scale: baseline refresh: %w", err)
	}
	signed, _, err := probe.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return nil, err
	}
	if len(ix.Entries) == 0 {
		return nil, fmt.Errorf("multi-tenant-scale: baseline index is empty")
	}
	res.PackagesPerTenant = len(ix.Entries)

	readOnce := func(i int, hist *obs.Histogram) error {
		e := ix.Entries[i%len(ix.Entries)]
		//lint:allow detrand timing block: client-observed read latency is the experiment's headline metric, measured in real time
		t0 := time.Now()
		if _, err := probe.FetchPackage(e.Name); err != nil {
			return err
		}
		hist.ObserveSince(t0)
		time.Sleep(mtReadPace)
		return nil
	}
	var baseHist obs.Histogram
	for i := 0; i < mtReads; i++ {
		if err := readOnce(i, &baseHist); err != nil {
			return nil, fmt.Errorf("multi-tenant-scale: baseline read: %w", err)
		}
		res.BaselineReads++
	}

	// --- saturation: every other tenant refreshes at once -------------
	// Background refreshes flood the shared pool; the probe tenant's
	// reads run concurrently and must stay fast — reads never queue
	// behind the scheduler, they serve the published snapshot.
	var (
		wg          sync.WaitGroup
		refreshFail atomic.Int64
		errMu       sync.Mutex
		firstErr    error
	)
	done := make(chan struct{})
	for _, id := range ids[1:] {
		r, err := w.Service.Repo(id)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(r *tsr.Repo) {
			defer wg.Done()
			if _, err := r.RefreshBackgroundCtx(context.Background()); err != nil {
				refreshFail.Add(1)
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(r)
	}
	go func() { wg.Wait(); close(done) }()

	var satHist obs.Histogram
	for i := 0; ; i++ {
		if err := readOnce(i, &satHist); err != nil {
			return nil, fmt.Errorf("multi-tenant-scale: saturated read: %w", err)
		}
		res.SaturatedReads++
		if res.SaturatedReads >= mtReads {
			select {
			case <-done:
			default:
				continue // keep sampling while the pool is still saturated
			}
			break
		}
	}
	<-done
	res.RefreshesFailed = int(refreshFail.Load())
	res.RefreshesOK = tenants - 1 - res.RefreshesFailed
	if firstErr != nil {
		return nil, fmt.Errorf("multi-tenant-scale: %d background refreshes failed: %w", res.RefreshesFailed, firstErr)
	}

	res.Sched = w.Service.Scheduler().Snapshot()
	checker.SchedSnapshot("origin", res.Sched)
	res.Baseline = baseHist.Snapshot()
	res.Saturated = satHist.Snapshot()
	res.P99Ratio = res.Saturated.P99Ms / maxFloat(res.Baseline.P99Ms, mtP99FloorMs)

	// --- crash mid-ingest, then a warm restart over the same store ----
	// StageIngest journals the batch and stops: the crash lands after
	// the intent is durable and before any effect is applied. The next
	// life must replay it to completion — and restore all tenants.
	p := soakPackage(mtIngestName)
	if err := apk.Sign(p, w.Distro); err != nil {
		return nil, err
	}
	raw, err := apk.Encode(p)
	if err != nil {
		return nil, err
	}
	if err := probe.StageIngest([][]byte{raw}); err != nil {
		return nil, fmt.Errorf("multi-tenant-scale: staging ingest: %w", err)
	}

	// The second life reuses deps verbatim: same sealing root (platform),
	// same TPM counters, same store "disk".
	w2, err := NewWorldWith(cfg, nil, true, deps)
	if err != nil {
		return nil, err
	}
	//lint:allow detrand timing block: the warm-restart duration across the whole fleet is a headline metric, measured in real time
	t0 := time.Now()
	restored, err := w2.Service.RestoreAll()
	if err != nil {
		return nil, fmt.Errorf("multi-tenant-scale: RestoreAll: %w", err)
	}
	res.WarmRestartMs = float64(time.Since(t0)) / float64(time.Millisecond)
	if len(restored) != tenants {
		return nil, fmt.Errorf("multi-tenant-scale: RestoreAll restored %d repositories, want %d", len(restored), tenants)
	}
	for _, r := range restored {
		if r.Warm {
			res.WarmRestored++
		} else {
			res.ColdRestored++
		}
		if r.ID == ids[0] {
			res.ReplayedIngests = r.ReplayedIngests
			if r.ReplayErr != nil {
				return nil, fmt.Errorf("multi-tenant-scale: ingest replay: %w", r.ReplayErr)
			}
		}
	}

	// The replayed batch must actually serve.
	probe2, err := w2.Service.Repo(ids[0])
	if err != nil {
		return nil, err
	}
	for _, e := range probe2.RegisteredPackages() {
		if strings.HasPrefix(e.Name, mtIngestName) {
			body, err := probe2.FetchPackage(e.Name)
			res.IngestServed = err == nil && len(body) > 0
		}
	}

	res.Violations = checker.Violations()
	res.InvariantChecks = checker.Checks()
	res.InvariantViolations = len(res.Violations)
	return res, nil
}

// WriteBench writes the BENCH_multi_tenant.json document and returns
// its path.
func (r *MultiTenantResult) WriteBench(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_multi_tenant.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// maxTenantWaitP99 is the slowest per-tenant scheduler wait quantile,
// for the rendered table.
func maxTenantWaitP99(snap sched.Snapshot) float64 {
	var max float64
	for _, t := range snap.Tenants {
		max = maxFloat(max, t.Wait.P99Ms)
	}
	return max
}

// MultiTenantScale is the registered experiment: it runs the scale-out
// measurement, emits BENCH_multi_tenant.json when Config.BenchDir is
// set, and fails — after emitting — on an invariant violation, a
// failed refresh, a lost ingest, or a p99 ratio over the bound.
func MultiTenantScale(cfg Config) (*Table, error) {
	res, err := MultiTenantScaleRun(cfg)
	if err != nil {
		return nil, err
	}
	var notes []string
	if cfg.BenchDir != "" {
		path, err := res.WriteBench(cfg.BenchDir)
		if err != nil {
			return nil, err
		}
		notes = append(notes, "machine-readable results: "+path)
	}
	if res.InvariantViolations > 0 {
		msg := ""
		for _, v := range res.Violations {
			msg += "\n  " + v.String()
		}
		return nil, fmt.Errorf("multi-tenant-scale: %d invariant violation(s):%s", res.InvariantViolations, msg)
	}
	if res.P99Ratio > mtMaxP99Ratio {
		return nil, fmt.Errorf("multi-tenant-scale: saturated read p99 %.3f ms is %.2fx the baseline bound max(%.3f, %.1f) ms, want <= %.1fx",
			res.Saturated.P99Ms, res.P99Ratio, res.Baseline.P99Ms, res.P99FloorMs, mtMaxP99Ratio)
	}
	if res.ReplayedIngests < 1 || !res.IngestServed {
		return nil, fmt.Errorf("multi-tenant-scale: staged ingest not replayed to a served package (replayed %d, served %v)",
			res.ReplayedIngests, res.IngestServed)
	}
	t := &Table{
		Title:  "Multi-tenant origin scale-out (shared bounded scheduler; per-tenant p99 under saturation)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"fleet", fmt.Sprintf("%d tenant repositories x %d packages on one origin", res.Tenants, res.PackagesPerTenant)},
			{"scheduler pool", fmt.Sprintf("%d workers, %d max active jobs", res.Workers, res.MaxActive)},
			{"saturation refreshes", fmt.Sprintf("%d ok / %d failed", res.RefreshesOK, res.RefreshesFailed)},
			{"sched peaks", fmt.Sprintf("slots %d <= workers %d, active %d <= max %d",
				res.Sched.PeakSlots, res.Sched.Workers, res.Sched.PeakActive, res.Sched.MaxActive)},
			{"read p99 alone", fmt.Sprintf("%.3f ms (%d reads)", res.Baseline.P99Ms, res.BaselineReads)},
			{"read p99 saturated", fmt.Sprintf("%.3f ms (%d reads, %.2fx of max(baseline, %.0f ms) <= %.1fx)",
				res.Saturated.P99Ms, res.SaturatedReads, res.P99Ratio, res.P99FloorMs, mtMaxP99Ratio)},
			{"slowest tenant sched wait p99", fmt.Sprintf("%.1f ms", maxTenantWaitP99(res.Sched))},
			{"warm restart", fmt.Sprintf("%d warm + %d cold in %.1f ms", res.WarmRestored, res.ColdRestored, res.WarmRestartMs)},
			{"crash-mid-ingest replay", fmt.Sprintf("%d batch(es) replayed, served=%v", res.ReplayedIngests, res.IngestServed)},
			{"invariant checks / violations", fmt.Sprintf("%d / %d", res.InvariantChecks, res.InvariantViolations)},
		},
		Notes: append([]string{
			"reads are lock-free snapshot serves: saturating the refresh pool must not queue the read path",
			"sched-bound invariant: leased slots never exceed the pool, active jobs never exceed the cap",
		}, notes...),
	}
	return t, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
