package experiments

import (
	"fmt"
	"strings"
	"testing"

	"tsr/internal/tsr"
)

// Small scale keeps the suite fast while exercising every code path.
const testScale = 0.008

func testCfg() Config {
	return Config{Scale: testScale, Seed: 11, MaxPackages: 25, QuorumTrials: 5}
}

func TestTable1SmallScale(t *testing.T) {
	tbl, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	out := tbl.Render()
	if !strings.Contains(out, "Without scripts") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable2SmallScale(t *testing.T) {
	tbl, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d (Table 2 has 7 operation classes)", len(tbl.Rows))
	}
	// The unsafe rows must show TSR=yes only for sanitizable classes.
	var sawShell bool
	for _, row := range tbl.Rows {
		if row[2] == "Shell activation" {
			sawShell = true
			if row[4] != "no" {
				t.Fatalf("shell activation TSR column = %q", row[4])
			}
		}
	}
	if !sawShell {
		t.Fatal("no shell activation row")
	}
}

func TestTable3SmallScale(t *testing.T) {
	tbl, err := Table3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Pessimistic total >= optimistic total (extra download time).
	if tbl.Rows[3][0] < tbl.Rows[3][1] {
		t.Fatalf("pessimistic < optimistic: %v", tbl.Rows[3])
	}
}

func TestTable4CorrelationSigns(t *testing.T) {
	cfg := testCfg()
	cfg.Scale = 0.02 // more samples stabilize the correlations
	tbl, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	find := func(op string) []string {
		for _, row := range tbl.Rows {
			if row[0] == op {
				return row
			}
		}
		t.Fatalf("missing row %q", op)
		return nil
	}
	// The paper's headline signs must reproduce:
	// archive share grows with size; integrity-check share shrinks with
	// size; signature share grows with file count.
	if !strings.Contains(find("archive, compress")[2], "+") {
		t.Errorf("archive vs size should be positive: %v", find("archive, compress"))
	}
	if !strings.Contains(find("check integrity")[2], "-") {
		t.Errorf("check integrity vs size should be negative: %v", find("check integrity"))
	}
	if !strings.Contains(find("generate signatures")[1], "+") {
		t.Errorf("signatures vs files should be positive: %v", find("generate signatures"))
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Sanitization time is heavy-tailed: p95 > p50.
	p50 := parseMs(t, tbl.Rows[0][1])
	p95 := parseMs(t, tbl.Rows[2][1])
	if p95 <= p50 {
		t.Fatalf("p95 %.2f <= p50 %.2f", p95, p50)
	}
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Overhead percentiles increase and the total is positive but far
	// below the per-package median (large packages dilute it).
	var notesJoined string
	for _, n := range tbl.Notes {
		notesJoined += n + "\n"
	}
	if !strings.Contains(notesJoined, "total repository size") {
		t.Fatalf("notes:\n%s", notesJoined)
	}
}

func TestFig10CacheOrdering(t *testing.T) {
	tbl, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for _, row := range tbl.Rows {
		means[row[0]] = parseMs(t, row[3])
	}
	// The paper's ordering: sanitized cache << original cache < none.
	if !(means["Sanitized"] < means["Original"] && means["Original"] < means["None"]) {
		t.Fatalf("cache means out of order: %v", means)
	}
}

func TestFig11TSRSlowerThanMirror(t *testing.T) {
	cfg := testCfg()
	tbl, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsrMean := parseMs(t, tbl.Rows[0][3])
	mirrorMean := parseMs(t, tbl.Rows[1][3])
	// TSR installs the extra signatures: the gap stays moderate
	// (paper: 1.28x; here the in-memory filesystem compresses it to
	// ~1x, see EXPERIMENTS.md). Allow scheduling noise either way.
	if tsrMean < mirrorMean*0.7 {
		t.Fatalf("TSR %.2f ms unexpectedly faster than mirror %.2f ms", tsrMean, mirrorMean)
	}
	if tsrMean > mirrorMean*5 {
		t.Fatalf("TSR %.2f ms unreasonably slower than mirror %.2f ms", tsrMean, mirrorMean)
	}
}

func TestFig12OverheadBands(t *testing.T) {
	tbl, err := Fig12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		factor := parseFactor(t, row[3])
		if factor < 1.05 || factor > 2.1 {
			t.Fatalf("row %v: factor %.2f outside the paper's 1.1-2.0 band", row, factor)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tbl, err := Fig13(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Same-continent quorum with up to 5 mirrors stays under 400 ms.
	for n := 1; n <= 5; n++ {
		eu := parseMs(t, tbl.Rows[n-1][1])
		if eu >= 400 {
			t.Fatalf("Europe n=%d latency %.0f ms >= 400 ms", n, eu)
		}
	}
	// Asia is always slower than Europe (for the Europe-based TSR).
	for i := range tbl.Rows {
		eu := parseMs(t, tbl.Rows[i][1])
		asia := parseMs(t, tbl.Rows[i][3])
		if asia <= eu {
			t.Fatalf("row %d: Asia %.0f <= Europe %.0f", i+1, asia, eu)
		}
	}
	// "All" must track the faster continents, not Asia: for 9 mirrors
	// it stays well under the paper's 2.2 s budget.
	all9 := parseMs(t, tbl.Rows[8][4])
	if all9 > 2200 {
		t.Fatalf("All n=9 latency %.0f ms > 2.2 s", all9)
	}
	// Latency grows with the mirror count (the paper's Figure 13 trend):
	// more mirrors mean a larger f+1 quorum sharing the bandwidth.
	eu1 := parseMs(t, tbl.Rows[0][1])
	eu10 := parseMs(t, tbl.Rows[9][1])
	if eu10 <= eu1 {
		t.Fatalf("Europe latency does not grow: n=1 %.0f ms, n=10 %.0f ms", eu1, eu10)
	}
}

func TestAblationEPCMonotone(t *testing.T) {
	tbl, err := AblationEPCSize(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Within a row (fixed working set), a larger EPC never increases
	// the factor; within a column (fixed EPC), a larger working set
	// never decreases it.
	for _, row := range tbl.Rows {
		prev := 1e9
		for _, cell := range row[1:] {
			f := parseFactor(t, cell)
			if f > prev {
				t.Fatalf("factor increased with EPC: %v", row)
			}
			prev = f
		}
	}
	for col := 1; col < len(tbl.Header); col++ {
		prev := 0.0
		for _, row := range tbl.Rows {
			f := parseFactor(t, row[col])
			if f < prev {
				t.Fatalf("factor decreased with working set in column %d", col)
			}
			prev = f
		}
	}
}

func TestAblationQuorumFaster(t *testing.T) {
	tbl, err := AblationQuorumStrategy(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fast := parseMs(t, tbl.Rows[0][1])
	all := parseMs(t, tbl.Rows[1][1])
	if fast >= all {
		t.Fatalf("fastest-f+1 (%.0f ms) not faster than wait-for-all (%.0f ms)", fast, all)
	}
}

func TestRegistryComplete(t *testing.T) {
	runners := All()
	want := []string{"table1", "table2", "table3", "table4",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ablation-epc", "ablation-quorum", "ablation-parallel",
		"ablation-workers", "read-under-refresh", "edge-fanout",
		"crash-restart", "flash-crowd", "fleet-soak", "wire-sync",
		"multi-tenant-scale"}
	if len(runners) != len(want) {
		t.Fatalf("registry has %d entries", len(runners))
	}
	for i, id := range want {
		if runners[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, runners[i].ID, id)
		}
	}
	if _, err := ByID("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("want error for unknown id")
	}
}

func TestWorldRejectsKnownUnsupported(t *testing.T) {
	w, err := NewWorld(testCfg(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rejected := w.Tenant.RejectedPackages()
	if len(rejected) == 0 {
		t.Fatal("no rejected packages despite config/shell categories in the population")
	}
	// The CVE-style packages produce security findings.
	if len(w.Tenant.Findings()) == 0 {
		t.Fatal("no security findings despite CVE-style packages")
	}
	_ = tsr.CacheBoth // keep the import for clarity of the world's type
}

func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(cell, "%f ms", &v); err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func parseFactor(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(cell, "%fx", &v); err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestAblationParallelMonotone(t *testing.T) {
	cfg := testCfg()
	cfg.Scale = 0.004 // the sweep builds four worlds
	tbl, err := AblationParallelDownload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := parseMs(t, tbl.Rows[0][2])
	par8 := parseMs(t, tbl.Rows[len(tbl.Rows)-1][2])
	if par8 >= seq {
		t.Fatalf("8-way download %.1f ms not faster than sequential %.1f ms", par8, seq)
	}
}

func TestAblationRefreshWorkers(t *testing.T) {
	cfg := testCfg()
	cfg.Scale = 0.004 // the sweep refreshes four fresh tenants
	tbl, err := AblationRefreshWorkers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 { // 1, 2, 4, 8 workers + the warm replan row
		t.Fatalf("rows = %d:\n%s", len(tbl.Rows), tbl.Render())
	}
	// Modeled download time must drop with parallelism (round trips
	// overlap) and the warm replan row must sanitize nothing.
	seq := parseMs(t, tbl.Rows[0][4])
	par8 := parseMs(t, tbl.Rows[3][4])
	if par8 >= seq {
		t.Fatalf("8-way download %.1f ms not faster than sequential %.1f ms", par8, seq)
	}
	warm := tbl.Rows[4]
	if warm[2] != "0" || warm[3] == "0" {
		t.Fatalf("warm replan row = %v (want 0 sanitized, >0 cache hits)", warm)
	}
}
