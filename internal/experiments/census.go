package experiments

import (
	"fmt"

	"tsr/internal/script"
	"tsr/internal/workload"
)

// Table1 reproduces "Number of packages with and without custom
// configuration scripts in Alpine Linux main and community
// repositories".
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	gen := workload.New(workload.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	main := workload.TakeCensus(gen.SpecsByRepo("main"))
	comm := workload.TakeCensus(gen.SpecsByRepo("community"))
	t := &Table{
		Title:  fmt.Sprintf("Table 1: script census (scale %.2f)", cfg.Scale),
		Header: []string{"Main", "Community", "", "Safe"},
		Rows: [][]string{
			{fmt.Sprint(main.Total), fmt.Sprint(comm.Total), "Total", ""},
			{fmt.Sprint(main.WithoutScript), fmt.Sprint(comm.WithoutScript), "Without scripts", "yes"},
			{fmt.Sprint(main.SafeScripts), fmt.Sprint(comm.SafeScripts), "With safe scripts", "yes"},
			{fmt.Sprint(main.UnsafeScripts), fmt.Sprint(comm.UnsafeScripts), "With unsafe scripts", "no"},
		},
	}
	noScript := float64(main.WithoutScript+comm.WithoutScript) / float64(main.Total+comm.Total)
	t.Notes = append(t.Notes, fmt.Sprintf("%.1f%% of packages carry no scripts (paper: 97.6%%)", 100*noScript))
	return t, nil
}

// Table2 reproduces "Operations performed by installation scripts",
// including the Safe and TSR columns.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	gen := workload.New(workload.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	main := workload.TakeCensus(gen.SpecsByRepo("main")).OpRows
	comm := workload.TakeCensus(gen.SpecsByRepo("community")).OpRows
	t := &Table{
		Title:  fmt.Sprintf("Table 2: script operations (scale %.2f)", cfg.Scale),
		Header: []string{"Main", "Community", "Type", "Safe", "TSR"},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, op := range script.AllOpClasses() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(main[op]),
			fmt.Sprint(comm[op]),
			op.String(),
			yn(op.SafeBeforeTSR()),
			yn(op.SafeAfterTSR()),
		})
	}
	// Support rate (§4.2's 99.76%).
	all := workload.TakeCensus(gen.Specs())
	rate := 100 * float64(all.Supported) / float64(all.Total)
	t.Notes = append(t.Notes,
		fmt.Sprintf("TSR supports %d/%d packages = %.2f%% (paper: 99.76%%)", all.Supported, all.Total, rate))
	return t, nil
}
