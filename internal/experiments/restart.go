package experiments

//lint:file-allow detrand crash-restart reports real cold-init vs warm-restart wall times; wall-clock by design

import (
	"fmt"
	"os"
	"time"

	"tsr/internal/edge"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/store"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

// RestartResult is the measured outcome of one crash-restart run.
type RestartResult struct {
	// ColdInit is the first life's deploy + initial refresh (includes
	// every sanitization).
	ColdInit time.Duration
	// WarmRestart is the second life's restore: reopen + scrub the
	// data dir, rebuild the service, RestoreAll to a published index.
	WarmRestart time.Duration
	// Speedup is ColdInit / WarmRestart.
	Speedup float64
	// Resanitized counts sanitizations performed to come back up
	// (must be 0: the whole point of the durable tier).
	Resanitized int64
	// PostRefreshSanitized / PostRefreshCacheHits describe the first
	// refresh after the restart: unchanged upstream means 0 / all.
	PostRefreshSanitized int
	PostRefreshCacheHits int
	// RollbackDetected is true when restoring a rolled-back data dir
	// tripped ErrRollback.
	RollbackDetected bool
	// EdgeResumedDelta is true when a restarted tsredge-style replica
	// came back from its persisted index and caught up with a DELTA
	// sync (no full index fetch).
	EdgeResumedDelta bool
}

// CrashRestartRun builds a deployment on a disk-backed store, kills
// it, restarts over the same data dir, and measures what the durable
// tier buys: restart cost collapsing from a full re-sanitization to a
// scrub-and-unseal, plus the §5.5 rollback rejection and the edge
// replica's delta-sync resume.
func CrashRestartRun(cfg Config) (*RestartResult, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "tsr-restart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	edgeDir, err := os.MkdirTemp("", "tsr-restart-edge-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(edgeDir)

	// Host hardware that survives the "crash": platform (CPU sealing
	// root) and TPM (NV counters). The store handle does NOT survive —
	// each life reopens and re-scrubs the directory.
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("exp-quoting"))
	if err != nil {
		return nil, err
	}
	hostTPM := tpm.New(keys.Shared.MustGet("exp-host-tpm"))
	openStore := func() (*store.FS, error) {
		return store.OpenFS(dir, store.FSOptions{})
	}

	// --- first life: cold init --------------------------------------
	// Timed region: what the SERVICE does to start serving — policy
	// deploy plus the initial full-sanitization refresh. Regenerating
	// the synthetic upstream world is simulation bootstrap, identical
	// in every life, and excluded from both sides of the comparison.
	st1, err := openStore()
	if err != nil {
		return nil, err
	}
	w1, err := NewWorldWith(cfg, nil, false, WorldDeps{
		Store: st1, TPM: hostTPM, Platform: platform, AutoPersist: true, SkipDeploy: true,
	})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	repoID, _, _, err := w1.Service.DeployPolicy(w1.PolicyRaw)
	if err != nil {
		return nil, err
	}
	tenant1, err := w1.Service.Repo(repoID)
	if err != nil {
		return nil, err
	}
	if _, err := tenant1.Refresh(); err != nil {
		return nil, err
	}
	res := &RestartResult{ColdInit: time.Since(t0)}
	w1.Tenant = tenant1
	_, wantTag, err := tenant1.FetchIndexTagged()
	if err != nil {
		return nil, err
	}

	// An edge replica on its own durable store, synced and warmed.
	edgeStore1, err := store.OpenFS(edgeDir, store.FSOptions{})
	if err != nil {
		return nil, err
	}
	rep1 := &edge.Replica{RepoID: repoID, Origin: w1.Tenant, Cache: edgeStore1, PersistIndex: true}
	if err := rep1.Sync(); err != nil {
		return nil, err
	}

	// --- crash + second life: warm restart --------------------------
	// Timed region: reopen + scrub the data dir, then RestoreAll. The
	// (untimed) world regeneration between the two segments is the
	// same simulation bootstrap excluded from the cold side.
	t1 := time.Now()
	st2, err := openStore()
	if err != nil {
		return nil, err
	}
	scrubTime := time.Since(t1)
	w2, err := NewWorldWith(cfg, nil, false, WorldDeps{
		Store: st2, TPM: hostTPM, Platform: platform, AutoPersist: true, SkipDeploy: true,
	})
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	restored, err := w2.Service.RestoreAll()
	if err != nil {
		return nil, err
	}
	res.WarmRestart = scrubTime + time.Since(t2)
	if res.WarmRestart > 0 {
		res.Speedup = float64(res.ColdInit) / float64(res.WarmRestart)
	}
	if len(restored) != 1 || !restored[0].Warm {
		return nil, fmt.Errorf("crash-restart: RestoreAll = %+v, want one warm repository", restored)
	}
	tenant2, err := w2.Service.Repo(repoID)
	if err != nil {
		return nil, err
	}
	_, gotTag, err := tenant2.FetchIndexTagged()
	if err != nil {
		return nil, err
	}
	if gotTag != wantTag {
		return nil, fmt.Errorf("crash-restart: restored index tag %s != %s", gotTag, wantTag)
	}
	res.Resanitized = tenant2.CacheStats().Sanitized

	// First refresh after restart: the persisted sealed sancache turns
	// it into a no-op.
	rstats, err := tenant2.Refresh()
	if err != nil {
		return nil, err
	}
	res.PostRefreshSanitized = rstats.Sanitized
	res.PostRefreshCacheHits = rstats.CacheHits

	// Restarted edge replica: load the persisted index, then catch up
	// with the origin's post-restart generation via delta sync.
	edgeStore2, err := store.OpenFS(edgeDir, store.FSOptions{})
	if err != nil {
		return nil, err
	}
	rep2 := &edge.Replica{RepoID: repoID, Origin: tenant2, Cache: edgeStore2, PersistIndex: true}
	if err := rep2.LoadState(); err != nil {
		return nil, err
	}
	if err := rep2.Sync(); err != nil {
		return nil, err
	}
	es := rep2.Stats()
	res.EdgeResumedDelta = es.FullSyncs == 0 && es.FullFallbacks == 0

	// --- rollback attack --------------------------------------------
	// The adversary saved the (sealed) checkpoint of the first life
	// and plays it back over the newer one left by the refresh above.
	oldCheckpoint, err := st2.Get(tsr.StateStoreKey(repoID))
	if err != nil {
		return nil, err
	}
	// Advance the trusted state: a new checkpoint bumps the TPM
	// counter, making the saved blob stale.
	if err := tenant2.Checkpoint(); err != nil {
		return nil, err
	}
	if err := st2.Put(tsr.StateStoreKey(repoID), oldCheckpoint); err != nil {
		return nil, err
	}
	st3, err := openStore()
	if err != nil {
		return nil, err
	}
	w3, err := NewWorldWith(cfg, nil, false, WorldDeps{
		Store: st3, TPM: hostTPM, Platform: platform, AutoPersist: true, SkipDeploy: true,
	})
	if err != nil {
		return nil, err
	}
	restored3, err := w3.Service.RestoreAll()
	if err != nil {
		return nil, err
	}
	res.RollbackDetected = len(restored3) == 1 && restored3[0].RolledBack()
	return res, nil
}

// CrashRestart is the registered experiment: the durable
// content-addressed store under crash, restart, and rollback.
func CrashRestart(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.Scale = minFloat(cfg.Scale, 0.01)
	res, err := CrashRestartRun(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Crash-restart: durable store warm boot (tsrd/tsredge -data-dir)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"cold init (deploy + full sanitization)", fmtDuration(res.ColdInit)},
			{"warm restart (scrub + unseal + publish)", fmtDuration(res.WarmRestart)},
			{"speedup", fmt.Sprintf("%.0fx", res.Speedup)},
			{"packages re-sanitized at restart", fmt.Sprintf("%d", res.Resanitized)},
			{"first refresh after restart", fmt.Sprintf("%d sanitized / %d sancache hits", res.PostRefreshSanitized, res.PostRefreshCacheHits)},
			{"edge restart resumed via delta sync", fmt.Sprintf("%v (no full index fetch)", res.EdgeResumedDelta)},
			{"rolled-back data dir rejected (ErrRollback)", fmt.Sprintf("%v", res.RollbackDetected)},
		},
		Notes: []string{
			"disk state is untrusted: blobs re-verify against signed indexes, metadata unseals under the enclave key,",
			"and the TPM monotonic counter (host hardware, outside the data dir) refuses replayed checkpoints.",
		},
	}
	return t, nil
}
