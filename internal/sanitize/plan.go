// Package sanitize implements the paper's core contribution (§4.2,
// §5.3): package sanitization. Sanitizing a package means
//
//  1. verifying its authenticity and integrity against the policy's
//     trusted signer keys,
//  2. rewriting its installation scripts so their effect on the OS
//     configuration is deterministic — account-creating scripts are
//     replaced by a canonical provisioning preamble that creates ALL
//     users and groups any package in the repository might create, in a
//     predefined order with fixed ids,
//  3. predicting the resulting configuration files (/etc/passwd,
//     /etc/shadow, /etc/group) and issuing digital signatures over the
//     predicted contents, installed by the rewritten script via
//     setfattr,
//  4. issuing a digital signature for every file in the data segment
//     (stored in PAX headers, extracted to security.ima xattrs),
//  5. re-encoding and re-signing the package with the TSR key.
//
// Packages whose scripts change arbitrary configuration files or
// activate login shells cannot be sanitized and are rejected
// (ErrUnsupported), matching the paper's 0.24% rejection rate.
package sanitize

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"tsr/internal/apk"
	"tsr/internal/keys"
	"tsr/internal/osimage"
	"tsr/internal/policy"
	"tsr/internal/script"
)

// Error sentinels.
var (
	ErrUnsupported = errors.New("sanitize: package cannot be sanitized")
	ErrBadScript   = errors.New("sanitize: package script does not parse")
)

// accountPlan is the repository-wide account assignment: every user and
// group any package may create, in canonical (sorted) order with fixed
// ids.
type accountPlan struct {
	groups []script.Group
	users  []script.User
}

// Plan is the result of the repository scan: the canonical provisioning
// preamble, the predicted configuration file contents, and their
// signatures.
type Plan struct {
	// Preamble is the canonical account-provisioning script prefix.
	Preamble string
	// PredictedConfig maps config paths to their predicted contents
	// after the preamble ran on a policy-initialized OS.
	PredictedConfig map[string][]byte
	// ConfigSigs maps config paths to TSR signatures over the predicted
	// contents.
	ConfigSigs map[string][]byte
	// EmptyFileSig signs the empty content, reused for every file
	// created by a sanitized `touch`.
	EmptyFileSig []byte
	// Findings collects security findings discovered during the scan
	// (e.g. accounts created with an empty password).
	Findings []Finding
}

// Hash returns a digest of everything in the plan that determines the
// sanitization output for a given input package: the provisioning
// preamble, the predicted-config signatures, and the empty-file
// signature. Two plans with equal hashes sanitize any package to
// byte-identical results (sanitization and encoding are deterministic),
// which makes the hash usable as half of a content-addressed
// sanitization cache key.
func (p *Plan) Hash() [32]byte {
	h := sha256.New()
	// Length-framed fields: without framing, two structurally different
	// plans could concatenate to the same byte stream and collide.
	writeField := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	writeField([]byte(p.Preamble))
	for _, path := range sortedKeys(p.ConfigSigs) {
		writeField([]byte(path))
		writeField(p.ConfigSigs[path])
	}
	writeField(p.EmptyFileSig)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Finding is a security observation made during sanitization — the
// paper's §4.2 reports exactly this class: "two packages that not only
// create a user but also set an empty password and shell".
type Finding struct {
	Package string
	Detail  string
}

// PackageSource yields the scripts of every package in the repository;
// the planner scans them for account creation. It abstracts over
// iterating decoded packages vs. workload specs.
type PackageSource interface {
	// NextScripts returns the next package's name and script sources,
	// or ok=false when exhausted.
	NextScripts() (name string, scripts map[string]string, ok bool)
}

// SliceSource adapts a slice of decoded packages to PackageSource.
type SliceSource struct {
	Packages []*apk.Package
	pos      int
}

// NextScripts implements PackageSource.
func (s *SliceSource) NextScripts() (string, map[string]string, bool) {
	if s.pos >= len(s.Packages) {
		return "", nil, false
	}
	p := s.Packages[s.pos]
	s.pos++
	return p.Name, p.Scripts, true
}

// BuildPlan scans every package's scripts for account creation
// commands, assigns canonical ids, renders the provisioning preamble,
// and predicts the configuration files by executing the preamble on a
// fresh OS image seeded with the policy's init_config_files.
//
// signKey is the TSR repository signing key used for the predicted
// config signatures.
func BuildPlan(src PackageSource, initFiles []policy.ConfigFile, signKey *keys.Pair) (*Plan, error) {
	users := make(map[string]script.User)
	groups := make(map[string]script.Group)
	var findings []Finding

	for {
		pkgName, scripts, ok := src.NextScripts()
		if !ok {
			break
		}
		for _, srcText := range scripts {
			parsed, err := script.Parse(srcText)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrBadScript, pkgName, err)
			}
			collectAccounts(pkgName, parsed, users, groups, &findings)
		}
	}

	plan := &accountPlan{}
	// Canonical order: sorted by name; ids assigned sequentially from
	// a fixed base so every TSR instance with the same policy and
	// repository derives the same configuration.
	groupNames := sortedKeys(groups)
	nextGID := 200
	gidOf := make(map[string]int, len(groupNames))
	for _, name := range groupNames {
		g := groups[name]
		g.GID = nextGID
		gidOf[name] = nextGID
		nextGID++
		plan.groups = append(plan.groups, g)
	}
	userNames := sortedKeys(users)
	nextUID := 200
	for _, name := range userNames {
		u := users[name]
		u.UID = nextUID
		if gid, ok := gidOf[name]; ok {
			u.GID = gid
		} else {
			u.GID = u.UID
		}
		// Sanitization strips empty passwords: accounts are always
		// locked (the paper reported the empty-password packages to the
		// Alpine community rather than preserving the bug).
		u.NoPassword = false
		// Interactive shells on service accounts are downgraded.
		if u.Shell == "" {
			u.Shell = "/sbin/nologin"
		}
		nextUID++
		plan.users = append(plan.users, u)
	}

	preamble := renderPreamble(plan)

	// Predict the configuration by running the preamble on a fresh
	// policy-initialized image — the exact rendering code the real OS
	// uses, so prediction cannot drift from reality.
	predicted, err := predictConfig(preamble, initFiles)
	if err != nil {
		return nil, err
	}
	sigs := make(map[string][]byte, len(predicted))
	for path, content := range predicted {
		sig, err := signKey.Sign(content)
		if err != nil {
			return nil, err
		}
		sigs[path] = sig
	}
	emptySig, err := signKey.Sign(nil)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Preamble:        preamble,
		PredictedConfig: predicted,
		ConfigSigs:      sigs,
		EmptyFileSig:    emptySig,
		Findings:        findings,
	}, nil
}

// collectAccounts walks a script and records adduser/addgroup effects,
// flagging empty-password and interactive-shell findings.
func collectAccounts(pkgName string, s *script.Script, users map[string]script.User, groups map[string]script.Group, findings *[]Finding) {
	for _, c := range s.Commands() {
		switch c.Name {
		case "adduser":
			u, err := script.ParseAddUser(c.Args)
			if err != nil {
				continue // classified elsewhere; rejection happens there
			}
			if interactiveShell(u.Shell) {
				*findings = append(*findings, Finding{
					Package: pkgName,
					Detail:  fmt.Sprintf("user %q created with interactive shell %s", u.Name, u.Shell),
				})
			}
			if _, ok := users[u.Name]; !ok {
				users[u.Name] = u
			}
		case "addgroup":
			g, err := script.ParseAddGroup(c.Args)
			if err != nil {
				continue
			}
			if _, ok := groups[g.Name]; !ok {
				groups[g.Name] = g
			}
		case "passwd":
			name, hash, err := script.ParsePasswd(c.Args)
			if err == nil && hash == "" {
				*findings = append(*findings, Finding{
					Package: pkgName,
					Detail:  fmt.Sprintf("user %q would get an EMPTY password (CVE-2019-5021 class)", name),
				})
			}
		}
	}
}

func interactiveShell(shell string) bool {
	switch shell {
	case "", "/sbin/nologin", "/bin/false", "/usr/sbin/nologin":
		return false
	}
	return true
}

// renderPreamble renders the canonical provisioning script: all groups,
// then all users, sorted, with explicit ids.
func renderPreamble(plan *accountPlan) string {
	var b strings.Builder
	b.WriteString("# TSR canonical account provisioning (deterministic order)\n")
	for _, g := range plan.groups {
		fmt.Fprintf(&b, "addgroup -S -g %d %s\n", g.GID, g.Name)
	}
	for _, u := range plan.users {
		fmt.Fprintf(&b, "adduser -S -u %d -g %s -h %s -s %s %s\n",
			u.UID, quoteIfNeeded(u.Gecos), u.Home, u.Shell, u.Name)
	}
	return b.String()
}

func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \t") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// predictConfig executes the preamble on a fresh OS image and captures
// the resulting configuration files.
func predictConfig(preamble string, initFiles []policy.ConfigFile) (map[string][]byte, error) {
	ak, err := keys.Shared.Get("sanitize-predictor-ak")
	if err != nil {
		return nil, err
	}
	img, err := osimage.New(ak, initFiles)
	if err != nil {
		return nil, fmt.Errorf("sanitize: predictor image: %w", err)
	}
	parsed, err := script.Parse(preamble)
	if err != nil {
		return nil, fmt.Errorf("%w: preamble: %v", ErrBadScript, err)
	}
	if err := script.Exec(parsed, img); err != nil {
		return nil, fmt.Errorf("sanitize: predicting config: %w", err)
	}
	out := make(map[string][]byte)
	for _, path := range []string{osimage.PasswdPath, osimage.ShadowPath, osimage.GroupPath} {
		content, err := img.FS.ReadFile(path)
		if err != nil {
			return nil, err
		}
		out[path] = content
	}
	return out, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
