package sanitize

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"tsr/internal/apk"
	"tsr/internal/attest"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/osimage"
	"tsr/internal/policy"
	"tsr/internal/script"
)

// fixtures ------------------------------------------------------------

func upstream(t *testing.T) *keys.Pair { t.Helper(); return keys.Shared.MustGet("alpine-pkg-signer") }
func tsrKey(t *testing.T) *keys.Pair   { t.Helper(); return keys.Shared.MustGet("tsr-repo-key") }

var initFiles = []policy.ConfigFile{
	{Path: osimage.PasswdPath, Content: "root:x:0:0:root:/root:/bin/ash\n"},
	{Path: osimage.GroupPath, Content: "root:x:0:\n"},
}

// buildPlan scans the given packages.
func buildPlan(t *testing.T, pkgs ...*apk.Package) *Plan {
	t.Helper()
	plan, err := BuildPlan(&SliceSource{Packages: pkgs}, initFiles, tsrKey(t))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func sanitizer(t *testing.T, plan *Plan) *Sanitizer {
	t.Helper()
	return &Sanitizer{
		Plan:      plan,
		TrustRing: keys.NewRing(upstream(t).Public()),
		SignKey:   tsrKey(t),
		EPC:       enclave.DefaultCostModel(),
	}
}

func signedPkg(t *testing.T, name string, scripts map[string]string, files ...apk.File) *apk.Package {
	t.Helper()
	if files == nil {
		files = []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name)}}
	}
	p := &apk.Package{Name: name, Version: "1.0-r0", Scripts: scripts, Files: files}
	if err := apk.Sign(p, upstream(t)); err != nil {
		t.Fatal(err)
	}
	return p
}

func encode(t *testing.T, p *apk.Package) []byte {
	t.Helper()
	raw, err := apk.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// plan tests -----------------------------------------------------------

func TestBuildPlanCollectsAccountsSorted(t *testing.T) {
	pkgA := signedPkg(t, "a", map[string]string{"post-install": "addgroup -S zeta\nadduser -S -G zeta zeta\n"})
	pkgB := signedPkg(t, "b", map[string]string{"post-install": "addgroup -S alpha\nadduser -S -G alpha alpha\n"})
	plan := buildPlan(t, pkgA, pkgB)
	// Canonical order is sorted, regardless of scan order.
	alphaIdx := strings.Index(plan.Preamble, "alpha")
	zetaIdx := strings.Index(plan.Preamble, "zeta")
	if alphaIdx < 0 || zetaIdx < 0 || alphaIdx > zetaIdx {
		t.Fatalf("preamble order wrong:\n%s", plan.Preamble)
	}
	// Predicted passwd contains both users with fixed UIDs.
	passwd := string(plan.PredictedConfig[osimage.PasswdPath])
	if !strings.Contains(passwd, "alpha:x:200:") || !strings.Contains(passwd, "zeta:x:201:") {
		t.Fatalf("predicted passwd:\n%s", passwd)
	}
}

func TestBuildPlanSignsPredictions(t *testing.T) {
	pkg := signedPkg(t, "svc", map[string]string{"post-install": "adduser -S svc\n"})
	plan := buildPlan(t, pkg)
	ring := keys.NewRing(tsrKey(t).Public())
	for path, content := range plan.PredictedConfig {
		sig := plan.ConfigSigs[path]
		if _, err := ring.VerifyAny(content, sig); err != nil {
			t.Fatalf("%s: prediction signature invalid: %v", path, err)
		}
	}
	if len(plan.EmptyFileSig) != keys.SignatureSize {
		t.Fatalf("empty file sig len = %d", len(plan.EmptyFileSig))
	}
}

func TestBuildPlanFlagsEmptyPassword(t *testing.T) {
	cve := signedPkg(t, "cve-pkg", map[string]string{
		"post-install": "adduser -S -s /bin/ash alpine\npasswd -d alpine\n",
	})
	plan := buildPlan(t, cve)
	if len(plan.Findings) < 2 {
		t.Fatalf("findings = %+v, want empty-password and interactive-shell findings", plan.Findings)
	}
	var passwordFinding bool
	for _, f := range plan.Findings {
		if f.Package == "cve-pkg" && strings.Contains(f.Detail, "EMPTY password") {
			passwordFinding = true
		}
	}
	if !passwordFinding {
		t.Fatalf("findings = %+v", plan.Findings)
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	mk := func() *Plan {
		return buildPlan(t,
			signedPkg(t, "a", map[string]string{"post-install": "adduser -S ua\n"}),
			signedPkg(t, "b", map[string]string{"post-install": "adduser -S ub\naddgroup -S gb\n"}),
		)
	}
	p1, p2 := mk(), mk()
	if p1.Preamble != p2.Preamble {
		t.Fatal("preamble not deterministic")
	}
	for path := range p1.PredictedConfig {
		if string(p1.PredictedConfig[path]) != string(p2.PredictedConfig[path]) {
			t.Fatalf("%s prediction not deterministic", path)
		}
	}
}

// sanitize tests --------------------------------------------------------

func TestSanitizeSignsEveryFile(t *testing.T) {
	p := signedPkg(t, "tool", nil,
		apk.File{Path: "/usr/bin/tool", Mode: 0o755, Content: []byte("bin")},
		apk.File{Path: "/usr/lib/tool/lib.so", Mode: 0o644, Content: []byte("lib")},
	)
	s := sanitizer(t, buildPlan(t, p))
	res, err := s.Sanitize(encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(tsrKey(t).Public())
	for _, f := range res.Package.Files {
		sig, ok := f.Xattrs[apk.XattrIMA]
		if !ok {
			t.Fatalf("%s: no IMA signature", f.Path)
		}
		if _, err := ring.VerifyAny(f.Content, sig); err != nil {
			t.Fatalf("%s: %v", f.Path, err)
		}
	}
	// The sanitized package is signed by TSR, not the upstream signer.
	if _, ok := res.Package.Signatures[tsrKey(t).Name]; !ok {
		t.Fatal("no TSR package signature")
	}
	if _, ok := res.Package.Signatures[upstream(t).Name]; ok {
		t.Fatal("upstream signature should be replaced")
	}
	// And the wire form verifies against the TSR key.
	if _, _, err := apk.VerifyRaw(res.Raw, ring); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeRejectsUntrustedUpstream(t *testing.T) {
	evil := keys.Shared.MustGet("evil-signer")
	p := &apk.Package{Name: "evil", Version: "1", Files: []apk.File{{Path: "/e", Mode: 0o644, Content: []byte("x")}}}
	if err := apk.Sign(p, evil); err != nil {
		t.Fatal(err)
	}
	s := sanitizer(t, buildPlan(t))
	if _, err := s.Sanitize(encode(t, p)); !errors.Is(err, apk.ErrUntrusted) {
		t.Fatalf("err = %v", err)
	}
}

func TestSanitizeRewritesAccountScript(t *testing.T) {
	p := signedPkg(t, "ntpd", map[string]string{
		"post-install": "addgroup -S ntp\nadduser -S -G ntp ntp\nmkdir -p /var/lib/ntp\n",
	})
	s := sanitizer(t, buildPlan(t, p))
	res, err := s.Sanitize(encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Package.Scripts["post-install"]
	// Preamble present, original adduser removed, mkdir kept, setfattr
	// installs the predicted config signatures.
	if !strings.Contains(out, "TSR canonical account provisioning") {
		t.Fatalf("no preamble:\n%s", out)
	}
	if !strings.Contains(out, "mkdir -p /var/lib/ntp") {
		t.Fatalf("original filesystem op lost:\n%s", out)
	}
	if !strings.Contains(out, "setfattr -n security.ima") {
		t.Fatalf("no signature installation:\n%s", out)
	}
	// Exactly one adduser per planned user (from the preamble), no
	// leftover unparameterized adduser.
	if strings.Contains(out, "adduser -S -G ntp ntp") {
		t.Fatalf("original adduser survived:\n%s", out)
	}
}

func TestSanitizeRejectsConfigChange(t *testing.T) {
	p := signedPkg(t, "roundcubemail", map[string]string{
		"post-install": "sed -i s/old/new/ /etc/roundcube.conf\n",
	})
	s := sanitizer(t, buildPlan(t))
	if _, err := s.Sanitize(encode(t, p)); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestSanitizeRejectsShellActivation(t *testing.T) {
	p := signedPkg(t, "bash", map[string]string{"post-install": "add-shell /bin/bash\n"})
	s := sanitizer(t, buildPlan(t))
	if _, err := s.Sanitize(encode(t, p)); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestSanitizeStripsEmptyPassword(t *testing.T) {
	p := signedPkg(t, "cve", map[string]string{
		"post-install": "adduser -S -s /bin/ash alpine\npasswd -d alpine\n",
	})
	s := sanitizer(t, buildPlan(t, p))
	res, err := s.Sanitize(encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Package.Scripts["post-install"]
	if strings.Contains(out, "passwd -d") {
		t.Fatalf("passwd -d survived sanitization:\n%s", out)
	}
	// The predicted shadow locks the account.
	shadow := string(s.Plan.PredictedConfig[osimage.ShadowPath])
	if !strings.Contains(shadow, "alpine:!:") {
		t.Fatalf("shadow = %q", shadow)
	}
}

func TestSanitizeTouchGetsSignature(t *testing.T) {
	p := signedPkg(t, "pidpkg", map[string]string{
		"post-install": "adduser -S pid\ntouch /var/run/pid.pid\n",
	})
	s := sanitizer(t, buildPlan(t, p))
	res, err := s.Sanitize(encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Package.Scripts["post-install"]
	idx := strings.Index(out, "touch /var/run/pid.pid")
	if idx < 0 {
		t.Fatalf("touch lost:\n%s", out)
	}
	rest := out[idx:]
	if !strings.Contains(rest, "setfattr -n security.ima") || !strings.Contains(rest, "/var/run/pid.pid") {
		t.Fatalf("no signature install after touch:\n%s", out)
	}
}

func TestSanitizeSizeOverhead(t *testing.T) {
	// Many small files: signatures dominate (Figure 9's top-left).
	var files []apk.File
	for i := 0; i < 50; i++ {
		files = append(files, apk.File{
			Path: "/usr/share/x/f" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Mode: 0o644,
			Content: []byte{byte(i)},
		})
	}
	p := signedPkg(t, "manysmall", nil, files...)
	s := sanitizer(t, buildPlan(t, p))
	res, err := s.Sanitize(encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	if res.SizeOverheadPercent() < 50 {
		t.Fatalf("size overhead = %.1f%%, want large for many small files", res.SizeOverheadPercent())
	}
	if res.FileCount != 50 {
		t.Fatalf("file count = %d", res.FileCount)
	}
}

func TestSanitizeEPCModel(t *testing.T) {
	small := signedPkg(t, "small", nil)
	s := sanitizer(t, buildPlan(t, small))
	res, err := s.Sanitize(encode(t, small))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExceedsEPC {
		t.Fatal("small package marked as exceeding EPC")
	}
	if res.SGXOverhead <= 0 {
		t.Fatal("no SGX overhead modeled")
	}
	if res.InSGXTime() <= res.Phases.Total() {
		t.Fatal("in-SGX time not larger than native")
	}
	// Disabled model: no overhead.
	s.EPC = enclave.CostModel{}
	res2, err := s.Sanitize(encode(t, small))
	if err != nil {
		t.Fatal(err)
	}
	if res2.SGXOverhead != 0 {
		t.Fatalf("overhead with disabled model = %v", res2.SGXOverhead)
	}
}

func TestSanitizedScriptsParseAndRender(t *testing.T) {
	p := signedPkg(t, "ntpd", map[string]string{
		"pre-install":  "adduser -S ntp\n",
		"post-install": "mkdir -p /var/lib/ntp\nadduser -S ntp\n",
	})
	s := sanitizer(t, buildPlan(t, p))
	res, err := s.Sanitize(encode(t, p))
	if err != nil {
		t.Fatal(err)
	}
	for hook, src := range res.Package.Scripts {
		if _, err := script.Parse(src); err != nil {
			t.Fatalf("%s does not reparse: %v\n%s", hook, err, src)
		}
	}
}

// The headline end-to-end property: installing sanitized packages in
// ANY order yields the SAME OS configuration, equal to the prediction,
// and the predicted config signature verifies against it.
func TestSanitizedInstallOrderIndependence(t *testing.T) {
	pkgA := signedPkg(t, "svc-a", map[string]string{"post-install": "addgroup -S sa\nadduser -S -G sa sa\n"})
	pkgB := signedPkg(t, "svc-b", map[string]string{"post-install": "addgroup -S sb\nadduser -S -G sb sb\n"})
	plan := buildPlan(t, pkgA, pkgB)
	s := sanitizer(t, plan)

	resA, err := s.Sanitize(encode(t, pkgA))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := s.Sanitize(encode(t, pkgB))
	if err != nil {
		t.Fatal(err)
	}

	run := func(order ...*Result) string {
		img, err := osimage.New(keys.Shared.MustGet("os-ak"), initFiles)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range order {
			parsed := script.MustParse(r.Package.Scripts["post-install"])
			if err := script.Exec(parsed, img); err != nil {
				t.Fatal(err)
			}
		}
		fp, err := img.ConfigFingerprint()
		if err != nil {
			t.Fatal(err)
		}
		// The actual passwd equals the prediction.
		passwd, _ := img.FS.ReadFile(osimage.PasswdPath)
		if string(passwd) != string(plan.PredictedConfig[osimage.PasswdPath]) {
			t.Fatalf("prediction mismatch:\n%q\nvs\n%q", passwd, plan.PredictedConfig[osimage.PasswdPath])
		}
		return fp
	}
	ab := run(resA, resB)
	ba := run(resB, resA)
	aOnly := run(resA)
	if ab != ba {
		t.Fatal("sanitized installs are order-dependent")
	}
	if ab != aOnly {
		t.Fatal("single sanitized install differs from pair (preamble not complete)")
	}
}

// End-to-end with attestation: a sanitized update on an appraising OS
// attests clean (no false positive), and the xattr-installed config
// signatures verify.
func TestSanitizedUpdateAttestsClean(t *testing.T) {
	pkg := signedPkg(t, "svc", map[string]string{"post-install": "addgroup -S svc\nadduser -S -G svc svc\n"})
	plan := buildPlan(t, pkg)
	s := sanitizer(t, plan)
	res, err := s.Sanitize(encode(t, pkg))
	if err != nil {
		t.Fatal(err)
	}

	img, err := osimage.New(keys.Shared.MustGet("os-ak"), initFiles)
	if err != nil {
		t.Fatal(err)
	}
	verifier := attest.NewVerifier(img.TPM.AttestationKey(), keys.NewRing(tsrKey(t).Public()))
	if err := img.IMA.MeasureTree("/etc"); err != nil {
		t.Fatal(err)
	}
	verifier.WhitelistImage(img)

	// "Install": run the sanitized script, extract files with xattrs.
	if err := script.Exec(script.MustParse(res.Package.Scripts["post-install"]), img); err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Package.Files {
		if err := img.FS.WriteFile(f.Path, f.Content, f.Mode); err != nil {
			t.Fatal(err)
		}
		for name, v := range f.Xattrs {
			if err := img.FS.SetXattr(f.Path, name, v); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := img.IMA.MeasureFile(f.Path); err != nil {
			t.Fatal(err)
		}
	}
	// Re-measure the changed configuration files.
	for _, p := range osimage.ConfigDigestPaths() {
		if img.FS.Exists(p) {
			if _, err := img.IMA.MeasureFile(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	result, err := verifier.Attest(img)
	if err != nil {
		t.Fatal(err)
	}
	if !result.OK {
		t.Fatalf("violations after sanitized update: %+v", result.Violations())
	}
}

// Property: sanitization is deterministic — the same input bytes under
// the same plan always produce identical output bytes. This is what the
// TSR cache-tamper defense relies on (re-sanitization must reproduce
// the indexed hash exactly).
func TestSanitizeDeterministicProperty(t *testing.T) {
	p := signedPkg(t, "det", map[string]string{
		"post-install": "adduser -S det\ntouch /var/run/det.pid\nmkdir -p /var/lib/det\n",
	})
	s := sanitizer(t, buildPlan(t, p))
	raw := encode(t, p)
	first, err := s.Sanitize(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := s.Sanitize(raw)
		if err != nil {
			t.Fatal(err)
		}
		if string(again.Raw) != string(first.Raw) {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}

// Property: stripAccountCommands removes every account command and only
// account commands, for arbitrary interleavings.
func TestStripAccountCommandsProperty(t *testing.T) {
	account := []string{"adduser -S u", "addgroup -S g", "passwd -d u", "deluser u", "delgroup g"}
	neutral := []string{"mkdir -p /a", "echo hi", "touch /b", "grep x /etc/passwd"}
	f := func(picks []uint8) bool {
		var src strings.Builder
		wantNeutral := 0
		for _, p := range picks {
			all := append(append([]string(nil), account...), neutral...)
			cmd := all[int(p)%len(all)]
			if int(p)%len(all) >= len(account) {
				wantNeutral++
			}
			src.WriteString(cmd + "\n")
		}
		parsed, err := script.Parse(src.String())
		if err != nil {
			return false
		}
		out := stripAccountCommands(parsed.Nodes, false, nil)
		// No account command survives; all neutral commands survive.
		count := 0
		for _, n := range out {
			c, ok := n.(*script.Command)
			if !ok {
				return false
			}
			switch c.Name {
			case "adduser", "addgroup", "passwd", "deluser", "delgroup":
				return false
			}
			count++
		}
		return count == wantNeutral
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the preamble renders and reparses for arbitrary account
// name sets (quoting of gecos fields etc.).
func TestPreambleRendersProperty(t *testing.T) {
	f := func(names []string) bool {
		users := make(map[string]script.User)
		groups := make(map[string]script.Group)
		for i, n := range names {
			name := fmt.Sprintf("u%x%d", n, i)
			users[name] = script.User{Name: name, Gecos: "svc " + name, Home: "/var/lib/" + name, Shell: "/sbin/nologin"}
			groups[name] = script.Group{Name: name}
		}
		plan := &accountPlan{}
		for name, g := range groups {
			g.GID = 300
			plan.groups = append(plan.groups, g)
			_ = name
		}
		for name, u := range users {
			u.UID = 300
			plan.users = append(plan.users, u)
			_ = name
		}
		preamble := renderPreamble(plan)
		_, err := script.Parse(preamble)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
