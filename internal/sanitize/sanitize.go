package sanitize

import (
	"fmt"
	"sync"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/script"
)

// Phases is the per-operation timing breakdown of one sanitization,
// matching Table 4's rows: integrity check, archive processing
// (decompress + recompress), script modification, and signature
// generation.
type Phases struct {
	CheckIntegrity time.Duration
	Archive        time.Duration
	ModifyScripts  time.Duration
	GenerateSigs   time.Duration
}

// Total returns the native (outside-SGX) sanitization time.
func (p Phases) Total() time.Duration {
	return p.CheckIntegrity + p.Archive + p.ModifyScripts + p.GenerateSigs
}

// Result describes one sanitized package.
type Result struct {
	// Package is the sanitized, re-signed package.
	Package *apk.Package
	// Raw is its encoded wire form.
	Raw []byte
	// OriginalSize and SanitizedSize are the wire sizes before/after —
	// the Figure 9 size overhead.
	OriginalSize  int64
	SanitizedSize int64
	// Phases is the native timing breakdown (Table 4).
	Phases Phases
	// SGXOverhead is the modeled extra time for in-enclave execution
	// (Figure 12); Total sanitization time inside SGX is
	// Phases.Total() + SGXOverhead.
	SGXOverhead time.Duration
	// WorkingSet is the modeled enclave working set.
	WorkingSet int64
	// ExceedsEPC marks packages whose working set spills out of the
	// EPC (the triangle markers of Figure 8).
	ExceedsEPC bool
	// FileCount and UncompressedSize echo package properties for the
	// Figure 8/9 axes.
	FileCount        int
	UncompressedSize int64
}

// InSGXTime returns the modeled in-enclave sanitization time.
func (r *Result) InSGXTime() time.Duration {
	return r.Phases.Total() + r.SGXOverhead
}

// SizeOverheadPercent returns the Figure 9 metric.
func (r *Result) SizeOverheadPercent() float64 {
	if r.OriginalSize == 0 {
		return 0
	}
	return 100 * float64(r.SanitizedSize-r.OriginalSize) / float64(r.OriginalSize)
}

// Sanitizer sanitizes packages under one policy-derived plan. A
// Sanitizer is reentrant: Sanitize only reads the configuration fields,
// so one instance may be shared by any number of worker goroutines
// (the refresh pipeline sanitizes packages concurrently).
type Sanitizer struct {
	// Plan is the repository-wide account/config plan.
	Plan *Plan
	// TrustRing verifies the upstream package signatures (the policy's
	// signers_keys).
	TrustRing *keys.Ring
	// SignKey is the per-repository TSR signing key (generated inside
	// the enclave at policy deployment).
	SignKey *keys.Pair
	// EPC models the SGX execution cost; the zero value disables the
	// SGX overhead model (TSR outside SGX, the Figure 12 baseline).
	EPC enclave.CostModel

	// The preamble parse is shared across packages: it depends only on
	// the plan, and re-parsing it per account-creating package was the
	// dominant script-modification cost on large repositories.
	preambleOnce   sync.Once
	preambleParsed *script.Script
	preambleErr    error
}

// parsedPreamble parses the plan preamble once per Sanitizer.
func (s *Sanitizer) parsedPreamble() (*script.Script, error) {
	s.preambleOnce.Do(func() {
		s.preambleParsed, s.preambleErr = script.Parse(s.Plan.Preamble)
	})
	return s.preambleParsed, s.preambleErr
}

// Sanitize verifies, rewrites, re-signs and re-encodes one package.
func (s *Sanitizer) Sanitize(raw []byte) (*Result, error) {
	res := &Result{OriginalSize: int64(len(raw))}

	// Phase: integrity + authenticity check (signature over the exact
	// control segment bytes).
	start := time.Now()
	control, err := apk.RawControlSegment(raw)
	if err != nil {
		return nil, err
	}
	sigOK := false
	var decoded *apk.Package
	res.Phases.CheckIntegrity = time.Since(start)

	// Phase: archive processing (full decode: gunzip + untar + hash).
	start = time.Now()
	decoded, err = apk.Decode(raw)
	if err != nil {
		return nil, err
	}
	res.Phases.Archive = time.Since(start)

	start = time.Now()
	for _, sig := range decoded.Signatures {
		// Key names inside the package are hints; policy rings label
		// keys locally, so try every trusted key.
		if _, err := s.TrustRing.VerifyAny(control, sig); err == nil {
			sigOK = true
			break
		}
	}
	if !sigOK {
		return nil, fmt.Errorf("%w: %s-%s", apk.ErrUntrusted, decoded.Name, decoded.Version)
	}
	res.Phases.CheckIntegrity += time.Since(start)

	res.FileCount = decoded.FileCount()
	res.UncompressedSize = decoded.UncompressedSize()

	// Phase: script modification.
	start = time.Now()
	sanitized := decoded.Clone()
	if err := s.rewriteScripts(sanitized); err != nil {
		return nil, err
	}
	res.Phases.ModifyScripts = time.Since(start)

	// Phase: signature generation — one per data-segment file, stored
	// in PAX headers (§5.3).
	start = time.Now()
	for i := range sanitized.Files {
		f := &sanitized.Files[i]
		sig, err := s.SignKey.Sign(f.Content)
		if err != nil {
			return nil, err
		}
		if f.Xattrs == nil {
			f.Xattrs = make(map[string][]byte, 1)
		}
		f.Xattrs[apk.XattrIMA] = sig
	}
	// Replace the upstream package signature with TSR's.
	sanitized.Signatures = nil
	if err := apk.Sign(sanitized, s.SignKey); err != nil {
		return nil, err
	}
	res.Phases.GenerateSigs = time.Since(start)

	// Phase: archive processing (re-encode: tar + gzip).
	start = time.Now()
	out, err := apk.Encode(sanitized)
	if err != nil {
		return nil, err
	}
	res.Phases.Archive += time.Since(start)

	res.Package = sanitized
	res.Raw = out
	res.SanitizedSize = int64(len(out))

	// SGX model: the working set is the wire form plus the decoded and
	// re-encoded in-memory copies ("TSR extracts and manipulates the
	// package completely in the memory", §6.2).
	res.WorkingSet = res.OriginalSize + 2*res.UncompressedSize + res.SanitizedSize
	res.ExceedsEPC = s.EPC.ExceedsEPC(res.WorkingSet)
	res.SGXOverhead = s.EPC.Overhead(res.WorkingSet, res.Phases.Total())
	return res, nil
}

// rewriteScripts rewrites every hook per §4.2 and rejects unsupported
// packages. For account-creating hooks the user/group commands are
// removed and the canonical preamble is prepended; signature
// installation commands are appended for the predicted config files and
// for files created empty by the script.
func (s *Sanitizer) rewriteScripts(p *apk.Package) error {
	if len(p.Scripts) == 0 {
		return nil
	}
	rewritten := make(map[string]string, len(p.Scripts))
	for hook, srcText := range p.Scripts {
		parsed, err := script.Parse(srcText)
		if err != nil {
			return fmt.Errorf("%w: %s %s: %v", ErrBadScript, p.Name, hook, err)
		}
		classes := script.Classify(parsed)
		if !classes.SafeAfterTSR() {
			return fmt.Errorf("%w: %s-%s hook %s performs %v", ErrUnsupported, p.Name, p.Version, hook, classes)
		}
		out, err := s.rewriteOne(parsed, classes)
		if err != nil {
			return fmt.Errorf("sanitize: %s %s: %w", p.Name, hook, err)
		}
		rewritten[hook] = out
	}
	p.Scripts = rewritten
	return nil
}

// rewriteOne rewrites a single hook script.
func (s *Sanitizer) rewriteOne(parsed *script.Script, classes script.ClassSet) (string, error) {
	var b []script.Node
	createsAccounts := classes[script.OpUserGroup]
	touchesFiles := classes[script.OpEmptyFile]

	if createsAccounts {
		pre, err := s.parsedPreamble()
		if err != nil {
			return "", err
		}
		b = append(b, pre.Nodes...)
	}
	b = append(b, stripAccountCommands(parsed.Nodes, touchesFiles, s.Plan.EmptyFileSig)...)

	if createsAccounts {
		// Install the predicted configuration signatures.
		for _, path := range sortedKeys(s.Plan.ConfigSigs) {
			b = append(b, setfattrNode(path, s.Plan.ConfigSigs[path]))
		}
	}
	out := &script.Script{Nodes: b}
	return out.Render(), nil
}

// stripAccountCommands removes adduser/addgroup/passwd commands (their
// effect is subsumed by the preamble, and empty-password commands are
// dropped as security fixes), recursing into if branches. After each
// kept `touch PATH`, a setfattr installing the empty-content signature
// is inserted when emptySig is provided.
func stripAccountCommands(nodes []script.Node, signTouches bool, emptySig []byte) []script.Node {
	var out []script.Node
	for _, n := range nodes {
		switch v := n.(type) {
		case *script.Command:
			switch v.Name {
			case "adduser", "addgroup", "passwd", "deluser", "delgroup":
				continue
			}
			out = append(out, v)
			if signTouches && v.Name == "touch" && emptySig != nil {
				for _, arg := range v.Args {
					if len(arg) > 0 && arg[0] == '/' {
						out = append(out, setfattrNode(arg, emptySig))
					}
				}
			}
		case *script.If:
			out = append(out, &script.If{
				Cond: v.Cond,
				Then: stripAccountCommands(v.Then, signTouches, emptySig),
				Else: stripAccountCommands(v.Else, signTouches, emptySig),
			})
		default:
			out = append(out, n)
		}
	}
	return out
}

// setfattrNode builds `setfattr -n security.ima -v <hex> <path>`.
func setfattrNode(path string, sig []byte) script.Node {
	return &script.Command{
		Name: "setfattr",
		Args: []string{"-n", apk.XattrIMA, "-v", fmt.Sprintf("%x", sig), path},
	}
}
