package workload

import (
	"bytes"
	"reflect"
	"testing"

	"tsr/internal/apk"
	"tsr/internal/script"
)

func TestFullScaleMatchesTable1(t *testing.T) {
	g := New(Config{Seed: 1, Scale: 1.0})
	main := TakeCensus(g.SpecsByRepo("main"))
	comm := TakeCensus(g.SpecsByRepo("community"))

	// Table 1 exact counts.
	if main.Total != 5665 {
		t.Errorf("main total = %d, want 5665", main.Total)
	}
	if comm.Total != 5916 {
		t.Errorf("community total = %d, want 5916", comm.Total)
	}
	if main.WithoutScript != 5531 {
		t.Errorf("main without scripts = %d, want 5531", main.WithoutScript)
	}
	if comm.WithoutScript != 5772 {
		t.Errorf("community without scripts = %d, want 5772", comm.WithoutScript)
	}
	if main.SafeScripts != 24 || comm.SafeScripts != 29 {
		t.Errorf("safe scripts = %d/%d, want 24/29", main.SafeScripts, comm.SafeScripts)
	}
	if main.UnsafeScripts != 110 || comm.UnsafeScripts != 115 {
		t.Errorf("unsafe scripts = %d/%d, want 110/115", main.UnsafeScripts, comm.UnsafeScripts)
	}
}

func TestFullScaleMatchesTable2(t *testing.T) {
	g := New(Config{Seed: 1, Scale: 1.0})
	main := TakeCensus(g.SpecsByRepo("main")).OpRows
	comm := TakeCensus(g.SpecsByRepo("community")).OpRows

	wantMain := map[script.OpClass]int{
		script.OpFilesystem:      30,
		script.OpEmpty:           5,
		script.OpTextProcessing:  17,
		script.OpConfigChange:    11,
		script.OpEmptyFile:       1,
		script.OpUserGroup:       97,
		script.OpShellActivation: 4,
	}
	wantComm := map[script.OpClass]int{
		script.OpFilesystem:      15,
		script.OpEmpty:           17,
		script.OpTextProcessing:  19,
		script.OpConfigChange:    7,
		script.OpEmptyFile:       0,
		script.OpUserGroup:       104,
		script.OpShellActivation: 6,
	}
	for op, want := range wantMain {
		if main[op] != want {
			t.Errorf("main %v = %d, want %d", op, main[op], want)
		}
	}
	for op, want := range wantComm {
		if comm[op] != want {
			t.Errorf("community %v = %d, want %d", op, comm[op], want)
		}
	}
}

func TestUnsupportedRateMatchesPaper(t *testing.T) {
	// §4.2: 28 packages (0.24%) unsupported; 99.76% supported.
	g := New(Config{Seed: 1, Scale: 1.0})
	c := TakeCensus(g.Specs())
	unsupported := c.Total - c.Supported
	if unsupported != 28 {
		t.Fatalf("unsupported = %d, want 28", unsupported)
	}
	rate := float64(c.Supported) / float64(c.Total)
	if rate < 0.9975 || rate > 0.9977 {
		t.Fatalf("support rate = %.4f, want ~0.9976", rate)
	}
}

func TestScaledPopulationKeepsAllRows(t *testing.T) {
	g := New(Config{Seed: 1, Scale: 0.02})
	c := TakeCensus(g.Specs())
	if c.Total < 200 {
		t.Fatalf("scaled total = %d", c.Total)
	}
	for _, op := range []script.OpClass{
		script.OpFilesystem, script.OpEmpty, script.OpTextProcessing,
		script.OpConfigChange, script.OpUserGroup, script.OpShellActivation,
	} {
		if c.OpRows[op] == 0 {
			t.Errorf("row %v empty at small scale", op)
		}
	}
	// The CVE pair survives scaling.
	var cve int
	for _, s := range g.Specs() {
		if s.Category == CatUserGroupShell {
			cve++
		}
	}
	if cve != 4 { // 2 in main + 2 in community
		t.Fatalf("CVE-style packages = %d, want 4", cve)
	}
}

func TestDeterminism(t *testing.T) {
	g1 := New(Config{Seed: 42, Scale: 0.01})
	g2 := New(Config{Seed: 42, Scale: 0.01})
	s1, s2 := g1.Specs(), g2.Specs()
	if len(s1) != len(s2) {
		t.Fatalf("spec counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if !reflect.DeepEqual(s1[i], s2[i]) {
			t.Fatalf("spec %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	p1, err := g1.Build(s1[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.Build(s2[0])
	if err != nil {
		t.Fatal(err)
	}
	raw1, _ := apk.Encode(p1)
	raw2, _ := apk.Encode(p2)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("same seed produced different package bytes")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g1 := New(Config{Seed: 1, Scale: 0.01})
	g2 := New(Config{Seed: 2, Scale: 0.01})
	same := true
	for i := range g1.Specs() {
		if g1.Specs()[i].TotalSize != g2.Specs()[i].TotalSize {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical size draws")
	}
}

func TestBuildProducesValidPackages(t *testing.T) {
	g := New(Config{Seed: 3, Scale: 0.01})
	for _, spec := range g.Specs()[:50] {
		p, err := g.Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if p.Name != spec.Name {
			t.Fatalf("name = %s", p.Name)
		}
		raw, err := apk.Encode(p)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if _, err := apk.Decode(raw); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if spec.Category.HasScript() {
			src, ok := p.Scripts["post-install"]
			if !ok {
				t.Fatalf("%s: scripted category without script", spec.Name)
			}
			if _, err := script.Parse(src); err != nil {
				t.Fatalf("%s: script does not parse: %v", spec.Name, err)
			}
		} else if len(p.Scripts) != 0 {
			t.Fatalf("%s: unexpected script", spec.Name)
		}
	}
}

func TestScriptClassificationMatchesCategory(t *testing.T) {
	// The generated scripts must classify (via the script package) into
	// exactly the Table 2 rows their category claims.
	g := New(Config{Seed: 4, Scale: 0.02})
	for _, spec := range g.Specs() {
		if !spec.Category.HasScript() {
			continue
		}
		p, err := g.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		classes := script.Classify(script.MustParse(p.Scripts["post-install"]))
		want := opRows(spec.Category)
		for _, op := range want {
			if !classes[op] {
				t.Fatalf("%s (%v): classes %v missing %v", spec.Name, spec.Category, classes, op)
			}
		}
		if len(classes) != len(want) {
			t.Fatalf("%s (%v): classes %v, want exactly %v", spec.Name, spec.Category, classes, want)
		}
	}
}

func TestFileSizesSumToTotal(t *testing.T) {
	g := New(Config{Seed: 5, Scale: 0.01})
	for _, spec := range g.Specs()[:30] {
		p, err := g.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, f := range p.Files {
			sum += int64(len(f.Content))
		}
		// Config/shell categories add small extra files.
		extra := int64(0)
		switch spec.Category {
		case CatConfig:
			extra = int64(len("key=placeholder\n"))
		case CatShell, CatUserGroupShell:
			extra = int64(len("#!shell " + spec.Name))
		}
		if sum != spec.TotalSize+extra {
			t.Fatalf("%s: sum %d != total %d (+%d)", spec.Name, sum, spec.TotalSize, extra)
		}
	}
}

func TestSizeDistributionShape(t *testing.T) {
	g := New(Config{Seed: 6, Scale: 1.0})
	var sizes []int64
	var epcTail int
	for _, s := range g.Specs() {
		sizes = append(sizes, s.TotalSize)
		if s.TotalSize > 128<<20 {
			epcTail++
		}
	}
	// A handful of packages exceed the EPC, as in Figures 8/12.
	if epcTail == 0 {
		t.Fatal("no packages exceed the EPC")
	}
	if epcTail > len(sizes)/100 {
		t.Fatalf("too many EPC-busting packages: %d", epcTail)
	}
	// Total repository size lands in the right ballpark (paper: ~3 GB).
	var total int64
	for _, s := range sizes {
		total += s
	}
	if total < 1e9 || total > 8e9 {
		t.Fatalf("total repo size = %.1f GB, want 1-8 GB", float64(total)/1e9)
	}
}

func TestCVEPackagesHaveEmptyPassword(t *testing.T) {
	g := New(Config{Seed: 7, Scale: 1.0})
	for _, spec := range g.Specs() {
		if spec.Category != CatUserGroupShell {
			continue
		}
		p, err := g.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		src := p.Scripts["post-install"]
		if !bytes.Contains([]byte(src), []byte("passwd -d")) {
			t.Fatalf("%s: no empty-password command", spec.Name)
		}
		if !bytes.Contains([]byte(src), []byte("-s /bin/ash")) {
			t.Fatalf("%s: no interactive shell", spec.Name)
		}
	}
}

func TestBuildUpdateChangesContent(t *testing.T) {
	g := New(Config{Seed: 8, Scale: 0.01})
	spec := g.Specs()[0]
	v1, err := g.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := g.BuildUpdate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != "1.0-r1" {
		t.Fatalf("version = %s", v2.Version)
	}
	h1, _ := v1.DataHash()
	h2, _ := v2.DataHash()
	if h1 == h2 {
		t.Fatal("update has identical contents")
	}
}

func TestCategoryStringAndPredicates(t *testing.T) {
	if CatUserGroupShell.String() != "usergroup+shell" {
		t.Fatal("category string")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category string empty")
	}
	if CatNoScript.HasScript() || !CatFS.HasScript() {
		t.Fatal("HasScript wrong")
	}
	if !CatNoScript.SupportedByTSR() || CatConfig.SupportedByTSR() || CatShell.SupportedByTSR() || CatUserGroupShell.SupportedByTSR() {
		t.Fatal("SupportedByTSR wrong")
	}
}
