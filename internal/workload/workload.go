// Package workload generates the synthetic Alpine-like package
// population the experiments run on. It is calibrated to the paper's
// measurements of Alpine v3.11:
//
//   - Table 1: 5665 main + 5916 community packages; 97.6% carry no
//     scripts; of the scripted rest, 81% are unsafe;
//   - Table 2: the per-operation package counts, including overlaps
//     (e.g. the two packages that create a user AND set an empty
//     password and shell — the CVE-2019-5021 analogues §4.2 reports);
//   - Figures 8-9: heavy-tailed file counts and package sizes
//     (log-normal bulk plus a Pareto tail that exceeds the SGX EPC).
//
// Packages are materialized lazily and deterministically: Build(spec)
// always returns identical bytes for the same seed, so experiments are
// reproducible and the full 3 GB repository never needs to be resident.
package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"tsr/internal/apk"
	"tsr/internal/netsim"
	"tsr/internal/script"
)

// Category is the script profile of a generated package. Categories
// encode the Table 2 rows including the observed overlaps.
type Category int

const (
	// CatNoScript: no installation scripts (97.6% of packages).
	CatNoScript Category = iota
	// CatFS: filesystem-structure changes only (safe).
	CatFS
	// CatText: read-only text processing (safe).
	CatText
	// CatEmpty: conditional checks / display only (safe).
	CatEmpty
	// CatConfig: modifies existing configuration files (unsafe,
	// unsupported by TSR).
	CatConfig
	// CatShell: activates a new login shell (unsafe, unsupported).
	CatShell
	// CatUserGroup: creates a service user/group (unsafe, sanitizable).
	CatUserGroup
	// CatUserGroupFS: user/group creation plus filesystem changes.
	CatUserGroupFS
	// CatUserGroupText: user/group creation plus text processing.
	CatUserGroupText
	// CatUserGroupShell: user/group creation plus shell activation AND
	// an empty password — the CVE-2019-5021-style packages.
	CatUserGroupShell
	// CatUserGroupEmptyFile: user/group creation plus empty-file
	// creation.
	CatUserGroupEmptyFile
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	names := [...]string{
		"no-script", "fs", "text", "empty", "config", "shell",
		"usergroup", "usergroup+fs", "usergroup+text",
		"usergroup+shell", "usergroup+emptyfile",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// HasScript reports whether packages of this category carry scripts.
func (c Category) HasScript() bool { return c != CatNoScript }

// CreatesAccounts reports whether the category creates users/groups.
func (c Category) CreatesAccounts() bool {
	switch c {
	case CatUserGroup, CatUserGroupFS, CatUserGroupText, CatUserGroupShell, CatUserGroupEmptyFile:
		return true
	}
	return false
}

// SafeWithoutTSR mirrors Table 1's "Safe" column for scripted packages.
func (c Category) SafeWithoutTSR() bool {
	switch c {
	case CatNoScript, CatFS, CatText, CatEmpty:
		return true
	}
	return false
}

// SupportedByTSR reports whether TSR can sanitize the category
// (Table 2 "TSR" column: config changes and shell activation are
// rejected).
func (c Category) SupportedByTSR() bool {
	switch c {
	case CatConfig, CatShell, CatUserGroupShell:
		return false
	}
	return true
}

// repoPlan is the per-repository category census at full scale.
type repoPlan struct {
	name   string
	counts map[Category]int
}

// fullPlans returns the Table 1/Table 2 calibration. The overlap
// structure reconciles both tables exactly:
//
//	main:      rows FS=30 Empty=5 Text=17 Config=11 EmptyFile=1 UG=97 Shell=4
//	community: rows FS=15 Empty=17 Text=19 Config=7 EmptyFile=0 UG=104 Shell=6
func fullPlans() []repoPlan {
	return []repoPlan{
		{
			name: "main",
			counts: map[Category]int{
				CatNoScript:           5531,
				CatFS:                 7,
				CatText:               12,
				CatEmpty:              5,
				CatConfig:             11,
				CatShell:              2,
				CatUserGroup:          66,
				CatUserGroupFS:        23,
				CatUserGroupText:      5,
				CatUserGroupShell:     2,
				CatUserGroupEmptyFile: 1,
			},
		},
		{
			name: "community",
			counts: map[Category]int{
				CatNoScript:           5772,
				CatFS:                 4,
				CatText:               8,
				CatEmpty:              17,
				CatConfig:             7,
				CatShell:              4,
				CatUserGroup:          80,
				CatUserGroupFS:        11,
				CatUserGroupText:      11,
				CatUserGroupShell:     2,
				CatUserGroupEmptyFile: 0,
			},
		},
	}
}

// Config parameterizes the generator.
type Config struct {
	// Seed makes the population reproducible.
	Seed int64
	// Scale scales package counts (1.0 = the full 11,581 packages).
	// Scripted categories are kept at a minimum of their full-scale
	// count's sign (at least 1 if nonzero) so every Table 2 row stays
	// populated; the CVE-style packages are always present.
	Scale float64
	// MeanFiles shifts the file-count distribution (default ~4 median).
	MeanFiles float64
	// EPCTailProb is the probability that a package draws its size from
	// the Pareto tail that exceeds the SGX EPC (default 0.001).
	EPCTailProb float64
}

// Spec describes one package before materialization.
type Spec struct {
	Name     string
	Version  string
	Repo     string // "main" or "community"
	Category Category
	// Svc is the service account name for account-creating packages.
	Svc string
	// FileCount and TotalSize drive the data segment.
	FileCount int
	TotalSize int64
	Depends   []string
}

// Generator produces package specs and materializes packages.
type Generator struct {
	cfg   Config
	specs []Spec
}

// New builds the deterministic package population.
func New(cfg Config) *Generator {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.EPCTailProb == 0 {
		cfg.EPCTailProb = 0.001
	}
	g := &Generator{cfg: cfg}
	rng := netsim.NewRNG(cfg.Seed)
	for _, plan := range fullPlans() {
		for _, cat := range allCategories() {
			full := plan.counts[cat]
			n := scaledCount(full, cfg.Scale)
			for i := 0; i < n; i++ {
				g.specs = append(g.specs, g.makeSpec(rng, plan.name, cat, i))
			}
		}
	}
	// Sprinkle dependencies on earlier packages (30% of packages get
	// 1-3 deps), mimicking the dependency graph density.
	for i := range g.specs {
		if i == 0 || rng.Float64() > 0.3 {
			continue
		}
		nDeps := 1 + rng.Intn(3)
		seen := map[string]bool{}
		for d := 0; d < nDeps; d++ {
			dep := g.specs[rng.Intn(i)].Name
			if !seen[dep] {
				seen[dep] = true
				g.specs[i].Depends = append(g.specs[i].Depends, dep)
			}
		}
	}
	return g
}

func allCategories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// scaledCount scales a full-population count, keeping nonzero
// categories populated and the CVE pair intact.
func scaledCount(full int, scale float64) int {
	if full == 0 {
		return 0
	}
	n := int(math.Round(float64(full) * scale))
	if n < 1 {
		n = 1
	}
	if full == 2 && scale >= 0.01 {
		n = 2 // keep both CVE-style packages at any reasonable scale
	}
	return n
}

func (g *Generator) makeSpec(rng *netsim.RNG, repoName string, cat Category, i int) Spec {
	name := fmt.Sprintf("%s-%s-%04d", repoName, cat, i)
	spec := Spec{
		Name:     name,
		Version:  "1.0-r0",
		Repo:     repoName,
		Category: cat,
	}
	if cat.CreatesAccounts() {
		spec.Svc = fmt.Sprintf("svc-%s-%s-%04d", repoName, shortCat(cat), i)
	}
	// File counts and sizes are calibrated so that the per-package
	// signature overhead of Figure 9 lands near the paper's
	// percentiles: the median Alpine package is small (~12 KB) with
	// ~8 files, so the 256-byte signatures add ~10-15% at the median.
	mean := g.cfg.MeanFiles
	if mean == 0 {
		mean = 2.1
	}
	spec.FileCount = clampInt(int(math.Round(rng.LogNormal(mean, 1.2))), 1, 3000)
	if rng.Float64() < g.cfg.EPCTailProb {
		// EPC-busting package: 130-260 MB uncompressed.
		spec.TotalSize = int64(rng.Pareto(130e6, 3))
		if spec.TotalSize > 260e6 {
			spec.TotalSize = 260e6
		}
	} else {
		spec.TotalSize = int64(rng.LogNormal(math.Log(12e3), 2.0))
		if spec.TotalSize < 256 {
			spec.TotalSize = 256
		}
		if spec.TotalSize > 64e6 {
			spec.TotalSize = 64e6
		}
	}
	return spec
}

func shortCat(c Category) string {
	switch c {
	case CatUserGroup:
		return "ug"
	case CatUserGroupFS:
		return "ugfs"
	case CatUserGroupText:
		return "ugtx"
	case CatUserGroupShell:
		return "ugsh"
	case CatUserGroupEmptyFile:
		return "ugef"
	default:
		return "x"
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Specs returns the package population.
func (g *Generator) Specs() []Spec { return g.specs }

// SpecsByRepo returns the specs of one repository ("main"/"community").
func (g *Generator) SpecsByRepo(repoName string) []Spec {
	var out []Spec
	for _, s := range g.specs {
		if s.Repo == repoName {
			out = append(out, s)
		}
	}
	return out
}

// Build materializes the package for a spec. Content is deterministic
// in (seed, spec.Name, spec.Version).
func (g *Generator) Build(spec Spec) (*apk.Package, error) {
	p := &apk.Package{
		Name:    spec.Name,
		Version: spec.Version,
		Arch:    "x86_64",
		Depends: append([]string(nil), spec.Depends...),
	}
	if src := g.scriptFor(spec); src != "" {
		// Validate the generated script parses; a generator bug here
		// would silently skew the census.
		if _, err := script.Parse(src); err != nil {
			return nil, fmt.Errorf("workload: generated script for %s: %w", spec.Name, err)
		}
		p.Scripts = map[string]string{"post-install": src}
	}
	p.Files = g.filesFor(spec)
	return p, nil
}

// BuildUpdate materializes the next version of a spec's package (a
// security-fix release with changed contents).
func (g *Generator) BuildUpdate(spec Spec) (*apk.Package, error) {
	spec.Version = "1.0-r1"
	return g.Build(spec)
}

// scriptFor renders the category's installation script.
func (g *Generator) scriptFor(spec Spec) string {
	name, svc := spec.Name, spec.Svc
	switch spec.Category {
	case CatNoScript:
		return ""
	case CatFS:
		return fmt.Sprintf("mkdir -p /var/lib/%[1]s\nchmod 750 /var/lib/%[1]s\n", name)
	case CatText:
		return "grep root /etc/passwd\nsed s/root/root/ /etc/group\n"
	case CatEmpty:
		return "# maintenance notes\nif [ -f /etc/motd ]; then\n\techo configured\nfi\nexit 0\n"
	case CatConfig:
		// Rewrites a config file the package itself ships — the
		// unpredictable in-place modification TSR rejects.
		return fmt.Sprintf("sed -i s/placeholder/generated/ /etc/%s.conf\n", name)
	case CatShell:
		return fmt.Sprintf("add-shell /usr/bin/%s-sh\n", name)
	case CatUserGroup:
		return fmt.Sprintf("addgroup -S %[1]s\nadduser -S -G %[1]s -s /sbin/nologin -h /var/lib/%[1]s %[1]s\n", svc)
	case CatUserGroupFS:
		return fmt.Sprintf("addgroup -S %[1]s\nadduser -S -G %[1]s -s /sbin/nologin %[1]s\nmkdir -p /var/lib/%[1]s\nchown %[1]s /var/lib/%[1]s\n", svc)
	case CatUserGroupText:
		return fmt.Sprintf("addgroup -S %[1]s\nadduser -S -G %[1]s -s /sbin/nologin %[1]s\ngrep %[1]s /etc/passwd\n", svc)
	case CatUserGroupShell:
		// The CVE-2019-5021 analogue: interactive shell, empty password,
		// plus a shell activation.
		return fmt.Sprintf("addgroup -S %[1]s\nadduser -S -G %[1]s -s /bin/ash %[1]s\npasswd -d %[1]s\nadd-shell /usr/bin/%[2]s-sh\n", svc, spec.Name)
	case CatUserGroupEmptyFile:
		return fmt.Sprintf("addgroup -S %[1]s\nadduser -S -G %[1]s -s /sbin/nologin %[1]s\ntouch /var/run/%[1]s.pid\n", svc)
	default:
		return ""
	}
}

// filesFor renders the data segment: one binary plus libraries/shared
// data, sizes split deterministically to sum to spec.TotalSize.
func (g *Generator) filesFor(spec Spec) []apk.File {
	n := spec.FileCount
	sizes := splitSizes(spec.TotalSize, n, g.cfg.Seed, spec.Name)
	files := make([]apk.File, 0, n+1)
	for i := 0; i < n; i++ {
		var path string
		switch {
		case i == 0:
			path = fmt.Sprintf("/usr/bin/%s", spec.Name)
		case i%3 == 1:
			path = fmt.Sprintf("/usr/lib/%s/lib%d.so", spec.Name, i)
		default:
			path = fmt.Sprintf("/usr/share/%s/data%d", spec.Name, i)
		}
		files = append(files, apk.File{
			Path:    path,
			Mode:    0o755,
			Content: fill(g.cfg.Seed, spec.Name+spec.Version, i, sizes[i]),
		})
	}
	if spec.Category == CatConfig {
		files = append(files, apk.File{
			Path:    fmt.Sprintf("/etc/%s.conf", spec.Name),
			Mode:    0o644,
			Content: []byte("key=placeholder\n"),
		})
	}
	if spec.Category == CatShell || spec.Category == CatUserGroupShell {
		files = append(files, apk.File{
			Path:    fmt.Sprintf("/usr/bin/%s-sh", spec.Name),
			Mode:    0o755,
			Content: []byte("#!shell " + spec.Name),
		})
	}
	return files
}

// splitSizes deterministically splits total across n files with a
// dominant first file (the main binary), like real packages.
func splitSizes(total int64, n int, seed int64, name string) []int64 {
	sizes := make([]int64, n)
	if n == 1 {
		sizes[0] = total
		return sizes
	}
	// First file gets half; the rest split the remainder by a simple
	// deterministic weight sequence.
	sizes[0] = total / 2
	rest := total - sizes[0]
	var weightSum int64
	h := hash64(seed, name)
	weights := make([]int64, n-1)
	for i := range weights {
		h = xorshift(h)
		weights[i] = int64(h%1000) + 1
		weightSum += weights[i]
	}
	var used int64
	for i, w := range weights {
		s := rest * w / weightSum
		sizes[i+1] = s
		used += s
	}
	sizes[n-1] += rest - used // remainder to the last file
	return sizes
}

// fill produces deterministic, poorly compressible content of the given
// size (real binaries compress little, which matters for the archive
// processing costs of Table 4).
func fill(seed int64, name string, idx int, size int64) []byte {
	if size <= 0 {
		return nil
	}
	out := make([]byte, size)
	h := hash64(seed, fmt.Sprintf("%s/%d", name, idx))
	var word [8]byte
	for off := int64(0); off < size; off += 8 {
		h = xorshift(h)
		binary.LittleEndian.PutUint64(word[:], h)
		copy(out[off:], word[:])
	}
	return out
}

func hash64(seed int64, name string) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%d|%s", seed, name)))
	v := binary.LittleEndian.Uint64(sum[:8])
	if v == 0 {
		v = 1 // xorshift must not start at zero
	}
	return v
}

func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x == 0 {
		return 1
	}
	return x
}

// Census summarizes a population the way Tables 1 and 2 do.
type Census struct {
	Total         int
	WithoutScript int
	SafeScripts   int
	UnsafeScripts int
	// OpRows counts packages per Table 2 operation row.
	OpRows map[script.OpClass]int
	// Supported counts packages TSR can serve after sanitization.
	Supported int
}

// TakeCensus computes the census of a spec population.
func TakeCensus(specs []Spec) Census {
	c := Census{OpRows: make(map[script.OpClass]int)}
	for _, s := range specs {
		c.Total++
		if !s.Category.HasScript() {
			c.WithoutScript++
		} else if s.Category.SafeWithoutTSR() {
			c.SafeScripts++
		} else {
			c.UnsafeScripts++
		}
		if s.Category.SupportedByTSR() {
			c.Supported++
		}
		for _, row := range opRows(s.Category) {
			c.OpRows[row]++
		}
	}
	return c
}

// opRows maps a category to its Table 2 rows.
func opRows(c Category) []script.OpClass {
	switch c {
	case CatFS:
		return []script.OpClass{script.OpFilesystem}
	case CatText:
		return []script.OpClass{script.OpTextProcessing}
	case CatEmpty:
		return []script.OpClass{script.OpEmpty}
	case CatConfig:
		return []script.OpClass{script.OpConfigChange}
	case CatShell:
		return []script.OpClass{script.OpShellActivation}
	case CatUserGroup:
		return []script.OpClass{script.OpUserGroup}
	case CatUserGroupFS:
		return []script.OpClass{script.OpUserGroup, script.OpFilesystem}
	case CatUserGroupText:
		return []script.OpClass{script.OpUserGroup, script.OpTextProcessing}
	case CatUserGroupShell:
		return []script.OpClass{script.OpUserGroup, script.OpShellActivation}
	case CatUserGroupEmptyFile:
		return []script.OpClass{script.OpUserGroup, script.OpEmptyFile}
	default:
		return nil
	}
}
