package analysis

import (
	"go/ast"
)

// Noresign enforces the edge tier's trust boundary, established in PR
// 3: an edge replica is UNTRUSTED infrastructure that verifies and
// re-exposes origin signatures verbatim — it must never hold or use
// signing material. The whole client-side security argument (stale or
// tampering edges are detected and routed around) collapses if an
// edge can mint valid signatures, so the signing half of
// internal/keys is banned from internal/edge outright: keys.Pair,
// Generate, ParsePrivatePEM, Sign, SignDigest, and MarshalPrivatePEM.
// The verify half (Public, Ring, Verify*) remains available — that is
// exactly what an edge is for.
var Noresign = &Analyzer{
	Name: "noresign",
	Doc:  "internal/edge must never reference signing APIs; edges are untrusted and only verify",
	Applies: func(pkgPath string) bool {
		return pathHasSuffixSegments(pkgPath, "internal/edge")
	},
	Run: runNoresign,
}

// noresignBanned is the signing half of internal/keys.
var noresignBanned = map[string]bool{
	"Pair":              true, // the private-key type itself
	"Generate":          true,
	"ParsePrivatePEM":   true,
	"Sign":              true,
	"SignDigest":        true,
	"MarshalPrivatePEM": true,
}

func runNoresign(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if !pathHasSuffixSegments(obj.Pkg().Path(), "internal/keys") {
				return true
			}
			if !noresignBanned[obj.Name()] || pass.InTestFile(id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(), "edge code references signing API keys.%s; edges are untrusted and must only verify (use keys.Public/keys.Ring)", obj.Name())
			return true
		})
	}
	return nil
}
