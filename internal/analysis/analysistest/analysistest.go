// Package analysistest runs a tsrlint analyzer over a testdata package
// and checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// Expectations are `// want "regexp"` comments: each quoted Go string
// on the comment is a regular expression that must match the message of
// exactly one diagnostic reported on that line. Lines without a want
// comment must produce no diagnostics. Because the harness runs the
// analyzer through analysis.RunUnit, the //lint:allow escape hatch is
// live in testdata too — a suppressed violation needs no want comment,
// and malformed directives surface as "lintallow" diagnostics that can
// themselves be matched.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tsr/internal/analysis"
)

// want is one unmatched expectation at a file:line.
type want struct {
	pos token.Position
	re  *regexp.Regexp
}

// Run loads the package rooted at dir (relative to the test's working
// directory) as if it had the given import path — which is what
// analyzer Applies scoping keys on — runs a on it, and reports any
// mismatch between the diagnostics and the // want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	unit, err := analysis.LoadDir(".", dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if a.Applies != nil && !a.Applies(importPath) {
		t.Fatalf("analyzer %s does not apply to import path %q; fix the test's importPath", a.Name, importPath)
	}
	diags, err := analysis.RunUnit(unit, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants, err := collectWants(unit.Fset, unit.Files)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	pending := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		k := key{w.pos.Filename, w.pos.Line}
		pending[k] = append(pending[k], w)
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ws := pending[k]
		matched := false
		for i, w := range ws {
			if w.re.MatchString(d.Message) {
				pending[k] = append(ws[:i:i], ws[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var leftover []string
	for _, ws := range pending {
		for _, w := range ws {
			leftover = append(leftover, fmt.Sprintf("%s: no diagnostic matching %q", w.pos, w.re))
		}
	}
	sort.Strings(leftover)
	for _, msg := range leftover {
		t.Error(msg)
	}
}

// collectWants extracts every expectation from // want comments. A
// want comment holds one or more quoted Go strings, each compiled as a
// regexp; the expectation anchors to the line the comment starts on.
func collectWants(fset *token.FileSet, files []*ast.File) ([]want, error) {
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rest = strings.TrimSpace(rest)
				if rest == "" {
					return nil, fmt.Errorf("%s: want comment has no expectations", pos)
				}
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s: want expectation must be a quoted Go string, got %q", pos, rest)
					}
					lit, remainder, err := cutGoString(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					expr, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: unquoting %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("%s: compiling %q: %v", pos, expr, err)
					}
					wants = append(wants, want{pos: pos, re: re})
					rest = strings.TrimSpace(remainder)
				}
			}
		}
	}
	return wants, nil
}

// cutGoString splits off the leading quoted Go string literal from s,
// returning the literal (quotes included) and the remainder.
func cutGoString(s string) (lit, rest string, err error) {
	quote := s[0]
	if quote == '`' {
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[:i+2], s[i+2:], nil
		}
		return "", "", fmt.Errorf("unterminated raw string in %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case quote:
			return s[:i+1], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}
