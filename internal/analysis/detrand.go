package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand enforces seeded determinism in the packages whose outputs
// must be reproducible: internal/chaos (the fault schedule is a pure
// function of the seed — PR 6), internal/netsim (the modeled network
// is driven by an injected clock and RNG — seed state), and
// internal/experiments (seed-determinism tests assert byte-identical
// tables). In those packages, non-test code must not read the wall
// clock (time.Now — use the injected netsim.Clock), must not draw
// from the global math/rand source (use a seeded *rand.Rand /
// netsim.RNG), and must not emit output while ranging over a map
// (iteration order is deliberately random — collect and sort first).
// Latency-measurement sites that genuinely need the wall clock carry
// //lint:allow or //lint:file-allow annotations with reasons.
//
// One check applies to EVERY package, test files included:
// time-seeded RNGs (rand.NewSource(time.Now().UnixNano()) and
// friends). In production code they cause fleet lockstep or
// untraceable behavior; in tests they are the classic flake generator
// — a failure can never be reproduced because the seed is gone.
// TestRunShutsDownGracefully and BenchmarkFleetSoak pin their seeds
// for exactly this reason (docs/LINT.md documents the convention).
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "no wall clock, global math/rand, or map-ordered output in deterministic packages; no time-seeded RNGs anywhere",
	Run:  runDetrand,
}

// detrandScoped reports whether the full determinism rules apply to a
// package.
func detrandScoped(pkgPath string) bool {
	return pathHasSuffixSegments(pkgPath, "internal/chaos") ||
		pathHasSuffixSegments(pkgPath, "internal/netsim") ||
		pathHasSuffixSegments(pkgPath, "internal/experiments")
}

// detrandGlobalRand is the set of package-level math/rand functions
// that draw from (or reseed) the shared global source. The
// constructors New/NewSource are fine — with an explicit seed.
var detrandGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDetrand(pass *Pass) error {
	scoped := detrandScoped(pass.Pkg.Path())
	// seededCalls collects the time.Now idents consumed by a flagged
	// rand.NewSource/rand.Seed seed expression, so the scoped
	// wall-clock check does not double-report them.
	seededNow := make(map[*ast.Ident]bool)
	emittingCalls := make(map[*ast.CallExpr]bool)

	for _, f := range pass.Files {
		inTest := pass.InTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Global check: time-seeded RNGs, everywhere including
				// tests.
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "math/rand" &&
					(fn.Name() == "NewSource" || fn.Name() == "Seed") {
					if nows := timeNowIdents(pass, n); len(nows) > 0 {
						for _, id := range nows {
							seededNow[id] = true
						}
						pass.Reportf(n.Pos(), "RNG seeded from time.Now: failures are unreproducible and fleets run in lockstep; derive the seed from crypto/rand, or pin it (see docs/LINT.md)")
					}
				}
			case *ast.RangeStmt:
				// Scoped check: output emitted during map iteration.
				if !scoped || inTest {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n.X]; !ok || tv.Type == nil {
					return true
				} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok || emittingCalls[call] {
						return true
					}
					if isOutputCall(pass, call) {
						emittingCalls[call] = true
						pass.Reportf(call.Pos(), "output emitted while ranging over a map is nondeterministically ordered; collect keys, sort, then emit")
					}
					return true
				})
			}
			return true
		})
	}

	if !scoped {
		return nil
	}
	// Scoped checks: wall clock and the global math/rand source, in
	// non-test files.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || seededNow[id] {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "time" && obj.Name() == "Now":
				pass.Reportf(id.Pos(), "deterministic package reads the wall clock; inject a netsim.Clock (or annotate a genuine latency measurement with //lint:allow detrand <reason>)")
			case obj.Pkg().Path() == "math/rand" && detrandGlobalRand[obj.Name()] &&
				obj.Type().(*types.Signature).Recv() == nil:
				pass.Reportf(id.Pos(), "deterministic package draws from the global math/rand source; use a seeded *rand.Rand (netsim.RNG)")
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call's static callee, if it is a named
// function or method.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// timeNowIdents returns the identifiers within expr that resolve to
// time.Now.
func timeNowIdents(pass *Pass, expr ast.Node) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				out = append(out, id)
			}
		}
		return true
	})
	return out
}

// isOutputCall reports whether a call emits output whose order the
// caller observes: the fmt print family and Write/WriteString
// methods.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" && fn.Name() == "WriteString" {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
