package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxhttp enforces the outbound-HTTP hygiene PR 4 retrofitted onto
// tsr.Client after a hung origin was observed wedging a
// FailoverClient's ranking forever: every outgoing request must be
// cancelable (http.NewRequestWithContext, so daemon shutdown aborts
// in-flight syncs instead of draining them) and every client must
// bound its requests (an http.Client literal without a Timeout, the
// package-level http.Get/Head/Post/PostForm helpers, and
// http.DefaultClient all hang forever on a black-holed peer). Test
// files are exempt — httptest servers are loopback.
var Ctxhttp = &Analyzer{
	Name: "ctxhttp",
	Doc:  "outgoing requests must use http.NewRequestWithContext and clients must carry timeouts",
	Run:  runCtxhttp,
}

// ctxhttpBareRequest are net/http package-level functions that issue
// or build requests without a context.
var ctxhttpBareRequest = map[string]string{
	"NewRequest": "http.NewRequestWithContext (wire the daemon shutdown context through)",
	"Get":        "http.NewRequestWithContext with a timeout-bounded client",
	"Head":       "http.NewRequestWithContext with a timeout-bounded client",
	"Post":       "http.NewRequestWithContext with a timeout-bounded client",
	"PostForm":   "http.NewRequestWithContext with a timeout-bounded client",
}

func runCtxhttp(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
					return true
				}
				if fn, ok := obj.(*types.Func); ok {
					if replacement, banned := ctxhttpBareRequest[fn.Name()]; banned &&
						fn.Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(), "http.%s issues an uncancelable request; use %s", fn.Name(), replacement)
					}
					return true
				}
				if v, ok := obj.(*types.Var); ok && v.Name() == "DefaultClient" {
					pass.Reportf(n.Pos(), "http.DefaultClient has no timeout and hangs forever on a black-holed peer; construct an http.Client with a Timeout")
				}
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok || tv.Type == nil {
					return true
				}
				if named, ok := tv.Type.(*types.Named); !ok ||
					named.Obj().Name() != "Client" || named.Obj().Pkg() == nil ||
					named.Obj().Pkg().Path() != "net/http" {
					return true
				}
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
							return true
						}
					}
				}
				pass.Reportf(n.Pos(), "http.Client literal without a Timeout hangs forever on a black-holed peer; set Timeout (or annotate a deliberate streaming client with //lint:allow ctxhttp <reason>)")
			}
			return true
		})
	}
	return nil
}
