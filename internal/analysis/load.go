package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// The loader type-checks the packages under analysis from source,
// resolving their imports through compiler export data produced by
// `go list -export`. This is the same modular strategy go vet's
// unitchecker uses, reimplemented on the standard library: no package
// is ever type-checked twice, dependencies are read as export data
// (fast, and immune to test-import cycles), and only the packages
// actually being linted are parsed.

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	DepOnly      bool
	Standard     bool
	ImportMap    map[string]string
	Error        *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the given patterns
// and merges the result into pkgs (keyed by import path).
func goList(dir string, pkgs map[string]*listedPkg, patterns ...string) error {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Export,DepOnly,Standard,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, ok := pkgs[p.ImportPath]; !ok {
			pkgs[p.ImportPath] = p
		}
	}
}

// LoadDir parses and type-checks the single package in dir — every
// .go file, _test.go included — under the given import path, without
// requiring the package to be part of the module's build graph. The
// analysistest harness uses it to load testdata packages (which go
// tooling ignores) with real type information: their imports are
// resolved through `go list -export` run in moduleDir, so testdata
// may import both the standard library and this module's packages.
func LoadDir(moduleDir, dir, importPath string) (*Unit, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	pkgs := make(map[string]*listedPkg)
	if len(imports) > 0 {
		var paths []string
		for path := range imports {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		if err := goList(moduleDir, pkgs, paths...); err != nil {
			return nil, err
		}
	}
	exportFile := func(path string) (string, error) {
		p, ok := pkgs[path]
		if !ok || p.Export == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return p.Export, nil
	}
	info := NewInfo()
	conf := types.Config{
		Importer: ExportDataImporter(fset, exportFile, nil),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}
	return &Unit{Path: importPath, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// ExportDataImporter builds a types.Importer that resolves import
// paths through importMap and reads compiler export data from the
// file exportFile returns for each resolved path. Both the standalone
// loader and the go vet unit mode (cmd/tsrlint) type-check through
// it.
func ExportDataImporter(fset *token.FileSet, exportFile func(path string) (string, error), importMap map[string]string) types.Importer {
	return mapImports(newExportImporter(fset, exportFile), importMap)
}

// newExportImporter builds the shared types.Importer that reads
// compiler export data files; callers wrap it per-unit with mapImports
// to apply that unit's import remapping. Sharing one importer across
// units means every dependency's export data is decoded exactly once.
func newExportImporter(fset *token.FileSet, exportFile func(path string) (string, error)) types.ImporterFrom {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	}).(types.ImporterFrom)
}

// mapImports remaps import paths (vendoring, test variants) before
// delegating; paths not in the map import as themselves.
func mapImports(base types.ImporterFrom, importMap map[string]string) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if resolved, ok := importMap[path]; ok {
			path = resolved
		}
		return base.ImportFrom(path, "", 0)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load lists, parses, and type-checks the packages matching the
// patterns (run in dir, typically the module root) and returns one
// Unit per package. Each package's own files — including in-package
// _test.go files and the external _test package, which go tooling
// treats as a separate unit — are parsed from source; everything they
// import is consumed as export data.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	pkgs := make(map[string]*listedPkg)
	if err := goList(dir, pkgs, patterns...); err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		pkg     *listedPkg
		path    string // unit path ("p" or "p_test" for the external test package)
		files   []*ast.File
		imports map[string]bool
	}
	var units []parsed
	parseAll := func(p *listedPkg, names []string) ([]*ast.File, map[string]bool, error) {
		var files []*ast.File
		imports := make(map[string]bool)
		for _, name := range names {
			full := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
			for _, spec := range f.Imports {
				if path, err := strconv.Unquote(spec.Path.Value); err == nil {
					imports[path] = true
				}
			}
		}
		return files, imports, nil
	}

	var paths []string
	for path, p := range pkgs {
		if !p.DepOnly {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths) // deterministic unit order
	for _, path := range paths {
		p := pkgs[path]
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by tsrlint", path)
		}
		files, imports, err := parseAll(p, append(append([]string{}, p.GoFiles...), p.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		units = append(units, parsed{pkg: p, path: path, files: files, imports: imports})
		if len(p.XTestGoFiles) > 0 {
			xfiles, ximports, err := parseAll(p, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			units = append(units, parsed{pkg: p, path: path + "_test", files: xfiles, imports: ximports})
		}
	}

	// Test files may import packages absent from the non-test
	// dependency graph (testing, httptest, ...): list them — and their
	// deps — in one extra go list call.
	var missing []string
	seen := make(map[string]bool)
	for _, u := range units {
		for imp := range u.imports {
			if _, ok := pkgs[imp]; !ok && !seen[imp] {
				seen[imp] = true
				missing = append(missing, imp)
			}
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		if err := goList(dir, pkgs, missing...); err != nil {
			return nil, err
		}
	}

	exportFile := func(path string) (string, error) {
		p, ok := pkgs[path]
		if !ok {
			return "", fmt.Errorf("no listed package for import %q", path)
		}
		if p.Export == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return p.Export, nil
	}

	base := newExportImporter(fset, exportFile)
	var result []*Unit
	for _, u := range units {
		info := NewInfo()
		conf := types.Config{
			Importer: mapImports(base, u.pkg.ImportMap),
			Sizes:    types.SizesFor("gc", "amd64"),
		}
		pkg, err := conf.Check(u.path, fset, u.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", u.path, err)
		}
		result = append(result, &Unit{Path: u.path, Fset: fset, Files: u.files, Pkg: pkg, TypesInfo: info})
	}
	return result, nil
}
