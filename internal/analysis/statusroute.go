package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Statusroute enforces the error-routing convention from PR 2's HTTP
// hardening: handlers in internal/tsr, internal/edge, and cmd/* never
// write error statuses ad hoc. Every error response goes through the
// package's httpError(w, statusFor(err), err) helper, so status
// mapping lives in exactly one switch per package (502 reserved for
// upstream failures, 503 for availability, sentinel-driven 4xx) and
// error bodies are uniformly JSON. Concretely: no calls to
// http.Error, and no WriteHeader with an error status — constant
// >= 400, or any non-constant code outside the httpError helper
// itself.
var Statusroute = &Analyzer{
	Name: "statusroute",
	Doc:  "HTTP handlers must route error responses through httpError(w, statusFor(err), err)",
	Applies: func(pkgPath string) bool {
		return pathHasSuffixSegments(pkgPath, "internal/tsr") ||
			pathHasSuffixSegments(pkgPath, "internal/edge") ||
			pathHasSegment(pkgPath, "cmd")
	},
	Run: runStatusroute,
}

func runStatusroute(pass *Pass) error {
	httpErrorType := httpResponseWriterType(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			isHelper := fn.Name.Name == "httpError"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// http.Error(w, msg, code) — never.
				if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Error" {
					pass.Reportf(call.Pos(), "http.Error bypasses the package's error routing; call httpError(w, statusFor(err), err) instead")
					return true
				}
				// w.WriteHeader(code) on an http.ResponseWriter.
				if sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
					return true
				}
				if httpErrorType == nil {
					return true
				}
				recv := pass.TypesInfo.Types[sel.X].Type
				if recv == nil || !types.Implements(recv, httpErrorType) {
					return true
				}
				tv := pass.TypesInfo.Types[call.Args[0]]
				if tv.Value != nil {
					if code, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && code >= 400 {
						pass.Reportf(call.Pos(), "WriteHeader(%d) writes an error status directly; route it through httpError(w, statusFor(err), err)", code)
					}
					return true
				}
				if !isHelper {
					pass.Reportf(call.Pos(), "WriteHeader with a computed status outside the httpError helper; route errors through httpError(w, statusFor(err), err)")
				}
				return true
			})
		}
	}
	return nil
}

// httpResponseWriterType returns the net/http.ResponseWriter
// interface type if the package (transitively) imports net/http, else
// nil — a package that cannot name the type cannot violate the rule.
func httpResponseWriterType(pass *Pass) *types.Interface {
	for _, imp := range allImports(pass.Pkg) {
		if imp.Path() == "net/http" {
			if obj, ok := imp.Scope().Lookup("ResponseWriter").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
	}
	return nil
}

// allImports returns the package's direct and transitive imports.
func allImports(pkg *types.Package) []*types.Package {
	seen := make(map[*types.Package]bool)
	var out []*types.Package
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				walk(imp)
			}
		}
	}
	walk(pkg)
	return out
}
