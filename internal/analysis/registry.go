package analysis

// All returns every analyzer in the suite, in the order diagnostics
// are documented in docs/LINT.md.
func All() []*Analyzer {
	return []*Analyzer{
		Noresign,
		Statusroute,
		Snapfreeze,
		Servenolock,
		Detrand,
		Ctxhttp,
		Spanend,
		Streamserve,
	}
}

// ByName returns the named analyzers, or all of them for an empty
// list. Unknown names return nil, false.
func ByName(names []string) ([]*Analyzer, bool) {
	if len(names) == 0 {
		return All(), true
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
