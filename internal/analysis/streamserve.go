package analysis

import (
	"go/ast"
	"go/types"
)

// Streamserve guards the streaming-serve work from the wire-efficiency
// PR: the package-serving paths in internal/tsr and internal/edge
// stream verified bytes (store.Streamer + tsr.NewVerifiedReader)
// instead of buffering whole packages with io.ReadAll — one careless
// ReadAll on a multi-hundred-MB package path undoes the memory-bound
// argument for the serving tier. The analyzer flags every io.ReadAll
// in non-test code of those packages; the handful of sites that
// legitimately buffer (client-side whole-body verification, bounded
// policy uploads, bounded error snippets) carry //lint:allow
// streamserve annotations with their bounds documented.
var Streamserve = &Analyzer{
	Name: "streamserve",
	Doc:  "serving-tier code must stream packages; io.ReadAll needs a documented bound",
	Applies: func(pkgPath string) bool {
		return pathHasSuffixSegments(pkgPath, "internal/tsr") ||
			pathHasSuffixSegments(pkgPath, "internal/edge")
	},
	Run: runStreamserve,
}

func runStreamserve(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "io" || fn.Name() != "ReadAll" {
				return true
			}
			pass.Reportf(call.Pos(), "io.ReadAll buffers a whole body on the serving tier; stream through store.Streamer/tsr.NewVerifiedReader, or annotate a bounded read with //lint:allow streamserve <reason>")
			return true
		})
	}
	return nil
}
