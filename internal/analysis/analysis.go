// Package analysis is the repo's static-analysis suite: a set of
// tsr-specific analyzers that mechanically enforce the invariants the
// system's security and performance arguments rest on — edges never
// sign, handler errors route through statusFor, published snapshots
// are frozen, the serving path is lock-free, deterministic packages
// stay deterministic, and outgoing HTTP always carries a context and
// a timeout. docs/LINT.md describes each invariant and where it came
// from.
//
// The API deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf) so the suite could be ported
// to the real framework if that dependency ever becomes available;
// the build environment pins this module to the standard library, so
// the loading and driving machinery (load.go, cmd/tsrlint) is
// implemented here on go/types export data instead of go/packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics, in
	// //lint:allow comments, and on the tsrlint command line.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Applies filters packages by import path. A nil Applies runs the
	// analyzer on every package. The driver consults it; the test
	// harness runs analyzers directly so testdata packages can opt in
	// regardless of their synthetic import paths.
	Applies func(pkgPath string) bool
	// Run performs the check on one package unit, reporting findings
	// through the Pass.
	Run func(*Pass) error
}

// A Pass carries one type-checked package unit through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file. Most
// analyzers enforce production-code invariants and skip test files;
// detrand's seed check deliberately does not.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Unit is one type-checked package ready for analysis: the parsed
// files plus full type information.
type Unit struct {
	Path      string // package import path
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info populated with every map the analyzers
// rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunUnit runs every applicable analyzer over one unit, applies the
// //lint:allow escape hatch, and returns the surviving diagnostics in
// deterministic position order. Malformed allow comments (no reason,
// unknown analyzer) are themselves reported, so a suppression can
// never be silently wrong.
func RunUnit(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(u.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := pass.Analyzer.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
		}
	}
	allows, bad := collectAllows(u, analyzerNames(analyzers))
	diags = allows.filter(diags)
	diags = append(diags, bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

func analyzerNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// pathHasSuffixSegments reports whether path ends with the given
// slash-separated segment suffix, on segment boundaries: both
// "tsr/internal/edge" and "internal/edge" match "internal/edge", but
// "tsr/internal/hedge" does not.
func pathHasSuffixSegments(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether one of path's slash-separated
// elements equals seg (e.g. pathHasSegment("tsr/cmd/tsrd", "cmd")).
func pathHasSegment(path, seg string) bool {
	for _, el := range strings.Split(path, "/") {
		if el == seg {
			return true
		}
	}
	return false
}
