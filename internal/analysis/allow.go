package analysis

import (
	"go/token"
	"strings"
)

// The //lint:allow escape hatch.
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//	//lint:file-allow <analyzer>[,<analyzer>...] <reason>
//
// A line-level allow suppresses the named analyzers on its own line
// and on the line immediately below it, so it works both as a
// trailing comment and as a comment above the flagged statement. A
// file-level allow suppresses the named analyzers for the whole file
// (used for files that are wall-clock by design, e.g. the latency
// experiments). The reason is mandatory: a suppression without a
// documented reason is itself a diagnostic, and so is a suppression
// naming an analyzer that does not exist (a typo would otherwise
// silently suppress nothing, forever).
const (
	allowPrefix     = "lint:allow"
	fileAllowPrefix = "lint:file-allow"
)

// allowKey identifies one suppressed (file, line, analyzer) cell;
// line 0 means the whole file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// collectAllows scans a unit's comments for allow directives. It
// returns the suppression set and diagnostics for malformed
// directives. known is the set of valid analyzer names.
func collectAllows(u *Unit, known map[string]bool) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: "lintallow",
			Pos:      u.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var directive string
				var fileWide bool
				switch {
				case strings.HasPrefix(text, fileAllowPrefix):
					directive, fileWide = fileAllowPrefix, true
				case strings.HasPrefix(text, allowPrefix):
					directive = allowPrefix
				default:
					continue
				}
				rest := strings.TrimPrefix(text, directive)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. lint:allowance — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "malformed //"+directive+": want //"+directive+" <analyzer> <reason> — the reason is mandatory")
					continue
				}
				names := strings.Split(fields[0], ",")
				ok := true
				for _, name := range names {
					if !known[name] {
						report(c.Pos(), "//"+directive+" names unknown analyzer \""+name+"\" (typos suppress nothing; see docs/LINT.md for the list)")
						ok = false
					}
				}
				if !ok {
					continue
				}
				posn := u.Fset.Position(c.Pos())
				for _, name := range names {
					if fileWide {
						allows[allowKey{posn.Filename, 0, name}] = true
					} else {
						allows[allowKey{posn.Filename, posn.Line, name}] = true
						allows[allowKey{posn.Filename, posn.Line + 1, name}] = true
					}
				}
			}
		}
	}
	return allows, bad
}

// filter drops the diagnostics the allow set suppresses.
func (s allowSet) filter(diags []Diagnostic) []Diagnostic {
	if len(s) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if s[allowKey{d.Pos.Filename, 0, d.Analyzer}] ||
			s[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
