package detrand

import (
	"math/rand"
	"time"
)

// Test files are exempt from the scoped wall-clock and global-source
// rules...
func testStamp() time.Time {
	return time.Now()
}

// ...but NOT from the time-seeded-RNG rule: a flaky test failure with
// a discarded seed can never be reproduced.
func testFlaky() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seeded from time\.Now`
}
