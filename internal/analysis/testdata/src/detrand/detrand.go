// Package detrand exercises the detrand analyzer's scoped rules. The
// harness loads it under tsr/internal/chaos, one of the deterministic
// packages: no wall clock, no global math/rand source, no output
// emitted while ranging over a map, and — like everywhere else — no
// time-seeded RNGs.
package detrand

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// schedule draws from an explicitly seeded source: fine.
func schedule(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(4)
}

func jitter() time.Duration {
	return time.Duration(rand.Intn(50)) * time.Millisecond // want `global math/rand source`
}

func stamp() time.Time {
	return time.Now() // want `reads the wall clock`
}

// reseed is the classic flake generator; the seed report covers the
// inner time.Now, which is not double-reported.
func reseed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seeded from time\.Now`
}

func dumpUnsorted(m map[string]int) {
	for name, count := range m {
		fmt.Println(name, count) // want `ranging over a map is nondeterministically ordered`
	}
}

// dumpSorted collects, sorts, then emits: the approved pattern.
func dumpSorted(m map[string]int) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Println(name, m[name])
	}
}

// measured carries the documented escape hatch for a genuine latency
// measurement, so its wall-clock read is suppressed.
func measured() time.Duration {
	//lint:allow detrand genuine latency measurement for the harness report
	start := time.Now()
	return time.Since(start)
}
