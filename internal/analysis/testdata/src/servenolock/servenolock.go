// Package servenolock exercises the servenolock analyzer. The harness
// loads it under tsr/internal/tsr; the serving-path methods on Repo
// and everything they (statically) call must not acquire Repo.mu,
// while the refresh side remains free to lock.
package servenolock

import "sync"

type state struct{ etag string }

type Repo struct {
	mu   sync.RWMutex
	snap *state
}

func (r *Repo) FetchIndex() *state {
	return r.lookup()
}

// lookup is only reachable from FetchIndex, so the acquisition is
// attributed to that root.
func (r *Repo) lookup() *state {
	r.mu.RLock() // want `serving path acquires Repo\.mu \(reachable from FetchIndex\)`
	defer r.mu.RUnlock()
	return r.snap
}

func (r *Repo) PackageETag() string {
	return r.etagLocked()
}

func (r *Repo) etagLocked() string {
	if !r.mu.TryRLock() { // want `serving path acquires Repo\.mu \(reachable from PackageETag\)`
		return ""
	}
	defer r.mu.RUnlock()
	return r.snap.etag
}

// Refresh is the write side: not a serving root, free to lock.
func (r *Repo) Refresh() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snap = &state{etag: "next"}
}

// CacheStats as a free function is not a serving root — roots are
// methods on the repository — and nothing on the serving path calls
// it, so its lock is legal.
func CacheStats(r *Repo) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.snap == nil {
		return 0
	}
	return 1
}
