// Package ctxhttp exercises the ctxhttp analyzer: outgoing requests
// must be built with http.NewRequestWithContext and every client must
// bound its requests with a Timeout.
package ctxhttp

import (
	"context"
	"net/http"
	"time"
)

// fetch is the approved shape: context-carrying request, caller-owned
// bounded client.
func fetch(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

func bareRequest(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want `http\.NewRequest issues an uncancelable request`
}

func bareGet(url string) (*http.Response, error) {
	return http.Get(url) // want `http\.Get issues an uncancelable request`
}

func defaultClient(req *http.Request) (*http.Response, error) {
	return http.DefaultClient.Do(req) // want `http\.DefaultClient has no timeout`
}

func unboundedClient() *http.Client {
	return &http.Client{} // want `http\.Client literal without a Timeout`
}

func boundedClient() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

// streaming documents a deliberate exception through the escape
// hatch.
//
//lint:allow ctxhttp long-poll streaming client; per-request deadlines come from contexts
var streaming = &http.Client{Transport: http.DefaultTransport}
