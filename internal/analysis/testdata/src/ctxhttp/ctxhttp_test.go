package ctxhttp

import "net/http"

// Test files are exempt: httptest servers are loopback and cannot
// black-hole a request.
func testGet(url string) (*http.Response, error) {
	return http.Get(url)
}
