// Package detrandglobal exercises the detrand analyzer outside the
// deterministic packages (the harness loads it under
// tsr/internal/origin): the wall clock and the global math/rand
// source are fine there — only time-seeded RNGs are flagged, because
// they are a hazard everywhere.
package detrandglobal

import (
	"math/rand"
	"time"
)

func now() time.Time {
	return time.Now()
}

func roll() int {
	return rand.Intn(6)
}

func lockstep() {
	rand.Seed(time.Now().UnixNano()) // want `RNG seeded from time\.Now`
}
