package noresign

import "tsr/internal/keys"

// Test files may mint keys: provisioning test fixtures requires
// signing material, and the trust boundary only constrains shipped
// edge code.
func newFixturePair() (*keys.Pair, error) {
	return keys.Generate("test-fixture")
}
