// Package noresign exercises the noresign analyzer. The harness loads
// it under the import path tsr/internal/edge, so the file poses as
// edge code: the signing half of internal/keys must be flagged and
// the verify half must pass untouched.
package noresign

import "tsr/internal/keys"

type replica struct {
	ring   *keys.Ring
	signer *keys.Pair // want `signing API keys\.Pair`
}

func provision(r *replica) error {
	pair, err := keys.Generate("edge-0") // want `signing API keys\.Generate`
	if err != nil {
		return err
	}
	if _, err := pair.Sign([]byte("index")); err != nil { // want `signing API keys\.Sign`
		return err
	}
	pem, err := pair.MarshalPrivatePEM() // want `signing API keys\.MarshalPrivatePEM`
	if err != nil {
		return err
	}
	_, err = keys.ParsePrivatePEM("edge-0", pem) // want `signing API keys\.ParsePrivatePEM`
	return err
}

// verify is what an edge is for: the verify half of internal/keys is
// untouched by the analyzer.
func verify(r *replica, data, sig []byte) error {
	_, err := r.ring.VerifyAny(data, sig)
	return err
}

func trust(pub *keys.Public) *keys.Ring {
	return keys.NewRing(pub)
}
