// Package statusroute exercises the statusroute analyzer. The harness
// loads it under a tsr/cmd/... import path, so every handler here is
// held to the error-routing convention: no http.Error, no direct
// error-status WriteHeader — everything goes through httpError.
package statusroute

import (
	"errors"
	"net/http"
)

func statusFor(err error) int {
	_ = err
	return http.StatusInternalServerError
}

// httpError is the designated helper: a computed status inside it is
// the one permitted WriteHeader-with-a-variable site.
func httpError(w http.ResponseWriter, status int, err error) {
	w.WriteHeader(status)
	_, _ = w.Write([]byte(err.Error()))
}

func badError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "upstream down", http.StatusBadGateway) // want `http\.Error bypasses`
}

func badConstStatus(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNotFound) // want `WriteHeader\(404\) writes an error status directly`
}

func badComputedStatus(w http.ResponseWriter, r *http.Request) {
	err := errors.New("boom")
	w.WriteHeader(statusFor(err)) // want `computed status outside the httpError helper`
}

// Success statuses are not error routing: both are fine.
func okSuccess(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

func okNotModified(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(304)
}

func okRouted(w http.ResponseWriter, r *http.Request) {
	err := errors.New("upstream down")
	httpError(w, statusFor(err), err)
}
