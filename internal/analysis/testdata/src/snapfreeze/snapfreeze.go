// Package snapfreeze exercises the snapfreeze analyzer. The harness
// loads it under tsr/internal/tsr, so the local snapshot and
// replicaState types are frozen: field writes are legal only inside
// the designated build/publish functions.
package snapfreeze

type snapshot struct {
	etag string
	hits int
}

type replicaState struct {
	etag string
	gen  int
}

type repoLike struct{ snap *snapshot }

// publishLocked is snapshot's designated build site.
func (r *repoLike) publishLocked(next *snapshot) {
	next.etag = "v2"
	next.hits = 0
	r.snap = next
}

func mutateLive(s *snapshot) {
	s.etag = "v3" // want `snapshot\.etag is written outside`
	s.hits++      // want `snapshot\.hits is written outside`
}

// publish and fullSync are replicaState's designated build sites.
func (r *replicaState) publish(etag string) {
	r.etag = etag
	r.gen++
}

func fullSync(r *replicaState) {
	r.etag = ""
}

func drift(r *replicaState) {
	r.gen++ // want `replicaState\.gen is written outside`
}

// scratch shares field names with snapshot but is not frozen: writes
// anywhere are fine.
type scratch struct{ etag string }

func build(s *scratch) {
	s.etag = "ok"
}
