// Package spanend exercises the spanend analyzer: every span returned
// by trace.Start must be ended on every path out of the starting
// function, by a deferred End or explicit Ends on all branches.
package spanend

import (
	"context"
	"errors"

	"tsr/internal/trace"
)

// deferred is the idiomatic shape: defer immediately after Start.
func deferred(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "ok.deferred")
	defer sp.End()
	_ = ctx
}

// deferredFunc is the error-capturing form; End inside the deferred
// literal settles the span for good.
func deferredFunc(ctx context.Context) (err error) {
	_, sp := trace.Start(ctx, "ok.deferred-func")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	return errors.New("boom")
}

// explicitAllPaths ends the span explicitly on both branches.
func explicitAllPaths(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "ok.explicit")
	if fail {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// missingOnBranch leaks the span on the early return.
func missingOnBranch(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "bad.branch")
	if fail {
		return errors.New("boom") // want `return without ending the span`
	}
	sp.End()
	return nil
}

// switchLeak ends the span in one arm but leaks it through the other
// and through the no-default fallthrough.
func switchLeak(ctx context.Context, mode int) {
	_, sp := trace.Start(ctx, "bad.switch") // want `may reach the end of the function without End`
	switch mode {
	case 0:
		sp.End()
	case 1:
	}
}

// fallsOff never ends the span at all.
func fallsOff(ctx context.Context) {
	_, sp := trace.Start(ctx, "bad.falloff") // want `may reach the end of the function without End`
	_ = sp
}

// discarded cannot ever end the span it started.
func discarded(ctx context.Context) {
	trace.Start(ctx, "bad.discard") // want `result of trace\.Start discarded`
}

// blankSpan throws the span away at the assignment.
func blankSpan(ctx context.Context) {
	_, _ = trace.Start(ctx, "bad.blank") // want `assigned to _`
}

// tracker stores the span in a field: the flow walk cannot prove the
// End, and the owning contract says so in the allow reason — the
// suppressed finding needs no want comment (the allow-contract test).
type tracker struct {
	sp *trace.Span
}

func (t *tracker) begin(ctx context.Context) {
	_, t.sp = trace.Start(ctx, "allowed.field") //lint:allow spanend the tracker's close() ends the span on every caller path
}

func (t *tracker) close() {
	t.sp.End()
}

// closures are scopes of their own: the literal's leak is reported in
// the literal, not against the outer function's spans.
func inClosure(ctx context.Context) func() {
	ctx, sp := trace.Start(ctx, "ok.outer")
	defer sp.End()
	_ = ctx
	return func() {
		_, inner := trace.Start(ctx, "bad.closure") // want `may reach the end of the function without End`
		_ = inner
	}
}
