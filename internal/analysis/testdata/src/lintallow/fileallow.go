//lint:file-allow detrand this whole file measures wall-clock latency by design
package lintallow

import "time"

// Every detrand violation in this file is suppressed by the
// file-level allow above the package clause.
func wallOne() time.Time {
	return time.Now()
}

func wallTwo() time.Duration {
	return time.Since(time.Now())
}
