package lintallow

import "time"

// missingReason's directive omits the mandatory reason string: the
// directive is reported AND suppresses nothing, so the wall-clock
// violation below it still fires.
func missingReason() time.Time {
	//lint:allow detrand
	return time.Now()
}
