package lintallow

import "time"

// typoed names an analyzer that does not exist: a typo would
// otherwise silently suppress nothing forever, so it is reported and
// the violation below still fires.
func typoed() time.Time {
	//lint:allow detrnad wall clock needed here
	return time.Now()
}
