// Package lintallow exercises the //lint:allow escape hatch itself.
// The harness loads it under tsr/internal/chaos so the detrand scoped
// rules are live; allow_test.go asserts the exact surviving
// diagnostics per file.
package lintallow

import "time"

// measured carries a well-formed line allow: analyzer name plus a
// reason. Its violation is suppressed.
func measured() time.Time {
	//lint:allow detrand measuring real handler latency for the report
	return time.Now()
}
