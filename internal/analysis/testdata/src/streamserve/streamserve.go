// Package streamserve exercises the streamserve analyzer. The harness
// loads it under tsr/internal/tsr; io.ReadAll in non-test code is
// flagged unless a //lint:allow streamserve annotation documents the
// bound.
package streamserve

import (
	"io"
	"net/http"
	"strings"
)

// servePackage buffers the whole upstream body before writing it out —
// exactly the pattern the wire-efficiency work removed.
func servePackage(w http.ResponseWriter, resp *http.Response) error {
	raw, err := io.ReadAll(resp.Body) // want `io\.ReadAll buffers a whole body on the serving tier`
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// readErr is a legitimately bounded read: the limit is explicit and
// small, and the annotation records it.
func readErr(resp *http.Response) string {
	//lint:allow streamserve bounded 4 KiB error snippet, not a package body
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return strings.TrimSpace(resp.Status + " " + string(body))
}

// streamPackage is the wanted shape: copy, never buffer.
func streamPackage(w http.ResponseWriter, resp *http.Response) error {
	_, err := io.Copy(w, resp.Body)
	return err
}
