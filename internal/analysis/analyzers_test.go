package analysis_test

import (
	"testing"

	"tsr/internal/analysis"
	"tsr/internal/analysis/analysistest"
)

// Each analyzer runs over a testdata package loaded under an import
// path that activates its Applies scoping; expectations live in the
// testdata as // want comments.

func TestNoresign(t *testing.T) {
	analysistest.Run(t, analysis.Noresign, "testdata/src/noresign", "tsr/internal/edge")
}

func TestStatusroute(t *testing.T) {
	analysistest.Run(t, analysis.Statusroute, "testdata/src/statusroute", "tsr/cmd/statusroutesim")
}

func TestSnapfreeze(t *testing.T) {
	analysistest.Run(t, analysis.Snapfreeze, "testdata/src/snapfreeze", "tsr/internal/tsr")
}

func TestServenolock(t *testing.T) {
	analysistest.Run(t, analysis.Servenolock, "testdata/src/servenolock", "tsr/internal/tsr")
}

// TestDetrandScoped runs detrand on a deterministic package path,
// where the full rule set (wall clock, global source, map-ordered
// output) applies.
func TestDetrandScoped(t *testing.T) {
	analysistest.Run(t, analysis.Detrand, "testdata/src/detrand", "tsr/internal/chaos")
}

// TestDetrandUnscoped runs detrand on an ordinary package path, where
// only the everywhere rule — no time-seeded RNGs — applies.
func TestDetrandUnscoped(t *testing.T) {
	analysistest.Run(t, analysis.Detrand, "testdata/src/detrandglobal", "tsr/internal/origin")
}

func TestCtxhttp(t *testing.T) {
	analysistest.Run(t, analysis.Ctxhttp, "testdata/src/ctxhttp", "tsr/internal/fetcher")
}

func TestSpanend(t *testing.T) {
	analysistest.Run(t, analysis.Spanend, "testdata/src/spanend", "tsr/internal/edge")
}

func TestStreamserve(t *testing.T) {
	analysistest.Run(t, analysis.Streamserve, "testdata/src/streamserve", "tsr/internal/tsr")
}

func TestRegistryByName(t *testing.T) {
	all, ok := analysis.ByName(nil)
	if !ok || len(all) != 8 {
		t.Fatalf("ByName(nil) = %d analyzers, ok=%v; want all 8", len(all), ok)
	}
	subset, ok := analysis.ByName([]string{"detrand", "noresign"})
	if !ok || len(subset) != 2 || subset[0].Name != "detrand" || subset[1].Name != "noresign" {
		t.Fatalf("ByName(detrand,noresign) = %v, ok=%v", subset, ok)
	}
	if _, ok := analysis.ByName([]string{"nosuch"}); ok {
		t.Fatal("ByName(nosuch) succeeded; want failure")
	}
}
