package analysis

import (
	"go/ast"
	"go/types"
)

// Spanend enforces the span-lifetime contract PR 8's tracing layer
// depends on: every span returned by trace.Start must be ended on
// every path out of the function that started it — otherwise the
// trace never flushes (a root that leaks never reaches the sampler)
// or flushes with the span marked unfinished. The idiomatic fix is a
// defer immediately after Start: `defer sp.End()`, or the error-
// capturing form `defer func() { sp.SetError(err); sp.End() }()`.
//
// The check is a CFG-lite walk of the enclosing function: a deferred
// End settles the span for good; an explicit End settles the path it
// runs on; a return (or falling off the end) while some path still
// holds an unsettled span is a finding. Spans stored into fields or
// handed to other goroutines cannot be proven ended here — annotate
// the contract with //lint:allow spanend <reason> (internal/tsr's
// refresh stage tracker is the exemplar).
var Spanend = &Analyzer{
	Name: "spanend",
	Doc:  "every trace.Start span must be ended (deferred or on all paths) in its function",
	Applies: func(pkgPath string) bool {
		// The trace package itself manufactures spans; everyone else
		// must close them.
		return !pathHasSuffixSegments(pkgPath, "internal/trace")
	},
	Run: runSpanend,
}

// isTraceStart reports whether call invokes the package-level Start
// function of internal/trace.
func isTraceStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Start" || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return pathHasSuffixSegments(fn.Pkg().Path(), "internal/trace")
}

// endsSpan reports whether call is <span>.End() on the tracked object.
func endsSpan(pass *Pass, call *ast.CallExpr, span types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == span
}

// containsEnd reports whether any call inside n ends the span (used
// for deferred func literals, where End may sit after SetError etc.).
func containsEnd(pass *Pass, n ast.Node, span types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && endsSpan(pass, call, span) {
			found = true
		}
		return !found
	})
	return found
}

// spanFlow is the abstract state of one span during the walk: risk is
// true while some path through the statements seen so far has started
// the span and not yet guaranteed its End.
type spanFlow struct {
	risk bool
}

// spanCheck walks one function body for one Start statement.
type spanCheck struct {
	pass  *Pass
	start *ast.AssignStmt
	span  types.Object
}

func (c *spanCheck) scan(stmts []ast.Stmt, st spanFlow) spanFlow {
	for _, s := range stmts {
		st = c.scanStmt(s, st)
	}
	return st
}

func (c *spanCheck) scanStmt(s ast.Stmt, st spanFlow) spanFlow {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == c.start {
			st.risk = true
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && endsSpan(c.pass, call, c.span) {
			st.risk = false
		}
	case *ast.DeferStmt:
		// Either `defer sp.End()` or `defer func() { ...; sp.End() }()`:
		// once the defer is armed, every later exit ends the span.
		if endsSpan(c.pass, s.Call, c.span) || containsEnd(c.pass, s.Call, c.span) {
			st.risk = false
		}
	case *ast.ReturnStmt:
		if st.risk {
			c.pass.Reportf(s.Pos(), "return without ending the span from trace.Start at line %d; add defer sp.End() after Start",
				c.pass.Fset.Position(c.start.Pos()).Line)
		}
		st.risk = false // path terminates; nothing left to leak here
	case *ast.BlockStmt:
		st = c.scan(s.List, st)
	case *ast.LabeledStmt:
		st = c.scanStmt(s.Stmt, st)
	case *ast.IfStmt:
		then := c.scan(s.Body.List, st)
		other := st
		if s.Else != nil {
			other = c.scanStmt(s.Else, st)
		}
		st.risk = then.risk || other.risk
	case *ast.ForStmt:
		out := c.scan(s.Body.List, st)
		st.risk = st.risk || out.risk
	case *ast.RangeStmt:
		out := c.scan(s.Body.List, st)
		st.risk = st.risk || out.risk
	case *ast.SwitchStmt:
		st = c.scanClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		st = c.scanClauses(s.Body, st)
	case *ast.SelectStmt:
		st = c.scanClauses(s.Body, st)
	}
	return st
}

// scanClauses merges switch/select arms: the span survives as risky if
// any arm leaves it risky, or — absent a default — if it was risky
// going in (the zero-arms-taken path).
func (c *spanCheck) scanClauses(body *ast.BlockStmt, st spanFlow) spanFlow {
	risk := false
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			hasDefault = hasDefault || cl.List == nil
		case *ast.CommClause:
			stmts = cl.Body
			hasDefault = hasDefault || cl.Comm == nil
		}
		out := c.scan(stmts, st)
		risk = risk || out.risk
	}
	if !hasDefault {
		risk = risk || st.risk
	}
	st.risk = risk
	return st
}

func runSpanend(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Each function literal is its own span scope; collect every
		// function body and analyze each independently.
		var fns []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fns = append(fns, n.Body)
				}
			case *ast.FuncLit:
				fns = append(fns, n.Body)
			}
			return true
		})
		for _, body := range fns {
			runSpanendFunc(pass, body)
		}
	}
	return nil
}

// runSpanendFunc finds every trace.Start in one function body (not
// descending into nested literals — they are scopes of their own) and
// walks the body once per span.
func runSpanendFunc(pass *Pass, body *ast.BlockStmt) {
	var starts []*ast.AssignStmt
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isTraceStart(pass, call) {
				pass.Reportf(call.Pos(), "result of trace.Start discarded; the span can never be ended")
				return false
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isTraceStart(pass, call) {
					starts = append(starts, n)
					skip[n.Rhs[0]] = true
				}
			}
		}
		return true
	})
	for _, start := range starts {
		if len(start.Lhs) != 2 {
			continue
		}
		span := spanObject(pass, start.Lhs[1])
		switch {
		case span != nil:
			c := &spanCheck{pass: pass, start: start, span: span}
			if out := c.scan(body.List, spanFlow{}); out.risk {
				pass.Reportf(start.Pos(), "span from trace.Start may reach the end of the function without End; add defer sp.End()")
			}
		case isBlank(start.Lhs[1]):
			pass.Reportf(start.Pos(), "span from trace.Start assigned to _; the span can never be ended")
		default:
			// A field or index target outlives this walk (the refresh
			// stage tracker pattern); the owner must carry the End
			// contract explicitly.
			pass.Reportf(start.Pos(), "span from trace.Start stored outside the function's scope; the analyzer cannot prove it is ended (annotate the owning contract with //lint:allow spanend <reason>)")
		}
	}
}

// spanObject resolves the span-valued LHS to a plain local variable,
// or nil when it is blank or something the flow walk cannot track.
func spanObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
