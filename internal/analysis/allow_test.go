package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"tsr/internal/analysis"
)

// TestAllowDirectives pins the escape hatch's whole contract against
// testdata/src/lintallow, run through the full analyzer suite exactly
// as the driver would:
//
//   - allowed.go: a well-formed line allow suppresses its violation;
//   - fileallow.go: a file-level allow suppresses the whole file;
//   - malformed.go: a reason-less directive is itself reported and
//     suppresses nothing;
//   - unknown.go: a directive naming a nonexistent analyzer is itself
//     reported and suppresses nothing.
func TestAllowDirectives(t *testing.T) {
	unit, err := analysis.LoadDir(".", "testdata/src/lintallow", "tsr/internal/chaos")
	if err != nil {
		t.Fatalf("loading lintallow testdata: %v", err)
	}
	diags, err := analysis.RunUnit(unit, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	want := []struct {
		file     string
		analyzer string
		substr   string
	}{
		{"malformed.go", "lintallow", "the reason is mandatory"},
		{"malformed.go", "detrand", "reads the wall clock"},
		{"unknown.go", "lintallow", `unknown analyzer "detrnad"`},
		{"unknown.go", "detrand", "reads the wall clock"},
	}
	matched := make([]bool, len(diags))
	for _, w := range want {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Analyzer == w.analyzer &&
				strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic: %s %s %q", w.file, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
