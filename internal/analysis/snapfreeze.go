package analysis

import (
	"go/ast"
	"go/types"
)

// Snapfreeze enforces the snapshot immutability invariant from PR 2
// (origin) and PR 3 (edge): the entire lock-free read path rests on
// published snapshots never changing. tsr.snapshot and
// edge.replicaState are built off to the side and swapped in with one
// atomic.Pointer.Store; after that instant, concurrent readers hold
// the pointer, so ANY field write is a data race and a correctness
// bug. The analyzer freezes the types at the source level: their
// fields may only be assigned inside the designated build/publish
// functions, where the state is provably not yet shared.
var Snapfreeze = &Analyzer{
	Name: "snapfreeze",
	Doc:  "snapshot/replicaState fields may only be written in their build/publish functions",
	Applies: func(pkgPath string) bool {
		return pathHasSuffixSegments(pkgPath, "internal/tsr") ||
			pathHasSuffixSegments(pkgPath, "internal/edge")
	},
	Run: runSnapfreeze,
}

// snapfreezeTypes maps each frozen type to the functions allowed to
// write its fields — the build/publish sites that run before the
// atomic.Pointer.Store makes the value shared.
var snapfreezeTypes = map[string]map[string]bool{
	"snapshot":     {"publishLocked": true},
	"replicaState": {"publish": true, "fullSync": true},
}

func runSnapfreeze(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				var targets []ast.Expr
				switch st := n.(type) {
				case *ast.AssignStmt:
					targets = st.Lhs
				case *ast.IncDecStmt:
					targets = []ast.Expr{st.X}
				default:
					return true
				}
				for _, lhs := range targets {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection := pass.TypesInfo.Selections[sel]
					if selection == nil || selection.Kind() != types.FieldVal {
						continue
					}
					typeName := namedTypeName(selection.Recv())
					allowed, frozen := snapfreezeTypes[typeName]
					if !frozen || allowed[fn.Name.Name] {
						continue
					}
					pass.Reportf(lhs.Pos(), "%s.%s is written outside %s's build/publish functions; published snapshots are immutable (build a new one and atomically swap it)", typeName, sel.Sel.Name, typeName)
				}
				return true
			})
		}
	}
	return nil
}

// namedTypeName returns the name of t's named type, dereferencing one
// level of pointer; "" if t is not named.
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
