package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// Servenolock enforces the lock-free serving path from PR 2: reads
// (FetchIndex, FetchPackageTraced, PackageETag, and friends) serve
// from the atomically published snapshot and must not acquire
// Repo.mu, the refresh-side lock a 10-25s sanitization cycle holds.
// One stray Lock() on the read path reintroduces the
// reads-block-for-the-whole-cycle behavior PR 2 removed — and no test
// catches it unless the test happens to race a refresh. The analyzer
// walks the static call graph from the serving-path roots and flags
// any reachable acquisition of a field named mu on type Repo.
// (Dynamic calls through interfaces or function values are invisible
// to it — keep the serving path direct.)
var Servenolock = &Analyzer{
	Name: "servenolock",
	Doc:  "serving-path functions and their callees must not acquire Repo.mu",
	Applies: func(pkgPath string) bool {
		return pathHasSuffixSegments(pkgPath, "internal/tsr")
	},
	Run: runServenolock,
}

// servenolockRoots are the serving-path entry points: everything a
// client request can reach.
var servenolockRoots = map[string]bool{
	"FetchIndex":         true,
	"FetchIndexTagged":   true,
	"FetchIndexDelta":    true,
	"IndexETag":          true,
	"PackageETag":        true,
	"FetchPackage":       true,
	"FetchPackageTraced": true,
	"CacheStats":         true,
}

// servenolockAcquire are the mutex methods that take the lock.
var servenolockAcquire = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func runServenolock(pass *Pass) error {
	// Map every function declared in this package to its declaration.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}

	// BFS from the roots across package-local static calls, remembering
	// which root reached each function for the diagnostic.
	type visit struct {
		fn   *ast.FuncDecl
		root string
	}
	var queue []visit
	visited := make(map[*types.Func]bool)
	for obj, fn := range decls {
		if servenolockRoots[obj.Name()] && obj.Type().(*types.Signature).Recv() != nil {
			visited[obj] = true
			queue = append(queue, visit{fn, obj.Name()})
		}
	}
	// Map iteration seeded the queue in random order; sort so a callee
	// shared by several roots is always attributed to the same one.
	sort.Slice(queue, func(i, j int) bool { return queue[i].root < queue[j].root })
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		ast.Inspect(v.fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Flag mu acquisitions in this function.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && servenolockAcquire[sel.Sel.Name] {
				if field, ok := sel.X.(*ast.SelectorExpr); ok && field.Sel.Name == "mu" {
					if selection := pass.TypesInfo.Selections[field]; selection != nil &&
						selection.Kind() == types.FieldVal && namedTypeName(selection.Recv()) == "Repo" {
						pass.Reportf(call.Pos(), "serving path acquires Repo.mu (reachable from %s); reads must serve the published snapshot lock-free", v.root)
					}
				}
			}
			// Follow static calls to package-local functions.
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = pass.TypesInfo.Uses[fun]
			case *ast.SelectorExpr:
				callee = pass.TypesInfo.Uses[fun.Sel]
			}
			if fnObj, ok := callee.(*types.Func); ok && !visited[fnObj] {
				if decl, local := decls[fnObj]; local {
					visited[fnObj] = true
					queue = append(queue, visit{decl, v.root})
				}
			}
			return true
		})
	}
	return nil
}
