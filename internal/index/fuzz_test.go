package index

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"tsr/internal/keys"
)

// fuzzSeedDelta builds one valid (encoded delta, encoded base index)
// pair so the fuzzer starts from the success path of Apply, not just
// the reject paths.
func fuzzSeedDelta(tb testing.TB) (deltaRaw, baseRaw []byte) {
	tb.Helper()
	pair := keys.Shared.MustGet("index-fuzz-origin")
	entry := func(name, version string, body []byte) Entry {
		return Entry{Name: name, Version: version, Size: int64(len(body)), Hash: sha256.Sum256(body)}
	}
	base := &Index{Origin: "fuzz", Sequence: 7, Entries: []Entry{
		entry("alpha", "1.0", []byte("alpha-body")),
		entry("beta", "2.1", []byte("beta-body")),
	}}
	baseSigned, err := Sign(base, pair)
	if err != nil {
		tb.Fatal(err)
	}
	next := base.Clone()
	next.Add(entry("gamma", "0.9", []byte("gamma-body")))
	next.Remove("beta")
	next.Sequence = 8
	nextSigned, err := Sign(next, pair)
	if err != nil {
		tb.Fatal(err)
	}
	d, err := ComputeDelta(baseSigned.ETag(), base, nextSigned, next)
	if err != nil {
		tb.Fatal(err)
	}
	return d.Encode(), base.Encode()
}

// FuzzDeltaApply asserts the delta codec's safety contract on
// arbitrary bytes: decoding either fails with ErrFormat or yields a
// delta whose canonical encoding is a fixed point, and Apply either
// reproduces the advertised signed index byte-for-byte (ETag match,
// sequence match, decodable raw) or returns ErrDeltaMismatch — never
// a panic, never a silently wrong index.
func FuzzDeltaApply(f *testing.F) {
	deltaRaw, baseRaw := fuzzSeedDelta(f)
	f.Add(deltaRaw, baseRaw)
	f.Add([]byte("from = a\nto = b\nsequence = 1\nsignature = \n"), baseRaw)
	f.Add([]byte("from = a\nto = b\nsequence = 1\nsignature = AA==\nupsert = x 1.0 3 "+
		"0000000000000000000000000000000000000000000000000000000000000000 -\nremove = y\n"), baseRaw)
	f.Add(deltaRaw, []byte("origin = fuzz\nsequence = 7\n"))
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, deltaBytes, baseBytes []byte) {
		d, err := DecodeDelta(deltaBytes)
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("DecodeDelta error is not ErrFormat: %v", err)
			}
			return
		}
		// The canonical encoding is a fixed point.
		enc := d.Encode()
		d2, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("canonical delta encoding does not re-decode: %v\n%s", err, enc)
		}
		if !bytes.Equal(d2.Encode(), enc) {
			t.Fatalf("delta encoding is not a fixed point:\n%s\nvs\n%s", enc, d2.Encode())
		}

		base, err := Decode(baseBytes)
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("Decode error is not ErrFormat: %v", err)
			}
			return
		}

		signed, next, err := d.Apply(base)
		if err != nil {
			if !errors.Is(err, ErrDeltaMismatch) {
				t.Fatalf("Apply error is not ErrDeltaMismatch: %v", err)
			}
			return
		}
		// Success means byte-exact reconstruction of the advertised
		// generation.
		if got := signed.ETag(); got != d.ToETag {
			t.Fatalf("Apply succeeded with ETag %s != advertised %s", got, d.ToETag)
		}
		if next.Sequence != d.Sequence {
			t.Fatalf("Apply sequence %d != delta sequence %d", next.Sequence, d.Sequence)
		}
		redecoded, err := Decode(signed.Raw)
		if err != nil {
			t.Fatalf("Apply produced undecodable raw: %v", err)
		}
		if !bytes.Equal(redecoded.Encode(), signed.Raw) {
			t.Fatal("Apply raw is not the canonical encoding of its own decode")
		}
	})
}
