package index

import (
	"crypto/sha256"
	"errors"
	"reflect"
	"testing"

	"tsr/internal/keys"
)

// evolve returns a second generation of the sample index: one changed
// entry, one added, one removed.
func evolve(old *Index) *Index {
	next := old.Clone()
	e, _ := next.Lookup("musl")
	e.Version = "1.9-r0"
	e.Hash = sha256.Sum256([]byte("musl-1.9"))
	next.Add(e)
	next.Add(Entry{Name: "zlib", Version: "1.3-r0", Size: 900, Hash: sha256.Sum256([]byte("zlib")), Depends: []string{"musl"}})
	next.Remove("openssl")
	next.Sequence = old.Sequence + 1
	return next
}

func signIndex(t *testing.T, ix *Index) *Signed {
	t.Helper()
	pair := keys.Shared.MustGet("index-delta-test-key")
	signed, err := Sign(ix, pair)
	if err != nil {
		t.Fatal(err)
	}
	return signed
}

func TestDeltaRoundTrip(t *testing.T) {
	old := sampleIndex()
	oldSigned := signIndex(t, old)
	cur := evolve(old)
	curSigned := signIndex(t, cur)

	d, err := ComputeDelta(oldSigned.ETag(), old, curSigned, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Upsert) != 2 || len(d.Remove) != 1 || d.Remove[0] != "openssl" {
		t.Fatalf("delta = %+v", d)
	}

	// Wire round trip.
	decoded, err := DecodeDelta(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, d) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", decoded, d)
	}

	// Applying to the base reproduces the exact signed generation.
	gotSigned, gotIx, err := decoded.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if gotSigned.ETag() != curSigned.ETag() {
		t.Fatalf("etag = %s, want %s", gotSigned.ETag(), curSigned.ETag())
	}
	if string(gotSigned.Raw) != string(curSigned.Raw) {
		t.Fatal("raw bytes differ")
	}
	if gotIx.Sequence != cur.Sequence {
		t.Fatalf("sequence = %d", gotIx.Sequence)
	}
	// The reconstructed signature verifies like a full fetch would.
	ring := keys.NewRing(keys.Shared.MustGet("index-delta-test-key").Public())
	if _, err := gotSigned.Verify(ring); err != nil {
		t.Fatal(err)
	}
	// The base index is untouched.
	if _, err := old.Lookup("openssl"); err != nil {
		t.Fatal("Apply mutated the base index")
	}
}

func TestDeltaApplyDetectsTamper(t *testing.T) {
	old := sampleIndex()
	cur := evolve(old)
	curSigned := signIndex(t, cur)
	d, err := ComputeDelta("\"base\"", old, curSigned, cur)
	if err != nil {
		t.Fatal(err)
	}

	// Tampered entry: the reconstructed index no longer hashes to the
	// advertised ETag.
	tampered := *d
	tampered.Upsert = append([]Entry(nil), d.Upsert...)
	tampered.Upsert[0].Size++
	if _, _, err := tampered.Apply(old); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("err = %v, want ErrDeltaMismatch", err)
	}

	// Dropped removal: same.
	tampered = *d
	tampered.Remove = nil
	if _, _, err := tampered.Apply(old); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("err = %v, want ErrDeltaMismatch", err)
	}

	// Applying to a diverged base (an extra package the delta does not
	// remove): same.
	diverged := old.Clone()
	diverged.Add(Entry{Name: "extra", Version: "0.1-r0", Size: 1, Hash: sha256.Sum256([]byte("extra"))})
	if _, _, err := d.Apply(diverged); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("err = %v, want ErrDeltaMismatch", err)
	}
}

func TestDecodeDeltaRejectsMalformed(t *testing.T) {
	for _, raw := range []string{
		"from = \"a\"\nto = \"b\"\n",                                      // missing sequence+signature
		"from = \"a\"\nto = \"b\"\nsequence = x\nsignature = AA==\n",      // bad sequence
		"from = \"a\"\nto = \"b\"\nsequence = 1\nsignature = !!\n",        // bad base64
		"from = \"a\"\nto = \"b\"\nsequence = 1\nsignature = AA==\nbogus", // bad line
	} {
		if _, err := DecodeDelta([]byte(raw)); !errors.Is(err, ErrFormat) {
			t.Fatalf("raw %q: err = %v, want ErrFormat", raw, err)
		}
	}
}

func TestIndexRemoveAndClone(t *testing.T) {
	ix := sampleIndex()
	cp := ix.Clone()
	cp.Remove("musl")
	cp.Remove("not-there") // no-op
	if len(cp.Entries) != 2 {
		t.Fatalf("entries = %v", cp.Names())
	}
	if _, err := ix.Lookup("musl"); err != nil {
		t.Fatal("Remove on clone affected original")
	}
}
