package index

import (
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Delta sync sentinels.
var (
	// ErrDeltaUnchanged: the requested base generation IS the current
	// one; there is nothing to transfer (HTTP maps this to 304).
	ErrDeltaUnchanged = errors.New("index: delta: already up to date")
	// ErrNoDelta: the server cannot produce a delta from the requested
	// base (older than the retained history, or unknown). The caller
	// falls back to a full index fetch.
	ErrNoDelta = errors.New("index: no delta available for that base (full fetch required)")
	// ErrDeltaMismatch: applying the delta did not reproduce the signed
	// index it advertises — the delta is corrupt or tampered.
	ErrDeltaMismatch = errors.New("index: delta does not reproduce the advertised signed index")
)

// Delta describes the change from one published index generation to a
// newer one: the entries to insert or replace, the names to drop, and —
// because index encoding is deterministic — the origin's signature over
// the complete NEW index. A receiver that holds the base generation can
// reconstruct the exact signed index byte-for-byte by applying the
// delta and re-encoding, then prove it did so correctly by comparing
// the result's ETag against ToETag. The trust model is unchanged: the
// signature is the origin's; a delta can be served by any untrusted
// host and verified end-to-end.
type Delta struct {
	// FromETag identifies the base signed-index generation the delta
	// applies to; ToETag the resulting one.
	FromETag string
	ToETag   string
	// Sequence is the new index's sequence number.
	Sequence uint64
	// Upsert lists added or changed entries; Remove lists dropped
	// package names.
	Upsert []Entry
	Remove []string
	// KeyName and Sig are the origin's signature over the encoded NEW
	// index (exactly what Signed carries for a full fetch).
	KeyName string
	Sig     []byte
}

// ComputeDelta builds the delta that turns the old index (published
// under fromETag) into the index carried by the signed current
// generation. cur must be the decoded form of curSig.Raw.
func ComputeDelta(fromETag string, old *Index, curSig *Signed, cur *Index) (*Delta, error) {
	if old == nil || cur == nil || curSig == nil {
		return nil, fmt.Errorf("%w: missing generation", ErrNoDelta)
	}
	added, changed, removed := Diff(old, cur)
	d := &Delta{
		FromETag: fromETag,
		ToETag:   curSig.ETag(),
		Sequence: cur.Sequence,
		Remove:   removed,
		KeyName:  curSig.KeyName,
		Sig:      append([]byte(nil), curSig.Sig...),
	}
	for _, name := range added {
		e, err := cur.Lookup(name)
		if err != nil {
			return nil, err
		}
		d.Upsert = append(d.Upsert, e)
	}
	for _, name := range changed {
		e, err := cur.Lookup(name)
		if err != nil {
			return nil, err
		}
		d.Upsert = append(d.Upsert, e)
	}
	sort.Slice(d.Upsert, func(i, j int) bool { return d.Upsert[i].Name < d.Upsert[j].Name })
	return d, nil
}

// Apply reconstructs the new generation from the base index: it clones
// the base, applies the upserts and removals, re-encodes (encoding is
// deterministic), and wraps the bytes with the delta's signature. The
// result is self-verified: its ETag — covering raw bytes, key name, and
// signature — must equal ToETag, or ErrDeltaMismatch is returned. A
// tampered delta therefore cannot produce a usable index, even on a
// receiver that never checks the RSA signature itself.
func (d *Delta) Apply(base *Index) (*Signed, *Index, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("%w: nil base", ErrDeltaMismatch)
	}
	next := base.Clone()
	for _, e := range d.Upsert {
		next.Add(e)
	}
	for _, name := range d.Remove {
		next.Remove(name)
	}
	next.Sequence = d.Sequence
	signed := &Signed{Raw: next.Encode(), KeyName: d.KeyName, Sig: append([]byte(nil), d.Sig...)}
	if signed.ETag() != d.ToETag {
		return nil, nil, fmt.Errorf("%w: got %s, want %s", ErrDeltaMismatch, signed.ETag(), d.ToETag)
	}
	return signed, next, nil
}

// EncodeDelta renders the delta as deterministic text, mirroring the
// index format:
//
//	from = <etag>
//	to = <etag>
//	sequence = <n>
//	key = <key name>
//	signature = <base64>
//	upsert = <name> <version> <size> <hex hash> [dep,dep,...]
//	remove = <name>
func (d *Delta) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "from = %s\n", d.FromETag)
	fmt.Fprintf(&b, "to = %s\n", d.ToETag)
	fmt.Fprintf(&b, "sequence = %d\n", d.Sequence)
	fmt.Fprintf(&b, "key = %s\n", d.KeyName)
	fmt.Fprintf(&b, "signature = %s\n", base64.StdEncoding.EncodeToString(d.Sig))
	for _, e := range d.Upsert {
		deps := strings.Join(e.Depends, ",")
		if deps == "" {
			deps = "-"
		}
		fmt.Fprintf(&b, "upsert = %s %s %d %x %s\n", e.Name, e.Version, e.Size, e.Hash, deps)
	}
	for _, name := range d.Remove {
		fmt.Fprintf(&b, "remove = %s\n", name)
	}
	return []byte(b.String())
}

// DecodeDelta parses an encoded delta.
func DecodeDelta(raw []byte) (*Delta, error) {
	d := &Delta{}
	seenFrom, seenTo, seenSeq, seenSig := false, false, false, false
	for lineno, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := cutKV(line)
		if !ok {
			return nil, fmt.Errorf("%w: delta line %d: %q", ErrFormat, lineno+1, line)
		}
		switch key {
		case "from":
			d.FromETag = value
			seenFrom = true
		case "to":
			d.ToETag = value
			seenTo = true
		case "sequence":
			seq, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: delta line %d: bad sequence %q", ErrFormat, lineno+1, value)
			}
			d.Sequence = seq
			seenSeq = true
		case "key":
			d.KeyName = value
		case "signature":
			sig, err := base64.StdEncoding.DecodeString(value)
			if err != nil {
				return nil, fmt.Errorf("%w: delta line %d: bad signature", ErrFormat, lineno+1)
			}
			d.Sig = sig
			seenSig = true
		case "upsert":
			e, err := parseEntry(value)
			if err != nil {
				return nil, fmt.Errorf("%w: delta line %d: %v", ErrFormat, lineno+1, err)
			}
			d.Upsert = append(d.Upsert, e)
		case "remove":
			d.Remove = append(d.Remove, value)
		default:
			return nil, fmt.Errorf("%w: delta line %d: unknown key %q", ErrFormat, lineno+1, key)
		}
	}
	if !seenFrom || !seenTo || !seenSeq || !seenSig {
		return nil, fmt.Errorf("%w: delta missing from/to/sequence/signature", ErrFormat)
	}
	return d, nil
}
