// Package index implements the signed repository metadata index
// (APKINDEX in Alpine terms). The index lists every package with its
// size and content hash — the defense against the endless-data and
// extraneous-dependencies attacks (§5.4) — and carries a sequence number
// so verifiers and TSR can detect replay (stale index) and freeze
// attacks.
package index

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tsr/internal/keys"
)

// Error sentinels.
var (
	ErrFormat   = errors.New("index: malformed index")
	ErrNotFound = errors.New("index: package not found")
)

// Entry describes one package in the repository.
type Entry struct {
	Name    string
	Version string
	// Size is the encoded package size in bytes, as served on the wire.
	Size int64
	// Hash is the SHA-256 of the encoded package bytes.
	Hash [32]byte
	// Depends lists dependency package names.
	Depends []string
}

// ETag renders the entry's content hash as the strong HTTP ETag of
// the package it describes — one definition shared by the origin and
// edge tiers, so conditional requests agree across them.
func (e Entry) ETag() string {
	return `"` + hex.EncodeToString(e.Hash[:]) + `"`
}

// Index is the repository metadata index.
type Index struct {
	// Origin names the repository that generated the index (e.g.
	// "alpine-main" or a TSR repository identifier).
	Origin string
	// Sequence is a monotonically increasing generation number; each
	// repository update increments it. It is the freshness measure used
	// for replay/freeze detection.
	Sequence uint64
	// Entries is kept sorted by package name.
	Entries []Entry
}

// Lookup returns the entry for the named package.
func (ix *Index) Lookup(name string) (Entry, error) {
	i := sort.Search(len(ix.Entries), func(i int) bool { return ix.Entries[i].Name >= name })
	if i < len(ix.Entries) && ix.Entries[i].Name == name {
		return ix.Entries[i], nil
	}
	return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// Add inserts or replaces an entry, keeping Entries sorted.
func (ix *Index) Add(e Entry) {
	i := sort.Search(len(ix.Entries), func(i int) bool { return ix.Entries[i].Name >= e.Name })
	if i < len(ix.Entries) && ix.Entries[i].Name == e.Name {
		ix.Entries[i] = e
		return
	}
	ix.Entries = append(ix.Entries, Entry{})
	copy(ix.Entries[i+1:], ix.Entries[i:])
	ix.Entries[i] = e
}

// Remove deletes the entry for the named package, if present.
func (ix *Index) Remove(name string) {
	i := sort.Search(len(ix.Entries), func(i int) bool { return ix.Entries[i].Name >= name })
	if i < len(ix.Entries) && ix.Entries[i].Name == name {
		ix.Entries = append(ix.Entries[:i], ix.Entries[i+1:]...)
	}
}

// Clone returns a copy whose Entries slice is independent of the
// original (entry Depends slices are shared; they are never mutated in
// place).
func (ix *Index) Clone() *Index {
	return &Index{
		Origin:   ix.Origin,
		Sequence: ix.Sequence,
		Entries:  append([]Entry(nil), ix.Entries...),
	}
}

// Names returns all package names in order.
func (ix *Index) Names() []string {
	out := make([]string, len(ix.Entries))
	for i, e := range ix.Entries {
		out[i] = e.Name
	}
	return out
}

// TotalSize returns the sum of all package sizes — the "repository size"
// measure of Figure 9's 3.6% overhead claim.
func (ix *Index) TotalSize() int64 {
	var n int64
	for _, e := range ix.Entries {
		n += e.Size
	}
	return n
}

// Encode renders the index as deterministic text:
//
//	origin = <origin>
//	sequence = <n>
//	package = <name> <version> <size> <hex hash> [dep,dep,...]
func (ix *Index) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "origin = %s\n", ix.Origin)
	fmt.Fprintf(&b, "sequence = %d\n", ix.Sequence)
	entries := append([]Entry(nil), ix.Entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		deps := strings.Join(e.Depends, ",")
		if deps == "" {
			deps = "-"
		}
		fmt.Fprintf(&b, "package = %s %s %d %x %s\n", e.Name, e.Version, e.Size, e.Hash, deps)
	}
	return []byte(b.String())
}

// cutKV splits a "key = value" line. An empty field encodes as
// "key = " whose trailing space does not survive the per-line
// TrimSpace, so the bare "key =" form is accepted as an empty value —
// without it, canonical encodings would not re-decode.
func cutKV(line string) (key, value string, ok bool) {
	if k, v, ok := strings.Cut(line, " = "); ok {
		return k, v, true
	}
	if k, found := strings.CutSuffix(line, " ="); found {
		return k, "", true
	}
	return line, "", false
}

// Decode parses an encoded index.
func Decode(raw []byte) (*Index, error) {
	ix := &Index{}
	seenOrigin, seenSeq := false, false
	for lineno, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := cutKV(line)
		if !ok {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineno+1, line)
		}
		switch key {
		case "origin":
			ix.Origin = value
			seenOrigin = true
		case "sequence":
			seq, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad sequence %q", ErrFormat, lineno+1, value)
			}
			ix.Sequence = seq
			seenSeq = true
		case "package":
			e, err := parseEntry(value)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineno+1, err)
			}
			ix.Entries = append(ix.Entries, e)
		default:
			return nil, fmt.Errorf("%w: line %d: unknown key %q", ErrFormat, lineno+1, key)
		}
	}
	if !seenOrigin || !seenSeq {
		return nil, fmt.Errorf("%w: missing origin or sequence", ErrFormat)
	}
	sort.Slice(ix.Entries, func(i, j int) bool { return ix.Entries[i].Name < ix.Entries[j].Name })
	return ix, nil
}

func parseEntry(s string) (Entry, error) {
	fields := strings.Fields(s)
	if len(fields) != 5 {
		return Entry{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	size, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad size %q", fields[2])
	}
	hash, err := hex.DecodeString(fields[3])
	if err != nil || len(hash) != 32 {
		return Entry{}, fmt.Errorf("bad hash %q", fields[3])
	}
	e := Entry{Name: fields[0], Version: fields[1], Size: size}
	copy(e.Hash[:], hash)
	if fields[4] != "-" {
		e.Depends = strings.Split(fields[4], ",")
	}
	return e, nil
}

// Signed is an index together with its signature, as served by
// repositories and mirrors.
type Signed struct {
	// Raw is the encoded index text the signature covers.
	Raw []byte
	// KeyName names the signing key.
	KeyName string
	// Sig is the RSA signature over Raw.
	Sig []byte
}

// Sign encodes and signs an index.
func Sign(ix *Index, pair *keys.Pair) (*Signed, error) {
	raw := ix.Encode()
	sig, err := pair.Sign(raw)
	if err != nil {
		return nil, err
	}
	return &Signed{Raw: raw, KeyName: pair.Name, Sig: sig}, nil
}

// VerifySignature checks the signature against the ring without
// decoding the index body. The embedded key name is a hint only — if
// the ring has no key of that name (ring keys may be labeled locally,
// e.g. keys parsed from a security policy), every ring key is tried.
func (s *Signed) VerifySignature(ring *keys.Ring) error {
	if err := ring.VerifyBy(s.KeyName, s.Raw, s.Sig); err != nil {
		if !errors.Is(err, keys.ErrUnknownKey) {
			return err
		}
		if _, err := ring.VerifyAny(s.Raw, s.Sig); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks the signature against the ring and returns the decoded
// index.
func (s *Signed) Verify(ring *keys.Ring) (*Index, error) {
	if err := s.VerifySignature(ring); err != nil {
		return nil, err
	}
	return Decode(s.Raw)
}

// Digest returns the SHA-256 of the signed representation, used for
// quorum vote matching: two mirrors agree iff their signed indexes hash
// identically.
func (s *Signed) Digest() [32]byte {
	h := sha256.New()
	h.Write(s.Raw)
	h.Write([]byte(s.KeyName))
	h.Write(s.Sig)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ETag returns the strong HTTP entity tag of the signed index: the
// quoted hex Digest. Two signed indexes carry the same ETag iff their
// raw bytes, key name, and signature all match, so If-None-Match
// revalidation against it is exactly as strong as re-downloading.
func (s *Signed) ETag() string {
	d := s.Digest()
	return `"` + hex.EncodeToString(d[:]) + `"`
}

// Clone returns a deep copy of the signed index.
func (s *Signed) Clone() *Signed {
	return &Signed{
		Raw:     append([]byte(nil), s.Raw...),
		KeyName: s.KeyName,
		Sig:     append([]byte(nil), s.Sig...),
	}
}

// Size returns the wire size of the signed index, used by the netsim
// transfer model.
func (s *Signed) Size() int64 {
	return int64(len(s.Raw) + len(s.KeyName) + len(s.Sig))
}

// Diff reports the package names that were added, changed (different
// version or hash), or removed going from old to new. TSR uses it to
// decide which packages must be re-sanitized after a mirror update
// (§5.5: "TSR detects the outdated software packages each time TSR reads
// the new metadata index").
func Diff(old, new *Index) (added, changed, removed []string) {
	oldByName := make(map[string]Entry, len(old.Entries))
	for _, e := range old.Entries {
		oldByName[e.Name] = e
	}
	for _, e := range new.Entries {
		prev, ok := oldByName[e.Name]
		switch {
		case !ok:
			added = append(added, e.Name)
		case prev.Version != e.Version || prev.Hash != e.Hash:
			changed = append(changed, e.Name)
		}
		delete(oldByName, e.Name)
	}
	for name := range oldByName {
		removed = append(removed, name)
	}
	sort.Strings(added)
	sort.Strings(changed)
	sort.Strings(removed)
	return added, changed, removed
}
