package index

// Generation is one retained published index generation, kept so a
// server (origin or edge — both retain the same window, which is what
// lets edges chain behind edges with origin-identical sync behavior)
// can answer GET /index/delta?since=<etag> for recent bases.
type Generation struct {
	ETag  string
	Index *Index
}

// HistoryWindow is how many generations the delta endpoint serves
// from. A caller whose base fell out of the window falls back to a
// full index fetch.
const HistoryWindow = 8

// AppendGeneration appends a newly published generation to a retained
// history, copy-on-write: the input slice is never mutated, so a
// previously published snapshot keeps its own view. Republishing the
// current generation (same ETag as the last entry) returns the input
// unchanged, and the result is capped at HistoryWindow entries.
func AppendGeneration(hist []Generation, etag string, ix *Index) []Generation {
	if n := len(hist); n > 0 && hist[n-1].ETag == etag {
		return hist
	}
	next := make([]Generation, 0, len(hist)+1)
	next = append(next, hist...)
	next = append(next, Generation{ETag: etag, Index: ix})
	if len(next) > HistoryWindow {
		next = next[len(next)-HistoryWindow:]
	}
	return next
}

// FindGeneration returns the retained index published under etag.
func FindGeneration(hist []Generation, etag string) (*Index, bool) {
	for _, gen := range hist {
		if gen.ETag == etag {
			return gen.Index, true
		}
	}
	return nil, false
}
