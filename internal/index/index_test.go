package index

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"tsr/internal/keys"
)

func sampleIndex() *Index {
	ix := &Index{Origin: "alpine-main", Sequence: 7}
	for i, name := range []string{"musl", "busybox", "openssl"} {
		e := Entry{
			Name:    name,
			Version: fmt.Sprintf("1.%d-r0", i),
			Size:    int64(1000 * (i + 1)),
			Depends: []string{"musl"},
		}
		if name == "musl" {
			e.Depends = nil
		}
		e.Hash = sha256.Sum256([]byte(name))
		ix.Add(e)
	}
	return ix
}

func TestAddKeepsSorted(t *testing.T) {
	ix := sampleIndex()
	want := []string{"busybox", "musl", "openssl"}
	if got := ix.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v", got)
	}
}

func TestAddReplaces(t *testing.T) {
	ix := sampleIndex()
	e, _ := ix.Lookup("musl")
	e.Version = "2.0-r0"
	ix.Add(e)
	if len(ix.Entries) != 3 {
		t.Fatalf("entries = %d", len(ix.Entries))
	}
	got, err := ix.Lookup("musl")
	if err != nil || got.Version != "2.0-r0" {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
}

func TestLookupMissing(t *testing.T) {
	ix := sampleIndex()
	if _, err := ix.Lookup("nothere"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	ix := sampleIndex()
	raw := ix.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ix) {
		t.Fatalf("roundtrip mismatch:\n%+v\nvs\n%+v", got, ix)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := sampleIndex().Encode()
	b := sampleIndex().Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("Encode not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"garbage",
		"origin = x\n",                        // missing sequence
		"sequence = 1\n",                      // missing origin
		"origin = x\nsequence = abc\n",        // bad sequence
		"origin = x\nsequence = 1\nweird = y", // unknown key
		"origin = x\nsequence = 1\npackage = a 1.0 12\n",        // short entry
		"origin = x\nsequence = 1\npackage = a 1.0 xx hash -\n", // bad size
		"origin = x\nsequence = 1\npackage = a 1.0 12 zzzz -\n", // bad hash
	}
	for _, src := range cases {
		if _, err := Decode([]byte(src)); !errors.Is(err, ErrFormat) {
			t.Errorf("%q: err = %v", src, err)
		}
	}
}

func TestSignVerify(t *testing.T) {
	pair := keys.Shared.MustGet("index-signer")
	ix := sampleIndex()
	signed, err := Sign(ix, pair)
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(pair.Public())
	got, err := signed.Verify(ring)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sequence != 7 {
		t.Fatalf("sequence = %d", got.Sequence)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	pair := keys.Shared.MustGet("index-signer")
	signed, err := Sign(sampleIndex(), pair)
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(pair.Public())
	// Replay attack body: bump the sequence without re-signing.
	tampered := signed.Clone()
	tampered.Raw = bytes.Replace(tampered.Raw, []byte("sequence = 7"), []byte("sequence = 9"), 1)
	if _, err := tampered.Verify(ring); !errors.Is(err, keys.ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsUnknownKey(t *testing.T) {
	pair := keys.Shared.MustGet("index-signer")
	signed, err := Sign(sampleIndex(), pair)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := signed.Verify(keys.NewRing()); !errors.Is(err, keys.ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestDigestDistinguishesIndexes(t *testing.T) {
	pair := keys.Shared.MustGet("index-signer")
	s1, err := Sign(sampleIndex(), pair)
	if err != nil {
		t.Fatal(err)
	}
	ix2 := sampleIndex()
	ix2.Sequence = 8
	s2, err := Sign(ix2, pair)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest() == s2.Digest() {
		t.Fatal("digests collide across different indexes")
	}
	if s1.Digest() != s1.Clone().Digest() {
		t.Fatal("clone digest differs")
	}
}

func TestDiff(t *testing.T) {
	old := sampleIndex()
	new_ := sampleIndex()
	// change busybox, remove openssl, add zlib
	e, _ := new_.Lookup("busybox")
	e.Version = "1.99-r0"
	new_.Add(e)
	new_.Entries = new_.Entries[:2] // busybox, musl (drops openssl)
	new_.Add(Entry{Name: "zlib", Version: "1.2-r0", Size: 5, Hash: sha256.Sum256([]byte("zlib"))})

	added, changed, removed := Diff(old, new_)
	if !reflect.DeepEqual(added, []string{"zlib"}) {
		t.Fatalf("added = %v", added)
	}
	if !reflect.DeepEqual(changed, []string{"busybox"}) {
		t.Fatalf("changed = %v", changed)
	}
	if !reflect.DeepEqual(removed, []string{"openssl"}) {
		t.Fatalf("removed = %v", removed)
	}
}

func TestDiffHashOnlyChange(t *testing.T) {
	// Same version, different hash (e.g. after sanitization) counts as
	// changed.
	old := sampleIndex()
	new_ := sampleIndex()
	e, _ := new_.Lookup("musl")
	e.Hash = sha256.Sum256([]byte("other"))
	new_.Add(e)
	_, changed, _ := Diff(old, new_)
	if !reflect.DeepEqual(changed, []string{"musl"}) {
		t.Fatalf("changed = %v", changed)
	}
}

func TestDiffIdentical(t *testing.T) {
	a, c, r := Diff(sampleIndex(), sampleIndex())
	if len(a)+len(c)+len(r) != 0 {
		t.Fatalf("diff of identical = %v %v %v", a, c, r)
	}
}

func TestTotalSize(t *testing.T) {
	if got := sampleIndex().TotalSize(); got != 6000 {
		t.Fatalf("TotalSize = %d", got)
	}
}

func TestSignedETag(t *testing.T) {
	pair := keys.Shared.MustGet("index-signer")
	s1, err := Sign(sampleIndex(), pair)
	if err != nil {
		t.Fatal(err)
	}
	tag := s1.ETag()
	if len(tag) != 66 || tag[0] != '"' || tag[len(tag)-1] != '"' {
		t.Fatalf("ETag = %q, want a quoted 64-hex-char digest", tag)
	}
	if s1.Clone().ETag() != tag {
		t.Fatal("clone changed the ETag")
	}
	ix2 := sampleIndex()
	ix2.Sequence++
	s2, err := Sign(ix2, pair)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ETag() == tag {
		t.Fatal("different indexes share an ETag")
	}
}

func TestSignedSize(t *testing.T) {
	pair := keys.Shared.MustGet("index-signer")
	s, err := Sign(sampleIndex(), pair)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() <= int64(len(s.Raw)) {
		t.Fatalf("Size = %d, should include key name and signature", s.Size())
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(origin string, seq uint64, names []string) bool {
		ix := &Index{Origin: "repo-" + fmt.Sprintf("%x", origin), Sequence: seq}
		for i, n := range names {
			name := fmt.Sprintf("pkg%x%d", n, i)
			ix.Add(Entry{
				Name:    name,
				Version: "1.0-r0",
				Size:    int64(i),
				Hash:    sha256.Sum256([]byte(name)),
			})
		}
		got, err := Decode(ix.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, ix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Robustness: Decode never panics on arbitrary bytes.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
