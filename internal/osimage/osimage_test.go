package osimage

import (
	"errors"
	"strings"
	"testing"

	"tsr/internal/keys"
	"tsr/internal/policy"
	"tsr/internal/script"
)

func newImage(t *testing.T) *Image {
	t.Helper()
	img, err := New(keys.Shared.MustGet("os-ak"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestNewImageDefaults(t *testing.T) {
	img := newImage(t)
	users := img.Users()
	if len(users) != 1 || users[0].Name != "root" || users[0].UID != 0 {
		t.Fatalf("users = %+v", users)
	}
	passwd, err := img.FS.ReadFile(PasswdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(passwd), "root:x:0:0:") {
		t.Fatalf("passwd = %q", passwd)
	}
	shells, err := img.FS.ReadFile(ShellsPath)
	if err != nil || !strings.Contains(string(shells), "/bin/ash") {
		t.Fatalf("shells = %q, %v", shells, err)
	}
}

func TestNewImageSeedsFromPolicy(t *testing.T) {
	init := []policy.ConfigFile{
		{Path: PasswdPath, Content: "root:x:0:0:root:/root:/bin/ash\ndaemon:x:2:2:daemon:/sbin:/sbin/nologin\n"},
		{Path: GroupPath, Content: "root:x:0:root\ndaemon:x:2:\n"},
	}
	img, err := New(keys.Shared.MustGet("os-ak"), init)
	if err != nil {
		t.Fatal(err)
	}
	users := img.Users()
	if len(users) != 2 || users[1].Name != "daemon" || users[1].UID != 2 {
		t.Fatalf("users = %+v", users)
	}
	groups := img.Groups()
	if len(groups) != 2 || groups[1].GID != 2 {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestNewImageRejectsBadSeed(t *testing.T) {
	bad := []policy.ConfigFile{{Path: PasswdPath, Content: "not-a-passwd-line\n"}}
	if _, err := New(keys.Shared.MustGet("os-ak"), bad); err == nil {
		t.Fatal("want error")
	}
}

func TestAddUserRendersEtcFiles(t *testing.T) {
	img := newImage(t)
	err := script.Exec(script.MustParse("addgroup -S -g 123 ntp\nadduser -S -u 123 -s /sbin/nologin ntp"), img)
	if err != nil {
		t.Fatal(err)
	}
	passwd, _ := img.FS.ReadFile(PasswdPath)
	if !strings.Contains(string(passwd), "ntp:x:123:") {
		t.Fatalf("passwd = %q", passwd)
	}
	group, _ := img.FS.ReadFile(GroupPath)
	if !strings.Contains(string(group), "ntp:x:123:") {
		t.Fatalf("group = %q", group)
	}
	shadow, _ := img.FS.ReadFile(ShadowPath)
	if !strings.Contains(string(shadow), "ntp:!:") {
		t.Fatalf("shadow = %q (want locked password)", shadow)
	}
}

func TestAddUserAutoUID(t *testing.T) {
	img := newImage(t)
	if err := img.AddUser(script.User{Name: "a", UID: -1, GID: -1}); err != nil {
		t.Fatal(err)
	}
	if err := img.AddUser(script.User{Name: "b", UID: -1, GID: -1}); err != nil {
		t.Fatal(err)
	}
	users := img.Users()
	if users[1].UID != 100 || users[2].UID != 101 {
		t.Fatalf("uids = %d, %d", users[1].UID, users[2].UID)
	}
}

func TestAddUserIdempotent(t *testing.T) {
	img := newImage(t)
	for i := 0; i < 2; i++ {
		if err := img.AddUser(script.User{Name: "ntp", UID: 123}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(img.Users()); got != 2 { // root + ntp
		t.Fatalf("users = %d", got)
	}
}

func TestInstallationOrderChangesEtcContents(t *testing.T) {
	// The core nondeterminism of the paper's Problem 1: the same two
	// package scripts, run in different installation orders, produce
	// different /etc files (auto-assigned UIDs and line order differ).
	a := script.MustParse("adduser -S alpha")
	b := script.MustParse("adduser -S beta")
	imgAB := newImage(t)
	if err := script.Exec(a, imgAB); err != nil {
		t.Fatal(err)
	}
	if err := script.Exec(b, imgAB); err != nil {
		t.Fatal(err)
	}
	imgBA := newImage(t)
	if err := script.Exec(b, imgBA); err != nil {
		t.Fatal(err)
	}
	if err := script.Exec(a, imgBA); err != nil {
		t.Fatal(err)
	}
	fpAB, err := imgAB.ConfigFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpBA, err := imgBA.ConfigFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpAB == fpBA {
		t.Fatal("expected order-dependent /etc contents without sanitization")
	}
}

func TestEmptyPasswordRenderedInShadow(t *testing.T) {
	// CVE-2019-5021 analogue: passwd -d leaves an empty shadow field.
	img := newImage(t)
	err := script.Exec(script.MustParse("adduser -S alpine\npasswd -d alpine"), img)
	if err != nil {
		t.Fatal(err)
	}
	shadow, _ := img.FS.ReadFile(ShadowPath)
	if !strings.Contains(string(shadow), "alpine::0:::::") {
		t.Fatalf("shadow = %q (want empty password field)", shadow)
	}
}

func TestSetPasswordUnknownUser(t *testing.T) {
	img := newImage(t)
	if err := img.SetPassword("ghost", ""); !errors.Is(err, ErrNoUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddShell(t *testing.T) {
	img := newImage(t)
	if err := script.Exec(script.MustParse("add-shell /bin/bash"), img); err != nil {
		t.Fatal(err)
	}
	shells, _ := img.FS.ReadFile(ShellsPath)
	if !strings.Contains(string(shells), "/bin/bash") {
		t.Fatalf("shells = %q", shells)
	}
	// Idempotent.
	if err := img.AddShell("/bin/bash"); err != nil {
		t.Fatal(err)
	}
	if got := len(img.Shells()); got != 2 {
		t.Fatalf("shells = %v", img.Shells())
	}
}

func TestFilesystemOpsThroughScript(t *testing.T) {
	img := newImage(t)
	src := `mkdir -p /var/lib/app
touch /var/lib/app/state
chmod 600 /var/lib/app/state
cp /var/lib/app/state /var/lib/app/state.bak
mv /var/lib/app/state.bak /var/lib/app/state2
ln -s /var/lib/app /var/app
rm /var/lib/app/state2
`
	if err := script.Exec(script.MustParse(src), img); err != nil {
		t.Fatal(err)
	}
	if !img.FS.Exists("/var/lib/app/state") {
		t.Fatal("state missing")
	}
	if img.FS.Exists("/var/lib/app/state2") {
		t.Fatal("state2 not removed")
	}
	target, err := img.FS.Readlink("/var/app")
	if err != nil || target != "/var/lib/app" {
		t.Fatalf("readlink = %q, %v", target, err)
	}
	info, _ := img.FS.Stat("/var/lib/app/state")
	if info.Mode != 0o600 {
		t.Fatalf("mode = %o", info.Mode)
	}
}

func TestConfigFingerprintStableWhenIdentical(t *testing.T) {
	img1 := newImage(t)
	img2 := newImage(t)
	fp1, err := img1.ConfigFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := img2.ConfigFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("identical images yield different fingerprints")
	}
}

func TestExplicitUIDsAreOrderIndependent(t *testing.T) {
	// With explicit, globally assigned UIDs and a fixed creation order,
	// /etc contents become order-independent — the property the
	// sanitizer relies on. Here both orders run the SAME canonical
	// provisioning script (as rewritten packages do).
	canonical := script.MustParse(
		"addgroup -S -g 300 svca\naddgroup -S -g 301 svcb\nadduser -S -u 300 -g svc svca\nadduser -S -u 301 -g svc svcb")
	img1 := newImage(t)
	if err := script.Exec(canonical, img1); err != nil {
		t.Fatal(err)
	}
	img2 := newImage(t)
	if err := script.Exec(canonical, img2); err != nil {
		t.Fatal(err)
	}
	// Execute twice on img2 (package A and package B both carry the
	// canonical script): idempotency keeps contents identical.
	if err := script.Exec(canonical, img2); err != nil {
		t.Fatal(err)
	}
	fp1, _ := img1.ConfigFingerprint()
	fp2, _ := img2.ConfigFingerprint()
	if fp1 != fp2 {
		t.Fatal("canonical provisioning is not idempotent")
	}
}
