// Package osimage composes the integrity-enforced operating system of
// the paper's Figure 4: a virtual filesystem measured by IMA into a TPM,
// an account database rendered into /etc/passwd, /etc/shadow and
// /etc/group (the three files the paper's sanitizer predicts), a login
// shell registry (/etc/shells), and the installed-package database the
// package manager maintains.
//
// Image implements script.System, so installation scripts execute
// directly against it — including the nondeterminism the paper fixes:
// account lines are appended in execution order, so different package
// installation orders yield different /etc file contents unless the
// scripts have been sanitized.
package osimage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"tsr/internal/ima"
	"tsr/internal/keys"
	"tsr/internal/policy"
	"tsr/internal/script"
	"tsr/internal/tpm"
	"tsr/internal/vfs"
)

// Paths of the deterministically rendered configuration files.
const (
	PasswdPath = "/etc/passwd"
	ShadowPath = "/etc/shadow"
	GroupPath  = "/etc/group"
	ShellsPath = "/etc/shells"
)

// ErrNoUser is returned by SetPassword for unknown accounts.
var ErrNoUser = errors.New("osimage: no such user")

// Image is one integrity-enforced OS instance.
type Image struct {
	FS  *vfs.FS
	TPM *tpm.TPM
	IMA *ima.IMA

	mu      sync.Mutex
	users   []script.User
	groups  []script.Group
	shells  []string
	nextUID int
	nextGID int
}

// New boots an image: base filesystem, TPM with the given attestation
// key, IMA engine, and the initial configuration files from the policy
// (Listing 1 init_config_files), which are parsed to seed the account
// database.
func New(ak *keys.Pair, initFiles []policy.ConfigFile) (*Image, error) {
	fs := vfs.New()
	t := tpm.New(ak)
	img := &Image{
		FS:      fs,
		TPM:     t,
		IMA:     ima.New(fs, t),
		nextUID: 100,
		nextGID: 100,
	}
	for _, d := range []string{"/etc", "/bin", "/usr/bin", "/usr/sbin", "/lib", "/var", "/tmp", "/home"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	seeded := map[string]bool{}
	for _, f := range initFiles {
		if err := fs.WriteFile(f.Path, []byte(f.Content), 0o644); err != nil {
			return nil, fmt.Errorf("osimage: init config %s: %w", f.Path, err)
		}
		seeded[f.Path] = true
		switch f.Path {
		case PasswdPath:
			if err := img.seedPasswd(f.Content); err != nil {
				return nil, err
			}
		case GroupPath:
			if err := img.seedGroups(f.Content); err != nil {
				return nil, err
			}
		case ShellsPath:
			for _, line := range strings.Split(f.Content, "\n") {
				if line = strings.TrimSpace(line); line != "" {
					img.shells = append(img.shells, line)
				}
			}
		}
	}
	if !seeded[PasswdPath] {
		img.users = []script.User{{Name: "root", UID: 0, GID: 0, Gecos: "root", Home: "/root", Shell: "/bin/ash"}}
	}
	if !seeded[GroupPath] {
		img.groups = []script.Group{{Name: "root", GID: 0}}
	}
	if !seeded[ShellsPath] {
		img.shells = []string{"/bin/ash"}
	}
	// Render all account files canonically: the account database is the
	// source of truth, and the first adduser would rewrite the files in
	// renderer format anyway — starting canonical keeps the sanitizer's
	// prediction exact from the first package on.
	if err := img.renderAccountsLocked(); err != nil {
		return nil, err
	}
	if err := img.renderShellsLocked(); err != nil {
		return nil, err
	}
	return img, nil
}

// seedPasswd parses passwd-format lines into the account database.
func (img *Image) seedPasswd(content string) error {
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) != 7 {
			return fmt.Errorf("osimage: bad passwd line %q", line)
		}
		var uid, gid int
		if _, err := fmt.Sscanf(parts[2]+" "+parts[3], "%d %d", &uid, &gid); err != nil {
			return fmt.Errorf("osimage: bad passwd ids in %q", line)
		}
		img.users = append(img.users, script.User{
			Name: parts[0], UID: uid, GID: gid,
			Gecos: parts[4], Home: parts[5], Shell: parts[6],
		})
		if uid >= img.nextUID {
			img.nextUID = uid + 1
		}
	}
	return nil
}

// seedGroups parses group-format lines.
func (img *Image) seedGroups(content string) error {
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) < 3 {
			return fmt.Errorf("osimage: bad group line %q", line)
		}
		var gid int
		if _, err := fmt.Sscanf(parts[2], "%d", &gid); err != nil {
			return fmt.Errorf("osimage: bad group line %q", line)
		}
		img.groups = append(img.groups, script.Group{Name: parts[0], GID: gid})
		if gid >= img.nextGID {
			img.nextGID = gid + 1
		}
	}
	return nil
}

// Users returns a copy of the account database.
func (img *Image) Users() []script.User {
	img.mu.Lock()
	defer img.mu.Unlock()
	return append([]script.User(nil), img.users...)
}

// Groups returns a copy of the group database.
func (img *Image) Groups() []script.Group {
	img.mu.Lock()
	defer img.mu.Unlock()
	return append([]script.Group(nil), img.groups...)
}

// Shells returns the registered login shells.
func (img *Image) Shells() []string {
	img.mu.Lock()
	defer img.mu.Unlock()
	return append([]string(nil), img.shells...)
}

// renderAccountsLocked rewrites /etc/passwd, /etc/shadow and /etc/group
// from the account database *in database order* — installation order
// leaks into file contents, which is precisely the nondeterminism the
// sanitizer must pre-empt. Caller must hold mu.
func (img *Image) renderAccountsLocked() error {
	var passwd, shadow strings.Builder
	for _, u := range img.users {
		fmt.Fprintf(&passwd, "%s:x:%d:%d:%s:%s:%s\n", u.Name, u.UID, u.GID, u.Gecos, u.Home, u.Shell)
		fmt.Fprintf(&shadow, "%s:%s:0:::::\n", u.Name, shadowHashField(u))
	}
	var group strings.Builder
	for _, g := range img.groups {
		fmt.Fprintf(&group, "%s:x:%d:\n", g.Name, g.GID)
	}
	if err := img.FS.WriteFile(PasswdPath, []byte(passwd.String()), 0o644); err != nil {
		return err
	}
	if err := img.FS.WriteFile(ShadowPath, []byte(shadow.String()), 0o640); err != nil {
		return err
	}
	return img.FS.WriteFile(GroupPath, []byte(group.String()), 0o644)
}

// shadowHashField renders the password field of a shadow line: "!" for
// locked (default), "" for the CVE-2019-5021-style empty password.
func shadowHashField(u script.User) string {
	if u.NoPassword {
		return ""
	}
	return "!"
}

func (img *Image) renderShellsLocked() error {
	var b strings.Builder
	for _, s := range img.shells {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return img.FS.WriteFile(ShellsPath, []byte(b.String()), 0o644)
}

// --- script.System implementation -----------------------------------

// MkdirAll implements script.System.
func (img *Image) MkdirAll(path string, mode uint32) error {
	return img.FS.MkdirAll(path, mode)
}

// Remove implements script.System.
func (img *Image) Remove(path string, recursive bool) error {
	if recursive {
		return img.FS.RemoveAll(path)
	}
	return img.FS.Remove(path)
}

// Rename implements script.System.
func (img *Image) Rename(oldPath, newPath string) error {
	return img.FS.Rename(oldPath, newPath)
}

// Copy implements script.System.
func (img *Image) Copy(src, dst string) error {
	content, err := img.FS.ReadFile(src)
	if err != nil {
		return err
	}
	info, err := img.FS.Stat(src)
	if err != nil {
		return err
	}
	return img.FS.WriteFile(dst, content, info.Mode)
}

// Symlink implements script.System.
func (img *Image) Symlink(target, link string) error {
	return img.FS.Symlink(target, link)
}

// Chmod implements script.System.
func (img *Image) Chmod(path string, mode uint32) error {
	return img.FS.Chmod(path, mode)
}

// Chown implements script.System.
func (img *Image) Chown(path, owner string) error {
	return img.FS.Chown(path, owner)
}

// Touch implements script.System.
func (img *Image) Touch(path string) error {
	if img.FS.Exists(path) {
		return nil
	}
	return img.FS.WriteFile(path, nil, 0o644)
}

// WriteFile implements script.System.
func (img *Image) WriteFile(path string, data []byte, appendTo bool) error {
	if appendTo {
		return img.FS.AppendFile(path, data, 0o644)
	}
	return img.FS.WriteFile(path, data, 0o644)
}

// ReadFile implements script.System.
func (img *Image) ReadFile(path string) ([]byte, error) {
	return img.FS.ReadFile(path)
}

// Exists implements script.System.
func (img *Image) Exists(path string) bool {
	return img.FS.Exists(path)
}

// AddUser implements script.System. A UID/GID of -1 allocates the next
// free id. Re-adding an existing user is idempotent (matching busybox
// adduser -S semantics in packages that guard with conditionals).
func (img *Image) AddUser(u script.User) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	for _, have := range img.users {
		if have.Name == u.Name {
			return nil // idempotent
		}
	}
	if u.UID < 0 {
		u.UID = img.nextUID
		img.nextUID++
	} else if u.UID >= img.nextUID {
		img.nextUID = u.UID + 1
	}
	if u.GID < 0 {
		u.GID = u.UID
	}
	img.users = append(img.users, u)
	return img.renderAccountsLocked()
}

// AddGroup implements script.System.
func (img *Image) AddGroup(g script.Group) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	for _, have := range img.groups {
		if have.Name == g.Name {
			return nil // idempotent
		}
	}
	if g.GID < 0 {
		g.GID = img.nextGID
		img.nextGID++
	} else if g.GID >= img.nextGID {
		img.nextGID = g.GID + 1
	}
	img.groups = append(img.groups, g)
	return img.renderAccountsLocked()
}

// SetPassword implements script.System. An empty hash marks the user
// passwordless (rendered as an empty shadow field).
func (img *Image) SetPassword(name, hash string) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	for i := range img.users {
		if img.users[i].Name == name {
			img.users[i].NoPassword = hash == ""
			return img.renderAccountsLocked()
		}
	}
	return fmt.Errorf("%w: %q", ErrNoUser, name)
}

// AddShell implements script.System.
func (img *Image) AddShell(path string) error {
	img.mu.Lock()
	defer img.mu.Unlock()
	for _, s := range img.shells {
		if s == path {
			return nil
		}
	}
	img.shells = append(img.shells, path)
	return img.renderShellsLocked()
}

// LabelTree signs every regular file under root with the given key and
// installs the signatures as security.ima xattrs — the provisioning
// step a real IMA-appraisal deployment performs on the golden image
// before enabling enforcement ("evmctl ima_sign" over the filesystem).
func (img *Image) LabelTree(root string, pair *keys.Pair) error {
	var paths []string
	err := img.FS.Walk(root, func(info vfs.FileInfo) error {
		if info.Type == vfs.Regular {
			paths = append(paths, info.Path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, p := range paths {
		content, err := img.FS.ReadFile(p)
		if err != nil {
			return err
		}
		sig, err := ima.SignFileDigest(pair, content)
		if err != nil {
			return err
		}
		if err := img.FS.SetXattr(p, ima.XattrIMA, sig); err != nil {
			return err
		}
	}
	return nil
}

// SetXattr implements script.System.
func (img *Image) SetXattr(path, name string, value []byte) error {
	return img.FS.SetXattr(path, name, value)
}

// --- configuration fingerprint ---------------------------------------

// ConfigDigestPaths are the OS configuration files whose contents the
// sanitizer predicts and signs.
func ConfigDigestPaths() []string {
	return []string{PasswdPath, ShadowPath, GroupPath, ShellsPath}
}

// ConfigFingerprint summarizes the current contents of the predicted
// configuration files, used by tests asserting order-independence.
func (img *Image) ConfigFingerprint() (string, error) {
	var parts []string
	for _, p := range ConfigDigestPaths() {
		content, err := img.FS.ReadFile(p)
		if err != nil {
			return "", err
		}
		parts = append(parts, p+"="+string(content))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x00"), nil
}
