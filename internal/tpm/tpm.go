// Package tpm implements a software TPM 2.0 subset: a PCR bank with
// extend semantics, signed quotes over selected PCRs, and monotonic
// counters. It stands in for the hardware root of trust the paper's
// integrity-enforced OS reports measurements through (§2.3), and for the
// TPM monotonic counter TSR uses for cache rollback protection (§5.5).
//
// The substitution preserves the relevant behaviour: extend-only PCR
// state, attestation bound to a device key, and counters that can only
// increase.
package tpm

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"tsr/internal/keys"
)

// NumPCRs is the size of the PCR bank (TPM 2.0 SHA-256 bank).
const NumPCRs = 24

// PCRIMA is the PCR Linux IMA extends with file measurements (PCR 10).
const PCRIMA = 10

// Error sentinels.
var (
	ErrBadPCR   = errors.New("tpm: PCR index out of range")
	ErrBadQuote = errors.New("tpm: quote verification failed")
)

// TPM is a software trusted platform module. Create one with New.
// All methods are safe for concurrent use.
type TPM struct {
	mu       sync.Mutex
	pcrs     [NumPCRs][32]byte
	counters map[uint32]uint64
	ak       *keys.Pair // attestation key (AIK)

	// OnIncrement, when set, is invoked (outside the TPM lock) after
	// every successful IncrementCounter with the counter id and its new
	// value. Hardware TPM NV counters survive reboots; a host that
	// simulates one must persist the bank somewhere durable — and
	// trusted, NOT the rollback-prone data dir — on every bump. Set it
	// before the TPM is shared across goroutines.
	OnIncrement func(id uint32, value uint64)
}

// New creates a TPM with zeroed PCRs and the given attestation key.
func New(ak *keys.Pair) *TPM {
	return &TPM{counters: make(map[uint32]uint64), ak: ak}
}

// AttestationKey returns the public half of the attestation key, which
// verifiers must know to check quotes.
func (t *TPM) AttestationKey() *keys.Public { return t.ak.Public() }

// Extend folds digest into PCR i: PCR = SHA256(PCR || digest).
func (t *TPM) Extend(i int, digest [32]byte) error {
	if i < 0 || i >= NumPCRs {
		return fmt.Errorf("%w: %d", ErrBadPCR, i)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	h.Write(t.pcrs[i][:])
	h.Write(digest[:])
	copy(t.pcrs[i][:], h.Sum(nil))
	return nil
}

// PCR returns the current value of PCR i.
func (t *TPM) PCR(i int) ([32]byte, error) {
	if i < 0 || i >= NumPCRs {
		return [32]byte{}, fmt.Errorf("%w: %d", ErrBadPCR, i)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[i], nil
}

// Quote is a signed attestation of selected PCR values, bound to a
// verifier-chosen nonce for freshness.
type Quote struct {
	Nonce   []byte
	PCRs    map[int][32]byte
	KeyName string
	Sig     []byte
}

// Quote signs the current values of the selected PCRs together with the
// nonce.
func (t *TPM) Quote(nonce []byte, pcrs ...int) (*Quote, error) {
	t.mu.Lock()
	snapshot := make(map[int][32]byte, len(pcrs))
	for _, i := range pcrs {
		if i < 0 || i >= NumPCRs {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %d", ErrBadPCR, i)
		}
		snapshot[i] = t.pcrs[i]
	}
	t.mu.Unlock()
	q := &Quote{Nonce: append([]byte(nil), nonce...), PCRs: snapshot, KeyName: t.ak.Name}
	sig, err := t.ak.Sign(q.message())
	if err != nil {
		return nil, err
	}
	q.Sig = sig
	return q, nil
}

// message serializes the quote deterministically for signing.
func (q *Quote) message() []byte {
	buf := make([]byte, 0, 8+len(q.Nonce)+len(q.PCRs)*(4+32))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(q.Nonce)))
	buf = append(buf, n[:]...)
	buf = append(buf, q.Nonce...)
	// PCR indexes in ascending order for determinism.
	for i := 0; i < NumPCRs; i++ {
		v, ok := q.PCRs[i]
		if !ok {
			continue
		}
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		buf = append(buf, idx[:]...)
		buf = append(buf, v[:]...)
	}
	return buf
}

// Verify checks the quote's signature with ak and that the nonce
// matches the verifier's challenge.
func (q *Quote) Verify(ak *keys.Public, nonce []byte) error {
	if string(nonce) != string(q.Nonce) {
		return fmt.Errorf("%w: nonce mismatch", ErrBadQuote)
	}
	if err := ak.Verify(q.message(), q.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuote, err)
	}
	return nil
}

// IncrementCounter increases monotonic counter id by one and returns the
// new value. Counters start at zero.
func (t *TPM) IncrementCounter(id uint32) uint64 {
	t.mu.Lock()
	t.counters[id]++
	v := t.counters[id]
	t.mu.Unlock()
	if t.OnIncrement != nil {
		t.OnIncrement(id, v)
	}
	return v
}

// Counters returns a copy of the monotonic counter bank — the NVRAM
// snapshot a simulated host persists so the TPM survives restarts.
func (t *TPM) Counters() map[uint32]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32]uint64, len(t.counters))
	for id, v := range t.counters {
		out[id] = v
	}
	return out
}

// RestoreCounters overwrites the counter bank from a persisted NVRAM
// snapshot. Only for host-restart simulation — real NV counters cannot
// be written, which is the whole point of using them.
func (t *TPM) RestoreCounters(bank map[uint32]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters = make(map[uint32]uint64, len(bank))
	for id, v := range bank {
		t.counters[id] = v
	}
}

// ReadCounter returns the current value of monotonic counter id.
func (t *TPM) ReadCounter(id uint32) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[id]
}
