package tpm

import (
	"crypto/sha256"
	"errors"
	"sync"
	"testing"

	"tsr/internal/keys"
)

func newTestTPM(t *testing.T) *TPM {
	t.Helper()
	return New(keys.Shared.MustGet("tpm-ak"))
}

func TestExtendChangesPCR(t *testing.T) {
	tp := newTestTPM(t)
	zero, err := tp.PCR(PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	if zero != ([32]byte{}) {
		t.Fatal("fresh PCR not zero")
	}
	if err := tp.Extend(PCRIMA, sha256.Sum256([]byte("m1"))); err != nil {
		t.Fatal(err)
	}
	v1, _ := tp.PCR(PCRIMA)
	if v1 == zero {
		t.Fatal("extend did not change PCR")
	}
}

func TestExtendOrderMatters(t *testing.T) {
	a, b := newTestTPM(t), newTestTPM(t)
	d1 := sha256.Sum256([]byte("m1"))
	d2 := sha256.Sum256([]byte("m2"))
	a.Extend(PCRIMA, d1)
	a.Extend(PCRIMA, d2)
	b.Extend(PCRIMA, d2)
	b.Extend(PCRIMA, d1)
	va, _ := a.PCR(PCRIMA)
	vb, _ := b.PCR(PCRIMA)
	if va == vb {
		t.Fatal("PCR must depend on extend order")
	}
}

func TestExtendReplayable(t *testing.T) {
	// A verifier replaying the same measurement log must arrive at the
	// same PCR value — the foundation of IMA log verification.
	tp := newTestTPM(t)
	logDigests := [][32]byte{
		sha256.Sum256([]byte("boot")),
		sha256.Sum256([]byte("kernel")),
		sha256.Sum256([]byte("/usr/bin/x")),
	}
	for _, d := range logDigests {
		tp.Extend(PCRIMA, d)
	}
	var replay [32]byte
	for _, d := range logDigests {
		h := sha256.New()
		h.Write(replay[:])
		h.Write(d[:])
		copy(replay[:], h.Sum(nil))
	}
	got, _ := tp.PCR(PCRIMA)
	if got != replay {
		t.Fatal("replayed PCR differs from TPM PCR")
	}
}

func TestPCRBounds(t *testing.T) {
	tp := newTestTPM(t)
	if err := tp.Extend(-1, [32]byte{}); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("err = %v", err)
	}
	if err := tp.Extend(NumPCRs, [32]byte{}); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tp.PCR(99); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tp.Quote([]byte("n"), 99); !errors.Is(err, ErrBadPCR) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteVerify(t *testing.T) {
	tp := newTestTPM(t)
	tp.Extend(PCRIMA, sha256.Sum256([]byte("m")))
	nonce := []byte("verifier-nonce-123")
	q, err := tp.Quote(nonce, 0, PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Verify(tp.AttestationKey(), nonce); err != nil {
		t.Fatal(err)
	}
	pcr, _ := tp.PCR(PCRIMA)
	if q.PCRs[PCRIMA] != pcr {
		t.Fatal("quote PCR snapshot mismatch")
	}
}

func TestQuoteRejectsWrongNonce(t *testing.T) {
	tp := newTestTPM(t)
	q, err := tp.Quote([]byte("nonce-a"), PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Verify(tp.AttestationKey(), []byte("nonce-b")); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteRejectsTamperedPCR(t *testing.T) {
	tp := newTestTPM(t)
	tp.Extend(PCRIMA, sha256.Sum256([]byte("m")))
	nonce := []byte("n")
	q, err := tp.Quote(nonce, PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	q.PCRs[PCRIMA] = sha256.Sum256([]byte("forged"))
	if err := q.Verify(tp.AttestationKey(), nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteRejectsWrongKey(t *testing.T) {
	tp := newTestTPM(t)
	other := keys.Shared.MustGet("other-ak")
	nonce := []byte("n")
	q, err := tp.Quote(nonce, PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Verify(other.Public(), nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v", err)
	}
}

func TestMonotonicCounter(t *testing.T) {
	tp := newTestTPM(t)
	if got := tp.ReadCounter(1); got != 0 {
		t.Fatalf("fresh counter = %d", got)
	}
	if got := tp.IncrementCounter(1); got != 1 {
		t.Fatalf("first increment = %d", got)
	}
	if got := tp.IncrementCounter(1); got != 2 {
		t.Fatalf("second increment = %d", got)
	}
	if got := tp.ReadCounter(2); got != 0 {
		t.Fatalf("independent counter = %d", got)
	}
}

func TestMonotonicCounterConcurrent(t *testing.T) {
	tp := newTestTPM(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tp.IncrementCounter(7)
			}
		}()
	}
	wg.Wait()
	if got := tp.ReadCounter(7); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}
