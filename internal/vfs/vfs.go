// Package vfs implements an in-memory filesystem with POSIX-style modes
// and extended attributes. It is the substrate under the simulated
// integrity-enforced operating system: Linux IMA stores per-file digital
// signatures in the security.ima extended attribute, and the package
// manager extracts files (with xattrs carried in PAX headers) into this
// filesystem.
//
// Paths are slash-separated and absolute ("/etc/passwd"). All operations
// are safe for concurrent use.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Filesystem error sentinels, comparable with errors.Is.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrNoXattr  = errors.New("vfs: extended attribute not set")
	ErrBadPath  = errors.New("vfs: invalid path")
)

// FileType distinguishes the node kinds the simulation needs.
type FileType int

const (
	// Regular is an ordinary file.
	Regular FileType = iota
	// Dir is a directory.
	Dir
	// Symlink is a symbolic link; its Content holds the target path.
	Symlink
)

// String implements fmt.Stringer.
func (t FileType) String() string {
	switch t {
	case Regular:
		return "regular"
	case Dir:
		return "dir"
	case Symlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileType(%d)", int(t))
	}
}

// FileInfo describes a node, as returned by Stat.
type FileInfo struct {
	Path  string
	Type  FileType
	Mode  uint32
	Size  int64
	Owner string
}

// node is the internal representation of a file, directory, or symlink.
type node struct {
	typ     FileType
	mode    uint32
	owner   string
	content []byte
	xattrs  map[string][]byte
}

// FS is an in-memory filesystem. Use New to create one; the zero value is
// not usable.
type FS struct {
	mu    sync.RWMutex
	nodes map[string]*node // key: cleaned absolute path
}

// New returns an empty filesystem containing only the root directory.
func New() *FS {
	fs := &FS{nodes: make(map[string]*node)}
	fs.nodes["/"] = &node{typ: Dir, mode: 0o755, owner: "root"}
	return fs
}

// clean validates and normalizes p into a cleaned absolute path.
func clean(p string) (string, error) {
	if p == "" || !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, p)
	}
	return path.Clean(p), nil
}

// ensureParent checks that the parent of p exists and is a directory.
// Caller must hold mu.
func (fs *FS) ensureParent(p string) error {
	parent := path.Dir(p)
	n, ok := fs.nodes[parent]
	if !ok {
		return fmt.Errorf("%w: parent %q", ErrNotExist, parent)
	}
	if n.typ != Dir {
		return fmt.Errorf("%w: parent %q", ErrNotDir, parent)
	}
	return nil
}

// MkdirAll creates directory p and any missing parents with the given
// mode. It succeeds if p already exists as a directory.
func (fs *FS) MkdirAll(p string, mode uint32) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdirAllLocked(p, mode)
}

func (fs *FS) mkdirAllLocked(p string, mode uint32) error {
	if n, ok := fs.nodes[p]; ok {
		if n.typ != Dir {
			return fmt.Errorf("%w: %q", ErrNotDir, p)
		}
		return nil
	}
	if p != "/" {
		if err := fs.mkdirAllLocked(path.Dir(p), mode); err != nil {
			return err
		}
	}
	fs.nodes[p] = &node{typ: Dir, mode: mode, owner: "root"}
	return nil
}

// WriteFile writes content to p, creating parents as needed and replacing
// any existing regular file. Writing over a directory is an error.
// Existing xattrs on the file are preserved (content update semantics).
func (fs *FS) WriteFile(p string, content []byte, mode uint32) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.mkdirAllLocked(path.Dir(p), 0o755); err != nil {
		return err
	}
	if n, ok := fs.nodes[p]; ok {
		if n.typ == Dir {
			return fmt.Errorf("%w: %q", ErrIsDir, p)
		}
		n.typ = Regular
		n.content = append([]byte(nil), content...)
		n.mode = mode
		return nil
	}
	fs.nodes[p] = &node{
		typ:     Regular,
		mode:    mode,
		owner:   "root",
		content: append([]byte(nil), content...),
	}
	return nil
}

// AppendFile appends content to the file at p, creating it if absent.
func (fs *FS) AppendFile(p string, content []byte, mode uint32) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n, ok := fs.nodes[p]; ok {
		if n.typ != Regular {
			return fmt.Errorf("%w: %q", ErrIsDir, p)
		}
		n.content = append(n.content, content...)
		return nil
	}
	if err := fs.mkdirAllLocked(path.Dir(p), 0o755); err != nil {
		return err
	}
	fs.nodes[p] = &node{
		typ:     Regular,
		mode:    mode,
		owner:   "root",
		content: append([]byte(nil), content...),
	}
	return nil
}

// ReadFile returns the content of the regular file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := fs.nodes[p]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.typ == Dir {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	return append([]byte(nil), n.content...), nil
}

// Stat returns metadata for the node at p.
func (fs *FS) Stat(p string) (FileInfo, error) {
	p, err := clean(p)
	if err != nil {
		return FileInfo{}, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := fs.nodes[p]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	return FileInfo{
		Path:  p,
		Type:  n.typ,
		Mode:  n.mode,
		Size:  int64(len(n.content)),
		Owner: n.owner,
	}, nil
}

// Exists reports whether a node exists at p.
func (fs *FS) Exists(p string) bool {
	_, err := fs.Stat(p)
	return err == nil
}

// Symlink creates a symbolic link at linkPath pointing at target.
func (fs *FS) Symlink(target, linkPath string) error {
	linkPath, err := clean(linkPath)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.nodes[linkPath]; ok {
		return fmt.Errorf("%w: %q", ErrExist, linkPath)
	}
	if err := fs.ensureParent(linkPath); err != nil {
		return err
	}
	fs.nodes[linkPath] = &node{
		typ:     Symlink,
		mode:    0o777,
		owner:   "root",
		content: []byte(target),
	}
	return nil
}

// Readlink returns the target of the symlink at p.
func (fs *FS) Readlink(p string) (string, error) {
	p, err := clean(p)
	if err != nil {
		return "", err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := fs.nodes[p]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.typ != Symlink {
		return "", fmt.Errorf("vfs: %q is not a symlink", p)
	}
	return string(n.content), nil
}

// Remove deletes the node at p. Directories must be empty.
func (fs *FS) Remove(p string) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[p]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.typ == Dir {
		prefix := p + "/"
		for q := range fs.nodes {
			if strings.HasPrefix(q, prefix) {
				return fmt.Errorf("%w: %q", ErrNotEmpty, p)
			}
		}
	}
	delete(fs.nodes, p)
	return nil
}

// RemoveAll deletes the node at p and, for directories, everything below
// it. Removing a non-existent path is not an error (like os.RemoveAll).
func (fs *FS) RemoveAll(p string) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := p + "/"
	for q := range fs.nodes {
		if q == p || strings.HasPrefix(q, prefix) {
			delete(fs.nodes, q)
		}
	}
	return nil
}

// Rename moves the node at oldp (and its subtree, for directories) to
// newp, overwriting any regular file at newp.
func (fs *FS) Rename(oldp, newp string) error {
	oldp, err := clean(oldp)
	if err != nil {
		return err
	}
	newp, err = clean(newp)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[oldp]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldp)
	}
	if err := fs.ensureParent(newp); err != nil {
		return err
	}
	if dst, ok := fs.nodes[newp]; ok && dst.typ == Dir {
		return fmt.Errorf("%w: %q", ErrIsDir, newp)
	}
	fs.nodes[newp] = n
	delete(fs.nodes, oldp)
	if n.typ == Dir {
		oldPrefix := oldp + "/"
		var moves [][2]string
		for q := range fs.nodes {
			if strings.HasPrefix(q, oldPrefix) {
				moves = append(moves, [2]string{q, newp + "/" + q[len(oldPrefix):]})
			}
		}
		for _, m := range moves {
			fs.nodes[m[1]] = fs.nodes[m[0]]
			delete(fs.nodes, m[0])
		}
	}
	return nil
}

// Chmod sets the permission bits of the node at p.
func (fs *FS) Chmod(p string, mode uint32) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[p]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	n.mode = mode
	return nil
}

// Chown sets the owner of the node at p.
func (fs *FS) Chown(p, owner string) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[p]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	n.owner = owner
	return nil
}

// SetXattr sets extended attribute name on the node at p. IMA signatures
// live under "security.ima".
func (fs *FS) SetXattr(p, name string, value []byte) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[p]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.xattrs == nil {
		n.xattrs = make(map[string][]byte)
	}
	n.xattrs[name] = append([]byte(nil), value...)
	return nil
}

// GetXattr returns extended attribute name of the node at p.
func (fs *FS) GetXattr(p, name string) ([]byte, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := fs.nodes[p]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	v, ok := n.xattrs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", ErrNoXattr, name, p)
	}
	return append([]byte(nil), v...), nil
}

// ListXattrs returns the sorted extended attribute names of the node at p.
func (fs *FS) ListXattrs(p string) ([]string, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := fs.nodes[p]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	names := make([]string, 0, len(n.xattrs))
	for name := range n.xattrs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Walk calls fn for every node under root (inclusive) in sorted path
// order. If fn returns an error the walk stops and returns it.
func (fs *FS) Walk(root string, fn func(info FileInfo) error) error {
	root, err := clean(root)
	if err != nil {
		return err
	}
	fs.mu.RLock()
	var infos []FileInfo
	prefix := root + "/"
	if root == "/" {
		prefix = "/"
	}
	for p, n := range fs.nodes {
		if p == root || strings.HasPrefix(p, prefix) {
			infos = append(infos, FileInfo{
				Path:  p,
				Type:  n.typ,
				Mode:  n.mode,
				Size:  int64(len(n.content)),
				Owner: n.owner,
			})
		}
	}
	fs.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Path < infos[j].Path })
	for _, info := range infos {
		if err := fn(info); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir lists the immediate children of directory p in sorted order.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, ok := fs.nodes[p]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.typ != Dir {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	var out []FileInfo
	for q, child := range fs.nodes {
		if q == p || !strings.HasPrefix(q, prefix) {
			continue
		}
		if strings.Contains(q[len(prefix):], "/") {
			continue // deeper than one level
		}
		out = append(out, FileInfo{
			Path:  q,
			Type:  child.typ,
			Mode:  child.mode,
			Size:  int64(len(child.content)),
			Owner: child.owner,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Count returns the number of nodes (including the root directory).
func (fs *FS) Count() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.nodes)
}

// Clone returns a deep copy of the filesystem, used to snapshot an OS
// image before an experiment trial and restore it afterwards.
func (fs *FS) Clone() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := &FS{nodes: make(map[string]*node, len(fs.nodes))}
	for p, n := range fs.nodes {
		cp := &node{
			typ:     n.typ,
			mode:    n.mode,
			owner:   n.owner,
			content: append([]byte(nil), n.content...),
		}
		if n.xattrs != nil {
			cp.xattrs = make(map[string][]byte, len(n.xattrs))
			for k, v := range n.xattrs {
				cp.xattrs[k] = append([]byte(nil), v...)
			}
		}
		out.nodes[p] = cp
	}
	return out
}
