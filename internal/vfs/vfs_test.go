package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteReadFile(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/etc/passwd", []byte("root:x:0:0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "root:x:0:0\n" {
		t.Fatalf("content = %q", got)
	}
	info, err := fs.Stat("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != 0o644 || info.Type != Regular || info.Size != 11 {
		t.Fatalf("info = %+v", info)
	}
	// Parent directories are created implicitly.
	if info, err := fs.Stat("/etc"); err != nil || info.Type != Dir {
		t.Fatalf("parent dir: %+v, %v", info, err)
	}
}

func TestReadFileErrors(t *testing.T) {
	fs := New()
	if _, err := fs.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file: err = %v", err)
	}
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: err = %v", err)
	}
	if _, err := fs.ReadFile("relative/path"); !errors.Is(err, ErrBadPath) {
		t.Errorf("relative path: err = %v", err)
	}
	if _, err := fs.ReadFile(""); !errors.Is(err, ErrBadPath) {
		t.Errorf("empty path: err = %v", err)
	}
}

func TestWriteFileOverDirFails(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d", []byte("x"), 0o644); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.WriteFile("/", []byte("x"), 0o644); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write root: err = %v", err)
	}
}

func TestWriteFilePreservesXattrs(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetXattr("/f", "security.ima", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	v, err := fs.GetXattr("/f", "security.ima")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("xattr = %v", v)
	}
}

func TestAppendFile(t *testing.T) {
	fs := New()
	if err := fs.AppendFile("/log", []byte("a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/log", []byte("b"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/log")
	if string(got) != "ab" {
		t.Fatalf("content = %q", got)
	}
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/d", []byte("x"), 0o644); err == nil {
		t.Fatal("append to dir: want error")
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b/c", 0o700); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		info, err := fs.Stat(p)
		if err != nil || info.Type != Dir {
			t.Fatalf("%s: %+v, %v", p, info, err)
		}
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c", 0o700); err != nil {
		t.Fatal(err)
	}
	// Over a file: error.
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/f/sub", 0o755); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v", err)
	}
}

func TestSymlink(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/bin/ash", []byte("#!"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/bin/ash", "/bin/sh"); err != nil {
		t.Fatal(err)
	}
	target, err := fs.Readlink("/bin/sh")
	if err != nil {
		t.Fatal(err)
	}
	if target != "/bin/ash" {
		t.Fatalf("target = %q", target)
	}
	if err := fs.Symlink("/x", "/bin/sh"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate symlink: err = %v", err)
	}
	if _, err := fs.Readlink("/bin/ash"); err == nil {
		t.Fatal("readlink on regular file: want error")
	}
	if err := fs.Symlink("/x", "/nodir/link"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("symlink without parent: err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty dir: err = %v", err)
	}
	if err := fs.Remove("/a/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Fatal("dir still exists")
	}
	if err := fs.Remove("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Remove("/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("remove root: err = %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := New()
	for _, p := range []string{"/a/b/c", "/a/b/d", "/a/e", "/ab"} {
		if err := fs.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") || fs.Exists("/a/b/c") {
		t.Fatal("subtree survived RemoveAll")
	}
	// Prefix must not over-match: /ab stays.
	if !fs.Exists("/ab") {
		t.Fatal("/ab was wrongly removed")
	}
	// Idempotent on missing path.
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/old", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/old") {
		t.Fatal("/old still exists")
	}
	got, err := fs.ReadFile("/new")
	if err != nil || string(got) != "data" {
		t.Fatalf("content = %q, %v", got, err)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	fs := New()
	for _, p := range []string{"/src/a", "/src/sub/b"} {
		if err := fs.WriteFile(p, []byte(p), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/dst/a", "/dst/sub/b"} {
		if !fs.Exists(p) {
			t.Fatalf("%s missing after rename", p)
		}
	}
	if fs.Exists("/src/a") {
		t.Fatal("source survived rename")
	}
}

func TestRenameErrors(t *testing.T) {
	fs := New()
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/f", "/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("rename onto dir: err = %v", err)
	}
	if err := fs.Rename("/f", "/nodir/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename into missing dir: err = %v", err)
	}
}

func TestChmodChown(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod("/f", 0o4755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown("/f", "ntp"); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/f")
	if info.Mode != 0o4755 || info.Owner != "ntp" {
		t.Fatalf("info = %+v", info)
	}
	if err := fs.Chmod("/missing", 0o644); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Chown("/missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestXattrs(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	sig := []byte{0xde, 0xad}
	if err := fs.SetXattr("/f", "security.ima", sig); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetXattr("/f", "user.note", []byte("n")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.GetXattr("/f", "security.ima")
	if err != nil || !bytes.Equal(got, sig) {
		t.Fatalf("xattr = %v, %v", got, err)
	}
	names, err := fs.ListXattrs("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "security.ima" || names[1] != "user.note" {
		t.Fatalf("names = %v", names)
	}
	if _, err := fs.GetXattr("/f", "missing"); !errors.Is(err, ErrNoXattr) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.SetXattr("/missing", "a", nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestXattrValueIsolated(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	v := []byte{1}
	if err := fs.SetXattr("/f", "a", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99 // mutating caller's slice must not affect stored value
	got, _ := fs.GetXattr("/f", "a")
	if got[0] != 1 {
		t.Fatal("stored xattr aliased caller slice")
	}
	got[0] = 77 // mutating returned slice must not affect stored value
	got2, _ := fs.GetXattr("/f", "a")
	if got2[0] != 1 {
		t.Fatal("returned xattr aliased stored value")
	}
}

func TestWalkOrderAndScope(t *testing.T) {
	fs := New()
	for _, p := range []string{"/b", "/a/x", "/a/y", "/c/z"} {
		if err := fs.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var paths []string
	err := fs.Walk("/a", func(info FileInfo) error {
		paths = append(paths, info.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a", "/a/x", "/a/y"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
}

func TestWalkStopsOnError(t *testing.T) {
	fs := New()
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := fs.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	sentinel := errors.New("stop")
	err := fs.Walk("/", func(info FileInfo) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || count != 2 {
		t.Fatalf("err = %v, count = %d", err, count)
	}
}

func TestReadDir(t *testing.T) {
	fs := New()
	for _, p := range []string{"/d/a", "/d/b", "/d/sub/deep"} {
		if err := fs.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 { // a, b, sub — not sub/deep
		t.Fatalf("got %d entries: %+v", len(infos), infos)
	}
	if infos[0].Path != "/d/a" || infos[2].Path != "/d/sub" {
		t.Fatalf("infos = %+v", infos)
	}
	if _, err := fs.ReadDir("/d/a"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.ReadDir("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadDirRoot(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Path != "/f" {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestCloneIndependence(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("orig"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetXattr("/f", "a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	cp := fs.Clone()
	if err := cp.WriteFile("/f", []byte("changed"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetXattr("/f", "a", []byte{2}); err != nil {
		t.Fatal(err)
	}
	orig, _ := fs.ReadFile("/f")
	if string(orig) != "orig" {
		t.Fatal("clone aliases original content")
	}
	x, _ := fs.GetXattr("/f", "a")
	if x[0] != 1 {
		t.Fatal("clone aliases original xattrs")
	}
}

func TestContentIsolation(t *testing.T) {
	fs := New()
	data := []byte("abc")
	if err := fs.WriteFile("/f", data, 0o644); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := fs.ReadFile("/f")
	if string(got) != "abc" {
		t.Fatal("stored content aliased caller slice")
	}
	got[0] = 'Y'
	got2, _ := fs.ReadFile("/f")
	if string(got2) != "abc" {
		t.Fatal("returned content aliased stored value")
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p := fmt.Sprintf("/dir%d/file%d", i, j)
				if err := fs.WriteFile(p, []byte("x"), 0o644); err != nil {
					t.Error(err)
					return
				}
				if _, err := fs.ReadFile(p); err != nil {
					t.Error(err)
					return
				}
				fs.Walk("/", func(FileInfo) error { return nil })
			}
		}(i)
	}
	wg.Wait()
	// 8 dirs * 50 files + 8 dirs + root
	if got := fs.Count(); got != 8*50+8+1 {
		t.Fatalf("Count = %d", got)
	}
}

func TestWriteReadRoundtripProperty(t *testing.T) {
	fs := New()
	f := func(name string, content []byte) bool {
		if name == "" {
			return true
		}
		// Build a safe path component.
		p := "/prop/" + fmt.Sprintf("%x", name)
		if err := fs.WriteFile(p, content, 0o644); err != nil {
			return false
		}
		got, err := fs.ReadFile(p)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathNormalization(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/etc//passwd", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/etc/./passwd"); err != nil {
		t.Fatalf("normalized read failed: %v", err)
	}
	if _, err := fs.ReadFile("/etc/../etc/passwd"); err != nil {
		t.Fatalf("dotdot read failed: %v", err)
	}
}

func TestFileTypeString(t *testing.T) {
	if Regular.String() != "regular" || Dir.String() != "dir" || Symlink.String() != "symlink" {
		t.Fatal("FileType strings wrong")
	}
	if FileType(9).String() != "FileType(9)" {
		t.Fatal("unknown FileType string wrong")
	}
}

func TestSymlinkThenRemove(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/bin/ash", []byte("#!"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/bin/ash", "/bin/sh"); err != nil {
		t.Fatal(err)
	}
	// Removing the symlink leaves the target intact.
	if err := fs.Remove("/bin/sh"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/bin/ash") {
		t.Fatal("target removed with symlink")
	}
}

func TestStatSymlinkType(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/usr/bin", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/target", "/usr/bin/link"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/usr/bin/link")
	if err != nil {
		t.Fatal(err)
	}
	if info.Type != Symlink {
		t.Fatalf("type = %v", info.Type)
	}
	// Symlink content (the target) is readable via ReadFile in this
	// model, but Walk reports it as a Symlink node.
	var sawLink bool
	fs.Walk("/usr/bin", func(fi FileInfo) error {
		if fi.Path == "/usr/bin/link" && fi.Type == Symlink {
			sawLink = true
		}
		return nil
	})
	if !sawLink {
		t.Fatal("walk did not report symlink")
	}
}

func TestRenameOverwritesFile(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a", []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/b")
	if string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}
