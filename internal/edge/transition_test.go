package edge

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
)

// TestBehaviorTransitionsUnderTraffic drives every behavior pair
// (Honest/Freeze/Corrupt/Offline squared) as a mid-flight transition:
// a victim replica flips from one behavior to the other while client
// goroutines fetch packages through a FailoverClient and a syncer
// goroutine hammers the victim's Sync. The failover client must keep
// converging on the origin's current generation via the honest backup,
// and — the paper's core claim — zero unverified bytes may ever reach
// a client: every successful fetch is re-verified here against the
// signed index entry it was requested under. Run with -race in CI;
// the transitions are exactly the SetBehavior/FetchPackage/Sync
// interleavings the replica's locking must survive.
func TestBehaviorTransitionsUnderTraffic(t *testing.T) {
	behaviors := []Behavior{Honest, Freeze, Corrupt, Offline}
	for _, from := range behaviors {
		for _, to := range behaviors {
			t.Run(fmt.Sprintf("%v_to_%v", from, to), func(t *testing.T) {
				t.Parallel()
				testTransition(t, from, to)
			})
		}
	}
}

func testTransition(t *testing.T, from, to Behavior) {
	w := newEdgeWorld(t)
	ring := keys.NewRing(w.tenant.PublicKey())
	victim := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Europe, TrustRing: ring}
	backup := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.NorthAmerica, TrustRing: ring}
	for _, rep := range []*Replica{victim, backup} {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	endpoints := []Endpoint{
		// The victim ranks first (same continent as the clients), so
		// traffic actually exercises it before failing over.
		{Name: "victim", Continent: netsim.Europe, Fetcher: victim},
		{Name: "backup", Continent: netsim.NorthAmerica, Fetcher: backup},
	}
	victim.SetBehavior(from)

	const clientN, iterations = 4, 20
	var unverified atomic.Int64
	var served atomic.Int64
	var wg, syncWG sync.WaitGroup
	stop := make(chan struct{})

	// Syncer: the victim transitions mid-Sync as well as mid-fetch.
	syncWG.Add(1)
	go func() {
		defer syncWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = victim.Sync()
				_ = backup.Sync()
			}
		}
	}()

	for c := 0; c < clientN; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fc := &FailoverClient{
				Local:     netsim.Europe,
				Link:      netsim.DefaultLinkModel(nil),
				Clock:     netsim.NewVirtualClock(time.Time{}),
				TrustRing: ring,
				Endpoints: endpoints,
			}
			var lastSeq uint64
			for i := 0; i < iterations; i++ {
				signed, err := fc.FetchIndex()
				if err != nil {
					continue // availability, not a violation
				}
				ix, err := index.Decode(signed.Raw)
				if err != nil {
					t.Errorf("client %d accepted undecodable index: %v", c, err)
					return
				}
				if ix.Sequence < lastSeq {
					t.Errorf("client %d index sequence regressed %d -> %d", c, lastSeq, ix.Sequence)
					return
				}
				lastSeq = ix.Sequence
				for _, e := range ix.Entries {
					body, err := fc.FetchPackage(e.Name)
					if err != nil {
						continue
					}
					served.Add(1)
					if int64(len(body)) != e.Size || sha256.Sum256(body) != e.Hash {
						unverified.Add(int64(len(body)))
					}
				}
			}
		}(c)
	}

	// Mid-traffic: a new origin generation lands, then the victim flips.
	w.publish(t, testPkg(fmt.Sprintf("mid-%v-%v", from, to), "1.0-r0"))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	victim.SetBehavior(to)
	wg.Wait()
	close(stop)
	syncWG.Wait()

	if n := unverified.Load(); n != 0 {
		t.Fatalf("%d unverified bytes reached clients across %d served fetches", n, served.Load())
	}

	// Convergence once churn quiesces (the bounded-staleness invariant):
	// the victim heals and resyncs, and a read through the failover
	// client must land on the origin's current generation. Without the
	// heal a frozen victim could legally serve its stale-but-validly-
	// signed generation to a floor-less fresh client — staleness is only
	// bounded after replicas resync, which is exactly how the fleet-soak
	// invariant is defined.
	victim.SetBehavior(Honest)
	for _, rep := range []*Replica{victim, backup} {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	curIx, err := index.Decode(cur.Raw)
	if err != nil {
		t.Fatal(err)
	}
	fc := &FailoverClient{
		Local:     netsim.Europe,
		Link:      netsim.DefaultLinkModel(nil),
		Clock:     netsim.NewVirtualClock(time.Time{}),
		TrustRing: ring,
		Endpoints: endpoints,
	}
	signed, err := fc.FetchIndex()
	if err != nil {
		t.Fatalf("post-transition read failed: %v", err)
	}
	gotIx, err := index.Decode(signed.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if gotIx.Sequence != curIx.Sequence {
		t.Fatalf("client converged on sequence %d, origin is at %d", gotIx.Sequence, curIx.Sequence)
	}
	for _, e := range gotIx.Entries {
		body, err := fc.FetchPackage(e.Name)
		if err != nil {
			t.Fatalf("post-transition fetch %s: %v", e.Name, err)
		}
		if int64(len(body)) != e.Size || sha256.Sum256(body) != e.Hash {
			t.Fatalf("post-transition fetch %s returned unverified bytes", e.Name)
		}
	}
}
