package edge

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/netsim"
	"tsr/internal/store"
	"tsr/internal/tsr"
)

// bigEdgePkg builds a package large enough to span many chunks, with
// incompressible (seeded-random) content. Only the last-sorted file's
// content depends on the version, so a version bump changes a suffix of
// the apk data stream and chunking can reuse the shared prefix.
func bigEdgePkg(name, version string, nFiles, fileSize int) *apk.Package {
	p := &apk.Package{Name: name, Version: version}
	for i := 0; i < nFiles; i++ {
		seed := int64(i + 1)
		path := fmt.Sprintf("/usr/share/%s/%03d.bin", name, i)
		if i == nFiles-1 {
			path = "/usr/share/" + name + "/zz-last.bin"
			for _, c := range version {
				seed = seed*131 + int64(c)
			}
		}
		content := make([]byte, fileSize)
		rand.New(rand.NewSource(seed)).Read(content)
		p.Files = append(p.Files, apk.File{Path: path, Mode: 0o644, Content: content})
	}
	return p
}

func entryOf(t *testing.T, rep *Replica, name string) index.Entry {
	t.Helper()
	signed, _, err := rep.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ix.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestReplicaDifferentialPull is the tentpole acceptance at the edge
// tier: after a version bump, the replica's pull-through fetch moves
// only the changed chunks from the origin, reusing the cached previous
// generation as the diff base — and the reassembled bytes still verify
// against the signed index entry.
func TestReplicaDifferentialPull(t *testing.T) {
	w := newEdgeWorld(t)
	w.publish(t, bigEdgePkg("bigapp", "1.0-r0", 16, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	// Cold pull: a full origin fetch, no diff base yet.
	cold, err := rep.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.OriginPackages != 1 || s.DiffPulls != 0 {
		t.Fatalf("after cold pull: %+v", s)
	}

	// Version bump, delta sync, warm pull: differential.
	w.publish(t, bigEdgePkg("bigapp", "2.0-r0", 16, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	entry := entryOf(t, rep, "bigapp")
	warm, err := rep.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(warm)) != entry.Size || sha256.Sum256(warm) != entry.Hash {
		t.Fatal("differentially pulled bytes do not match the signed entry")
	}
	if bytes.Equal(warm, cold) {
		t.Fatal("version bump did not change the package bytes")
	}
	s := rep.Stats()
	if s.DiffPulls != 1 {
		t.Fatalf("DiffPulls = %d, want 1 (stats %+v)", s.DiffPulls, s)
	}
	if s.DiffBytesReused == 0 {
		t.Fatal("differential pull reused no chunks")
	}
	if s.DiffBytesFetched >= entry.Size/2 {
		t.Fatalf("differential pull moved %d of %d bytes; want < half", s.DiffBytesFetched, entry.Size)
	}
}

// TestChainedEdgeDifferentialPull: an edge behind an edge diffs the
// same way — the mid replica exposes the manifest/range surface, so the
// leaf's version-bump pull transfers only changed chunks through the
// whole chain.
func TestChainedEdgeDifferentialPull(t *testing.T) {
	w := newEdgeWorld(t)
	w.publish(t, bigEdgePkg("bigapp", "1.0-r0", 16, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	mid := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	leaf := &Replica{RepoID: w.tenant.ID, Origin: mid, TrustRing: w.trust()}
	for _, rep := range []*Replica{mid, leaf} {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leaf.FetchPackage("bigapp"); err != nil {
		t.Fatal(err)
	}

	w.publish(t, bigEdgePkg("bigapp", "2.0-r0", 16, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Replica{mid, leaf} {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	entry := entryOf(t, leaf, "bigapp")
	raw, err := leaf.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(raw) != entry.Hash {
		t.Fatal("leaf served bytes that do not match the signed entry")
	}
	if s := leaf.Stats(); s.DiffPulls != 1 || s.DiffBytesReused == 0 {
		t.Fatalf("leaf did not pull differentially through the chain: %+v", s)
	}
	if s := mid.Stats(); s.DiffPulls != 1 {
		t.Fatalf("mid did not pull differentially from the origin: %+v", s)
	}
}

// TestFailoverClientDifferentialFetch: with a PkgCache, the failover
// client short-circuits repeat fetches from the verified cache and
// pulls version bumps differentially from whichever endpoint serves it.
func TestFailoverClientDifferentialFetch(t *testing.T) {
	w := newEdgeWorld(t)
	w.publish(t, bigEdgePkg("bigapp", "1.0-r0", 16, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Europe, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	c := newClient(w, Endpoint{Name: "edge-eu", Continent: netsim.Europe, Fetcher: rep})
	c.PkgCache = store.NewMem()

	cold, err := c.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	// Repeat fetch: served from the verified local cache, zero network.
	again, err := c.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, cold) {
		t.Fatal("cache hit returned different bytes")
	}
	if s := c.Stats(); s.CacheHits != 1 || s.DiffFetches != 0 {
		t.Fatalf("after cache hit: %+v", s)
	}

	w.publish(t, bigEdgePkg("bigapp", "2.0-r0", 16, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchIndex(); err != nil {
		t.Fatal(err)
	}
	warm, err := c.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	entry := entryOf(t, rep, "bigapp")
	if int64(len(warm)) != entry.Size || sha256.Sum256(warm) != entry.Hash {
		t.Fatal("differential fetch returned bytes that do not match the signed entry")
	}
	if s := c.Stats(); s.DiffFetches != 1 || s.DiffFallbacks != 0 {
		t.Fatalf("version bump did not fetch differentially: %+v", s)
	}
}

// --- handler wire parity with the origin -------------------------------

func edgeServer(t *testing.T, rep *Replica) (*httptest.Server, *http.Client) {
	t.Helper()
	srv := httptest.NewServer(Handler(map[string]*Replica{"r": rep}, "wire-edge"))
	t.Cleanup(srv.Close)
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	return srv, client
}

func get(t *testing.T, client *http.Client, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestEdgeIndexGzipIsTransferEncodingOnly: the edge negotiates gzip on
// the index exactly like the origin — signature headers and ETag are
// those of the canonical signed text, and the gzip body decompresses to
// it byte-for-byte.
func TestEdgeIndexGzipIsTransferEncodingOnly(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	signed, _, err := rep.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	srv, client := edgeServer(t, rep)

	plain := get(t, client, srv.URL+"/repos/r/index", nil)
	zipped := get(t, client, srv.URL+"/repos/r/index", map[string]string{"Accept-Encoding": "gzip"})
	plainBody := body(t, plain)
	zippedBody := body(t, zipped)

	for _, h := range []string{"ETag", headerKeyName, headerSignature} {
		if plain.Header.Get(h) != zipped.Header.Get(h) {
			t.Fatalf("%s differs between identity and gzip responses", h)
		}
	}
	if !bytes.Equal(plainBody, signed.Raw) {
		t.Fatal("identity body is not the canonical signed text")
	}
	if zipped.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", zipped.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(zippedBody))
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, signed.Raw) {
		t.Fatal("gzip body does not decompress to the canonical signed text")
	}
	if len(zippedBody) >= len(plainBody) {
		t.Fatalf("gzip body (%d) not smaller than identity (%d)", len(zippedBody), len(plainBody))
	}
}

// TestEdgeChunksEndpointAndRange exercises the edge's differential
// serving surface over HTTP: the chunk manifest roots in the signed
// entry, 304 revalidation works, and Range requests produce 206s that
// carry the full representation's strong ETag.
func TestEdgeChunksEndpointAndRange(t *testing.T) {
	w := newEdgeWorld(t)
	w.publish(t, bigEdgePkg("bigapp", "1.0-r0", 8, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	entry := entryOf(t, rep, "bigapp")
	etag := entry.ETag()
	srv, client := edgeServer(t, rep)

	resp := get(t, client, srv.URL+"/repos/r/packages/bigapp/chunks", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunks: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("chunks ETag = %s, want the package entry's %s", got, etag)
	}
	name, m, err := tsr.DecodeChunkManifest(body(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	if name != "bigapp" {
		t.Fatalf("manifest names %q", name)
	}
	if m.PackageHash != entry.Hash || m.TotalSize != entry.Size {
		t.Fatal("manifest root does not match the signed entry")
	}

	// Revalidation.
	resp = get(t, client, srv.URL+"/repos/r/packages/bigapp/chunks", map[string]string{"If-None-Match": etag})
	body(t, resp)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("chunks revalidation: HTTP %d, want 304", resp.StatusCode)
	}

	// If-None-Match precedence over Range on the package itself.
	resp = get(t, client, srv.URL+"/repos/r/packages/bigapp", map[string]string{
		"If-None-Match": etag, "Range": "bytes=0-99",
	})
	body(t, resp)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match + Range: HTTP %d, want 304", resp.StatusCode)
	}

	// A plain Range request slices verified bytes under the full ETag.
	full, err := rep.FetchPackage("bigapp")
	if err != nil {
		t.Fatal(err)
	}
	resp = get(t, client, srv.URL+"/repos/r/packages/bigapp", map[string]string{"Range": "bytes=100-299"})
	part := body(t, resp)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("Range: HTTP %d, want 206", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Content-Range"), fmt.Sprintf("bytes 100-299/%d", entry.Size); got != want {
		t.Fatalf("Content-Range = %q, want %q", got, want)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("206 ETag = %s, want the full representation's %s", got, etag)
	}
	if !bytes.Equal(part, full[100:300]) {
		t.Fatal("206 body is not the requested slice of the verified bytes")
	}
}

// TestEdgeStreamedServe: a warm full-body GET streams off the cache
// through hash-as-you-copy verification instead of buffering, and the
// delivered bytes hash to the advertised ETag.
func TestEdgeStreamedServe(t *testing.T) {
	w := newEdgeWorld(t)
	w.publish(t, bigEdgePkg("bigapp", "1.0-r0", 8, 32<<10))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	if _, err := rep.FetchPackage("bigapp"); err != nil {
		t.Fatal(err)
	}
	srv, client := edgeServer(t, rep)

	resp := get(t, client, srv.URL+"/repos/r/packages/bigapp", nil)
	raw := body(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	sum := sha256.Sum256(raw)
	if got, want := resp.Header.Get("ETag"), `"`+hex.EncodeToString(sum[:])+`"`; got != want {
		t.Fatalf("ETag %s does not match the streamed body hash %s", got, want)
	}
	if s := rep.Stats(); s.StreamedServes != 1 {
		t.Fatalf("StreamedServes = %d, want 1 (stats %+v)", s.StreamedServes, s)
	}
}

// TestCorruptReplicaRefusesManifest: a misbehaving replica would build
// its manifest over corrupted bytes; the replica refuses to serve such
// a manifest (it would only mislead downstreams into useless range
// fetches), so downstream diff attempts fall back to a full fetch —
// which end-to-end verification then rejects.
func TestCorruptReplicaRefusesManifest(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	rep.SetBehavior(Corrupt)
	if _, err := rep.FetchChunkManifest("app"); err == nil {
		t.Fatal("corrupt replica served a chunk manifest over corrupted bytes")
	}
	srv, client := edgeServer(t, rep)
	resp := get(t, client, srv.URL+"/repos/r/packages/app/chunks", nil)
	body(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("chunks from a corrupt replica: HTTP %d, want 502", resp.StatusCode)
	}
}
