package edge

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tsr/internal/index"
)

// gatedOrigin wraps an Origin and parks FetchPackage / FetchIndexDelta
// calls on a gate until released, holding the coalescing window open
// deterministically: with the leader blocked, every other requester is
// scheduled into the singleflight before the upstream call completes —
// even on one CPU.
type gatedOrigin struct {
	Origin
	pkgGate   chan struct{}
	pkgHit    chan struct{}
	pkgOnce   sync.Once
	deltaGate chan struct{}
	deltaHit  chan struct{}
	deltaOnce sync.Once
}

func (g *gatedOrigin) FetchPackage(name string) ([]byte, error) {
	if g.pkgGate != nil {
		g.pkgOnce.Do(func() { close(g.pkgHit) })
		<-g.pkgGate
	}
	return g.Origin.FetchPackage(name)
}

func (g *gatedOrigin) FetchIndexDelta(since string) (*index.Delta, error) {
	if g.deltaGate != nil {
		g.deltaOnce.Do(func() { close(g.deltaHit) })
		<-g.deltaGate
	}
	return g.Origin.FetchIndexDelta(since)
}

// countPulls counts origin package pulls and delta fetches.
type countPulls struct {
	Origin
	mu            sync.Mutex
	pulls, deltas int
}

func (c *countPulls) FetchPackage(name string) ([]byte, error) {
	c.mu.Lock()
	c.pulls++
	c.mu.Unlock()
	return c.Origin.FetchPackage(name)
}

func (c *countPulls) FetchIndexDelta(since string) (*index.Delta, error) {
	c.mu.Lock()
	c.deltas++
	c.mu.Unlock()
	return c.Origin.FetchIndexDelta(since)
}

// TestFlashCrowdCoalescesOriginPulls is the flash-crowd acceptance
// test: K concurrent cold misses for the same package must reach the
// origin exactly once, with every requester receiving the verified
// bytes. Run under -race it also proves the shared-bytes path is safe.
func TestFlashCrowdCoalescesOriginPulls(t *testing.T) {
	w := newEdgeWorld(t)
	const k = 32
	counted := &countPulls{Origin: w.tenant}
	gated := &gatedOrigin{
		Origin:  counted,
		pkgGate: make(chan struct{}), pkgHit: make(chan struct{}),
	}
	rep := &Replica{RepoID: "r", Origin: gated, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	// Hold the leader's pull open until the whole crowd has arrived.
	go func() {
		<-gated.pkgHit
		time.Sleep(50 * time.Millisecond)
		close(gated.pkgGate)
	}()

	var wg sync.WaitGroup
	gate := make(chan struct{})
	results := make([][]byte, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i], errs[i] = rep.FetchPackage("app")
		}(i)
	}
	close(gate)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("requester %d: %v", i, errs[i])
		}
	}
	for i := 1; i < k; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("requester %d got different bytes than requester 0", i)
		}
	}
	if counted.pulls != 1 {
		t.Fatalf("%d origin pulls for %d concurrent cold misses, want exactly 1", counted.pulls, k)
	}
	s := rep.Stats()
	if s.OriginPackages != 1 {
		t.Fatalf("OriginPackages = %d, want 1", s.OriginPackages)
	}
	if s.PackageReads != k {
		t.Fatalf("PackageReads = %d, want %d", s.PackageReads, k)
	}
	if s.CoalescedPulls != k-1 {
		t.Fatalf("CoalescedPulls = %d, want %d", s.CoalescedPulls, k-1)
	}
}

// TestSyncStormCoalesces verifies a POST /sync storm collapses into
// one origin round trip: K concurrent Sync calls against a one-behind
// replica perform exactly one delta fetch.
func TestSyncStormCoalesces(t *testing.T) {
	w := newEdgeWorld(t)
	counted := &countPulls{Origin: w.tenant}
	gated := &gatedOrigin{
		Origin:    counted,
		deltaGate: make(chan struct{}), deltaHit: make(chan struct{}),
	}
	rep := &Replica{RepoID: "r", Origin: gated, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	w.update(t, "app", "1.1-r0")

	go func() {
		<-gated.deltaHit
		time.Sleep(50 * time.Millisecond)
		close(gated.deltaGate)
	}()

	const k = 16
	var wg sync.WaitGroup
	gate := make(chan struct{})
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			errs[i] = rep.Sync()
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if counted.deltas != 1 {
		t.Fatalf("%d origin delta fetches for %d concurrent syncs, want exactly 1", counted.deltas, k)
	}
	if s := rep.Stats(); s.CoalescedSyncs != k-1 {
		t.Fatalf("CoalescedSyncs = %d, want %d", s.CoalescedSyncs, k-1)
	}
	// The storm landed the replica on the new generation.
	signed := mustSigned(t, rep)
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Lookup("app"); err != nil {
		t.Fatal(err)
	}
}

// scriptedOrigin serves a switchable signed index and fixed package
// bytes, with a gate on FetchPackage — the instrument for forcing a
// sync to publish between the handler's entry resolution and the
// origin pull's return.
type scriptedOrigin struct {
	mu     sync.Mutex
	signed *index.Signed
	etag   string
	pkgs   map[string][]byte
	gate   chan struct{}
	hit    chan struct{}
	once   sync.Once
}

func (o *scriptedOrigin) setIndex(signed *index.Signed, etag string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.signed, o.etag = signed, etag
}

func (o *scriptedOrigin) FetchIndexTagged() (*index.Signed, string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.signed.Clone(), o.etag, nil
}

func (o *scriptedOrigin) FetchIndexDelta(string) (*index.Delta, error) {
	return nil, index.ErrNoDelta // force full syncs; delta is not under test
}

func (o *scriptedOrigin) FetchPackage(name string) ([]byte, error) {
	if o.gate != nil {
		o.once.Do(func() { close(o.hit) })
		<-o.gate
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	raw, ok := o.pkgs[name]
	if !ok {
		return nil, errors.New("scripted origin: no such package")
	}
	return append([]byte(nil), raw...), nil
}

// TestPackageETagMatchesBodyAcrossSyncPublish pins the ETag/body
// agreement the handler must uphold: a sync that publishes a new
// generation between the handler's fetch and its header write must NOT
// produce a response pairing the old generation's bytes with the new
// generation's ETag. The handler resolves the index entry once and
// derives conditional check, fetch, and headers from it, so the served
// pair is always self-consistent.
func TestPackageETagMatchesBodyAcrossSyncPublish(t *testing.T) {
	w := newEdgeWorld(t)

	// Capture generation 1 (app 1.0) and generation 2 (app 2.0).
	signed1, etag1, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	app1, err := w.tenant.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	w.update(t, "app", "2.0-r0")
	signed2, etag2, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}

	origin := &scriptedOrigin{
		pkgs: map[string][]byte{"app": app1}, // origin still returns gen-1 bytes
		gate: make(chan struct{}),
		hit:  make(chan struct{}),
	}
	origin.setIndex(signed1, etag1)
	rep := &Replica{RepoID: "r", Origin: origin, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	handler := Handler(map[string]*Replica{"r": rep}, "race-edge")
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/repos/r/packages/app", nil))
	}()

	// The handler is now parked inside the origin pull. Publish
	// generation 2 on the replica, then let the pull return gen-1
	// bytes.
	<-origin.hit
	origin.setIndex(signed2, etag2)
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rep.ETag(); got != etag2 {
		t.Fatalf("replica etag = %s, want gen-2 %s", got, etag2)
	}
	close(origin.gate)
	<-done

	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.Bytes()
	sum := sha256.Sum256(body)
	wantETag := `"` + hex.EncodeToString(sum[:]) + `"`
	if got := rec.Header().Get("ETag"); got != wantETag {
		t.Fatalf("ETag %s does not match the served body (hash %s): the handler paired one generation's headers with another's bytes", got, wantETag)
	}
	if !bytes.Equal(body, app1) {
		t.Fatalf("served bytes are not the gen-1 package the origin returned")
	}
}

// TestPackageRangeETagMatchesBodyAcrossSyncPublish extends the race
// pin above to Range serving: a 206 produced while a sync publishes a
// new generation must still pair the slice, the Content-Range, and the
// strong ETag from ONE resolution — the ETag is the hash of the full
// representation the slice was cut from, never the new generation's.
func TestPackageRangeETagMatchesBodyAcrossSyncPublish(t *testing.T) {
	w := newEdgeWorld(t)

	signed1, etag1, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	app1, err := w.tenant.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	w.update(t, "app", "2.0-r0")
	signed2, etag2, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}

	origin := &scriptedOrigin{
		pkgs: map[string][]byte{"app": app1},
		gate: make(chan struct{}),
		hit:  make(chan struct{}),
	}
	origin.setIndex(signed1, etag1)
	rep := &Replica{RepoID: "r", Origin: origin, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	handler := Handler(map[string]*Replica{"r": rep}, "race-edge")
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/repos/r/packages/app", nil)
	req.Header.Set("Range", "bytes=2-9")
	done := make(chan struct{})
	go func() {
		defer close(done)
		handler.ServeHTTP(rec, req)
	}()

	<-origin.hit
	origin.setIndex(signed2, etag2)
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	close(origin.gate)
	<-done

	if rec.Code != http.StatusPartialContent {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	sum := sha256.Sum256(app1)
	wantETag := `"` + hex.EncodeToString(sum[:]) + `"`
	if got := rec.Header().Get("ETag"); got != wantETag {
		t.Fatalf("206 ETag %s is not the full gen-1 representation's %s: headers and slice come from different generations", got, wantETag)
	}
	wantCR := fmt.Sprintf("bytes 2-9/%d", len(app1))
	if got := rec.Header().Get("Content-Range"); got != wantCR {
		t.Fatalf("Content-Range = %q, want %q", got, wantCR)
	}
	if !bytes.Equal(rec.Body.Bytes(), app1[2:10]) {
		t.Fatal("206 body is not the requested slice of the gen-1 bytes")
	}
}

// erroringOrigin fails every call with a fixed error.
type erroringOrigin struct{ err error }

func (o erroringOrigin) FetchIndexTagged() (*index.Signed, string, error) { return nil, "", o.err }
func (o erroringOrigin) FetchIndexDelta(string) (*index.Delta, error)     { return nil, o.err }
func (o erroringOrigin) FetchPackage(string) ([]byte, error)              { return nil, o.err }

// TestSyncErrorStatusMapping verifies POST /sync maps failures through
// statusFor: availability conditions (offline/not-synced upstream) are
// 503, only genuine upstream protocol failures remain 502.
func TestSyncErrorStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"offline upstream", ErrOffline, http.StatusServiceUnavailable},
		{"unsynced upstream", ErrNotSynced, http.StatusServiceUnavailable},
		{"origin protocol failure", errors.New("upstream exploded"), http.StatusBadGateway},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := &Replica{RepoID: "r", Origin: erroringOrigin{err: tc.err}}
			handler := Handler(map[string]*Replica{"r": rep}, "edge")
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/repos/r/sync", nil))
			if rec.Code != tc.want {
				t.Fatalf("POST /sync with %v: HTTP %d, want %d", tc.err, rec.Code, tc.want)
			}
		})
	}
}
