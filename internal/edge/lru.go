package edge

import "container/list"

// byteLRU is a byte-budgeted LRU of package blobs. Entries are keyed by
// content hash, so a changed package naturally occupies a new slot and
// the old generation ages out; prune drops generations the current
// index no longer references at sync time.
type byteLRU struct {
	budget    int64
	bytes     int64
	evictions int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
}

type lruEntry struct {
	key string
	raw []byte
}

func newByteLRU(budget int64) *byteLRU {
	return &byteLRU{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the blob and marks it most recently used.
func (c *byteLRU) get(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).raw, true
}

// put inserts or refreshes a blob, then evicts from the cold end until
// the budget holds. A blob larger than the whole budget is not cached.
func (c *byteLRU) put(key string, raw []byte) {
	if int64(len(raw)) > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		c.bytes += int64(len(raw)) - int64(len(el.Value.(*lruEntry).raw))
		el.Value.(*lruEntry).raw = raw
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, raw: raw})
		c.bytes += int64(len(raw))
	}
	for c.bytes > c.budget {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		c.removeElement(cold)
		c.evictions++
	}
}

// remove drops one entry.
func (c *byteLRU) remove(key string) {
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

// prune drops every entry whose key is not in keep.
func (c *byteLRU) prune(keep map[string]struct{}) {
	var drop []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if _, ok := keep[el.Value.(*lruEntry).key]; !ok {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		c.removeElement(el)
	}
}

func (c *byteLRU) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.raw))
}
