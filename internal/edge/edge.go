// Package edge implements the untrusted edge replication tier in front
// of a TSR origin. The TSR design makes trust travel with the data: the
// metadata index is signed inside the origin's enclave and every
// package is content-addressed by that index, so *any* host can serve
// them and be verified end-to-end by the client — exactly like the
// byzantine upstream mirrors the paper models (§3.1). An edge replica
// therefore needs no enclave, no keys, and no trust: it syncs the
// published snapshot from the origin (delta syncs keyed by the index
// ETag, falling back to full fetches), keeps a bounded pull-through
// package cache, and re-exposes the origin's signature headers
// verbatim. It never re-signs anything — a tampering or stale replica
// is detected client-side, and the multi-endpoint FailoverClient
// (client.go) routes around it.
package edge

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"tsr/internal/flight"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/store"
	"tsr/internal/trace"
)

// Error sentinels.
var (
	// ErrNotSynced: the replica has not completed a sync yet.
	ErrNotSynced = errors.New("edge: replica not synced yet")
	// ErrOffline: the replica is simulated as down.
	ErrOffline = errors.New("edge: replica offline")
	// ErrNoState: LoadState found no persisted index in the store.
	ErrNoState = errors.New("edge: no persisted index state")
)

// Origin is the upstream a replica syncs from: a *tsr.Repo (in-process
// deployments, experiments) or a *tsr.Client (the tsredge daemon
// replicating over HTTP) — both satisfy it.
type Origin interface {
	FetchIndexTagged() (*index.Signed, string, error)
	FetchIndexDelta(sinceETag string) (*index.Delta, error)
	FetchPackage(name string) ([]byte, error)
}

// The trace context travels through an Origin or Fetcher by optional
// interface upgrade: when the concrete value has the matching *Ctx
// method (*tsr.Repo, *tsr.Client, and *Replica itself all do) the call
// goes through it, so one trace stitches client -> edge -> chained
// edge -> origin; otherwise the plain method runs and the trace simply
// ends at that hop. Keeping the Origin and Fetcher interfaces
// themselves context-free preserves every existing implementation
// (test doubles included). The parameter types are the minimal
// single-method interfaces, so both Origin and Fetcher values fit.
func originFetchIndexTagged(ctx context.Context, o interface {
	FetchIndexTagged() (*index.Signed, string, error)
}) (*index.Signed, string, error) {
	if c, ok := o.(interface {
		FetchIndexTaggedCtx(context.Context) (*index.Signed, string, error)
	}); ok {
		return c.FetchIndexTaggedCtx(ctx)
	}
	return o.FetchIndexTagged()
}

func originFetchIndexDelta(ctx context.Context, o interface {
	FetchIndexDelta(sinceETag string) (*index.Delta, error)
}, sinceETag string) (*index.Delta, error) {
	if c, ok := o.(interface {
		FetchIndexDeltaCtx(context.Context, string) (*index.Delta, error)
	}); ok {
		return c.FetchIndexDeltaCtx(ctx, sinceETag)
	}
	return o.FetchIndexDelta(sinceETag)
}

func originFetchPackage(ctx context.Context, o interface {
	FetchPackage(name string) ([]byte, error)
}, name string) ([]byte, error) {
	if c, ok := o.(interface {
		FetchPackageCtx(context.Context, string) ([]byte, error)
	}); ok {
		return c.FetchPackageCtx(ctx, name)
	}
	return o.FetchPackage(name)
}

// Behavior selects how a replica (mis)behaves — the same adversary
// classes the mirror model exposes, because an edge replica is exactly
// as untrusted as a mirror.
type Behavior int

const (
	// Honest replicas sync and serve faithfully.
	Honest Behavior = iota
	// Freeze replicas stop syncing and replay their current (validly
	// signed, increasingly stale) snapshot forever.
	Freeze
	// Corrupt replicas serve the current index but flip bits in
	// package bodies.
	Corrupt
	// Offline replicas fail every request.
	Offline
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Freeze:
		return "freeze"
	case Corrupt:
		return "corrupt"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// DefaultCacheBudget bounds the pull-through package cache when the
// replica does not set one.
const DefaultCacheBudget = 64 << 20

// Replica is one edge replica of a single TSR tenant repository.
type Replica struct {
	// RepoID is the tenant repository this replica serves.
	RepoID string
	// Origin is the upstream to sync from.
	Origin Origin
	// Continent locates the replica for the latency model.
	Continent netsim.Continent
	// TrustRing optionally holds the origin repository's public signing
	// key. A replica that has it self-verifies every synced index — a
	// broken origin (or a middlebox) is then detected at sync time
	// instead of at the clients. The replica works without it: clients
	// verify end-to-end regardless.
	TrustRing *keys.Ring
	// CacheBudget bounds the package cache in bytes (default
	// DefaultCacheBudget). Only consulted when Cache is nil.
	CacheBudget int64
	// Cache is the replica's blob store — the shared content-addressed
	// abstraction of internal/store. Nil defaults to a byte-budgeted
	// in-memory store. Give it a disk store (store.OpenFS, the tsredge
	// -data-dir flag) and the package cache survives restarts: cached
	// bytes are hash-verified against the signed index before every
	// serve, so stale or tampered disk degrades to a pull-through miss,
	// exactly like the in-memory case.
	Cache store.Store
	// PersistIndex additionally journals the last-synced signed index
	// into Cache on every publish; LoadState restores it on boot so a
	// restarted replica serves immediately and resumes DELTA sync
	// instead of re-fetching the full index.
	PersistIndex bool

	// syncMu serializes syncs. It is NEVER held while serving: the
	// origin round trips a sync performs happen under syncMu alone, so
	// a slow origin cannot block package requests.
	syncMu sync.Mutex
	// cacheOnce guards the lazy default for Cache.
	cacheOnce sync.Once

	// pulls coalesces concurrent origin pulls for the same content
	// hash: a flash crowd of N cold misses for one package costs ONE
	// FetchPackage against the origin, and the N-1 followers share the
	// verified bytes. syncs does the same for Sync storms (a burst of
	// POST /sync collapses into one delta fetch).
	pulls flight.Group[[]byte]
	syncs flight.Group[struct{}]

	// served is the replica's published read state, swapped atomically
	// like the origin's snapshot: reads never wait on a running sync.
	served   atomic.Pointer[replicaState]
	behavior atomic.Int32
	stats    replicaCounters

	// manifests memoizes chunk manifests per content hash (see
	// chunkManifest in wire.go).
	manifestMu sync.Mutex
	manifests  map[[32]byte]*store.ChunkManifest
}

// replicaState is the immutable published state of a replica.
type replicaState struct {
	signed *index.Signed
	etag   string
	ix     *index.Index
	// history retains the most recent published generations (this one
	// last), so the replica can serve GET /index/delta to downstream
	// replicas and clients exactly like the origin does — the same
	// index.AppendGeneration machinery and index.HistoryWindow the
	// origin uses, so the two delta windows cannot drift apart.
	history []index.Generation
}

// replicaCounters are the cumulative counters behind Stats.
type replicaCounters struct {
	syncs, deltaSyncs, fullSyncs, noopSyncs, fullFallbacks atomic.Int64
	indexReads, packageReads, packageHits                  atomic.Int64
	originPackages, notModified                            atomic.Int64
	coalescedPulls, coalescedSyncs, deltaReads             atomic.Int64
	// Wire efficiency: differential pull-throughs, their byte ledger,
	// and packages served streaming off the cache.
	diffPulls, diffFallbacks          atomic.Int64
	diffBytesReused, diffBytesFetched atomic.Int64
	streamedServes                    atomic.Int64
}

// Stats is a point-in-time snapshot of a replica's counters.
type Stats struct {
	// Sync tier.
	Syncs         int64 `json:"syncs"`          // Sync calls that contacted the origin
	DeltaSyncs    int64 `json:"delta_syncs"`    // syncs answered by an applied delta
	FullSyncs     int64 `json:"full_syncs"`     // syncs that transferred the full index
	NoopSyncs     int64 `json:"noop_syncs"`     // syncs finding the replica current
	FullFallbacks int64 `json:"full_fallbacks"` // delta attempts that fell back to full fetch
	// Serving tier.
	IndexReads     int64 `json:"index_reads"`
	PackageReads   int64 `json:"package_reads"`
	PackageHits    int64 `json:"package_hits"`    // served from the local cache
	OriginPackages int64 `json:"origin_packages"` // pull-through misses forwarded to the origin
	NotModified    int64 `json:"not_modified"`
	// Coalescing tier: requests that shared another request's work
	// instead of duplicating it (a flash crowd of N cold misses costs
	// 1 origin pull + N-1 coalesced pulls).
	CoalescedPulls int64 `json:"coalesced_pulls"`
	CoalescedSyncs int64 `json:"coalesced_syncs"`
	// DeltaReads counts index-delta requests this replica answered for
	// downstream replicas/clients.
	DeltaReads int64 `json:"delta_reads"`
	// Wire-efficiency tier: pull-through misses satisfied differentially
	// (only changed chunks fetched from the origin), failed differential
	// attempts that degraded to a full fetch, the byte ledger of the
	// differential path, and packages served streaming off the cache
	// instead of buffered whole.
	DiffPulls        int64 `json:"diff_pulls"`
	DiffFallbacks    int64 `json:"diff_fallbacks"`
	DiffBytesReused  int64 `json:"diff_bytes_reused"`
	DiffBytesFetched int64 `json:"diff_bytes_fetched"`
	StreamedServes   int64 `json:"streamed_serves"`
	// Cache occupancy.
	CacheBytes   int64 `json:"cache_bytes"`
	CacheEntries int   `json:"cache_entries"`
	Evictions    int64 `json:"evictions"`
	// Published generation.
	Sequence uint64 `json:"sequence"`
	ETag     string `json:"etag"`
}

// SetBehavior switches the replica's behavior.
func (rep *Replica) SetBehavior(b Behavior) { rep.behavior.Store(int32(b)) }

// Behavior returns the current behavior.
func (rep *Replica) Behavior() Behavior { return Behavior(rep.behavior.Load()) }

// Stats returns the cumulative counters.
func (rep *Replica) Stats() Stats {
	s := Stats{
		Syncs:          rep.stats.syncs.Load(),
		DeltaSyncs:     rep.stats.deltaSyncs.Load(),
		FullSyncs:      rep.stats.fullSyncs.Load(),
		NoopSyncs:      rep.stats.noopSyncs.Load(),
		FullFallbacks:  rep.stats.fullFallbacks.Load(),
		IndexReads:     rep.stats.indexReads.Load(),
		PackageReads:   rep.stats.packageReads.Load(),
		PackageHits:    rep.stats.packageHits.Load(),
		OriginPackages: rep.stats.originPackages.Load(),
		NotModified:    rep.stats.notModified.Load(),
		CoalescedPulls: rep.stats.coalescedPulls.Load(),
		CoalescedSyncs: rep.stats.coalescedSyncs.Load(),
		DeltaReads:     rep.stats.deltaReads.Load(),

		DiffPulls:        rep.stats.diffPulls.Load(),
		DiffFallbacks:    rep.stats.diffFallbacks.Load(),
		DiffBytesReused:  rep.stats.diffBytesReused.Load(),
		DiffBytesFetched: rep.stats.diffBytesFetched.Load(),
		StreamedServes:   rep.stats.streamedServes.Load(),
	}
	if mon, ok := rep.store().(store.Monitored); ok {
		cs := mon.Stats()
		s.CacheBytes = cs.Bytes
		s.CacheEntries = cs.Entries
		s.Evictions = cs.Evictions
	}
	if st := rep.served.Load(); st != nil {
		s.Sequence = st.ix.Sequence
		s.ETag = st.etag
	}
	return s
}

// Sync brings the replica up to date with its origin: the full signed
// index on first contact, then deltas keyed by the current ETag. Every
// path self-verifies — an applied delta must reproduce the advertised
// signed index byte-for-byte (index.Delta.Apply checks the ETag), the
// sequence must not regress, and the signature is checked when the
// replica carries the origin's public key. Any delta failure falls back
// to a full fetch; a Freeze replica returns immediately and keeps
// replaying its pinned state.
//
// Concurrent Sync calls coalesce: callers arriving while a sync is in
// flight wait for it and share its result instead of queueing another
// origin round trip — a POST /sync storm (every client of a stale edge
// poking it at once) collapses into one delta fetch.
func (rep *Replica) Sync() error {
	return rep.SyncCtx(context.Background())
}

// SyncCtx is Sync under a caller context: the sync runs as an
// "edge.sync" span whose children are the origin round trips, and a
// coalesced caller links its span to the leader's instead of
// pretending it contacted the origin itself.
func (rep *Replica) SyncCtx(ctx context.Context) (err error) {
	if rep.Behavior() == Freeze {
		return nil
	}
	ctx, sp := trace.Start(ctx, "edge.sync")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("edge")
	_, leaderCtx, leader, err := rep.syncs.DoCtx(ctx, "sync", func(ctx context.Context) (struct{}, error) {
		return struct{}{}, rep.syncOnce(ctx)
	})
	if !leader {
		rep.stats.coalescedSyncs.Add(1)
		sp.LinkCoalesced(trace.SpanFromContext(leaderCtx))
	}
	return err
}

// syncOnce performs one origin sync (the leader's side of Sync).
func (rep *Replica) syncOnce(ctx context.Context) error {
	rep.syncMu.Lock()
	defer rep.syncMu.Unlock()
	cur := rep.served.Load()
	rep.stats.syncs.Add(1)
	if cur == nil {
		return rep.fullSync(ctx, nil)
	}
	d, err := originFetchIndexDelta(ctx, rep.Origin, cur.etag)
	if errors.Is(err, index.ErrDeltaUnchanged) {
		rep.stats.noopSyncs.Add(1)
		return nil
	}
	if err == nil {
		var signed *index.Signed
		var ix *index.Index
		if signed, ix, err = d.Apply(cur.ix); err == nil {
			if ix.Sequence < cur.ix.Sequence {
				err = fmt.Errorf("edge: delta regressed sequence %d -> %d", cur.ix.Sequence, ix.Sequence)
			} else if err = rep.selfVerify(signed); err == nil {
				rep.stats.deltaSyncs.Add(1)
				rep.publish(signed, ix)
				return nil
			}
		}
	}
	// Delta unavailable (base older than the origin's retained
	// history), corrupt, or failed self-verification: full fetch.
	rep.stats.fullFallbacks.Add(1)
	return rep.fullSync(ctx, cur)
}

// fullSync fetches and publishes the complete signed index. Caller
// holds syncMu (not mu).
func (rep *Replica) fullSync(ctx context.Context, cur *replicaState) error {
	signed, _, err := originFetchIndexTagged(ctx, rep.Origin)
	if err != nil {
		return fmt.Errorf("edge: sync: %w", err)
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return fmt.Errorf("edge: sync: %w", err)
	}
	if cur != nil && ix.Sequence < cur.ix.Sequence {
		return fmt.Errorf("edge: origin served sequence %d < replica's %d (origin replay?)", ix.Sequence, cur.ix.Sequence)
	}
	if err := rep.selfVerify(signed); err != nil {
		return fmt.Errorf("edge: sync: %w", err)
	}
	rep.stats.fullSyncs.Add(1)
	rep.publish(signed, ix)
	return nil
}

// selfVerify checks the origin signature when a trust ring is present.
func (rep *Replica) selfVerify(signed *index.Signed) error {
	if rep.TrustRing == nil {
		return nil
	}
	return signed.VerifySignature(rep.TrustRing)
}

// publish swaps in the new state, prunes cached packages the new index
// no longer references, and (under PersistIndex) journals the signed
// index so a restart resumes from this generation. Caller holds syncMu.
func (rep *Replica) publish(signed *index.Signed, ix *index.Index) {
	// The locally computed ETag is by construction what the origin
	// serves for this generation (the digest of the signed form), so
	// delta syncs and client If-None-Match revalidation agree on it.
	etag := signed.ETag()
	// Carry the generation history forward (copy-on-write, capped), so
	// this replica can answer delta requests from downstreams exactly
	// like the origin. Republishing the current generation (LoadState
	// racing a sync) does not duplicate it.
	var hist []index.Generation
	if cur := rep.served.Load(); cur != nil {
		hist = cur.history
	}
	hist = index.AppendGeneration(hist, etag, ix)
	rep.served.Store(&replicaState{signed: signed, etag: etag, ix: ix, history: hist})
	st := rep.store()
	if it, ok := st.(store.Iterable); ok {
		// The keep-set spans every retained generation, not just the new
		// index: bytes of a just-superseded version are the diff bases a
		// differential pull-through reassembles the new version from
		// (previousCached), so pruning them on publish would forfeit
		// exactly the transfer the chunked sync saves. They age out when
		// their generation leaves the delta window (or by LRU budget).
		keep := make(map[string]struct{}, len(ix.Entries))
		for _, gen := range hist {
			for _, e := range gen.Index.Entries {
				keep[cacheKey(e.Hash)] = struct{}{}
			}
		}
		var stale []string
		_ = it.Iterate(func(info store.Info) bool {
			if strings.HasPrefix(info.Key, pkgKeyPrefix) {
				if _, ok := keep[info.Key]; !ok {
					stale = append(stale, info.Key)
				}
			}
			return true
		})
		for _, key := range stale {
			_ = st.Delete(key)
		}
	}
	if rep.PersistIndex {
		// Best-effort: a failed journal write costs a full re-fetch on
		// the next restart, nothing else.
		_ = st.Put(replicaStateKey, encodeReplicaState(signed))
	}
}

// Store keys: packages are content-addressed under pkg/, and the
// journaled last-synced index lives under meta/ (pinned — never
// evicted by the package cache's byte budget).
const (
	pkgKeyPrefix    = "pkg/"
	metaKeyPrefix   = "meta/"
	replicaStateKey = metaKeyPrefix + "index"
)

// StateKey is the store key of the journaled last-synced signed index
// (see PersistIndex). Exported so harnesses that simulate crash,
// restart, and rollback of an edge data dir can capture and replay the
// journal without duplicating the key string.
const StateKey = replicaStateKey

// cacheKey addresses a cached package purely by content.
func cacheKey(hash [32]byte) string { return pkgKeyPrefix + hex.EncodeToString(hash[:]) }

// encodeReplicaState frames a signed index for the journal entry.
func encodeReplicaState(signed *index.Signed) []byte {
	var buf bytes.Buffer
	store.WriteChunk(&buf, []byte(signed.KeyName))
	store.WriteChunk(&buf, signed.Sig)
	store.WriteChunk(&buf, signed.Raw)
	return buf.Bytes()
}

// decodeReplicaState parses a journal entry back into a signed index.
func decodeReplicaState(raw []byte) (*index.Signed, error) {
	buf := bytes.NewReader(raw)
	var chunks [][]byte
	for i := 0; i < 3; i++ {
		chunk, err := store.ReadChunk(buf)
		if err != nil {
			return nil, fmt.Errorf("edge: persisted index state: %w", err)
		}
		chunks = append(chunks, chunk)
	}
	return &index.Signed{KeyName: string(chunks[0]), Sig: chunks[1], Raw: chunks[2]}, nil
}

// LoadState restores the replica's last-synced signed index from its
// store (journaled under PersistIndex), so a restarted tsredge serves
// immediately and its next Sync resumes with a delta from the restored
// generation instead of a full index fetch. The loaded bytes are as
// untrusted as the rest of the store: they must decode, they must pass
// the optional TrustRing self-check, and clients verify end-to-end
// regardless. A rolled-back edge data dir simply restores an older
// generation — the next delta sync moves it forward, and the
// FailoverClient's sequence floor protects clients meanwhile.
func (rep *Replica) LoadState() error {
	raw, err := rep.store().Get(replicaStateKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoState, err)
	}
	signed, err := decodeReplicaState(raw)
	if err != nil {
		return err
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return fmt.Errorf("edge: persisted index state: %w", err)
	}
	if err := rep.selfVerify(signed); err != nil {
		return fmt.Errorf("edge: persisted index state: %w", err)
	}
	rep.syncMu.Lock()
	defer rep.syncMu.Unlock()
	if cur := rep.served.Load(); cur != nil && cur.ix.Sequence >= ix.Sequence {
		return nil // already serving this generation or newer
	}
	rep.publish(signed, ix)
	return nil
}

// ETag returns the replica's current index ETag ("" before first sync).
func (rep *Replica) ETag() string {
	if st := rep.served.Load(); st != nil {
		return st.etag
	}
	return ""
}

// FetchIndex implements pkgmgr.Source (and quorum.Source): the signed
// index is served exactly as the origin published it — same bytes, same
// key name, same signature.
func (rep *Replica) FetchIndex() (*index.Signed, error) {
	signed, _, err := rep.FetchIndexTagged()
	return signed, err
}

// FetchIndexTagged serves the replica's current signed index and ETag.
func (rep *Replica) FetchIndexTagged() (*index.Signed, string, error) {
	return rep.FetchIndexTaggedCtx(context.Background())
}

// FetchIndexTaggedCtx is FetchIndexTagged as an "edge.index" span.
func (rep *Replica) FetchIndexTaggedCtx(ctx context.Context) (_ *index.Signed, _ string, err error) {
	_, sp := trace.Start(ctx, "edge.index")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("edge")
	return rep.fetchIndexTagged()
}

func (rep *Replica) fetchIndexTagged() (*index.Signed, string, error) {
	if rep.Behavior() == Offline {
		return nil, "", ErrOffline
	}
	st := rep.served.Load()
	if st == nil {
		return nil, "", ErrNotSynced
	}
	rep.stats.indexReads.Add(1)
	return st.signed.Clone(), st.etag, nil
}

// FetchIndexDelta serves the delta from a retained generation to the
// replica's current one — the same endpoint the origin exposes, so a
// tsr.Client or a downstream replica pointed at this edge delta-syncs
// instead of re-fetching the full index every time. The origin's
// signature over the NEW index rides along in the Delta, so the edge
// still never signs anything. With this, *Replica implements the full
// Origin interface: edges can fan out behind edges.
func (rep *Replica) FetchIndexDelta(sinceETag string) (*index.Delta, error) {
	return rep.FetchIndexDeltaCtx(context.Background(), sinceETag)
}

// FetchIndexDeltaCtx is FetchIndexDelta as an "edge.index_delta" span.
// The two expected negative outcomes — base already current, base
// outside the retained window — are not recorded as span errors: they
// are protocol answers, not failures.
func (rep *Replica) FetchIndexDeltaCtx(ctx context.Context, sinceETag string) (_ *index.Delta, err error) {
	_, sp := trace.Start(ctx, "edge.index_delta")
	defer func() {
		if err != nil && !errors.Is(err, index.ErrDeltaUnchanged) && !errors.Is(err, index.ErrNoDelta) {
			sp.SetError(err)
		}
		sp.End()
	}()
	sp.SetTier("edge")
	return rep.fetchIndexDelta(sinceETag)
}

func (rep *Replica) fetchIndexDelta(sinceETag string) (*index.Delta, error) {
	if rep.Behavior() == Offline {
		return nil, ErrOffline
	}
	st := rep.served.Load()
	if st == nil {
		return nil, ErrNotSynced
	}
	if sinceETag == st.etag {
		rep.noteIndexNotModified()
		rep.stats.deltaReads.Add(1)
		return nil, index.ErrDeltaUnchanged
	}
	if base, ok := index.FindGeneration(st.history, sinceETag); ok {
		rep.stats.indexReads.Add(1)
		rep.stats.deltaReads.Add(1)
		return index.ComputeDelta(sinceETag, base, st.signed, st.ix)
	}
	return nil, fmt.Errorf("%w: since %s", index.ErrNoDelta, sinceETag)
}

// FetchPackage implements pkgmgr.Source: serve from the local cache,
// pulling through from the origin on a miss. Downloaded bytes are
// verified against the index entry hash BEFORE they are cached or
// served, so a corrupt origin path cannot poison the cache; cached
// bytes are re-verified on every hit, so local disk tampering degrades
// to a pull-through miss instead of serving garbage.
func (rep *Replica) FetchPackage(name string) ([]byte, error) {
	return rep.FetchPackageCtx(context.Background(), name)
}

// FetchPackageCtx is FetchPackage as an "edge.package" span: a cache
// hit is one cheap span, a pull-through miss hangs the origin round
// trip under it, and a coalesced miss links to the leader's span
// instead of claiming an origin pull of its own.
func (rep *Replica) FetchPackageCtx(ctx context.Context, name string) (_ []byte, err error) {
	ctx, sp := trace.Start(ctx, "edge.package")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("edge")
	sp.SetAttr("package", name)
	entry, err := rep.resolveEntry(name)
	if err != nil {
		return nil, err
	}
	return rep.fetchEntry(ctx, name, entry)
}

// resolveEntry loads the published state once and resolves a package's
// index entry in it. The HTTP handler uses the same single resolution
// for the conditional check, the fetch, and the response headers, so
// the ETag it emits always describes the bytes it serves even when a
// sync publishes a new generation mid-request.
func (rep *Replica) resolveEntry(name string) (index.Entry, error) {
	if rep.Behavior() == Offline {
		return index.Entry{}, ErrOffline
	}
	st := rep.served.Load()
	if st == nil {
		return index.Entry{}, ErrNotSynced
	}
	return st.ix.Lookup(name)
}

// fetchEntry serves the bytes for one resolved index entry: local
// cache first, coalesced origin pull-through on a miss. Because the
// cache key and the flight key are both the content hash, a flash
// crowd of N concurrent cold misses for the same package performs
// exactly one origin pull; the N-1 followers share the verified bytes
// (and count as coalesced pulls, not origin pulls).
func (rep *Replica) fetchEntry(ctx context.Context, name string, entry index.Entry) ([]byte, error) {
	rep.stats.packageReads.Add(1)
	key := cacheKey(entry.Hash)
	sp := trace.SpanFromContext(ctx)

	cache := rep.store()
	raw, cacheErr := cache.Get(key)
	if cacheErr == nil && int64(len(raw)) == entry.Size && sha256.Sum256(raw) == entry.Hash {
		rep.stats.packageHits.Add(1)
		sp.SetAttr("served_from", "cache")
	} else {
		if cacheErr == nil {
			// Tampered or truncated cache entry: drop and re-pull.
			_ = cache.Delete(key)
		}
		var leaderCtx context.Context
		var leader bool
		var err error
		raw, leaderCtx, leader, err = rep.pulls.DoCtx(ctx, key, func(ctx context.Context) ([]byte, error) {
			// Re-check the cache inside the flight: a miss that queued
			// behind a completed fill (the flight ended, the bytes
			// landed) must not pull the origin again.
			if cached, err := cache.Get(key); err == nil &&
				int64(len(cached)) == entry.Size && sha256.Sum256(cached) == entry.Hash {
				return cached, nil
			}
			// pullPackage tries a differential fetch against a cached
			// previous generation first, then a full verified fetch;
			// either way the bytes match the entry before they land.
			pulled, err := rep.pullPackage(ctx, name, entry)
			if err != nil {
				return nil, err
			}
			_ = cache.Put(key, pulled)
			return pulled, nil
		})
		if err != nil {
			return nil, err
		}
		if leader {
			sp.SetAttr("served_from", "origin")
		} else {
			rep.stats.coalescedPulls.Add(1)
			// The follower's span did not pull anything: link it to the
			// leader span that did.
			sp.SetAttr("served_from", "coalesced")
			sp.LinkCoalesced(trace.SpanFromContext(leaderCtx))
		}
	}
	// Copy before returning: the raw slice is shared with the cache and
	// with coalesced waiters, and must stay immutable.
	out := append([]byte(nil), raw...)
	if rep.Behavior() == Corrupt && len(out) > 0 {
		out[len(out)/2] ^= 0xFF
	}
	return out, nil
}

// store returns the replica's blob store, lazily defaulting to a
// byte-budgeted in-memory store. The meta/ prefix (the persisted index
// journal) is pinned on stores that support it: package churn must not
// LRU-evict the journal, and an index larger than the package budget
// must still persist — otherwise a restart silently loses the warm
// resume the journal exists for.
func (rep *Replica) store() store.Store {
	rep.cacheOnce.Do(func() {
		if rep.Cache == nil {
			budget := rep.CacheBudget
			if budget <= 0 {
				budget = DefaultCacheBudget
			}
			rep.Cache = store.NewMemBudget(budget)
		}
		if p, ok := rep.Cache.(store.Pinner); ok {
			p.Pin(metaKeyPrefix)
		}
	})
	return rep.Cache
}

func (rep *Replica) noteIndexNotModified() {
	rep.stats.indexReads.Add(1)
	rep.stats.notModified.Add(1)
}

func (rep *Replica) notePackageNotModified() {
	rep.stats.packageReads.Add(1)
	rep.stats.notModified.Add(1)
}
