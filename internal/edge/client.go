package edge

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/quorum"
	"tsr/internal/store"
	"tsr/internal/trace"
)

// Client-side error sentinels.
var (
	// ErrNoEndpoints: the client has no endpoints configured.
	ErrNoEndpoints = errors.New("edge: no endpoints configured")
	// ErrStale marks an index that verified correctly but carries a
	// lower sequence than one this client already accepted — the
	// frozen/replayed-replica signature failure mode.
	ErrStale = errors.New("edge: endpoint served a stale (replayed) index")
	// ErrAllEndpointsFailed: every endpoint was tried and rejected.
	ErrAllEndpointsFailed = errors.New("edge: all endpoints failed")
)

// Fetcher is the read surface every tier serves: *tsr.Repo (origin,
// in-process), *tsr.Client (origin or edge over HTTP), and *Replica all
// satisfy it.
type Fetcher interface {
	FetchIndexTagged() (*index.Signed, string, error)
	FetchPackage(name string) ([]byte, error)
}

// Endpoint is one place a FailoverClient can read from.
type Endpoint struct {
	// Name identifies the endpoint in stats and errors.
	Name string
	// Continent locates it for latency-aware selection.
	Continent netsim.Continent
	// Fetcher serves the reads.
	Fetcher Fetcher
}

// failPenalty is the modeled latency handicap added per consecutive
// failure when ranking endpoints: a misbehaving nearby edge is retried
// eventually (the penalty is finite) but stops being the first choice
// immediately.
const failPenalty = 250 * time.Millisecond

// FailoverClient reads one TSR repository through a set of endpoints —
// the trusted origin plus any number of untrusted edge replicas. It
// implements pkgmgr.Source, so package managers use it like a single
// repository and get, transparently:
//
//   - latency-aware selection: endpoints are ranked by modeled RTT from
//     the client's continent (netsim), demoted while they misbehave;
//   - end-to-end verification: every index must carry a valid origin
//     signature AND a sequence no older than the freshest this client
//     has accepted (defeating frozen/replaying replicas); every package
//     must hash to its entry in that verified index (defeating
//     tampering replicas) — unverified bytes are never returned;
//   - automatic failover: any verification or transport failure moves
//     on to the next-best endpoint;
//   - an optional quorum mode (QuorumK ≥ 3): FetchIndex cross-checks
//     the K nearest endpoints through the §4.5 quorum machinery, so a
//     byzantine minority of edges cannot even delay freshness.
type FailoverClient struct {
	// Local is the client's continent.
	Local netsim.Continent
	// Link models request latency; nil disables both modeled time and
	// latency-aware ranking (endpoint order is then configuration
	// order).
	Link *netsim.LinkModel
	// Clock is advanced by the modeled transfer time of each request.
	Clock netsim.Clock
	// TrustRing verifies index signatures: the tenant repository's
	// public key from policy deployment (Figure 7).
	TrustRing *keys.Ring
	// Endpoints are the origin and edges to read from.
	Endpoints []Endpoint
	// QuorumK, when ≥ 2, makes FetchIndex read the K nearest endpoints
	// through quorum agreement instead of trusting the first verifiable
	// answer. Use an odd K ≥ 3 to tolerate (K-1)/2 byzantine edges.
	QuorumK int
	// PkgCache, when set, retains verified package bytes
	// (content-addressed, untrusted — re-verified on every read) and
	// enables chunk-aware differential fetch against endpoints that
	// expose chunk manifests: a version bump transfers only the changed
	// chunks. nil keeps the classic full-download behavior.
	PkgCache store.Store

	mu       sync.Mutex
	minSeq   uint64                       // freshness floor: highest verified sequence accepted
	cachedIx *index.Index                 // decoded verified index (package hash lookups)
	failures []int                        // consecutive failures per endpoint
	lastHash map[string][sha256.Size]byte // package name -> hash of the last verified fetch (diff base)
	stats    FailoverStats
}

// FailoverStats counts what the client observed.
type FailoverStats struct {
	IndexFetches   int64 `json:"index_fetches"`
	PackageFetches int64 `json:"package_fetches"`
	// Failovers counts requests not answered by the first-ranked
	// endpoint.
	Failovers int64 `json:"failovers"`
	// Rejection reasons (each also triggers a failover attempt).
	RejectedSignature int64 `json:"rejected_signature"`
	RejectedStale     int64 `json:"rejected_stale"`
	RejectedBytes     int64 `json:"rejected_bytes"`
	// Wire efficiency (only with PkgCache set): packages served from the
	// verified local cache, fetched differentially (changed chunks
	// only), and differential attempts that degraded to a full fetch.
	CacheHits     int64 `json:"cache_hits"`
	DiffFetches   int64 `json:"diff_fetches"`
	DiffFallbacks int64 `json:"diff_fallbacks"`
	// PerEndpoint counts requests successfully served by each endpoint.
	PerEndpoint map[string]int64 `json:"per_endpoint"`
}

// Stats returns a copy of the counters.
func (c *FailoverClient) Stats() FailoverStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.PerEndpoint = make(map[string]int64, len(c.stats.PerEndpoint))
	for k, v := range c.stats.PerEndpoint {
		out.PerEndpoint[k] = v
	}
	return out
}

// rank returns endpoint indexes ordered by modeled RTT from the
// client's continent plus a penalty per consecutive failure, so nearby
// healthy endpoints come first and misbehaving ones sink.
func (c *FailoverClient) rank() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.failures) != len(c.Endpoints) {
		c.failures = make([]int, len(c.Endpoints))
	}
	order := make([]int, len(c.Endpoints))
	cost := make([]time.Duration, len(c.Endpoints))
	for i, ep := range c.Endpoints {
		order[i] = i
		if c.Link != nil {
			cost[i] = c.Link.RTT[c.Local][ep.Continent]
		}
		cost[i] += time.Duration(c.failures[i]) * failPenalty
	}
	sort.SliceStable(order, func(a, b int) bool { return cost[order[a]] < cost[order[b]] })
	return order
}

func (c *FailoverClient) noteFailure(i int) {
	c.mu.Lock()
	if len(c.failures) == len(c.Endpoints) && c.failures[i] < 16 {
		c.failures[i]++
	}
	c.mu.Unlock()
}

func (c *FailoverClient) noteServed(i int, attempt int) {
	c.mu.Lock()
	if len(c.failures) == len(c.Endpoints) {
		c.failures[i] = 0
	}
	if c.stats.PerEndpoint == nil {
		c.stats.PerEndpoint = make(map[string]int64)
	}
	c.stats.PerEndpoint[c.Endpoints[i].Name]++
	if attempt > 0 {
		c.stats.Failovers++
	}
	c.mu.Unlock()
}

// charge advances the clock by the modeled transfer time.
func (c *FailoverClient) charge(ep Endpoint, bytes int64) {
	if c.Link == nil {
		return
	}
	d := c.Link.RequestResponse(c.Local, ep.Continent, bytes)
	if c.Clock != nil {
		c.Clock.Sleep(d)
	}
}

// FetchIndex implements pkgmgr.Source. The returned index is verified
// (signature + freshness) before it is returned; the decoded form is
// cached for package hash checks.
func (c *FailoverClient) FetchIndex() (*index.Signed, error) {
	return c.FetchIndexCtx(context.Background())
}

// FetchIndexCtx is FetchIndex as a "client.index" span: each endpoint
// attempt that supports it runs as a child, so a failover shows up as
// a sequence of attempts under one span rather than as unexplained
// latency.
func (c *FailoverClient) FetchIndexCtx(ctx context.Context) (_ *index.Signed, err error) {
	ctx, sp := trace.Start(ctx, "client.index")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("client")
	if len(c.Endpoints) == 0 {
		return nil, ErrNoEndpoints
	}
	c.mu.Lock()
	c.stats.IndexFetches++
	c.mu.Unlock()
	if c.QuorumK >= 2 {
		return c.fetchIndexQuorum(ctx)
	}
	var errs []error
	for attempt, i := range c.rank() {
		ep := c.Endpoints[i]
		signed, _, err := originFetchIndexTagged(ctx, ep.Fetcher)
		if err != nil {
			c.noteFailure(i)
			errs = append(errs, fmt.Errorf("%s: %w", ep.Name, err))
			continue
		}
		c.charge(ep, signed.Size())
		ix, err := c.verify(signed)
		if err != nil {
			c.noteFailure(i)
			errs = append(errs, fmt.Errorf("%s: %w", ep.Name, err))
			continue
		}
		c.accept(ix)
		c.noteServed(i, attempt)
		return signed, nil
	}
	return nil, fmt.Errorf("%w: index: %w", ErrAllEndpointsFailed, errors.Join(errs...))
}

// fetchIndexQuorum cross-checks the K nearest endpoints through the
// quorum reader (§4.5): at least ⌊K/2⌋+1 endpoints must agree on the
// same signed index, so a byzantine minority of frozen or tampering
// edges can neither win nor stall the read. The agreed index still
// passes the client's own freshness floor.
func (c *FailoverClient) fetchIndexQuorum(ctx context.Context) (*index.Signed, error) {
	ranked := c.rank()
	k := c.QuorumK
	if k > len(ranked) {
		k = len(ranked)
	}
	sources := make([]*quorumSource, 0, k)
	members := make([]quorum.Member, 0, k)
	for _, i := range ranked[:k] {
		ep := c.Endpoints[i]
		src := &quorumSource{c: c, ep: i, ctx: ctx}
		sources = append(sources, src)
		members = append(members, quorum.Member{
			Host:      ep.Name,
			Continent: ep.Continent,
			Source:    src,
		})
	}
	reader := &quorum.Reader{
		Local:     c.Local,
		Link:      c.Link,
		Clock:     c.Clock,
		TrustRing: c.TrustRing,
		Members:   members,
	}
	res, err := reader.Read()
	if err != nil {
		return nil, fmt.Errorf("edge: quorum cross-check: %w", err)
	}
	ix, err := c.verify(res.Index)
	if err != nil {
		return nil, fmt.Errorf("edge: quorum cross-check: %w", err)
	}
	c.accept(ix)
	// Health and stats mirror the single-endpoint path: members that
	// served the agreed index are credited and healed; members that
	// served something else (a frozen or tampering edge the quorum
	// outvoted) are demoted so later reads — quorum or not — stop
	// preferring them, and an outvoted index older than the agreed one
	// counts as a stale rejection. Transport failures were noted by the
	// adapter.
	winner := res.Index.Digest()
	for _, src := range sources {
		switch {
		case src.got == nil:
		case src.got.Digest() == winner:
			c.noteServed(src.ep, 0)
		default:
			if lost, err := index.Decode(src.got.Raw); err == nil && lost.Sequence < ix.Sequence {
				c.mu.Lock()
				c.stats.RejectedStale++
				c.mu.Unlock()
			}
			c.noteFailure(src.ep)
		}
	}
	return res.Index, nil
}

// quorumSource adapts one endpoint to quorum.Source, recording the
// outcome for post-agreement health bookkeeping.
type quorumSource struct {
	c   *FailoverClient
	ep  int           // index into c.Endpoints
	got *index.Signed // the endpoint's (unverified) response, if any
	// ctx carries the quorum read's trace through the ctx-free
	// quorum.Source interface. The adapter lives for exactly one Read
	// call, so the usual keep-contexts-out-of-structs rule does not
	// bite here.
	ctx context.Context
}

func (s *quorumSource) FetchIndex() (*index.Signed, error) {
	signed, _, err := originFetchIndexTagged(s.ctx, s.c.Endpoints[s.ep].Fetcher)
	if err != nil {
		s.c.noteFailure(s.ep)
		return nil, err
	}
	s.got = signed
	return signed, nil
}

// verify checks the origin signature and the freshness floor, returning
// the decoded index.
func (c *FailoverClient) verify(signed *index.Signed) (*index.Index, error) {
	if c.TrustRing != nil {
		if err := signed.VerifySignature(c.TrustRing); err != nil {
			c.mu.Lock()
			c.stats.RejectedSignature++
			c.mu.Unlock()
			return nil, err
		}
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ix.Sequence < c.minSeq {
		c.stats.RejectedStale++
		return nil, fmt.Errorf("%w: sequence %d < accepted %d", ErrStale, ix.Sequence, c.minSeq)
	}
	return ix, nil
}

// accept records a verified index as the client's current view. The
// cached index only moves forward: a concurrent fetch that verified an
// older (pre-floor-raise) generation must not replace a newer one.
func (c *FailoverClient) accept(ix *index.Index) {
	c.mu.Lock()
	if ix.Sequence > c.minSeq {
		c.minSeq = ix.Sequence
	}
	if c.cachedIx == nil || ix.Sequence >= c.cachedIx.Sequence {
		c.cachedIx = ix
	}
	c.mu.Unlock()
}

// FetchPackage implements pkgmgr.Source: the bytes are verified against
// the entry hash in the client's verified index before they are
// returned, trying endpoints in latency order. A replica serving
// tampered bytes costs one failover, never an unverified byte. When
// every endpoint is rejected, the mismatch may mean this client's
// cached index is simply stale (the origin republished and the fleet
// moved on), so the index is revalidated once and the fetch retried
// against the fresh entry before the failure is final.
func (c *FailoverClient) FetchPackage(name string) ([]byte, error) {
	return c.FetchPackageCtx(context.Background(), name)
}

// FetchPackageCtx is FetchPackage as a "client.package" span (see
// FetchIndexCtx).
func (c *FailoverClient) FetchPackageCtx(ctx context.Context, name string) (_ []byte, err error) {
	ctx, sp := trace.Start(ctx, "client.package")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("client")
	sp.SetAttr("package", name)
	if len(c.Endpoints) == 0 {
		return nil, ErrNoEndpoints
	}
	entry, err := c.entryFor(ctx, name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.PackageFetches++
	c.mu.Unlock()
	raw, firstErr := c.fetchPackageVerified(ctx, name, entry)
	if firstErr == nil {
		return raw, nil
	}
	if _, err := c.FetchIndexCtx(ctx); err != nil {
		return nil, firstErr
	}
	c.mu.Lock()
	ix := c.cachedIx
	c.mu.Unlock()
	fresh, err := ix.Lookup(name)
	if err != nil || (fresh.Hash == entry.Hash && fresh.Size == entry.Size) {
		// The package vanished, or the entry is unchanged: the original
		// failure stands.
		return nil, firstErr
	}
	return c.fetchPackageVerified(ctx, name, fresh)
}

// fetchPackageVerified tries endpoints in latency order until one
// serves bytes matching the given index entry. With a PkgCache, exact
// cached bytes short-circuit the network entirely, and each endpoint
// is first tried differentially against the cached previous version —
// any differential failure degrades to a full fetch from the same
// endpoint, so the failover semantics are unchanged.
func (c *FailoverClient) fetchPackageVerified(ctx context.Context, name string, entry index.Entry) ([]byte, error) {
	if raw := c.cachedPackage(entry); raw != nil {
		c.mu.Lock()
		c.stats.CacheHits++
		c.mu.Unlock()
		return raw, nil
	}
	var errs []error
	for attempt, i := range c.rank() {
		ep := c.Endpoints[i]
		raw, wireBytes, err := c.fetchFromEndpoint(ctx, ep, name, entry)
		if err != nil {
			c.noteFailure(i)
			errs = append(errs, fmt.Errorf("%s: %w", ep.Name, err))
			continue
		}
		c.charge(ep, wireBytes)
		if int64(len(raw)) != entry.Size || sha256.Sum256(raw) != entry.Hash {
			c.mu.Lock()
			c.stats.RejectedBytes++
			c.mu.Unlock()
			c.noteFailure(i)
			errs = append(errs, fmt.Errorf("%s: served bytes do not match the signed index entry", ep.Name))
			continue
		}
		c.noteServed(i, attempt)
		c.rememberPackage(name, entry, raw)
		return raw, nil
	}
	return nil, fmt.Errorf("%w: package %s: %w", ErrAllEndpointsFailed, name, errors.Join(errs...))
}

// fetchFromEndpoint pulls one package from one endpoint, differentially
// when possible, and reports the modeled wire bytes the transfer cost.
func (c *FailoverClient) fetchFromEndpoint(ctx context.Context, ep Endpoint, name string, entry index.Entry) ([]byte, int64, error) {
	if c.PkgCache != nil {
		if old := c.previousPackage(name, entry); old != nil {
			out, st, err := diffFetch(ctx, ep.Fetcher, name, entry, old)
			if err == nil {
				c.mu.Lock()
				c.stats.DiffFetches++
				c.mu.Unlock()
				return out, st.BytesFetched, nil
			}
			if !errors.Is(err, errDiffUnsupported) {
				c.mu.Lock()
				c.stats.DiffFallbacks++
				c.mu.Unlock()
			}
		}
	}
	raw, err := originFetchPackage(ctx, ep.Fetcher, name)
	return raw, entry.Size, err
}

// cachedPackage returns the exact requested bytes from PkgCache when
// present and verifying (the cache is untrusted), or nil.
func (c *FailoverClient) cachedPackage(entry index.Entry) []byte {
	if c.PkgCache == nil {
		return nil
	}
	raw, err := c.PkgCache.Get(cacheKey(entry.Hash))
	if err != nil || int64(len(raw)) != entry.Size || sha256.Sum256(raw) != entry.Hash {
		return nil
	}
	return raw
}

// rememberPackage caches verified bytes and records the name→hash
// association the next differential fetch diffs against.
func (c *FailoverClient) rememberPackage(name string, entry index.Entry, raw []byte) {
	if c.PkgCache == nil {
		return
	}
	_ = c.PkgCache.Put(cacheKey(entry.Hash), raw)
	c.mu.Lock()
	if c.lastHash == nil {
		c.lastHash = make(map[string][sha256.Size]byte)
	}
	c.lastHash[name] = entry.Hash
	c.mu.Unlock()
}

// previousPackage returns the verified bytes of the version of name
// this client last fetched, when still cached and different from the
// wanted entry.
func (c *FailoverClient) previousPackage(name string, entry index.Entry) []byte {
	c.mu.Lock()
	prev, ok := c.lastHash[name]
	c.mu.Unlock()
	if !ok || prev == entry.Hash {
		return nil
	}
	raw, err := c.PkgCache.Get(cacheKey(prev))
	if err != nil || sha256.Sum256(raw) != prev {
		return nil
	}
	return raw
}

// entryFor looks the package up in the verified index, fetching the
// index first when none is cached and refreshing once when the name is
// unknown.
func (c *FailoverClient) entryFor(ctx context.Context, name string) (index.Entry, error) {
	c.mu.Lock()
	ix := c.cachedIx
	c.mu.Unlock()
	if ix == nil {
		if _, err := c.FetchIndexCtx(ctx); err != nil {
			return index.Entry{}, err
		}
		c.mu.Lock()
		ix = c.cachedIx
		c.mu.Unlock()
	}
	if e, err := ix.Lookup(name); err == nil {
		return e, nil
	}
	if _, err := c.FetchIndexCtx(ctx); err != nil {
		return index.Entry{}, err
	}
	c.mu.Lock()
	ix = c.cachedIx
	c.mu.Unlock()
	return ix.Lookup(name)
}
