package edge

import (
	"context"
	"sync"
	"testing"
	"time"

	"tsr/internal/trace"
)

// traceWorld builds a two-tier edge chain over the shared edge world:
// client -> outer edge -> inner edge -> origin repo, all in-process,
// with a HeadEvery=1 tracer so every trace is kept.
func traceWorld(t *testing.T) (*edgeWorld, *Replica, *Replica, *trace.Tracer) {
	t.Helper()
	w := newEdgeWorld(t)
	inner := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, TrustRing: w.trust()}
	outer := &Replica{RepoID: w.tenant.ID, Origin: inner, TrustRing: w.trust()}
	if err := inner.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := outer.Sync(); err != nil {
		t.Fatal(err)
	}
	return w, inner, outer, trace.NewTracer(trace.Config{Tier: "client", HeadEvery: 1})
}

// TestTracePropagationAcrossTiers is the tentpole acceptance test for
// in-process stitching: one package fetch through a FailoverClient, a
// chained pair of edge replicas, and the origin repo must produce ONE
// trace whose four spans parent onto each other in tier order.
func TestTracePropagationAcrossTiers(t *testing.T) {
	w, _, outer, tr := traceWorld(t)
	client := &FailoverClient{
		TrustRing: w.trust(),
		Endpoints: []Endpoint{{Name: "outer", Fetcher: outer}},
	}
	// Prime the client's verified index outside the traced context so
	// the package trace below contains only the package path.
	if _, err := client.FetchIndex(); err != nil {
		t.Fatal(err)
	}

	ctx := trace.NewContext(context.Background(), tr)
	if _, err := client.FetchPackageCtx(ctx, "app"); err != nil {
		t.Fatal(err)
	}

	st := tr.Store()
	if got := st.Stats().Kept; got != 1 {
		t.Fatalf("kept %d traces, want exactly 1 (the whole chain must share one trace ID)", got)
	}
	sums := st.List()
	td, ok := st.Get(sums[0].TraceID)
	if !ok {
		t.Fatalf("trace %s listed but not retrievable", sums[0].TraceID)
	}
	wantNames := []string{"client.package", "edge.package", "edge.package", "origin.package"}
	wantTiers := []string{"client", "edge", "edge", "origin"}
	if len(td.Spans) != len(wantNames) {
		t.Fatalf("trace has %d spans (%+v), want %d", len(td.Spans), td.Spans, len(wantNames))
	}
	for i, s := range td.Spans {
		if s.TraceID != td.TraceID {
			t.Fatalf("span %d carries trace ID %s, want %s", i, s.TraceID, td.TraceID)
		}
		if s.Name != wantNames[i] {
			t.Fatalf("span %d name = %s, want %s", i, s.Name, wantNames[i])
		}
		if s.Tier != wantTiers[i] {
			t.Fatalf("span %d tier = %s, want %s", i, s.Tier, wantTiers[i])
		}
		if i == 0 {
			if s.ParentID != "" {
				t.Fatalf("root span has parent %s, want none", s.ParentID)
			}
		} else if s.ParentID != td.Spans[i-1].SpanID {
			t.Fatalf("span %d (%s) parent = %s, want %s (%s)",
				i, s.Name, s.ParentID, td.Spans[i-1].SpanID, td.Spans[i-1].Name)
		}
	}
}

// TestCoalescedFollowerLinksLeaderTrace pins the coalescing contract:
// when two concurrent cold misses for one package collapse into a
// single origin pull, the follower's trace must not fabricate an
// origin round trip — it records a coalesced link naming the leader's
// trace and span instead.
func TestCoalescedFollowerLinksLeaderTrace(t *testing.T) {
	w := newEdgeWorld(t)
	tr := trace.NewTracer(trace.Config{Tier: "edge", HeadEvery: 1})
	counted := &countPulls{Origin: w.tenant}
	gated := &gatedOrigin{
		Origin:  counted,
		pkgGate: make(chan struct{}), pkgHit: make(chan struct{}),
	}
	rep := &Replica{RepoID: "r", Origin: gated, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	// Hold the leader's origin pull open until the follower has joined
	// the flight (the same 50ms window the coalescing tests use).
	go func() {
		<-gated.pkgHit
		time.Sleep(50 * time.Millisecond)
		close(gated.pkgGate)
	}()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := trace.NewContext(context.Background(), tr)
			_, errs[i] = rep.FetchPackageCtx(ctx, "app")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("requester %d: %v", i, err)
		}
	}
	if counted.pulls != 1 {
		t.Fatalf("%d origin pulls, want exactly 1", counted.pulls)
	}

	st := tr.Store()
	if got := st.Stats().Kept; got != 2 {
		t.Fatalf("kept %d traces, want 2 (leader and follower each root their own)", got)
	}
	var leader, follower *struct {
		traceID string
		spanID  string
		link    *trace.Link
	}
	for _, sum := range st.List() {
		td, ok := st.Get(sum.TraceID)
		if !ok {
			t.Fatalf("trace %s listed but not retrievable", sum.TraceID)
		}
		root := td.Spans[0]
		if root.Name != "edge.package" {
			t.Fatalf("root span = %s, want edge.package", root.Name)
		}
		got := &struct {
			traceID string
			spanID  string
			link    *trace.Link
		}{td.TraceID, root.SpanID, root.Link}
		if root.Link != nil {
			follower = got
		} else {
			leader = got
		}
	}
	if leader == nil || follower == nil {
		t.Fatal("expected one leader trace (no link) and one follower trace (coalesced link)")
	}
	if !follower.link.Coalesced {
		t.Fatal("follower link not marked coalesced")
	}
	if follower.link.TraceID != leader.traceID || follower.link.SpanID != leader.spanID {
		t.Fatalf("follower links to %s/%s, want the leader's span %s/%s",
			follower.link.TraceID, follower.link.SpanID, leader.traceID, leader.spanID)
	}
}
