package edge

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/store"
	"tsr/internal/tpm"
	"tsr/internal/tsr"
)

// edgeWorld is an origin deployment (repository, mirrors, TSR service,
// one refreshed tenant) for edge tests.
type edgeWorld struct {
	repo    *repo.Repository
	mirrors []*mirror.Mirror
	signer  *keys.Pair
	svc     *tsr.Service
	tenant  *tsr.Repo
}

func newEdgeWorld(t *testing.T) *edgeWorld {
	t.Helper()
	signer := keys.Shared.MustGet("edge-test-distro")
	w := &edgeWorld{repo: repo.New("alpine-main", signer), signer: signer}
	byHost := make(map[string]*mirror.Mirror)
	var pol strings.Builder
	pol.WriteString("mirrors:\n")
	for i := 0; i < 3; i++ {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, netsim.Europe)
		w.mirrors = append(w.mirrors, m)
		byHost[host] = m
		fmt.Fprintf(&pol, "  - hostname: %s\n", host)
	}
	pem, err := signer.Public().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	pol.WriteString("signers_keys:\n  - |-\n")
	for _, line := range strings.Split(strings.TrimRight(string(pem), "\n"), "\n") {
		pol.WriteString("    " + line + "\n")
	}

	platform, err := enclave.NewPlatform(keys.Shared.MustGet("edge-test-quoting"))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := tsr.New(tsr.Config{
		Platform: platform,
		TPM:      tpm.New(keys.Shared.MustGet("edge-test-tpm")),
		Clock:    netsim.NewVirtualClock(time.Time{}),
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(11)),
		Local:    netsim.Europe,
		Store:    tsr.NewMemStore(),
		EPC:      enclave.DefaultCostModel(),
		Resolve: func(m policy.Mirror) (quorum.Source, tsr.PackageFetcher, error) {
			mm, ok := byHost[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("no mirror %q", m.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.svc = svc
	w.publish(t, testPkg("app", "1.0-r0"), testPkg("lib", "1.0-r0"), testPkg("tool", "1.0-r0"))
	id, _, _, err := svc.DeployPolicy([]byte(pol.String()))
	if err != nil {
		t.Fatal(err)
	}
	w.tenant, err = svc.Repo(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

func testPkg(name, version string) *apk.Package {
	return &apk.Package{
		Name: name, Version: version,
		Files: []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + version)}},
	}
}

func (w *edgeWorld) publish(t *testing.T, pkgs ...*apk.Package) {
	t.Helper()
	for _, p := range pkgs {
		if err := apk.Sign(p, w.signer); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.repo.Publish(pkgs...); err != nil {
		t.Fatal(err)
	}
	for _, m := range w.mirrors {
		m.Sync(w.repo)
	}
}

// update publishes a new version of a package and refreshes the origin,
// producing a new index generation.
func (w *edgeWorld) update(t *testing.T, name, version string) {
	t.Helper()
	w.publish(t, testPkg(name, version))
	if _, err := w.tenant.Refresh(); err != nil {
		t.Fatal(err)
	}
}

func (w *edgeWorld) trust() *keys.Ring { return keys.NewRing(w.tenant.PublicKey()) }

// --- replica sync ------------------------------------------------------

func TestReplicaFullThenDeltaSync(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Oceania, TrustRing: w.trust()}

	// First contact: full fetch.
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.FullSyncs != 1 || s.DeltaSyncs != 0 {
		t.Fatalf("stats after first sync = %+v", s)
	}
	origin, _, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	got, etag, err := rep.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	// The replica serves the origin's signed index verbatim: same
	// bytes, same key name, same signature, same ETag.
	if string(got.Raw) != string(origin.Raw) || got.KeyName != origin.KeyName ||
		!strings.EqualFold(base64.StdEncoding.EncodeToString(got.Sig), base64.StdEncoding.EncodeToString(origin.Sig)) {
		t.Fatal("replica does not re-expose the origin's signed index verbatim")
	}
	if etag != origin.ETag() {
		t.Fatalf("etag = %s, want %s", etag, origin.ETag())
	}

	// Unchanged origin: sync is a no-op.
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.NoopSyncs != 1 {
		t.Fatalf("stats after noop sync = %+v", s)
	}

	// One generation ahead: delta sync.
	w.update(t, "app", "1.1-r0")
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.DeltaSyncs != 1 || s.FullSyncs != 1 {
		t.Fatalf("stats after delta sync = %+v", s)
	}

	// TWO generations ahead: the origin still retains the base, so one
	// delta spans both generations.
	w.update(t, "lib", "1.1-r0")
	w.update(t, "tool", "1.1-r0")
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.DeltaSyncs != 2 || s.FullFallbacks != 0 {
		t.Fatalf("stats after 2-generation delta = %+v", s)
	}
	cur, _, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = rep.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Raw) != string(cur.Raw) {
		t.Fatal("replica diverged from origin after delta syncs")
	}
	ix, err := index.Decode(got.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := ix.Lookup("tool"); e.Version != "1.1-r0" {
		t.Fatalf("tool = %+v after delta sync", e)
	}
}

func TestReplicaFallsBackToFullFetchWhenHistoryExpired(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.SouthAmerica}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	// Push the replica's base generation out of the origin's retained
	// history (maxIndexHistory generations on the origin side).
	for i := 0; i < 9; i++ {
		w.update(t, "app", fmt.Sprintf("2.%d-r0", i))
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	s := rep.Stats()
	if s.FullFallbacks != 1 || s.FullSyncs != 2 || s.DeltaSyncs != 0 {
		t.Fatalf("stats = %+v, want a full-fetch fallback", s)
	}
	cur, _, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ETag() != cur.ETag() {
		t.Fatal("replica not current after fallback")
	}
}

// corruptOrigin wraps an Origin and flips a byte in every package.
type corruptOrigin struct{ Origin }

func (c corruptOrigin) FetchPackage(name string) ([]byte, error) {
	raw, err := c.Origin.FetchPackage(name)
	if err == nil && len(raw) > 0 {
		raw = append([]byte(nil), raw...)
		raw[0] ^= 0xFF
	}
	return raw, err
}

func TestReplicaPullThroughCacheVerifies(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Oceania}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	want, err := w.tenant.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(want) {
		t.Fatal("replica served different bytes than origin")
	}
	raw2, err := rep.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	if string(raw2) != string(want) {
		t.Fatal("cached bytes differ")
	}
	s := rep.Stats()
	if s.OriginPackages != 1 || s.PackageHits != 1 {
		t.Fatalf("stats = %+v, want 1 origin pull + 1 cache hit", s)
	}

	// A corrupting origin path is detected before caching: the replica
	// refuses to serve and does not poison its cache.
	bad := &Replica{RepoID: w.tenant.ID, Origin: corruptOrigin{w.tenant}, Continent: netsim.Oceania}
	if err := bad.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.FetchPackage("app"); err == nil {
		t.Fatal("corrupt origin bytes accepted")
	}
	if s := bad.Stats(); s.CacheEntries != 0 {
		t.Fatalf("corrupt bytes were cached: %+v", s)
	}

	// Unknown package: index miss, no origin contact.
	if _, err := rep.FetchPackage("nope"); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("err = %v, want index.ErrNotFound", err)
	}
}

func TestReplicaCacheBudgetEvicts(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Oceania, CacheBudget: 1}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	s := rep.Stats()
	// Budget of 1 byte: nothing fits, every request pulls through.
	if s.PackageHits != 0 || s.OriginPackages != 2 || s.CacheBytes != 0 {
		t.Fatalf("stats = %+v, want all pull-throughs under a 1-byte budget", s)
	}
}

// TestReplicaWarmRestartResumesDeltaSync: a replica on a disk store
// with PersistIndex journals its generation; a "restarted" replica
// (fresh object, reopened store, LoadState) serves immediately without
// touching the origin, keeps its package cache, and its next Sync
// against a moved-on origin is a DELTA — not a full index fetch.
func TestReplicaWarmRestartResumesDeltaSync(t *testing.T) {
	w := newEdgeWorld(t)
	dir := t.TempDir()
	st1, err := store.OpenFS(dir, store.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep1 := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Cache: st1, PersistIndex: true}
	if err := rep1.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep1.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	tag := rep1.ETag()

	// "Restart": a fresh replica over a reopened (re-scrubbed) store.
	st2, err := store.OpenFS(dir, store.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Cache: st2, PersistIndex: true,
		TrustRing: w.trust()}
	if err := rep2.LoadState(); err != nil {
		t.Fatal(err)
	}
	if rep2.ETag() != tag {
		t.Fatalf("restored etag = %s, want %s", rep2.ETag(), tag)
	}
	// Serves without any origin contact, from the restored index and
	// the persisted package cache.
	if _, err := rep2.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	if s := rep2.Stats(); s.PackageHits != 1 || s.OriginPackages != 0 || s.FullSyncs != 0 {
		t.Fatalf("stats after warm restart = %+v", s)
	}

	// The origin moves on; the restarted replica catches up via delta.
	w.update(t, "app", "1.1-r0")
	if err := rep2.Sync(); err != nil {
		t.Fatal(err)
	}
	s := rep2.Stats()
	if s.DeltaSyncs != 1 || s.FullSyncs != 0 || s.FullFallbacks != 0 {
		t.Fatalf("restarted replica did not resume delta sync: %+v", s)
	}

	// A replica without persisted state on the same topology does the
	// full fetch the warm restart avoided.
	if err := (&Replica{RepoID: w.tenant.ID, Origin: w.tenant, Cache: store.NewMem()}).LoadState(); !errors.Is(err, ErrNoState) {
		t.Fatalf("LoadState on empty store = %v, want ErrNoState", err)
	}
}

// TestReplicaDiskTamperDegradesToPullThrough: rewriting a cached
// package on the replica's disk is caught by the per-serve hash check;
// the replica re-pulls from the origin and heals its cache.
func TestReplicaDiskTamperDegradesToPullThrough(t *testing.T) {
	w := newEdgeWorld(t)
	st, err := store.OpenFS(t.TempDir(), store.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Cache: st}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	want, err := rep.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	// The adversary rewrites the cached blob through the store (valid
	// frame, wrong content).
	ix, err := index.Decode(mustSigned(t, rep).Raw)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := ix.Lookup("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(cacheKey(entry.Hash), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	got, err := rep.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("tampered cache served")
	}
	if s := rep.Stats(); s.OriginPackages != 2 {
		t.Fatalf("stats = %+v, want tampered hit re-pulled", s)
	}
	// Healed: next read is a cache hit again.
	if _, err := rep.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.PackageHits != 1 {
		t.Fatalf("stats = %+v, want healed cache hit", s)
	}
}

func mustSigned(t *testing.T, rep *Replica) *index.Signed {
	t.Helper()
	signed, _, err := rep.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	return signed
}

// --- edge HTTP handler -------------------------------------------------

func TestEdgeHandlerServesAndRevalidates(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.NorthAmerica}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(map[string]*Replica{w.tenant.ID: rep}, "edge-na-1"))
	defer srv.Close()

	// The signed index comes out with the origin's signature headers
	// and verifies against the origin's public key — a tsr.Client can
	// read an edge exactly like the origin.
	client := &tsr.Client{BaseURL: srv.URL, RepoID: w.tenant.ID, HTTPClient: srv.Client()}
	signed, etag, err := client.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := signed.Verify(w.trust()); err != nil {
		t.Fatalf("edge-served index does not verify: %v", err)
	}
	if etag != rep.ETag() {
		t.Fatalf("etag = %s, want %s", etag, rep.ETag())
	}

	// Conditional revalidation answers 304.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/repos/"+w.tenant.ID+"/index", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
	if resp.Header.Get(headerEdge) != "edge-na-1" {
		t.Fatalf("%s = %q", headerEdge, resp.Header.Get(headerEdge))
	}

	// Package fetch through the HTTP client verifies against the index.
	raw, err := client.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := w.tenant.FetchPackage("app")
	if string(raw) != string(want) {
		t.Fatal("edge-served package differs")
	}

	// Unknown repo 404; unsynced replica 503; sync endpoint works.
	resp, err = srv.Client().Get(srv.URL + "/repos/nope/index")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown repo = %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = srv.Client().Post(srv.URL+"/repos/"+w.tenant.ID+"/sync", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sync = %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}
