package edge

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"tsr/internal/index"
	"tsr/internal/tsr"
)

// Wire headers. The index signature headers are the origin's, re-exposed
// verbatim (an edge never re-signs); X-Tsr-Edge names the replica that
// answered, so clients and operators can tell the tiers apart.
const (
	headerKeyName   = "X-Tsr-Key-Name"
	headerSignature = "X-Tsr-Signature"
	headerEdge      = "X-Tsr-Edge"
)

// Handler exposes replicas over the same read API as the origin, so a
// tsr.Client (or any package manager) can be pointed at an edge
// interchangeably:
//
//	GET  /repos/{id}/index          the origin-signed metadata index
//	GET  /repos/{id}/index/delta    delta from a retained generation (?since=<etag>)
//	GET  /repos/{id}/packages/{pkg} a sanitized package (pull-through cache)
//	GET  /repos/{id}/stats          replica sync/cache counters
//	POST /repos/{id}/sync           trigger a sync now
//	GET  /healthz                   liveness
//
// Write/trust endpoints (POST /policies, /refresh) intentionally do not
// exist here: an edge cannot perform trusted operations.
func Handler(replicas map[string]*Replica, name string) http.Handler {
	mux := http.NewServeMux()
	lookup := func(w http.ResponseWriter, r *http.Request) *Replica {
		rep, ok := replicas[r.PathValue("id")]
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("edge: unknown repository %q", r.PathValue("id")))
			return nil
		}
		return rep
	}
	mux.HandleFunc("GET /repos/{id}/index", func(w http.ResponseWriter, r *http.Request) {
		rep := lookup(w, r)
		if rep == nil {
			return
		}
		w.Header().Set(headerEdge, name)
		w.Header().Set("Cache-Control", "no-cache")
		if etag := rep.ETag(); etag != "" && tsr.ETagMatch(r.Header.Get("If-None-Match"), etag) {
			rep.noteIndexNotModified()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		signed, etag, err := rep.FetchIndexTaggedCtx(r.Context())
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set(headerKeyName, signed.KeyName)
		w.Header().Set(headerSignature, base64.StdEncoding.EncodeToString(signed.Sig))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Same discipline as the origin: the canonical signed text stays
		// what the ETag and signature cover; gzip is negotiated transfer
		// encoding on top of it.
		tsr.WriteNegotiated(w, r, signed.Raw)
	})
	mux.HandleFunc("GET /repos/{id}/index/delta", func(w http.ResponseWriter, r *http.Request) {
		rep := lookup(w, r)
		if rep == nil {
			return
		}
		w.Header().Set(headerEdge, name)
		since := r.URL.Query().Get("since")
		if since == "" {
			httpError(w, http.StatusBadRequest, errors.New("missing since=<etag> query parameter"))
			return
		}
		d, err := rep.FetchIndexDeltaCtx(r.Context(), since)
		if errors.Is(err, index.ErrDeltaUnchanged) {
			w.Header().Set("ETag", since)
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if err != nil {
			// index.ErrNoDelta maps to 404: the caller falls back to a
			// full index fetch, exactly like at the origin.
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("ETag", d.ToETag)
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tsr.WriteNegotiated(w, r, d.Encode())
	})
	mux.HandleFunc("GET /repos/{id}/packages/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		rep := lookup(w, r)
		if rep == nil {
			return
		}
		pkg := r.PathValue("pkg")
		w.Header().Set(headerEdge, name)
		w.Header().Set("Cache-Control", "no-cache")
		// Resolve the published state ONCE and drive the conditional
		// check, the fetch, and the response headers from that single
		// entry. Resolving per step (as this handler once did) let a
		// sync publishing mid-request emit an ETag from a newer
		// generation than the bytes served — a cache-poisoning gift to
		// any intermediary that stores the pair.
		entry, err := rep.resolveEntry(pkg)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		etag := entry.ETag()
		// If-None-Match precedence over Range (RFC 9110): a revalidating
		// client gets its 304 even when it also sent a Range.
		if tsr.ETagMatch(r.Header.Get("If-None-Match"), etag) {
			rep.notePackageNotModified()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set("Accept-Ranges", "bytes")
		w.Header().Set("Content-Type", "application/octet-stream")
		if r.Header.Get("Range") != "" {
			// Range requests slice buffered already-verified bytes; the
			// 206 carries the FULL representation's strong ETag (the
			// content hash from the resolved entry, same as the body on
			// this single resolution even across a concurrent sync).
			raw, err := rep.fetchEntry(r.Context(), pkg, entry)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			if tsr.ServeRange(w, r, etag, raw) {
				return
			}
			w.Write(raw)
			return
		}
		// Full-body requests stream off the cache when possible
		// (hash-as-you-copy, see openStream): a tampered cache entry
		// aborts the response before the final block instead of
		// delivering a complete-but-wrong body.
		if rc, ok := rep.openStream(entry); ok {
			defer rc.Close()
			w.Header().Set("Content-Length", strconv.FormatInt(entry.Size, 10))
			if _, err := io.Copy(w, rc); err != nil {
				panic(http.ErrAbortHandler)
			}
			return
		}
		// The obs server span (when tracing is on) is the request's span;
		// fetchEntry hangs the pull-through round trip and the
		// served_from attribute off whatever span the context carries.
		raw, err := rep.fetchEntry(r.Context(), pkg, entry)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Write(raw)
	})
	mux.HandleFunc("GET /repos/{id}/packages/{pkg}/chunks", func(w http.ResponseWriter, r *http.Request) {
		rep := lookup(w, r)
		if rep == nil {
			return
		}
		pkg := r.PathValue("pkg")
		w.Header().Set(headerEdge, name)
		m, entry, err := rep.chunkManifest(r.Context(), pkg)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		etag := entry.ETag()
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache")
		if tsr.ETagMatch(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tsr.WriteNegotiated(w, r, tsr.EncodeChunkManifest(pkg, m))
	})
	mux.HandleFunc("GET /repos/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		rep := lookup(w, r)
		if rep == nil {
			return
		}
		writeJSON(w, rep.Stats())
	})
	mux.HandleFunc("POST /repos/{id}/sync", func(w http.ResponseWriter, r *http.Request) {
		rep := lookup(w, r)
		if rep == nil {
			return
		}
		// statusFor, not a flat 502: a sync that fails because this
		// replica is offline, or its upstream edge has not synced yet
		// (chained edges), is a 503 availability condition — not an
		// upstream protocol error.
		if err := rep.SyncCtx(r.Context()); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, rep.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok", "role": "edge", "edge": name})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotSynced):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOffline):
		return http.StatusServiceUnavailable
	case errors.Is(err, index.ErrNotFound), errors.Is(err, index.ErrNoDelta):
		return http.StatusNotFound
	default:
		return http.StatusBadGateway // pull-through/origin failures
	}
}
