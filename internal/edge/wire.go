package edge

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"tsr/internal/index"
	"tsr/internal/store"
	"tsr/internal/tsr"
)

// Wire efficiency at the edge tier (ROADMAP item 4): chunk-aware
// differential pull-through sync, chunk-manifest + byte-range serving
// (so edges chain behind edges and clients diff against them exactly
// like against the origin), and streaming verified serving off the
// package cache. The trust model is the replica's usual one — nothing
// here is trusted: manifests are transfer metadata, and every
// reassembled package must hash to the signed index entry before it is
// cached or served.

// errDiffUnsupported: the upstream does not expose chunk
// manifest/range fetches — not a failure, just no differential path.
var errDiffUnsupported = errors.New("edge: upstream does not support differential fetch")

// The chunk-manifest and byte-range fetches travel through an Origin
// or Fetcher by the same optional interface upgrade as the *Ctx
// methods: *tsr.Repo, *tsr.Client, and *Replica all expose them, while
// plain test doubles simply do not diff. supported=false means the
// upstream has no differential surface at all.
func originFetchChunkManifest(ctx context.Context, o any, name string) (m *store.ChunkManifest, supported bool, err error) {
	if c, ok := o.(interface {
		FetchChunkManifestCtx(context.Context, string) (*store.ChunkManifest, error)
	}); ok {
		m, err = c.FetchChunkManifestCtx(ctx, name)
		return m, true, err
	}
	if c, ok := o.(interface {
		FetchChunkManifest(string) (*store.ChunkManifest, error)
	}); ok {
		m, err = c.FetchChunkManifest(name)
		return m, true, err
	}
	return nil, false, nil
}

func originFetchPackageRange(ctx context.Context, o any, name string, off, length int64, etag string) (raw []byte, supported bool, err error) {
	// tsr.Client's Ctx variant carries If-Range, so a republish between
	// the manifest fetch and the range fetch yields a detectable full
	// body instead of a spliced range.
	if c, ok := o.(interface {
		FetchPackageRangeCtx(context.Context, string, int64, int64, string) ([]byte, error)
	}); ok {
		raw, err = c.FetchPackageRangeCtx(ctx, name, off, length, etag)
		return raw, true, err
	}
	if c, ok := o.(interface {
		FetchPackageRangeCtx(context.Context, string, int64, int64) ([]byte, error)
	}); ok {
		raw, err = c.FetchPackageRangeCtx(ctx, name, off, length)
		return raw, true, err
	}
	if c, ok := o.(interface {
		FetchPackageRange(string, int64, int64) ([]byte, error)
	}); ok {
		raw, err = c.FetchPackageRange(name, off, length)
		return raw, true, err
	}
	return nil, false, nil
}

// diffFetch reassembles name@entry from the old cached bytes plus the
// upstream's chunk manifest and range fetches, verifying the result
// against the signed entry. errDiffUnsupported means the upstream has
// no differential surface; any other error means the attempt failed
// and the caller should fall back to a full fetch.
func diffFetch(ctx context.Context, src any, name string, entry index.Entry, old []byte) ([]byte, tsr.ReassembleStats, error) {
	var st tsr.ReassembleStats
	m, supported, err := originFetchChunkManifest(ctx, src, name)
	if !supported {
		return nil, st, errDiffUnsupported
	}
	if err != nil {
		return nil, st, err
	}
	// Root the manifest in the signed entry before trusting its shape.
	if m.PackageHash != entry.Hash || m.TotalSize != entry.Size {
		return nil, st, fmt.Errorf("edge: %s: chunk manifest does not match the signed index entry", name)
	}
	out, st, err := tsr.ReassembleChunks(m, old, func(off, length int64) ([]byte, error) {
		raw, supported, err := originFetchPackageRange(ctx, src, name, off, length, entry.ETag())
		if !supported {
			return nil, errDiffUnsupported
		}
		return raw, err
	})
	if err != nil {
		return nil, st, err
	}
	if int64(len(out)) != entry.Size || sha256.Sum256(out) != entry.Hash {
		return nil, st, fmt.Errorf("edge: %s: differentially reassembled bytes do not match the signed index entry", name)
	}
	return out, st, nil
}

// previousCached returns verified bytes of an older generation of name
// still held in the cache — the diff base for a differential pull.
// The retained generation history (the same window the delta endpoint
// serves from) maps the name to its previous content hashes.
func (rep *Replica) previousCached(name string, entry index.Entry) []byte {
	st := rep.served.Load()
	if st == nil {
		return nil
	}
	cache := rep.store()
	for i := len(st.history) - 1; i >= 0; i-- {
		old, err := st.history[i].Index.Lookup(name)
		if err != nil || old.Hash == entry.Hash {
			continue
		}
		raw, err := cache.Get(cacheKey(old.Hash))
		if err != nil || int64(len(raw)) != old.Size || sha256.Sum256(raw) != old.Hash {
			continue
		}
		return raw
	}
	return nil
}

// pullPackage fetches one package from the origin for the pull-through
// cache: differentially against a cached previous generation when the
// origin supports it, falling back to a full verified fetch on any
// differential failure. Returned bytes always match the entry.
func (rep *Replica) pullPackage(ctx context.Context, name string, entry index.Entry) ([]byte, error) {
	if old := rep.previousCached(name, entry); old != nil {
		out, st, err := diffFetch(ctx, rep.Origin, name, entry, old)
		if err == nil {
			rep.stats.diffPulls.Add(1)
			rep.stats.diffBytesReused.Add(st.BytesReused)
			rep.stats.diffBytesFetched.Add(st.BytesFetched)
			return out, nil
		}
		if !errors.Is(err, errDiffUnsupported) {
			rep.stats.diffFallbacks.Add(1)
		}
	}
	pulled, err := originFetchPackage(ctx, rep.Origin, name)
	if err != nil {
		return nil, fmt.Errorf("edge: pull-through %s: %w", name, err)
	}
	rep.stats.originPackages.Add(1)
	if int64(len(pulled)) != entry.Size || sha256.Sum256(pulled) != entry.Hash {
		return nil, fmt.Errorf("edge: origin served wrong bytes for %s (not cached)", name)
	}
	return pulled, nil
}

// maxManifestMemo bounds the per-replica chunk-manifest memo (keyed by
// content hash; cleared wholesale when full).
const maxManifestMemo = 128

// FetchChunkManifest serves the chunk manifest of a package this
// replica serves — the same surface the origin exposes, so downstream
// replicas and clients diff against an edge exactly like against the
// origin.
func (rep *Replica) FetchChunkManifest(name string) (*store.ChunkManifest, error) {
	return rep.FetchChunkManifestCtx(context.Background(), name)
}

// FetchChunkManifestCtx is FetchChunkManifest under a caller context.
func (rep *Replica) FetchChunkManifestCtx(ctx context.Context, name string) (*store.ChunkManifest, error) {
	m, _, err := rep.chunkManifest(ctx, name)
	return m, err
}

// chunkManifest resolves the entry and manifest together so the HTTP
// handler tags the response with the entry's ETag — the same
// single-resolution discipline as the package handler.
func (rep *Replica) chunkManifest(ctx context.Context, name string) (*store.ChunkManifest, index.Entry, error) {
	entry, err := rep.resolveEntry(name)
	if err != nil {
		return nil, index.Entry{}, err
	}
	rep.manifestMu.Lock()
	m, ok := rep.manifests[entry.Hash]
	rep.manifestMu.Unlock()
	if ok {
		return m, entry, nil
	}
	raw, err := rep.fetchEntry(ctx, name, entry)
	if err != nil {
		return nil, index.Entry{}, err
	}
	m = store.BuildManifest(raw)
	if m.PackageHash != entry.Hash {
		// Reachable under Corrupt behavior: a manifest over corrupted
		// bytes would only mislead downstreams into useless range
		// fetches, so refuse — the client's full-fetch fallback hits the
		// same corruption and rejects it end-to-end.
		return nil, index.Entry{}, fmt.Errorf("edge: %s: served bytes do not match the index entry", name)
	}
	rep.manifestMu.Lock()
	if rep.manifests == nil || len(rep.manifests) >= maxManifestMemo {
		rep.manifests = make(map[[32]byte]*store.ChunkManifest)
	}
	rep.manifests[entry.Hash] = m
	rep.manifestMu.Unlock()
	return m, entry, nil
}

// FetchPackageRange serves length bytes of a package starting at off,
// sliced from verified bytes.
func (rep *Replica) FetchPackageRange(name string, off, length int64) ([]byte, error) {
	return rep.FetchPackageRangeCtx(context.Background(), name, off, length)
}

// FetchPackageRangeCtx is FetchPackageRange under a caller context.
func (rep *Replica) FetchPackageRangeCtx(ctx context.Context, name string, off, length int64) ([]byte, error) {
	entry, err := rep.resolveEntry(name)
	if err != nil {
		return nil, err
	}
	raw, err := rep.fetchEntry(ctx, name, entry)
	if err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off+length > int64(len(raw)) {
		return nil, fmt.Errorf("edge: package %s: range [%d,%d) outside %d bytes", name, off, off+length, len(raw))
	}
	return raw[off : off+length], nil
}

// openStream opens a cached package for streaming serving through
// hash-as-you-copy verification (tsr.NewVerifiedReader): cached bytes
// flow out without being buffered whole, and a tampered cache entry
// aborts the stream before the final block and is dropped so the next
// request heals via pull-through. ok=false (cache miss, non-streaming
// store, or a misbehaving replica simulating corruption, which needs
// the buffered path to flip its byte) sends the caller to fetchEntry.
func (rep *Replica) openStream(entry index.Entry) (io.ReadCloser, bool) {
	if rep.Behavior() != Honest {
		return nil, false
	}
	sr, ok := rep.store().(store.Streamer)
	if !ok {
		return nil, false
	}
	key := cacheKey(entry.Hash)
	rc, size, err := sr.Open(key)
	if err != nil {
		return nil, false
	}
	if size != entry.Size {
		rc.Close()
		return nil, false
	}
	rep.stats.packageReads.Add(1)
	rep.stats.packageHits.Add(1)
	rep.stats.streamedServes.Add(1)
	return tsr.NewVerifiedReader(rc, entry.Hash, func() {
		_ = rep.store().Delete(key)
	}), true
}
