package edge

import (
	"errors"
	"testing"
	"time"

	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/pkgmgr"
)

// twoEdges builds a synced pair of replicas: one near (Europe), one far
// (Asia).
func twoEdges(t *testing.T, w *edgeWorld) (near, far *Replica) {
	t.Helper()
	near = &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Europe}
	far = &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: netsim.Asia}
	for _, rep := range []*Replica{near, far} {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return near, far
}

func newClient(w *edgeWorld, eps ...Endpoint) *FailoverClient {
	return &FailoverClient{
		Local:     netsim.Europe,
		Link:      netsim.DefaultLinkModel(nil), // jitter-free: deterministic ranking
		Clock:     netsim.NewVirtualClock(time.Time{}),
		TrustRing: w.trust(),
		Endpoints: eps,
	}
}

func TestFailoverPrefersNearestEndpoint(t *testing.T) {
	w := newEdgeWorld(t)
	near, far := twoEdges(t, w)
	c := newClient(w,
		Endpoint{Name: "edge-asia", Continent: netsim.Asia, Fetcher: far},
		Endpoint{Name: "edge-eu", Continent: netsim.Europe, Fetcher: near},
		Endpoint{Name: "origin", Continent: netsim.Europe, Fetcher: w.tenant},
	)
	if _, err := c.FetchIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	// Both Europe endpoints tie on RTT; the stable sort keeps
	// configuration order, so the European edge (listed before the
	// origin) absorbs both requests and Asia is never contacted.
	if s.PerEndpoint["edge-eu"] != 2 || s.PerEndpoint["edge-asia"] != 0 || s.PerEndpoint["origin"] != 0 {
		t.Fatalf("per-endpoint = %v", s.PerEndpoint)
	}
	if s.Failovers != 0 {
		t.Fatalf("failovers = %d", s.Failovers)
	}
}

// TestFailoverRejectsStaleReplica: a frozen replica keeps serving a
// validly-signed but outdated index. Once the client has accepted a
// fresher sequence, the stale one is rejected by the freshness floor
// and the client fails over — the signature alone is not enough.
func TestFailoverRejectsStaleReplica(t *testing.T) {
	w := newEdgeWorld(t)
	near, far := twoEdges(t, w)

	// The far replica freezes at the current generation; the origin
	// moves on and the near replica follows.
	far.SetBehavior(Freeze)
	w.update(t, "app", "1.1-r0")
	if err := near.Sync(); err != nil {
		t.Fatal(err)
	}

	c := newClient(w,
		Endpoint{Name: "edge-eu", Continent: netsim.Europe, Fetcher: near},
		Endpoint{Name: "edge-asia-frozen", Continent: netsim.Asia, Fetcher: far},
	)
	// First read lands on the near honest edge and raises the floor.
	if _, err := c.FetchIndex(); err != nil {
		t.Fatal(err)
	}

	// Near edge goes down: the only reachable endpoint is the frozen
	// one. Its index verifies but is stale — the client must reject it
	// rather than silently accept the replay.
	near.SetBehavior(Offline)
	_, err := c.FetchIndex()
	if !errors.Is(err, ErrAllEndpointsFailed) || !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrAllEndpointsFailed wrapping ErrStale", err)
	}
	if s := c.Stats(); s.RejectedStale != 1 {
		t.Fatalf("stats = %+v, want RejectedStale=1", s)
	}

	// The near edge recovers: reads heal.
	near.SetBehavior(Honest)
	if _, err := c.FetchIndex(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverCorruptEdge: a tampering replica costs one failover and
// zero unverified bytes.
func TestFailoverCorruptEdge(t *testing.T) {
	w := newEdgeWorld(t)
	near, _ := twoEdges(t, w)
	near.SetBehavior(Corrupt)
	c := newClient(w,
		Endpoint{Name: "edge-eu-corrupt", Continent: netsim.Europe, Fetcher: near},
		Endpoint{Name: "origin", Continent: netsim.Europe, Fetcher: w.tenant},
	)
	raw, err := c.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := w.tenant.FetchPackage("app")
	if string(raw) != string(want) {
		t.Fatal("client returned bytes that differ from the origin's")
	}
	s := c.Stats()
	if s.RejectedBytes != 1 || s.Failovers != 1 || s.PerEndpoint["origin"] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The corrupt edge is demoted: the next package fetch goes straight
	// to the origin — RejectedBytes does not grow. (The edge's one
	// PerEndpoint credit is the initial *index* read: a Corrupt replica
	// only tampers with package bodies, and the signed index it relays
	// verifies fine.)
	if _, err := c.FetchPackage("lib"); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.RejectedBytes != 1 || s.PerEndpoint["origin"] != 2 {
		t.Fatalf("stats after demotion = %+v", s)
	}
}

// TestFailoverClientSurvivesOriginRefresh: a long-lived client holds an
// index generation from before an origin refresh. When a package's
// hash changes, every (honest, current) endpoint serves bytes that fail
// the stale entry's hash check — the client must revalidate its index
// and retry instead of demoting the whole fleet and failing.
func TestFailoverClientSurvivesOriginRefresh(t *testing.T) {
	w := newEdgeWorld(t)
	near, far := twoEdges(t, w)
	c := newClient(w,
		Endpoint{Name: "edge-eu", Continent: netsim.Europe, Fetcher: near},
		Endpoint{Name: "edge-asia", Continent: netsim.Asia, Fetcher: far},
	)
	before, err := c.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	// The origin republishes app (new hash); the fleet syncs; this
	// client still holds the old index.
	w.update(t, "app", "1.1-r0")
	for _, rep := range []*Replica{near, far} {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.FetchPackage("app")
	if err != nil {
		t.Fatalf("fetch across origin refresh: %v", err)
	}
	if string(after) == string(before) {
		t.Fatal("client served the old generation after the origin refreshed")
	}
}

// TestQuorumCrossCheck: with K=3 and one frozen replica, the quorum
// read converges on the agreement of the two honest edges, and the
// freshness floor it establishes protects later single reads too.
func TestQuorumCrossCheck(t *testing.T) {
	w := newEdgeWorld(t)
	reps := make([]*Replica, 3)
	conts := []netsim.Continent{netsim.Europe, netsim.NorthAmerica, netsim.Asia}
	for i := range reps {
		reps[i] = &Replica{RepoID: w.tenant.ID, Origin: w.tenant, Continent: conts[i]}
		if err := reps[i].Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// The NEAREST replica freezes — precisely the one a naive
	// latency-first client would trust.
	reps[0].SetBehavior(Freeze)
	w.update(t, "app", "1.1-r0")
	for _, rep := range reps[1:] {
		if err := rep.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	c := newClient(w,
		Endpoint{Name: "edge-eu-frozen", Continent: conts[0], Fetcher: reps[0]},
		Endpoint{Name: "edge-na", Continent: conts[1], Fetcher: reps[1]},
		Endpoint{Name: "edge-asia", Continent: conts[2], Fetcher: reps[2]},
	)
	c.QuorumK = 3
	signed, err := c.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := w.tenant.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if signed.ETag() != cur.ETag() {
		t.Fatalf("quorum agreed on %s, want current %s", signed.ETag(), cur.ETag())
	}
	// The floor from the quorum read now rejects the frozen replica
	// even in single-endpoint mode.
	c.QuorumK = 0
	reps[1].SetBehavior(Offline)
	reps[2].SetBehavior(Offline)
	if _, err := c.FetchIndex(); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale from the frozen replica", err)
	}
}

// TestFailoverClientDrivesPackageManager: the multi-endpoint client is
// a drop-in pkgmgr.Source — an OS installs through the edge tier
// unmodified.
func TestFailoverClientDrivesPackageManager(t *testing.T) {
	w := newEdgeWorld(t)
	near, far := twoEdges(t, w)
	c := newClient(w,
		Endpoint{Name: "edge-eu", Continent: netsim.Europe, Fetcher: near},
		Endpoint{Name: "edge-asia", Continent: netsim.Asia, Fetcher: far},
		Endpoint{Name: "origin", Continent: netsim.Europe, Fetcher: w.tenant},
	)
	img, err := osimage.New(keys.Shared.MustGet("edge-test-os-ak"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ring := w.trust()
	mgr := pkgmgr.New(img, c, ring, ring)
	if err := mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Install("app"); err != nil {
		t.Fatal(err)
	}
	if !img.FS.Exists("/usr/bin/app") {
		t.Fatal("binary missing after install through the edge tier")
	}
	s := c.Stats()
	if s.PerEndpoint["edge-eu"] == 0 {
		t.Fatalf("install bypassed the near edge: %v", s.PerEndpoint)
	}
}
