package edge

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"tsr/internal/index"
)

// TestEdgeServesIndexDelta verifies the edge's GET /index/delta: a
// downstream holding a retained generation gets a delta that
// reconstructs the current signed index byte-for-byte; the current
// generation answers 304; an unknown base answers 404 (full-fetch
// fallback).
func TestEdgeServesIndexDelta(t *testing.T) {
	w := newEdgeWorld(t)
	rep := &Replica{RepoID: "r", Origin: w.tenant, TrustRing: w.trust()}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	etag1 := rep.ETag()
	signed1 := mustSigned(t, rep)
	ix1, err := index.Decode(signed1.Raw)
	if err != nil {
		t.Fatal(err)
	}
	w.update(t, "app", "2.0-r0")
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	etag2 := rep.ETag()
	handler := Handler(map[string]*Replica{"r": rep}, "delta-edge")

	get := func(since string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		target := "/repos/r/index/delta?since=" + url.QueryEscape(since)
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		return rec
	}

	// Delta from the retained base generation.
	rec := get(etag1)
	if rec.Code != http.StatusOK {
		t.Fatalf("delta from gen-1: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	d, err := index.DecodeDelta(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	signed, ix, err := d.Apply(ix1)
	if err != nil {
		t.Fatal(err)
	}
	if signed.ETag() != etag2 {
		t.Fatalf("applied delta yields etag %s, want %s", signed.ETag(), etag2)
	}
	if _, err := ix.Lookup("app"); err != nil {
		t.Fatal(err)
	}

	// Current generation: 304.
	if rec := get(etag2); rec.Code != http.StatusNotModified {
		t.Fatalf("delta from current generation: HTTP %d, want 304", rec.Code)
	}
	// Unknown base: 404 → the client falls back to a full fetch.
	if rec := get(`"deadbeef"`); rec.Code != http.StatusNotFound {
		t.Fatalf("delta from unknown base: HTTP %d, want 404", rec.Code)
	}
	// Missing parameter: 400.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/repos/r/index/delta", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("delta without since: HTTP %d, want 400", rec.Code)
	}

	if s := rep.Stats(); s.DeltaReads < 2 {
		t.Fatalf("DeltaReads = %d, want ≥ 2 (one delta + one 304)", s.DeltaReads)
	}
}

// TestChainedReplicaDeltaSyncs verifies a replica can act as the
// origin of a downstream replica (the Origin interface is complete):
// after the first full sync, the downstream advances via deltas served
// by the upstream edge, not the origin.
func TestChainedReplicaDeltaSyncs(t *testing.T) {
	w := newEdgeWorld(t)
	upstream := &Replica{RepoID: "r", Origin: w.tenant, TrustRing: w.trust()}
	if err := upstream.Sync(); err != nil {
		t.Fatal(err)
	}
	downstream := &Replica{RepoID: "r", Origin: upstream, TrustRing: w.trust()}
	if err := downstream.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := downstream.Stats(); s.FullSyncs != 1 {
		t.Fatalf("first downstream sync: FullSyncs = %d, want 1", s.FullSyncs)
	}

	w.update(t, "lib", "2.0-r0")
	if err := upstream.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := downstream.Sync(); err != nil {
		t.Fatal(err)
	}
	s := downstream.Stats()
	if s.DeltaSyncs != 1 {
		t.Fatalf("second downstream sync: DeltaSyncs = %d (stats %+v), want 1 — the edge delta endpoint was not used", s.DeltaSyncs, s)
	}
	if up := upstream.Stats(); up.DeltaReads != 1 {
		t.Fatalf("upstream DeltaReads = %d, want 1", up.DeltaReads)
	}
	if downstream.ETag() != upstream.ETag() {
		t.Fatalf("downstream etag %s != upstream %s", downstream.ETag(), upstream.ETag())
	}
	// End to end: the downstream serves the new package, pulled through
	// the chain.
	raw, err := downstream.FetchPackage("lib")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty package through the chain")
	}
}
