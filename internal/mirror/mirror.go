// Package mirror implements repository mirrors (§2.1) including the
// Byzantine behaviors of the paper's threat model (§3.1, Figure 5): an
// adversary controlling a minority of mirrors can serve outdated signed
// indexes (replay attack), pretend updates do not exist (freeze attack),
// corrupt package bytes, or take mirrors offline.
package mirror

import (
	"errors"
	"fmt"
	"sync"

	"tsr/internal/index"
	"tsr/internal/netsim"
	"tsr/internal/repo"
)

// Error sentinels.
var (
	ErrOffline = errors.New("mirror: offline")
	ErrNoIndex = errors.New("mirror: mirror has no index yet")
)

// Behavior selects how a mirror (mis)behaves.
type Behavior int

const (
	// Honest mirrors serve the latest synced snapshot faithfully.
	Honest Behavior = iota
	// Replay mirrors keep serving the snapshot from before they turned
	// malicious: an outdated-but-correctly-signed view with known
	// vulnerabilities.
	Replay
	// Freeze mirrors stop syncing: they serve their current snapshot
	// forever, hiding the existence of updates.
	Freeze
	// Corrupt mirrors serve the current index but flip bits in package
	// bodies (e.g. the compromised phpMyAdmin mirror incident).
	Corrupt
	// Offline mirrors fail every request.
	Offline
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Replay:
		return "replay"
	case Freeze:
		return "freeze"
	case Corrupt:
		return "corrupt"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// Mirror is one repository mirror.
type Mirror struct {
	// Hostname identifies the mirror (matching the policy entry).
	Hostname string
	// Continent locates the mirror for the latency model.
	Continent netsim.Continent

	mu       sync.RWMutex
	behavior Behavior
	snap     *repo.Snapshot // latest synced state
	pinned   *repo.Snapshot // state served under Replay/Freeze
}

// New creates an honest mirror.
func New(hostname string, continent netsim.Continent) *Mirror {
	return &Mirror{Hostname: hostname, Continent: continent}
}

// SetBehavior switches the mirror's behavior. Switching to Replay or
// Freeze pins the currently synced snapshot as the stale view the
// adversary keeps serving.
func (m *Mirror) SetBehavior(b Behavior) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.behavior = b
	if b == Replay || b == Freeze {
		m.pinned = m.snap
	}
}

// Behavior returns the current behavior.
func (m *Mirror) Behavior() Behavior {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.behavior
}

// Sync pulls the latest snapshot from the original repository. Replay,
// Freeze and Offline mirrors record the new snapshot (so a later return
// to honesty is possible) but keep serving the pinned one.
func (m *Mirror) Sync(r *repo.Repository) {
	snap := r.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap = snap
	if m.pinned == nil {
		m.pinned = snap
	}
}

// serving returns the snapshot this mirror serves given its behavior.
// Caller must hold mu.
func (m *Mirror) serving() (*repo.Snapshot, error) {
	switch m.behavior {
	case Offline:
		return nil, fmt.Errorf("%w: %s", ErrOffline, m.Hostname)
	case Replay, Freeze:
		if m.pinned == nil {
			return nil, fmt.Errorf("%w: %s", ErrNoIndex, m.Hostname)
		}
		return m.pinned, nil
	default:
		if m.snap == nil {
			return nil, fmt.Errorf("%w: %s", ErrNoIndex, m.Hostname)
		}
		return m.snap, nil
	}
}

// FetchIndex returns the signed metadata index the mirror serves.
func (m *Mirror) FetchIndex() (*index.Signed, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap, err := m.serving()
	if err != nil {
		return nil, err
	}
	if snap.Signed == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoIndex, m.Hostname)
	}
	return snap.Signed.Clone(), nil
}

// FetchPackage returns the encoded bytes of the named package. Corrupt
// mirrors flip a byte in the body.
func (m *Mirror) FetchPackage(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap, err := m.serving()
	if err != nil {
		return nil, err
	}
	raw, ok := snap.Packages[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q on %s", repo.ErrNoPackage, name, m.Hostname)
	}
	out := append([]byte(nil), raw...)
	if m.behavior == Corrupt && len(out) > 0 {
		out[len(out)/2] ^= 0xFF
	}
	return out, nil
}
