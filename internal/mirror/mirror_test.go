package mirror

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"tsr/internal/apk"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/repo"
)

func setup(t *testing.T) (*repo.Repository, *Mirror) {
	t.Helper()
	r := repo.New("alpine-main", keys.Shared.MustGet("repo-index-signer"))
	p := &apk.Package{
		Name: "musl", Version: "1.1-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v1")}},
	}
	if err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
	m := New("https://mirror.example/", netsim.Europe)
	m.Sync(r)
	return r, m
}

func publishV2(t *testing.T, r *repo.Repository) {
	t.Helper()
	p := &apk.Package{
		Name: "musl", Version: "1.2-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v2 security fix")}},
	}
	if err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
}

func seqOf(t *testing.T, m *Mirror) uint64 {
	t.Helper()
	signed, err := m.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(keys.Shared.MustGet("repo-index-signer").Public())
	ix, err := signed.Verify(ring)
	if err != nil {
		t.Fatal(err)
	}
	return ix.Sequence
}

func TestHonestMirrorTracksRepo(t *testing.T) {
	r, m := setup(t)
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("seq = %d", got)
	}
	publishV2(t, r)
	m.Sync(r)
	if got := seqOf(t, m); got != 2 {
		t.Fatalf("seq after sync = %d", got)
	}
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.Fetch("musl")
	if !bytes.Equal(raw, want) {
		t.Fatal("mirror bytes differ from repo")
	}
}

func TestReplayMirrorServesStaleIndex(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Replay)
	publishV2(t, r)
	m.Sync(r) // adversary "syncs" but keeps serving the pinned snapshot
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("replay mirror served seq %d, want stale 1", got)
	}
	// The stale package is the vulnerable v1.
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	p, err := apk.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != "1.1-r0" {
		t.Fatalf("version = %s", p.Version)
	}
}

func TestFreezeMirrorNeverAdvances(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Freeze)
	for i := 0; i < 3; i++ {
		publishV2(t, r)
		m.Sync(r)
	}
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("freeze mirror served seq %d", got)
	}
}

func TestCorruptMirrorFlipsPackageBytes(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Corrupt)
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.Fetch("musl")
	if bytes.Equal(raw, want) {
		t.Fatal("corrupt mirror served clean bytes")
	}
	// The corruption is detectable: decode must fail (gzip/tar/hash).
	if _, err := apk.Decode(raw); err == nil {
		t.Fatal("corrupted package decoded cleanly")
	}
	// The index, however, is served intact (signature still valid).
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("seq = %d", got)
	}
}

func TestOfflineMirrorFailsRequests(t *testing.T) {
	_, m := setup(t)
	m.SetBehavior(Offline)
	if _, err := m.FetchIndex(); !errors.Is(err, ErrOffline) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.FetchPackage("musl"); !errors.Is(err, ErrOffline) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryToHonest(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Freeze)
	publishV2(t, r)
	m.Sync(r)
	m.SetBehavior(Honest)
	if got := seqOf(t, m); got != 2 {
		t.Fatalf("recovered mirror served seq %d", got)
	}
}

func TestUnsyncedMirror(t *testing.T) {
	m := New("https://empty/", netsim.Asia)
	if _, err := m.FetchIndex(); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchMissingPackage(t *testing.T) {
	_, m := setup(t)
	if _, err := m.FetchPackage("nothere"); !errors.Is(err, repo.ErrNoPackage) {
		t.Fatalf("err = %v", err)
	}
}

// TestReplayBeforeFirstSync: a mirror turned malicious before ever
// syncing has nothing to replay — requests fail with ErrNoIndex — and
// the first Sync pins that first snapshot as the stale view it keeps
// serving from then on.
func TestReplayBeforeFirstSync(t *testing.T) {
	r := repo.New("alpine-main", keys.Shared.MustGet("repo-index-signer"))
	p := &apk.Package{
		Name: "musl", Version: "1.1-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v1")}},
	}
	if err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
	m := New("https://mirror.example/", netsim.Europe)
	m.SetBehavior(Replay)
	if _, err := m.FetchIndex(); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("pre-sync replay err = %v, want ErrNoIndex", err)
	}
	if _, err := m.FetchPackage("musl"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("pre-sync replay err = %v, want ErrNoIndex", err)
	}
	m.Sync(r)
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("seq = %d, want the first synced snapshot", got)
	}
	publishV2(t, r)
	m.Sync(r)
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("seq = %d, want the pinned first snapshot", got)
	}
}

// TestReplayToHonestRecovery: a replay mirror that returns to honesty
// serves the latest synced snapshot again (Sync kept recording new
// snapshots underneath the pinned one).
func TestReplayToHonestRecovery(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Replay)
	publishV2(t, r)
	m.Sync(r)
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("replaying seq = %d", got)
	}
	m.SetBehavior(Honest)
	if got := seqOf(t, m); got != 2 {
		t.Fatalf("recovered seq = %d, want latest", got)
	}
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.Fetch("musl")
	if !bytes.Equal(raw, want) {
		t.Fatal("recovered mirror still serves stale bytes")
	}
}

// TestCorruptTinyPackages: the corruption byte-flip on the smallest
// possible bodies — a 1-byte package must come back flipped, and an
// empty package must not panic.
func TestCorruptTinyPackages(t *testing.T) {
	r := repo.New("alpine-main", keys.Shared.MustGet("repo-index-signer"))
	if err := r.PublishRaw("tiny", "1.0-r0", nil, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishRaw("empty", "1.0-r0", nil, nil); err != nil {
		t.Fatal(err)
	}
	m := New("https://mirror.example/", netsim.Europe)
	m.Sync(r)
	m.SetBehavior(Corrupt)
	raw, err := m.FetchPackage("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 || raw[0] != 0x42^0xFF {
		t.Fatalf("tiny = %x, want the single byte flipped", raw)
	}
	if raw, err = m.FetchPackage("empty"); err != nil || len(raw) != 0 {
		t.Fatalf("empty = %x, %v", raw, err)
	}
}

// TestConcurrentFetchDuringSyncAndBehaviorFlips hammers the mirror's
// read path while snapshots and behaviors change — the mirror-side
// analogue of TSR's reads-during-refresh guarantee (run under -race).
func TestConcurrentFetchDuringSyncAndBehaviorFlips(t *testing.T) {
	r, m := setup(t)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := m.FetchIndex(); err != nil && !errors.Is(err, ErrOffline) {
					t.Errorf("FetchIndex: %v", err)
					return
				}
				if _, err := m.FetchPackage("musl"); err != nil && !errors.Is(err, ErrOffline) {
					t.Errorf("FetchPackage: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		publishV2(t, r)
		m.Sync(r)
		m.SetBehavior(Behavior(i % 5))
	}
	m.SetBehavior(Honest)
	close(done)
	wg.Wait()
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{
		Honest: "honest", Replay: "replay", Freeze: "freeze",
		Corrupt: "corrupt", Offline: "offline", Behavior(9): "Behavior(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q", int(b), got)
		}
	}
}
