package mirror

import (
	"bytes"
	"errors"
	"testing"

	"tsr/internal/apk"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/repo"
)

func setup(t *testing.T) (*repo.Repository, *Mirror) {
	t.Helper()
	r := repo.New("alpine-main", keys.Shared.MustGet("repo-index-signer"))
	p := &apk.Package{
		Name: "musl", Version: "1.1-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v1")}},
	}
	if err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
	m := New("https://mirror.example/", netsim.Europe)
	m.Sync(r)
	return r, m
}

func publishV2(t *testing.T, r *repo.Repository) {
	t.Helper()
	p := &apk.Package{
		Name: "musl", Version: "1.2-r0",
		Files: []apk.File{{Path: "/lib/libc.so", Mode: 0o755, Content: []byte("v2 security fix")}},
	}
	if err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
}

func seqOf(t *testing.T, m *Mirror) uint64 {
	t.Helper()
	signed, err := m.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ring := keys.NewRing(keys.Shared.MustGet("repo-index-signer").Public())
	ix, err := signed.Verify(ring)
	if err != nil {
		t.Fatal(err)
	}
	return ix.Sequence
}

func TestHonestMirrorTracksRepo(t *testing.T) {
	r, m := setup(t)
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("seq = %d", got)
	}
	publishV2(t, r)
	m.Sync(r)
	if got := seqOf(t, m); got != 2 {
		t.Fatalf("seq after sync = %d", got)
	}
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.Fetch("musl")
	if !bytes.Equal(raw, want) {
		t.Fatal("mirror bytes differ from repo")
	}
}

func TestReplayMirrorServesStaleIndex(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Replay)
	publishV2(t, r)
	m.Sync(r) // adversary "syncs" but keeps serving the pinned snapshot
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("replay mirror served seq %d, want stale 1", got)
	}
	// The stale package is the vulnerable v1.
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	p, err := apk.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != "1.1-r0" {
		t.Fatalf("version = %s", p.Version)
	}
}

func TestFreezeMirrorNeverAdvances(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Freeze)
	for i := 0; i < 3; i++ {
		publishV2(t, r)
		m.Sync(r)
	}
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("freeze mirror served seq %d", got)
	}
}

func TestCorruptMirrorFlipsPackageBytes(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Corrupt)
	raw, err := m.FetchPackage("musl")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.Fetch("musl")
	if bytes.Equal(raw, want) {
		t.Fatal("corrupt mirror served clean bytes")
	}
	// The corruption is detectable: decode must fail (gzip/tar/hash).
	if _, err := apk.Decode(raw); err == nil {
		t.Fatal("corrupted package decoded cleanly")
	}
	// The index, however, is served intact (signature still valid).
	if got := seqOf(t, m); got != 1 {
		t.Fatalf("seq = %d", got)
	}
}

func TestOfflineMirrorFailsRequests(t *testing.T) {
	_, m := setup(t)
	m.SetBehavior(Offline)
	if _, err := m.FetchIndex(); !errors.Is(err, ErrOffline) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.FetchPackage("musl"); !errors.Is(err, ErrOffline) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryToHonest(t *testing.T) {
	r, m := setup(t)
	m.SetBehavior(Freeze)
	publishV2(t, r)
	m.Sync(r)
	m.SetBehavior(Honest)
	if got := seqOf(t, m); got != 2 {
		t.Fatalf("recovered mirror served seq %d", got)
	}
}

func TestUnsyncedMirror(t *testing.T) {
	m := New("https://empty/", netsim.Asia)
	if _, err := m.FetchIndex(); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchMissingPackage(t *testing.T) {
	_, m := setup(t)
	if _, err := m.FetchPackage("nothere"); !errors.Is(err, repo.ErrNoPackage) {
		t.Fatalf("err = %v", err)
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{
		Honest: "honest", Replay: "replay", Freeze: "freeze",
		Corrupt: "corrupt", Offline: "offline", Behavior(9): "Behavior(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q", int(b), got)
		}
	}
}
