package attest

import (
	"errors"
	"testing"

	"tsr/internal/ima"
	"tsr/internal/keys"
	"tsr/internal/osimage"
	"tsr/internal/tpm"
)

func newImage(t *testing.T) *osimage.Image {
	t.Helper()
	img, err := osimage.New(keys.Shared.MustGet("os-ak"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func baseVerifier(t *testing.T, img *osimage.Image) *Verifier {
	t.Helper()
	distro := keys.Shared.MustGet("distro-signer")
	v := NewVerifier(img.TPM.AttestationKey(), keys.NewRing(distro.Public()))
	return v
}

// measureBase measures the golden image and whitelists it.
func measureBase(t *testing.T, img *osimage.Image, v *Verifier) {
	t.Helper()
	if err := img.IMA.MeasureTree("/etc"); err != nil {
		t.Fatal(err)
	}
	v.WhitelistImage(img)
}

func TestCleanSystemAttests(t *testing.T) {
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	res, err := v.Attest(img)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("violations on clean system: %+v", res.Violations())
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
}

func TestUnknownFileIsViolation(t *testing.T) {
	// Figure 1's true positive: software tampered by an adversary.
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	if err := img.FS.WriteFile("/usr/bin/backdoor", []byte("evil"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := img.IMA.MeasureFile("/usr/bin/backdoor"); err != nil {
		t.Fatal(err)
	}
	res, err := v.Attest(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("backdoor accepted")
	}
	viol := res.Violations()
	if len(viol) != 1 || viol[0].Path != "/usr/bin/backdoor" || viol[0].Reason != ViolationUnknownHash {
		t.Fatalf("violations = %+v", viol)
	}
}

func TestUpdateWithoutSignaturesIsFalsePositive(t *testing.T) {
	// Figure 1's false positive: a legitimate update changes hashes the
	// verifier does not know.
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	// Legitimate update: new binary version, no IMA signature.
	if err := img.FS.WriteFile("/usr/bin/openssl", []byte("openssl 1.1.1g security fix"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := img.IMA.MeasureFile("/usr/bin/openssl"); err != nil {
		t.Fatal(err)
	}
	res, err := v.Attest(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("expected the false positive without TSR")
	}
}

func TestSignedUpdateAccepted(t *testing.T) {
	// With per-file signatures from a trusted key (what TSR injects),
	// the same update attests cleanly: no false positive.
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	tsrKey := keys.Shared.MustGet("tsr-signing-key")
	v.TrustKey(tsrKey.Public())

	content := []byte("openssl 1.1.1g security fix")
	sig, err := ima.SignFileDigest(tsrKey, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.FS.WriteFile("/usr/bin/openssl", content, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := img.FS.SetXattr("/usr/bin/openssl", ima.XattrIMA, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := img.IMA.MeasureFile("/usr/bin/openssl"); err != nil {
		t.Fatal(err)
	}
	res, err := v.Attest(img)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("signed update rejected: %+v", res.Violations())
	}
	// The finding records which key vouched.
	var found bool
	for _, f := range res.Findings {
		if f.Path == "/usr/bin/openssl" {
			found = true
			if f.Reason != AcceptedSignature || f.KeyName != tsrKey.Name {
				t.Fatalf("finding = %+v", f)
			}
		}
	}
	if !found {
		t.Fatal("no finding for updated file")
	}
}

func TestRogueSignatureIsViolation(t *testing.T) {
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	rogue := keys.Shared.MustGet("rogue-signer")
	content := []byte("evil")
	sig, err := ima.SignFileDigest(rogue, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.FS.WriteFile("/usr/bin/evil", content, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := img.FS.SetXattr("/usr/bin/evil", ima.XattrIMA, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := img.IMA.MeasureFile("/usr/bin/evil"); err != nil {
		t.Fatal(err)
	}
	res, err := v.Attest(img)
	if err != nil {
		t.Fatal(err)
	}
	viol := res.Violations()
	if len(viol) != 1 || viol[0].Reason != ViolationBadSignature {
		t.Fatalf("violations = %+v", viol)
	}
}

func TestEvaluateRejectsTamperedLog(t *testing.T) {
	// An adversary with root rewrites the IMA log to hide a measurement
	// — but cannot rewind the TPM PCR, so replay fails.
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	if err := img.FS.WriteFile("/usr/bin/backdoor", []byte("evil"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := img.IMA.MeasureFile("/usr/bin/backdoor"); err != nil {
		t.Fatal(err)
	}
	nonce := []byte("challenge")
	quote, err := img.TPM.Quote(nonce, tpm.PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	log := img.IMA.Log()
	scrubbed := log[:len(log)-1] // hide the backdoor measurement
	if _, err := v.Evaluate(quote, nonce, scrubbed); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v", err)
	}
}

func TestEvaluateRejectsForgedQuote(t *testing.T) {
	img := newImage(t)
	v := baseVerifier(t, img)
	measureBase(t, img, v)
	otherTPM := tpm.New(keys.Shared.MustGet("other-ak"))
	nonce := []byte("challenge")
	quote, err := otherTPM.Quote(nonce, tpm.PCRIMA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Evaluate(quote, nonce, nil); !errors.Is(err, ErrQuote) {
		t.Fatalf("err = %v", err)
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		AcceptedSignature:     "accepted (trusted signature)",
		AcceptedWhitelist:     "accepted (whitelisted hash)",
		ViolationUnknownHash:  "violation (unknown measurement)",
		ViolationBadSignature: "violation (untrusted signature)",
		Reason(9):             "Reason(9)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q", int(r), got)
		}
	}
}
