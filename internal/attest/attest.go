// Package attest implements the integrity monitoring system (Figure 1,
// Figure 6 component B): it remotely attests an integrity-enforced OS by
// obtaining a TPM quote over PCR 10, replaying the IMA measurement log
// against the quoted PCR, and then judging every measured file.
//
// A file is accepted if
//   - its IMA signature verifies against a trusted key (the distribution
//     key or, after TSR deployment, the TSR repository key), or
//   - its content hash appears in the whitelist of the known base image.
//
// Everything else is a violation. Without TSR, a legitimate software
// update produces violations — the false positives of Figure 1 — which
// the examples and experiments demonstrate.
package attest

import (
	"crypto/rand"
	"errors"
	"fmt"

	"tsr/internal/ima"
	"tsr/internal/keys"
	"tsr/internal/osimage"
	"tsr/internal/tpm"
)

// Error sentinels.
var (
	ErrQuote  = errors.New("attest: quote verification failed")
	ErrReplay = errors.New("attest: IMA log does not replay to quoted PCR")
)

// Reason classifies why a file was accepted or rejected.
type Reason int

const (
	// AcceptedSignature: a trusted key signed the file's content.
	AcceptedSignature Reason = iota
	// AcceptedWhitelist: the content hash is in the known-good list.
	AcceptedWhitelist
	// ViolationUnknownHash: no signature and hash not whitelisted.
	ViolationUnknownHash
	// ViolationBadSignature: carries a signature no trusted key made.
	ViolationBadSignature
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case AcceptedSignature:
		return "accepted (trusted signature)"
	case AcceptedWhitelist:
		return "accepted (whitelisted hash)"
	case ViolationUnknownHash:
		return "violation (unknown measurement)"
	case ViolationBadSignature:
		return "violation (untrusted signature)"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Finding is the verdict for one IMA log entry.
type Finding struct {
	Path   string
	Reason Reason
	// KeyName names the verifying key for AcceptedSignature.
	KeyName string
}

// Result of one attestation round.
type Result struct {
	// OK is true when no violations were found.
	OK bool
	// Findings holds one verdict per measured file.
	Findings []Finding
}

// Violations returns the subset of findings that are violations.
func (r *Result) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Reason == ViolationUnknownHash || f.Reason == ViolationBadSignature {
			out = append(out, f)
		}
	}
	return out
}

// Verifier is a monitoring system instance.
type Verifier struct {
	// AIK is the attestation key of the monitored machine's TPM.
	AIK *keys.Public
	// Trusted verifies per-file IMA signatures (distribution + TSR keys).
	Trusted *keys.Ring
	// Whitelist holds known-good file content hashes (the golden image).
	Whitelist map[[32]byte]bool
}

// NewVerifier creates a verifier with an empty whitelist.
func NewVerifier(aik *keys.Public, trusted *keys.Ring) *Verifier {
	return &Verifier{AIK: aik, Trusted: trusted, Whitelist: make(map[[32]byte]bool)}
}

// WhitelistImage adds the current content hashes of every measured file
// in the image's IMA log — the "list of approved software" a verifier
// provisions from the golden image before deployment.
func (v *Verifier) WhitelistImage(img *osimage.Image) {
	for _, e := range img.IMA.Log() {
		v.Whitelist[e.FileHash] = true
	}
}

// TrustKey adds a key to the trusted signature ring — the §4.5 step of
// "adjusting integrity monitoring systems configuration to trust TSR
// signing key".
func (v *Verifier) TrustKey(k *keys.Public) {
	if v.Trusted == nil {
		v.Trusted = keys.NewRing()
	}
	v.Trusted.Add(k)
}

// Attest runs one remote attestation round against the image: nonce
// challenge, TPM quote over PCR 10, log replay, per-entry judgment.
func (v *Verifier) Attest(img *osimage.Image) (*Result, error) {
	nonce := make([]byte, 20)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("attest: nonce: %w", err)
	}
	quote, err := img.TPM.Quote(nonce, tpm.PCRIMA)
	if err != nil {
		return nil, fmt.Errorf("attest: quoting: %w", err)
	}
	log := img.IMA.Log()
	return v.Evaluate(quote, nonce, log)
}

// Evaluate verifies a quote + log pair (already transported from the
// remote machine) and judges every entry.
func (v *Verifier) Evaluate(quote *tpm.Quote, nonce []byte, log []ima.Entry) (*Result, error) {
	if err := quote.Verify(v.AIK, nonce); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrQuote, err)
	}
	quoted, ok := quote.PCRs[tpm.PCRIMA]
	if !ok {
		return nil, fmt.Errorf("%w: quote lacks PCR %d", ErrQuote, tpm.PCRIMA)
	}
	if ima.ReplayPCR(log) != quoted {
		return nil, ErrReplay
	}
	res := &Result{OK: true}
	for _, e := range log {
		f := Finding{Path: e.Path}
		switch {
		case e.Sig != nil:
			if keyName, err := v.Trusted.VerifyAnyDigest(e.FileHash, e.Sig); err == nil {
				f.Reason = AcceptedSignature
				f.KeyName = keyName
			} else if v.Whitelist[e.FileHash] {
				f.Reason = AcceptedWhitelist
			} else {
				f.Reason = ViolationBadSignature
				res.OK = false
			}
		case v.Whitelist[e.FileHash]:
			f.Reason = AcceptedWhitelist
		default:
			f.Reason = ViolationUnknownHash
			res.OK = false
		}
		res.Findings = append(res.Findings, f)
	}
	return res, nil
}
