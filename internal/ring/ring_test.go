package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("r%016x", i*2654435761)
	}
	return out
}

func TestDeterministicAndOrderIndependent(t *testing.T) {
	a := New(64, "n1", "n2", "n3")
	b := New(64, "n3", "n1", "n2", "n2", "")
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs across node orderings", k)
		}
	}
	if got := a.Owner("rdeadbeef"); got != a.Owner("rdeadbeef") {
		t.Fatalf("owner not stable: %s", got)
	}
}

func TestBalance(t *testing.T) {
	r := New(0, "n1", "n2", "n3", "n4")
	count := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		count[r.Owner(k)]++
	}
	want := len(ks) / 4
	for node, c := range count {
		if c < want/2 || c > want*2 {
			t.Fatalf("node %s owns %d of %d keys (mean %d): imbalanced", node, c, len(ks), want)
		}
	}
	if len(count) != 4 {
		t.Fatalf("only %d of 4 nodes own keys", len(count))
	}
}

// TestMinimalDisruption is the consistent-hashing property: growing a
// 4-node ring to 5 re-homes roughly 1/5 of the keys and never moves a
// key between two surviving nodes.
func TestMinimalDisruption(t *testing.T) {
	before := New(0, "n1", "n2", "n3", "n4")
	after := New(0, "n1", "n2", "n3", "n4", "n5")
	ks := keys(4000)
	moved := 0
	for _, k := range ks {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != "n5" {
			t.Fatalf("key %s moved %s -> %s: surviving nodes must keep their keys", k, was, is)
		}
	}
	frac := float64(moved) / float64(len(ks))
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("adding 1 of 5 nodes moved %.0f%% of keys, want ~20%%", frac*100)
	}
}

func TestOwnersRankingDistinctAndStable(t *testing.T) {
	r := New(32, "n1", "n2", "n3")
	owners := r.Owners("r0011223344556677", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %v, want all 3 distinct nodes", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate node in ranking %v", owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("r0011223344556677") {
		t.Fatal("Owners[0] disagrees with Owner")
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(8)
	if r.Owner("k") != "" || r.Owners("k", 2) != nil {
		t.Fatal("empty ring must own nothing")
	}
}
