// Package ring implements the consistent-hash ring tsrrouter uses to
// shard tenant repositories across tsrd instances. Repo IDs hash onto
// a circle of virtual node points; a repo belongs to the first node
// clockwise from its hash. Virtual replicas smooth the load split, and
// the defining property holds: adding or removing one node moves only
// ~1/N of the keyspace, so a scale-out event re-homes a bounded slice
// of tenants instead of reshuffling the fleet.
//
// The ring is a pure routing function — deterministic from (nodes,
// replicas) — so every router instance, and any client that learns the
// backend list, computes identical placements with no coordination.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring. Build with New; a Ring is
// safe for concurrent use.
type Ring struct {
	nodes  []string
	points []point
}

type point struct {
	hash uint64
	node int // index into nodes
}

// DefaultReplicas is the virtual-node count used when New is given
// replicas <= 0. 128 points per node keeps the max/mean key imbalance
// within ~20% for small fleets.
const DefaultReplicas = 128

// New builds a ring over nodes with the given number of virtual
// replicas per node. Duplicate and empty node names are dropped.
func New(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for i, n := range r.nodes {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the distinct node names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct nodes in ring order starting at the
// key's owner — the failover ranking: if owners[0] is unhealthy, the
// key re-homes to owners[1], and so on.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// hash64 is FNV-1a with a splitmix64 finalizer: raw FNV of short,
// similar strings ("n1#0", "n1#1", ...) clusters on the circle, which
// skews ownership badly; the avalanche pass spreads the points.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
