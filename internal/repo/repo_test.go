package repo

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"tsr/internal/apk"
	"tsr/internal/keys"
)

func testRepo(t *testing.T) *Repository {
	t.Helper()
	return New("alpine-main", keys.Shared.MustGet("repo-index-signer"))
}

func pkg(name, version string, deps ...string) *apk.Package {
	return &apk.Package{
		Name:    name,
		Version: version,
		Depends: deps,
		Files:   []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + version)}},
	}
}

func TestPublishAndFetch(t *testing.T) {
	r := testRepo(t)
	if err := r.Publish(pkg("musl", "1.1-r0"), pkg("zlib", "1.2-r0", "musl")); err != nil {
		t.Fatal(err)
	}
	raw, err := r.Fetch("musl")
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := apk.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "musl" {
		t.Fatalf("decoded = %s", decoded.Name)
	}
	if _, err := r.Fetch("missing"); !errors.Is(err, ErrNoPackage) {
		t.Fatalf("err = %v", err)
	}
}

func TestIndexTracksPublications(t *testing.T) {
	r := testRepo(t)
	if r.SignedIndex() != nil {
		t.Fatal("index before first publish")
	}
	if err := r.Publish(pkg("musl", "1.1-r0")); err != nil {
		t.Fatal(err)
	}
	ix := r.Index()
	if ix.Sequence != 1 || len(ix.Entries) != 1 {
		t.Fatalf("index = %+v", ix)
	}
	// Version update: replaces the entry, bumps the sequence.
	if err := r.Publish(pkg("musl", "1.2-r0")); err != nil {
		t.Fatal(err)
	}
	ix = r.Index()
	if ix.Sequence != 2 || len(ix.Entries) != 1 {
		t.Fatalf("index = %+v", ix)
	}
	e, err := ix.Lookup("musl")
	if err != nil || e.Version != "1.2-r0" {
		t.Fatalf("entry = %+v, %v", e, err)
	}
}

func TestIndexEntryMatchesWire(t *testing.T) {
	r := testRepo(t)
	if err := r.Publish(pkg("musl", "1.1-r0")); err != nil {
		t.Fatal(err)
	}
	raw, err := r.Fetch("musl")
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Index().Lookup("musl")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != int64(len(raw)) {
		t.Fatalf("size = %d, want %d", e.Size, len(raw))
	}
	if e.Hash != sha256.Sum256(raw) {
		t.Fatal("hash mismatch")
	}
}

func TestSignedIndexVerifies(t *testing.T) {
	r := testRepo(t)
	if err := r.Publish(pkg("musl", "1.1-r0")); err != nil {
		t.Fatal(err)
	}
	signed := r.SignedIndex()
	ring := keys.NewRing(r.IndexKey())
	ix, err := signed.Verify(ring)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Origin != "alpine-main" {
		t.Fatalf("origin = %q", ix.Origin)
	}
}

func TestPublishRaw(t *testing.T) {
	r := testRepo(t)
	raw := []byte("opaque sanitized package bytes")
	if err := r.PublishRaw("custom", "2.0-r1", []string{"musl"}, raw); err != nil {
		t.Fatal(err)
	}
	got, err := r.Fetch("custom")
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("fetch = %v, %v", got, err)
	}
	e, err := r.Index().Lookup("custom")
	if err != nil || e.Version != "2.0-r1" || e.Depends[0] != "musl" {
		t.Fatalf("entry = %+v, %v", e, err)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	r := testRepo(t)
	if err := r.Publish(pkg("musl", "1.1-r0")); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	seqBefore := mustDecodeSeq(t, snap)
	// Later publication must not affect the snapshot.
	if err := r.Publish(pkg("zlib", "1.2-r0")); err != nil {
		t.Fatal(err)
	}
	if got := mustDecodeSeq(t, snap); got != seqBefore {
		t.Fatalf("snapshot sequence changed: %d -> %d", seqBefore, got)
	}
	if len(snap.Packages) != 1 {
		t.Fatalf("snapshot packages = %d", len(snap.Packages))
	}
}

func mustDecodeSeq(t *testing.T, s *Snapshot) uint64 {
	t.Helper()
	ring := keys.NewRing(keys.Shared.MustGet("repo-index-signer").Public())
	ix, err := s.Signed.Verify(ring)
	if err != nil {
		t.Fatal(err)
	}
	return ix.Sequence
}
