// Package repo implements the original software repository (§2.1): the
// root of trust for software updates, owned by the OS distribution
// community. It stores encoded packages, maintains the signed metadata
// index (with an increasing sequence number per publication), and hands
// immutable snapshots to mirrors.
package repo

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/keys"
)

// ErrNoPackage is returned when a requested package is not in the
// repository.
var ErrNoPackage = errors.New("repo: no such package")

// Repository is the original repository. All methods are safe for
// concurrent use.
type Repository struct {
	origin string
	signer *keys.Pair

	mu       sync.RWMutex
	packages map[string][]byte // name -> encoded package (current version)
	idx      *index.Index
	signed   *index.Signed
}

// New creates an empty repository. origin names it in the index; signer
// is the distribution's index signing key.
func New(origin string, signer *keys.Pair) *Repository {
	return &Repository{
		origin:   origin,
		signer:   signer,
		packages: make(map[string][]byte),
		idx:      &index.Index{Origin: origin, Sequence: 0},
	}
}

// Origin returns the repository's origin name.
func (r *Repository) Origin() string { return r.origin }

// IndexKey returns the public index signing key end users trust.
func (r *Repository) IndexKey() *keys.Public { return r.signer.Public() }

// Publish encodes and stores packages, updates the index, and re-signs
// it with an incremented sequence number. Publishing an already-present
// package name replaces it (a version update).
func (r *Repository) Publish(pkgs ...*apk.Package) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range pkgs {
		raw, err := apk.Encode(p)
		if err != nil {
			return fmt.Errorf("repo: publishing %s: %w", p.Name, err)
		}
		r.packages[p.Name] = raw
		r.idx.Add(index.Entry{
			Name:    p.Name,
			Version: p.Version,
			Size:    int64(len(raw)),
			Hash:    sha256.Sum256(raw),
			Depends: append([]string(nil), p.Depends...),
		})
	}
	return r.resignLocked()
}

// PublishRaw stores an already-encoded package under the given identity.
// TSR uses this path to publish sanitized packages it re-encoded itself.
func (r *Repository) PublishRaw(name, version string, depends []string, raw []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packages[name] = append([]byte(nil), raw...)
	r.idx.Add(index.Entry{
		Name:    name,
		Version: version,
		Size:    int64(len(raw)),
		Hash:    sha256.Sum256(raw),
		Depends: append([]string(nil), depends...),
	})
	return r.resignLocked()
}

// resignLocked bumps the sequence and re-signs the index. Caller holds mu.
func (r *Repository) resignLocked() error {
	r.idx.Sequence++
	signed, err := index.Sign(r.idx, r.signer)
	if err != nil {
		return fmt.Errorf("repo: signing index: %w", err)
	}
	r.signed = signed
	return nil
}

// SignedIndex returns the current signed index. It is nil until the
// first Publish.
func (r *Repository) SignedIndex() *index.Signed {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.signed == nil {
		return nil
	}
	return r.signed.Clone()
}

// Index returns a decoded copy of the current index.
func (r *Repository) Index() *index.Index {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cp := *r.idx
	cp.Entries = append([]index.Entry(nil), r.idx.Entries...)
	return &cp
}

// Fetch returns the encoded bytes of the named package.
func (r *Repository) Fetch(name string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	raw, ok := r.packages[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPackage, name)
	}
	return append([]byte(nil), raw...), nil
}

// Snapshot captures the repository state at a point in time; mirrors
// serve snapshots.
type Snapshot struct {
	Signed   *index.Signed
	Packages map[string][]byte
}

// Snapshot returns an immutable copy of the current state.
func (r *Repository) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{Packages: make(map[string][]byte, len(r.packages))}
	if r.signed != nil {
		s.Signed = r.signed.Clone()
	}
	for name, raw := range r.packages {
		s.Packages[name] = append([]byte(nil), raw...)
	}
	return s
}
