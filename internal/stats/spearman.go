package stats

import (
	"fmt"
	"math"
	"sort"
)

// Correlation is the result of a Spearman rank correlation test, the
// statistic Table 4 reports ("Spearman rank correlation coefficients (ρ)
// ... corresponding p values").
type Correlation struct {
	Rho float64
	P   float64
	N   int
}

// Significance classifies the p value the way Table 4's typography does:
// "p<0.001" (bold grey), "p<0.05" (grey), or "n.s.".
func (c Correlation) Significance() string {
	switch {
	case c.P < 0.001:
		return "p<0.001"
	case c.P < 0.05:
		return "p<0.05"
	default:
		return "n.s."
	}
}

// String renders the coefficient with its significance class.
func (c Correlation) String() string {
	return fmt.Sprintf("ρ=%+.2f (%s, n=%d)", c.Rho, c.Significance(), c.N)
}

// Spearman computes the Spearman rank correlation between xs and ys,
// handling ties by midranking, with a Student-t approximation for the
// p value (two-sided).
func Spearman(xs, ys []float64) (Correlation, error) {
	if len(xs) != len(ys) {
		return Correlation{}, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 3 {
		return Correlation{}, fmt.Errorf("stats: need at least 3 samples, have %d", n)
	}
	rx := midranks(xs)
	ry := midranks(ys)
	rho, err := pearson(rx, ry)
	if err != nil {
		return Correlation{}, err
	}
	p := spearmanP(rho, n)
	return Correlation{Rho: rho, P: p, N: n}, nil
}

// midranks converts values to ranks, assigning tied values the mean of the
// ranks they span.
func midranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// ranks are 1-based; ties get the midrank of positions i..j.
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}

// pearson computes the Pearson correlation of xs and ys.
func pearson(xs, ys []float64) (float64, error) {
	mx, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// spearmanP approximates the two-sided p value of a Spearman coefficient
// via the t distribution with n-2 degrees of freedom.
func spearmanP(rho float64, n int) float64 {
	if math.Abs(rho) >= 1 {
		return 0
	}
	df := float64(n - 2)
	t := rho * math.Sqrt(df/(1-rho*rho))
	return 2 * studentTSF(math.Abs(t), df)
}

// studentTSF returns P(T > t) for the Student t distribution with df
// degrees of freedom, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
