// Package stats implements the statistical summaries the paper's
// evaluation uses: percentiles and violin summaries (Figures 8-12),
// trimmed means (§6.1's "20% trimmed mean from six independent experiment
// executions"), Spearman rank correlations with significance levels
// (Table 4), and simple density histograms (Figures 10-11).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ErrEmpty is returned by summaries that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0, 100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MustPercentile is Percentile for callers that have already validated
// their input; it panics on error.
func MustPercentile(xs []float64, p float64) float64 {
	v, err := Percentile(xs, p)
	if err != nil {
		panic(err)
	}
	return v
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// TrimmedMean returns the mean of xs after removing the lowest and highest
// frac fraction of samples (frac = 0.2 reproduces the paper's "20% trimmed
// mean"). frac must be in [0, 0.5).
func TrimmedMean(xs []float64, frac float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if frac < 0 || frac >= 0.5 {
		return 0, fmt.Errorf("stats: trim fraction %v out of range [0, 0.5)", frac)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	k := int(float64(len(s)) * frac)
	s = s[k : len(s)-k]
	return Mean(s)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Summary holds the five percentiles the paper's boxplots annotate
// ("Boxplots indicate 5th, 25th, 50th, 75th, and 95th percentile")
// plus mean, min, max and sample count.
type Summary struct {
	N                                int
	Min, P5, P25, P50, P75, P95, Max float64
	Mean                             float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mean, _ := Mean(s)
	return Summary{
		N:    len(s),
		Min:  s[0],
		P5:   MustPercentile(s, 5),
		P25:  MustPercentile(s, 25),
		P50:  MustPercentile(s, 50),
		P75:  MustPercentile(s, 75),
		P95:  MustPercentile(s, 95),
		Max:  s[len(s)-1],
		Mean: mean,
	}, nil
}

// String renders the summary on one line with millisecond-style precision
// left to the caller's units.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p5=%.4g p25=%.4g p50=%.4g p75=%.4g p95=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.P5, s.P25, s.P50, s.P75, s.P95, s.Max, s.Mean)
}

// DurationSummary is Summarize over time.Durations, reported in
// milliseconds (the unit used throughout the paper's evaluation).
func DurationSummary(ds []time.Duration) (Summary, error) {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(xs)
}

// Ratio divides two summaries percentile-by-percentile, producing the
// "overhead factor" rows of Figure 12 (e.g. 1.18x at the 50th percentile).
func Ratio(num, den Summary) Summary {
	div := func(a, b float64) float64 {
		if b == 0 {
			return math.Inf(1)
		}
		return a / b
	}
	return Summary{
		N:    num.N,
		Min:  div(num.Min, den.Min),
		P5:   div(num.P5, den.P5),
		P25:  div(num.P25, den.P25),
		P50:  div(num.P50, den.P50),
		P75:  div(num.P75, den.P75),
		P95:  div(num.P95, den.P95),
		Max:  div(num.Max, den.Max),
		Mean: div(num.Mean, den.Mean),
	}
}

// Histogram is a fixed-bin density estimate used to render the density
// plots of Figures 10 and 11 as text.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]).
	Edges  []float64
	Counts []int
	total  int
}

// NewLogHistogram builds a histogram with logarithmically spaced bins
// between lo and hi (both must be > 0), matching the log-scaled x axes of
// the paper's latency plots.
func NewLogHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if lo <= 0 || hi <= lo || bins < 1 {
		return nil, fmt.Errorf("stats: invalid log histogram [%v, %v] bins=%d", lo, hi, bins)
	}
	h := &Histogram{Edges: make([]float64, bins+1), Counts: make([]int, bins)}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := 0; i <= bins; i++ {
		h.Edges[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(bins))
	}
	return h, nil
}

// Add records x. Values outside the edge range are clamped to the first or
// last bin so tail samples remain visible.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := sort.SearchFloat64s(h.Edges, x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Render draws the histogram as rows of "edge | bar" text with the given
// maximum bar width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%12.4g %s %d\n", h.Edges[i], strings.Repeat("#", bar), c)
	}
	return b.String()
}
