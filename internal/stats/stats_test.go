package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		got, err := Percentile([]float64{7}, p)
		if err != nil || got != 7 {
			t.Fatalf("Percentile([7], %v) = %v, %v", p, got, err)
		}
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(xs []float64, p uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		pp := float64(p % 101)
		v, err := Percentile(xs, pp)
		if err != nil {
			return false
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return v >= s[0] && v <= s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrimmedMean(t *testing.T) {
	// With 20% trim on 10 samples, the 2 smallest and 2 largest drop.
	xs := []float64{1000, 1, 2, 3, 4, 5, 6, 7, 8, -1000}
	got, err := TrimmedMean(xs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 + 3 + 4 + 5 + 6 + 7) / 6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TrimmedMean = %v, want %v", got, want)
	}
}

func TestTrimmedMeanRejectsBadFrac(t *testing.T) {
	for _, f := range []float64{-0.1, 0.5, 0.9} {
		if _, err := TrimmedMean([]float64{1, 2}, f); err == nil {
			t.Errorf("frac=%v: want error", f)
		}
	}
}

func TestTrimmedMeanZeroTrimIsMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tm, err := TrimmedMean(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Mean(xs)
	if tm != m {
		t.Fatalf("TrimmedMean(0) = %v, Mean = %v", tm, m)
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Error("single sample: want error")
	}
}

func TestSummarizeOrdering(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1000 {
		t.Fatalf("N = %d", s.N)
	}
	order := []float64{s.Min, s.P5, s.P25, s.P50, s.P75, s.P95, s.Max}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("percentiles out of order: %v", order)
		}
	}
	if s.Min != 0 || s.Max != 999 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestDurationSummaryUnits(t *testing.T) {
	s, err := DurationSummary([]time.Duration{time.Second, time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 1000 {
		t.Fatalf("mean = %v ms, want 1000", s.Mean)
	}
}

func TestRatio(t *testing.T) {
	num := Summary{P50: 118, P75: 112, Mean: 143}
	den := Summary{P50: 100, P75: 100, Mean: 100}
	r := Ratio(num, den)
	if math.Abs(r.P50-1.18) > 1e-9 || math.Abs(r.Mean-1.43) > 1e-9 {
		t.Fatalf("Ratio = %+v", r)
	}
	if !math.IsInf(Ratio(Summary{P50: 1}, Summary{}).P50, 1) {
		t.Fatal("division by zero should yield +Inf")
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	c, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Rho-1) > 1e-12 {
		t.Fatalf("rho = %v, want 1", c.Rho)
	}
	if c.P > 0.001 {
		t.Fatalf("p = %v, want < 0.001", c.P)
	}
	if c.Significance() != "p<0.001" {
		t.Fatalf("sig = %q", c.Significance())
	}
}

func TestSpearmanAntiMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{5, 4, 3, 2, 1}
	c, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Rho+1) > 1e-12 {
		t.Fatalf("rho = %v, want -1", c.Rho)
	}
}

func TestSpearmanNonlinearMonotone(t *testing.T) {
	// Spearman sees through monotone nonlinearity (unlike Pearson).
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	c, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Rho-1) > 1e-12 {
		t.Fatalf("rho = %v, want 1", c.Rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3}
	ys := []float64{1, 2, 3, 4, 5, 6}
	c, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rho <= 0.9 || c.Rho > 1 {
		t.Fatalf("rho with ties = %v, want (0.9, 1]", c.Rho)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ys := []float64{5, 1, 9, 2, 8, 3, 10, 4, 6, 7}
	c, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Rho) > 0.6 {
		t.Fatalf("rho = %v, want near 0", c.Rho)
	}
	if c.P < 0.05 {
		t.Fatalf("p = %v, want not significant", c.P)
	}
	if c.Significance() != "n.s." {
		t.Fatalf("sig = %q", c.Significance())
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n<3: want error")
	}
	if _, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance: want error")
	}
}

func TestSpearmanSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 10
		}
		for i := range xs {
			xs[i] = next()
			ys[i] = next()
		}
		a, errA := Spearman(xs, ys)
		b, errB := Spearman(ys, xs)
		if errA != nil || errB != nil {
			return true // degenerate draw (all ties); nothing to check
		}
		return math.Abs(a.Rho-b.Rho) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTSFKnownValues(t *testing.T) {
	// P(T > 2.228) with 10 df ~= 0.025 (classic t-table value).
	got := studentTSF(2.228, 10)
	if math.Abs(got-0.025) > 0.002 {
		t.Fatalf("studentTSF(2.228, 10) = %v, want ~0.025", got)
	}
	// P(T > 0) = 0.5 for any df.
	if g := studentTSF(0, 5); math.Abs(g-0.5) > 1e-9 {
		t.Fatalf("studentTSF(0, 5) = %v", g)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 {
		t.Error("I_0 != 0")
	}
	if regIncBeta(2, 3, 1) != 1 {
		t.Error("I_1 != 1")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(0.001, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Edges) != 5 || len(h.Counts) != 4 {
		t.Fatalf("edges/counts = %d/%d", len(h.Edges), len(h.Counts))
	}
	h.Add(0.002)
	h.Add(5)
	h.Add(1e9)   // clamps to last bin
	h.Add(1e-12) // clamps to first bin
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[3] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if out := h.Render(20); out == "" {
		t.Fatal("empty render")
	}
}

func TestLogHistogramErrors(t *testing.T) {
	if _, err := NewLogHistogram(0, 1, 4); err == nil {
		t.Error("lo=0: want error")
	}
	if _, err := NewLogHistogram(1, 1, 4); err == nil {
		t.Error("hi=lo: want error")
	}
	if _, err := NewLogHistogram(1, 2, 0); err == nil {
		t.Error("bins=0: want error")
	}
}

func TestMidranksTies(t *testing.T) {
	r := midranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("midranks = %v, want %v", r, want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "p50=2") {
		t.Fatalf("String() = %q", out)
	}
}

func TestCorrelationString(t *testing.T) {
	c := Correlation{Rho: 0.61, P: 0.0001, N: 100}
	out := c.String()
	if !strings.Contains(out, "+0.61") || !strings.Contains(out, "p<0.001") {
		t.Fatalf("String() = %q", out)
	}
}

func TestTrimmedMeanMatchesPaperMethodology(t *testing.T) {
	// §6.1 uses a "20% trimmed mean from six independent experiment
	// executions": with six samples, the lowest and highest drop.
	samples := []float64{100, 10, 11, 12, 13, 1}
	got, err := TrimmedMean(samples, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := (10.0 + 11 + 12 + 13) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("trimmed mean = %v, want %v", got, want)
	}
}
