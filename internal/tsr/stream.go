package tsr

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"tsr/internal/index"
	"tsr/internal/store"
)

// Origin-side wire efficiency (ROADMAP item 4): chunk manifests for
// differential sync, byte-range reads, and streaming package serving.
// All of it is derived from — and re-verified against — the published
// snapshot's signed index; nothing here adds trusted state.

// maxManifestMemo bounds the per-repo manifest memo. Manifests are
// keyed by content hash, so the memo survives republishes of unchanged
// packages; when it fills, it is cleared wholesale (the next requests
// rebuild — manifests are cheap relative to a package fetch).
const maxManifestMemo = 128

// FetchChunkManifest returns the chunk manifest of a served package:
// content-defined chunk boundaries plus per-chunk SHA-256, rooted in
// the signed entry via PackageHash. Memoized per content hash.
func (r *Repo) FetchChunkManifest(name string) (*store.ChunkManifest, error) {
	return r.FetchChunkManifestCtx(context.Background(), name)
}

// FetchChunkManifestCtx is FetchChunkManifest under a caller context.
func (r *Repo) FetchChunkManifestCtx(ctx context.Context, name string) (*store.ChunkManifest, error) {
	m, _, err := r.chunkManifest(ctx, name)
	return m, err
}

// chunkManifest resolves the entry and manifest together, so the HTTP
// handler tags the response with the entry's ETag.
func (r *Repo) chunkManifest(ctx context.Context, name string) (*store.ChunkManifest, index.Entry, error) {
	snap := r.served.Load()
	if snap == nil {
		return nil, index.Entry{}, ErrNotInitialized
	}
	entry, err := snap.local.Lookup(name)
	if err != nil {
		return nil, index.Entry{}, err
	}
	r.manifestMu.Lock()
	m, ok := r.manifests[entry.Hash]
	r.manifestMu.Unlock()
	if ok {
		r.totals.manifestReads.Add(1)
		return m, entry, nil
	}
	raw, _, err := r.FetchPackageTracedCtx(ctx, name)
	if err != nil {
		return nil, index.Entry{}, err
	}
	m = store.BuildManifest(raw)
	if m.PackageHash != entry.Hash {
		// FetchPackage verified the bytes against the entry, so this is
		// only reachable when the snapshot advanced between the lookup
		// and the fetch; the caller retries.
		return nil, index.Entry{}, fmt.Errorf("%w: %s: snapshot changed during manifest build", index.ErrNotFound, name)
	}
	r.manifestMu.Lock()
	if r.manifests == nil || len(r.manifests) >= maxManifestMemo {
		r.manifests = make(map[[32]byte]*store.ChunkManifest)
	}
	r.manifests[entry.Hash] = m
	r.manifestMu.Unlock()
	r.totals.manifestReads.Add(1)
	return m, entry, nil
}

// FetchPackageRange returns length bytes of the package starting at
// off, sliced from verified bytes — the in-process origin side of
// chunk-aware edge sync.
func (r *Repo) FetchPackageRange(name string, off, length int64) ([]byte, error) {
	return r.FetchPackageRangeCtx(context.Background(), name, off, length)
}

// FetchPackageRangeCtx is FetchPackageRange under a caller context.
func (r *Repo) FetchPackageRangeCtx(ctx context.Context, name string, off, length int64) ([]byte, error) {
	raw, _, err := r.FetchPackageTracedCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off+length > int64(len(raw)) {
		return nil, fmt.Errorf("tsr: package %s: range [%d,%d) outside %d bytes", name, off, off+length, len(raw))
	}
	r.totals.rangeReads.Add(1)
	return append([]byte(nil), raw[off:off+length]...), nil
}

// PackageStream is one package opened for streaming serving.
type PackageStream struct {
	io.ReadCloser
	Size int64
	Res  *FetchResult
}

// OpenPackageCtx opens a package for streaming: when the sanitized
// cache store can stream (store.Streamer) and holds the entry, the
// bytes flow from the store through hash-as-you-copy verification
// (NewVerifiedReader) without ever being buffered whole; a mid-stream
// tamper surfaces as an error before the final block is released, and
// the poisoned cache entry is dropped so the next request heals via
// re-sanitization. Every other case (cache miss, CacheNone, pinned
// versions, non-streaming store) falls back to the buffered —
// already verified — serve path.
func (r *Repo) OpenPackageCtx(ctx context.Context, name string) (*PackageStream, error) {
	start := time.Now()
	if snap := r.served.Load(); snap != nil && snap.mode == CacheBoth {
		if sr, ok := r.svc.cfg.Store.(store.Streamer); ok {
			if entry, err := snap.local.Lookup(name); err == nil {
				key := r.sanitizedKey(name, entry.Hash)
				if rc, size, err := sr.Open(key); err == nil {
					if size == entry.Size {
						r.totals.packageReads.Add(1)
						r.totals.streamedServes.Add(1)
						vr := NewVerifiedReader(rc, entry.Hash, func() {
							_ = r.svc.cfg.Store.Delete(key)
						})
						return &PackageStream{
							ReadCloser: vr,
							Size:       size,
							Res: &FetchResult{
								From:    ServedSanitizedCache,
								Latency: time.Since(start),
								ETag:    entry.ETag(),
							},
						}, nil
					}
					rc.Close()
				}
			}
		}
	}
	raw, res, err := r.FetchPackageTracedCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	return &PackageStream{
		ReadCloser: io.NopCloser(bytes.NewReader(raw)),
		Size:       int64(len(raw)),
		Res:        res,
	}, nil
}
