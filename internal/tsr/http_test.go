package tsr

import "testing"

// TestETagMatch covers RFC 9110 §13.1.2 If-None-Match semantics: `*`,
// comma-separated lists, weak-prefix-insensitive comparison, and opaque
// tags containing commas (legal etagc characters a naive comma split
// would mangle).
func TestETagMatch(t *testing.T) {
	const etag = `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{`"abc123"`, true},
		{`  "abc123"  `, true},
		{"*", true},
		{"  *  ", true},
		{`W/"abc123"`, true}, // weak comparison ignores the prefix
		{`"zzz", "abc123"`, true},
		{`"zzz","abc123"`, true},
		{`"zzz" , W/"abc123" , "yyy"`, true},
		{`"zzz", "yyy"`, false},
		{`"abc1234"`, false},
		{`abc123`, false},   // unquoted token is a different opaque tag
		{`"abc123`, false},  // unterminated quote: one malformed token
		{`"*"`, false},      // a quoted asterisk is a tag, not the wildcard
		{`"zzz", *`, false}, // `*` is only valid as the entire field value
		{`W/"zzz","abc123"`, true},
	}
	for _, tc := range cases {
		if got := ETagMatch(tc.header, etag); got != tc.want {
			t.Errorf("ETagMatch(%q, %q) = %v, want %v", tc.header, etag, got, tc.want)
		}
	}

	// Tags containing commas survive list splitting.
	const commaTag = `"a,b,c"`
	if !ETagMatch(`"x,y", "a,b,c"`, commaTag) {
		t.Errorf("comma-bearing tag not matched in a list")
	}
	if ETagMatch(`"a", "b,c"`, commaTag) {
		t.Errorf("split fragments of a comma-bearing tag must not match")
	}
}
