package tsr

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/keys"
)

// encodePkg signs and encodes a package with the world's distribution
// key (ingested packages pass the same signer-ring verification as
// mirror downloads).
func (w *world) encodePkg(t *testing.T, p *apk.Package) []byte {
	t.Helper()
	if err := apk.Sign(p, w.signer); err != nil {
		t.Fatal(err)
	}
	raw, err := apk.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestRepoIDsSorted pins the RepoIDs ordering contract: callers
// (auto-refresh scheduling, /stats, CLI output) rely on a
// deterministic, sorted listing.
func TestRepoIDsSorted(t *testing.T) {
	w := newWorld(t, 3)
	for i := 0; i < 6; i++ {
		w.deploy(t)
	}
	ids := w.svc.RepoIDs()
	if len(ids) != 6 {
		t.Fatalf("deployed 6, listed %d", len(ids))
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("RepoIDs not sorted: %v", ids)
	}
}

func TestDeployPolicyID(t *testing.T) {
	w := newWorld(t, 3)
	const want = "r00112233aabbccdd"
	id, _, _, err := w.svc.DeployPolicyID(w.policy, want)
	if err != nil {
		t.Fatal(err)
	}
	if id != want {
		t.Fatalf("id = %q, want %q", id, want)
	}
	if _, _, _, err := w.svc.DeployPolicyID(w.policy, want); err == nil {
		t.Fatal("duplicate id accepted")
	}
	for _, bad := range []string{"r0011", "x00112233aabbccdd", "r00112233AABBCCDD", "r00112233aabbccdd0"} {
		if _, _, _, err := w.svc.DeployPolicyID(w.policy, bad); err == nil {
			t.Fatalf("malformed id %q accepted", bad)
		}
	}
}

func TestRegisterPackagesIngest(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("upstream-pkg", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	batch := [][]byte{
		w.encodePkg(t, pkgWithScript("private-tool", "2.0-r0", "")),
		w.encodePkg(t, pkgWithScript("upstream-pkg", "9.9-r9", "")), // shadows upstream
		w.encodePkg(t, pkgWithScript("private-bad", "1.0-r0", "add-shell /bin/zsh\n")),
		[]byte("not a package"),
	}
	stats, err := r.RegisterPackages(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Received != 4 || stats.Registered != 1 || stats.Sanitized != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.Rejected) != 3 {
		t.Fatalf("rejected = %v", stats.Rejected)
	}

	// The ingested package serves like any sanitized package and
	// verifies against the repository key.
	raw, err := r.FetchPackage("private-tool")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := apk.VerifyRaw(raw, keys.NewRing(r.PublicKey())); err != nil {
		t.Fatal(err)
	}
	// The upstream package was not clobbered by the shadowing attempt.
	ix, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ix.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	if e, err := decoded.Lookup("upstream-pkg"); err != nil || e.Version != "1.0-r0" {
		t.Fatalf("upstream-pkg entry = %+v, %v", e, err)
	}

	// Re-registering the identical batch is a pure cache hit and does
	// not bump the published sequence.
	seqBefore := stats.Sequence
	again, err := r.RegisterPackages(context.Background(), batch[:1])
	if err != nil {
		t.Fatal(err)
	}
	if again.Registered != 1 || again.CacheHits != 1 || again.Sanitized != 0 {
		t.Fatalf("replayed stats = %+v", again)
	}
	if again.Sequence != seqBefore {
		t.Fatalf("idempotent re-register bumped sequence %d -> %d", seqBefore, again.Sequence)
	}

	// The registration survives the next refresh: the upstream diff
	// does not list private-tool, but the index keeps serving it.
	w.publish(t, pkgWithScript("upstream-two", "1.0-r0", ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FetchPackage("private-tool"); err != nil {
		t.Fatalf("registered package lost across refresh: %v", err)
	}
	if got := r.CacheStats().Ingested; got != 2 {
		t.Fatalf("ingested counter = %d, want 2", got)
	}
	regs := r.RegisteredPackages()
	if len(regs) != 1 || regs[0].Name != "private-tool" {
		t.Fatalf("registered entries = %+v", regs)
	}
}

// TestIngestCrashReplay is the acceptance crash shape: the batch is
// journaled (StageIngest), the process "crashes" before any effect
// lands, and a warm restart over the same store replays the batch to
// completion.
func TestIngestCrashReplay(t *testing.T) {
	st := NewMemStore()
	hostTPM := tpmForTest(t)
	w := newWorldCfg(t, 3, worldCfg{store: st, tpm: hostTPM, autoPersist: true})
	w.publish(t, pkgWithScript("base", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := r.StageIngest([][]byte{w.encodePkg(t, pkgWithScript("crashy", "1.0-r0", ""))}); err != nil {
		t.Fatal(err)
	}
	// Crash: the journal holds the intent, nothing was applied.
	if _, err := r.FetchPackage("crashy"); err == nil {
		t.Fatal("staged batch must not be visible before restart")
	}

	w2 := newWorldCfg(t, 3, worldCfg{store: st, tpm: hostTPM, platform: w.svc.cfg.Platform, autoPersist: true})
	restored, err := w2.svc.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || !restored[0].Warm {
		t.Fatalf("restored = %+v", restored)
	}
	if restored[0].ReplayedIngests != 1 || restored[0].ReplayErr != nil {
		t.Fatalf("replay outcome = %+v", restored[0])
	}
	r2, err := w2.svc.Repo(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r2.FetchPackage("crashy")
	if err != nil {
		t.Fatalf("replayed package not served: %v", err)
	}
	if _, _, err := apk.VerifyRaw(raw, keys.NewRing(r2.PublicKey())); err != nil {
		t.Fatal(err)
	}
	// The journal drained: a third boot replays nothing.
	w3 := newWorldCfg(t, 3, worldCfg{store: st, tpm: hostTPM, platform: w.svc.cfg.Platform, autoPersist: true})
	restored3, err := w3.svc.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if restored3[0].ReplayedIngests != 0 {
		t.Fatalf("journal not drained: %+v", restored3[0])
	}
	// The registration is in the sealed checkpoint, not just the
	// journal: it survives further restarts on its own.
	r3, err := w3.svc.Repo(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.FetchPackage("crashy"); err != nil {
		t.Fatalf("registration lost after journal drain: %v", err)
	}
}

func TestIngestHTTPAndServiceStats(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("base", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	cl := &http.Client{Timeout: 10 * time.Second}

	body := EncodeIngestBody([][]byte{w.encodePkg(t, pkgWithScript("pushed", "1.0-r0", ""))})
	resp, err := cl.Post(srv.URL+"/repos/"+r.ID+"/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %s", resp.Status)
	}
	var stats IngestStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Registered != 1 {
		t.Fatalf("ingest stats = %+v", stats)
	}
	if _, err := r.FetchPackage("pushed"); err != nil {
		t.Fatal(err)
	}

	// Malformed body is a 400, not a panic or a partial apply.
	resp2, err := cl.Post(srv.URL+"/repos/"+r.ID+"/ingest", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage ingest status = %s", resp2.Status)
	}

	// Service-level stats aggregate per-tenant counters and expose the
	// scheduler snapshot.
	resp3, err := cl.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var svcStats ServiceStats
	if err := json.NewDecoder(resp3.Body).Decode(&svcStats); err != nil {
		t.Fatal(err)
	}
	if len(svcStats.Repos) != 1 {
		t.Fatalf("stats repos = %v", svcStats.Repos)
	}
	if svcStats.Totals.Ingested != 1 || svcStats.Repos[r.ID].Ingested != 1 {
		t.Fatalf("totals = %+v", svcStats.Totals)
	}
	if svcStats.Sched.CompletedInteractive == 0 {
		t.Fatalf("sched snapshot missing completions: %+v", svcStats.Sched)
	}

	// Router-chosen placement: POST /policies?id= deploys under the
	// requested id; malformed ids are refused.
	resp4, err := cl.Post(srv.URL+"/policies?id=rfeedfacefeedface", "application/x-yaml", bytes.NewReader(w.policy))
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var dep struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := json.NewDecoder(resp4.Body).Decode(&dep); err != nil {
		t.Fatal(err)
	}
	if dep.RepositoryID != "rfeedfacefeedface" {
		t.Fatalf("deployed id = %q", dep.RepositoryID)
	}
	resp5, err := cl.Post(srv.URL+"/policies?id=bogus", "application/x-yaml", bytes.NewReader(w.policy))
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus id status = %s", resp5.Status)
	}
}

// TestUndeployRemovesTenant covers the tenant-churn shape fleet soak
// composes: deploy, ingest, undeploy — durable state and pending
// journal entries must go with the tenant.
func TestUndeployRemovesTenant(t *testing.T) {
	st := NewMemStore()
	w := newWorldCfg(t, 3, worldCfg{store: st, autoPersist: true})
	w.publish(t, pkgWithScript("base", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := r.StageIngest([][]byte{w.encodePkg(t, pkgWithScript("pend", "1.0-r0", ""))}); err != nil {
		t.Fatal(err)
	}
	if err := w.svc.Undeploy(r.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := w.svc.Repo(r.ID); !errors.Is(err, ErrNoRepo) {
		t.Fatalf("repo still resolvable: %v", err)
	}
	if err := w.svc.Undeploy(r.ID); !errors.Is(err, ErrNoRepo) {
		t.Fatalf("double undeploy = %v", err)
	}
	if _, err := st.Get(MetaStoreKey(r.ID)); err == nil {
		t.Fatal("meta blob survived undeploy")
	}
	if _, err := st.Get(StateStoreKey(r.ID)); err == nil {
		t.Fatal("state blob survived undeploy")
	}
	pending, err := w.svc.journal.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("%d journal entries survived undeploy", len(pending))
	}
}

// TestSchedBoundsConcurrentTenants drives many tenants' refreshes
// through a small global pool concurrently (run under -race in CI) and
// asserts the worker bound and that every tenant completes — the
// no-starvation contract at the tsr layer.
func TestSchedBoundsConcurrentTenants(t *testing.T) {
	w := newWorldCfg(t, 3, worldCfg{workers: 4, refreshWorkers: 4, schedMaxActive: 2})
	var pkgs []*apk.Package
	for i := 0; i < 12; i++ {
		pkgs = append(pkgs, pkgWithScript(fmt.Sprintf("pkg%02d", i), "1.0-r0", ""))
	}
	w.publish(t, pkgs...)
	const tenants = 6
	repos := make([]*Repo, tenants)
	for i := range repos {
		repos[i] = w.deploy(t)
	}
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i, r := range repos {
		wg.Add(1)
		go func(i int, r *Repo) {
			defer wg.Done()
			_, errs[i] = r.RefreshBackgroundCtx(context.Background())
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d refresh: %v", i, err)
		}
	}
	snap := w.svc.Scheduler().Snapshot()
	if snap.PeakSlots > 4 {
		t.Fatalf("global worker bound exceeded: peak %d > 4", snap.PeakSlots)
	}
	if snap.PeakActive > 2 {
		t.Fatalf("active bound exceeded: peak %d > 2", snap.PeakActive)
	}
	if snap.CompletedBackground != tenants {
		t.Fatalf("completed = %d, want %d", snap.CompletedBackground, tenants)
	}
	if len(snap.Tenants) != tenants {
		t.Fatalf("per-tenant stats for %d tenants, want %d", len(snap.Tenants), tenants)
	}
	for _, ts := range snap.Tenants {
		if ts.Run.Count == 0 {
			t.Fatalf("tenant %s has no recorded run time", ts.Tenant)
		}
	}
	// Each tenant's index came out complete despite slot contention.
	for _, r := range repos {
		ix, err := r.FetchIndex()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := ix.Verify(keys.NewRing(r.PublicKey()))
		if err != nil {
			t.Fatal(err)
		}
		if len(decoded.Entries) != 12 {
			t.Fatalf("tenant %s index has %d entries", r.ID, len(decoded.Entries))
		}
	}
}
