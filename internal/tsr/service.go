package tsr

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/sched"
	"tsr/internal/store"
	"tsr/internal/tpm"
)

// CodeIdentity is the enclave code identity (MRENCLAVE source) of this
// TSR build; OS owners verify it during policy deployment (Figure 7).
const CodeIdentity = "tsr-v1.0"

// Error sentinels.
var (
	ErrNoRepo         = errors.New("tsr: unknown repository id")
	ErrNoMirror       = errors.New("tsr: policy mirror not resolvable")
	ErrNotInitialized = errors.New("tsr: repository not initialized (no refresh yet)")
)

// Config wires a Service to its environment.
type Config struct {
	// Platform is the SGX platform TSR launches on.
	Platform *enclave.Platform
	// TPM provides the monotonic counters for rollback protection.
	TPM *tpm.TPM
	// Clock and Link model network time; Local locates the TSR host
	// (Europe in the paper's deployment).
	Clock netsim.Clock
	Link  *netsim.LinkModel
	Local netsim.Continent
	// Store is the untrusted package cache.
	Store Store
	// Resolve maps a policy mirror to a live connection.
	Resolve func(m policy.Mirror) (quorum.Source, PackageFetcher, error)
	// EPC selects the SGX cost model; zero value disables it (the
	// "TSR without SGX" baseline of Figure 12).
	EPC enclave.CostModel
	// Workers bounds EACH repository's refresh pipeline concurrency:
	// a refresh downloads originals and sanitizes packages in batches
	// of up to Workers goroutines. 0 or 1 runs the paper's sequential
	// prototype.
	Workers int
	// RefreshWorkers bounds the GLOBAL refresh slot pool shared by
	// every tenant (see internal/sched): the sum of all tenants'
	// in-flight pipeline goroutines never exceeds it. 0 = unbounded,
	// leaving the per-repo Workers cap as the only limit — the
	// historical single-tenant behaviour.
	RefreshWorkers int
	// SchedMaxActive bounds how many refresh/ingest jobs run
	// concurrently through the scheduler; queued jobs are admitted in
	// weighted-fair order with operator (Interactive) priority first.
	// 0 = unbounded.
	SchedMaxActive int
	// AutoPersist journals sealed repository metadata (at DeployPolicy)
	// and sealed state checkpoints (after every successful Refresh)
	// into the Store, so a restarted service warm-boots via RestoreAll.
	// Requires a Store that implements store.Iterable (both MemStore
	// and store.FS do); pointless without a durable Store.
	AutoPersist bool
}

// PackageFetcher downloads one package from a mirror.
type PackageFetcher interface {
	FetchPackage(name string) ([]byte, error)
}

// Service is a running TSR instance.
type Service struct {
	cfg     Config
	enclave *enclave.Enclave
	sched   *sched.Scheduler
	// journal is the crash-safe bulk-ingest intent log (nil unless
	// AutoPersist): each RegisterPackages call appends its payload
	// before any effect lands and commits after the sealed checkpoint,
	// so a crash mid-ingest replays to completion on the next boot.
	journal *store.Journal

	mu    sync.RWMutex
	repos map[string]*Repo
}

// ingestJournalPrefix keys journaled bulk-ingest intents; it lives
// outside every repository's "<id>/..." cache namespace, like
// tsrmeta/ and tsrstate/.
const ingestJournalPrefix = "tsringest/"

// New launches TSR inside an enclave on the given platform.
func New(cfg Config) (*Service, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("tsr: config requires a platform")
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.RealClock{}
	}
	enc := cfg.Platform.Launch(enclave.MeasureCode(CodeIdentity))
	s := &Service{
		cfg:     cfg,
		enclave: enc,
		sched:   sched.New(sched.Config{Workers: cfg.RefreshWorkers, MaxActive: cfg.SchedMaxActive}),
		repos:   make(map[string]*Repo),
	}
	if cfg.AutoPersist {
		j, err := store.OpenJournal(cfg.Store, ingestJournalPrefix)
		if err != nil {
			return nil, fmt.Errorf("tsr: opening ingest journal: %w", err)
		}
		s.journal = j
	}
	return s, nil
}

// Scheduler exposes the global refresh scheduler (stats, weights).
func (s *Service) Scheduler() *sched.Scheduler { return s.sched }

// Measurement returns the enclave measurement OS owners expect.
func Measurement() enclave.Measurement { return enclave.MeasureCode(CodeIdentity) }

// Attest produces an enclave report binding reportData (e.g. the hash
// of a freshly returned public key) to the TSR code identity.
func (s *Service) Attest(reportData [64]byte) (*enclave.Report, error) {
	return s.enclave.Attest(reportData)
}

// repoIDPattern is the only id shape DeployPolicyID accepts from a
// caller: the exact format DeployPolicy itself generates. Routers rely
// on this to pre-compute a repo's shard placement before deploying it.
var repoIDPattern = regexp.MustCompile(`^r[0-9a-f]{16}$`)

// DeployPolicy validates a policy, creates the tenant repository with a
// fresh signing key generated inside the enclave, and returns the
// repository id, the public signing key (PEM), and an attestation
// report over the key — the Figure 7 protocol.
func (s *Service) DeployPolicy(raw []byte) (repoID string, publicKeyPEM []byte, report *enclave.Report, err error) {
	return s.DeployPolicyID(raw, "")
}

// DeployPolicyID is DeployPolicy with a caller-chosen repository id
// (sharding routers pick the id first so its ring placement is known
// up front). An empty id generates one; a non-empty id must match the
// generated format and be unused.
func (s *Service) DeployPolicyID(raw []byte, id string) (repoID string, publicKeyPEM []byte, report *enclave.Report, err error) {
	pol, err := policy.Parse(raw)
	if err != nil {
		return "", nil, nil, err
	}
	if err := pol.Validate(); err != nil {
		return "", nil, nil, err
	}
	if id != "" {
		if !repoIDPattern.MatchString(id) {
			return "", nil, nil, fmt.Errorf("tsr: repository id %q must match %s", id, repoIDPattern)
		}
		repoID = id
	} else {
		var idBytes [8]byte
		if _, err := rand.Read(idBytes[:]); err != nil {
			return "", nil, nil, fmt.Errorf("tsr: repository id: %w", err)
		}
		repoID = "r" + hex.EncodeToString(idBytes[:])
	}
	s.mu.RLock()
	_, taken := s.repos[repoID]
	s.mu.RUnlock()
	if taken {
		return "", nil, nil, fmt.Errorf("tsr: repository id %q already deployed", repoID)
	}

	signKey, err := keys.Generate("tsr-" + repoID)
	if err != nil {
		return "", nil, nil, err
	}
	repo, err := newRepo(repoID, pol, signKey, s)
	if err != nil {
		return "", nil, nil, err
	}
	if s.cfg.AutoPersist {
		// Journal the repository's identity before announcing it: a
		// deploy that cannot be made durable must fail now, not as a
		// silently-missing tenant after the next restart.
		if err := s.persistMeta(repo, raw); err != nil {
			return "", nil, nil, fmt.Errorf("tsr: persisting repository metadata: %w", err)
		}
	}
	s.mu.Lock()
	s.repos[repoID] = repo
	s.mu.Unlock()

	publicKeyPEM, err = signKey.Public().MarshalPEM()
	if err != nil {
		return "", nil, nil, err
	}
	var rd [64]byte
	sum := sha256.Sum256(publicKeyPEM)
	copy(rd[:], sum[:])
	report, err = s.enclave.Attest(rd)
	if err != nil {
		return "", nil, nil, err
	}
	return repoID, publicKeyPEM, report, nil
}

// Repo returns the tenant repository with the given id.
func (s *Service) Repo(id string) (*Repo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRepo, id)
	}
	return r, nil
}

// RepoIDs lists the deployed repositories in sorted order, so that
// iteration-order consumers (auto-refresh scheduling, /stats, CLI
// output) are deterministic across restarts of the same fleet.
func (s *Service) RepoIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.repos))
	for id := range s.repos {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Undeploy removes a tenant repository and deletes its durable state:
// sealed metadata, sealed checkpoint, pending journaled ingests, and —
// best effort — its cache namespace. In-flight requests holding the
// *Repo finish against the final published snapshot.
func (s *Service) Undeploy(id string) error {
	s.mu.Lock()
	_, ok := s.repos[id]
	if ok {
		delete(s.repos, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRepo, id)
	}
	if s.journal != nil {
		// Drop pending ingests addressed to the dead tenant so a later
		// restart does not replay into a missing repo.
		pending, err := s.journal.Pending()
		if err == nil {
			for _, e := range pending {
				if ingestPayloadRepo(e.Payload, s) == id {
					_ = s.journal.Commit(e.Seq)
				}
			}
		}
	}
	if s.cfg.AutoPersist {
		if err := s.cfg.Store.Delete(MetaStoreKey(id)); err != nil && err != store.ErrNotFound {
			return fmt.Errorf("tsr: undeploy %s: %w", id, err)
		}
		if err := s.cfg.Store.Delete(StateStoreKey(id)); err != nil && err != store.ErrNotFound {
			return fmt.Errorf("tsr: undeploy %s: %w", id, err)
		}
	}
	if it, ok := s.cfg.Store.(store.Iterable); ok {
		var doomed []string
		_ = it.Iterate(func(info store.Info) bool {
			if strings.HasPrefix(info.Key, id+"/") {
				doomed = append(doomed, info.Key)
			}
			return true
		})
		for _, k := range doomed {
			_ = s.cfg.Store.Delete(k)
		}
	}
	return nil
}

// ServiceStats aggregates the whole origin for the service-level
// GET /stats endpoint: per-tenant cache counters, their sum, and a
// snapshot of the shared refresh scheduler.
type ServiceStats struct {
	Repos  map[string]CacheStats `json:"repos"`
	Totals CacheStats            `json:"totals"`
	Sched  sched.Snapshot        `json:"sched"`
}

// Stats snapshots every tenant's counters plus the scheduler state.
func (s *Service) Stats() ServiceStats {
	out := ServiceStats{Repos: make(map[string]CacheStats), Sched: s.sched.Snapshot()}
	s.mu.RLock()
	repos := make([]*Repo, 0, len(s.repos))
	for _, r := range s.repos {
		repos = append(repos, r)
	}
	s.mu.RUnlock()
	for _, r := range repos {
		cs := r.CacheStats()
		out.Repos[r.ID] = cs
		out.Totals = out.Totals.add(cs)
	}
	return out
}

// Seal seals data to this TSR enclave identity.
func (s *Service) Seal(data []byte) ([]byte, error) { return s.enclave.Seal(data) }

// Unseal recovers enclave-sealed data.
func (s *Service) Unseal(blob []byte) ([]byte, error) { return s.enclave.Unseal(blob) }
