package tsr

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/tpm"
)

// CodeIdentity is the enclave code identity (MRENCLAVE source) of this
// TSR build; OS owners verify it during policy deployment (Figure 7).
const CodeIdentity = "tsr-v1.0"

// Error sentinels.
var (
	ErrNoRepo         = errors.New("tsr: unknown repository id")
	ErrNoMirror       = errors.New("tsr: policy mirror not resolvable")
	ErrNotInitialized = errors.New("tsr: repository not initialized (no refresh yet)")
)

// Config wires a Service to its environment.
type Config struct {
	// Platform is the SGX platform TSR launches on.
	Platform *enclave.Platform
	// TPM provides the monotonic counters for rollback protection.
	TPM *tpm.TPM
	// Clock and Link model network time; Local locates the TSR host
	// (Europe in the paper's deployment).
	Clock netsim.Clock
	Link  *netsim.LinkModel
	Local netsim.Continent
	// Store is the untrusted package cache.
	Store Store
	// Resolve maps a policy mirror to a live connection.
	Resolve func(m policy.Mirror) (quorum.Source, PackageFetcher, error)
	// EPC selects the SGX cost model; zero value disables it (the
	// "TSR without SGX" baseline of Figure 12).
	EPC enclave.CostModel
	// Workers bounds the refresh pipeline concurrency: each refresh
	// downloads originals and sanitizes packages in batches of Workers
	// goroutines. 0 or 1 runs the paper's sequential prototype.
	Workers int
	// AutoPersist journals sealed repository metadata (at DeployPolicy)
	// and sealed state checkpoints (after every successful Refresh)
	// into the Store, so a restarted service warm-boots via RestoreAll.
	// Requires a Store that implements store.Iterable (both MemStore
	// and store.FS do); pointless without a durable Store.
	AutoPersist bool
}

// PackageFetcher downloads one package from a mirror.
type PackageFetcher interface {
	FetchPackage(name string) ([]byte, error)
}

// Service is a running TSR instance.
type Service struct {
	cfg     Config
	enclave *enclave.Enclave

	mu    sync.RWMutex
	repos map[string]*Repo
}

// New launches TSR inside an enclave on the given platform.
func New(cfg Config) (*Service, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("tsr: config requires a platform")
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.RealClock{}
	}
	enc := cfg.Platform.Launch(enclave.MeasureCode(CodeIdentity))
	return &Service{cfg: cfg, enclave: enc, repos: make(map[string]*Repo)}, nil
}

// Measurement returns the enclave measurement OS owners expect.
func Measurement() enclave.Measurement { return enclave.MeasureCode(CodeIdentity) }

// Attest produces an enclave report binding reportData (e.g. the hash
// of a freshly returned public key) to the TSR code identity.
func (s *Service) Attest(reportData [64]byte) (*enclave.Report, error) {
	return s.enclave.Attest(reportData)
}

// DeployPolicy validates a policy, creates the tenant repository with a
// fresh signing key generated inside the enclave, and returns the
// repository id, the public signing key (PEM), and an attestation
// report over the key — the Figure 7 protocol.
func (s *Service) DeployPolicy(raw []byte) (repoID string, publicKeyPEM []byte, report *enclave.Report, err error) {
	pol, err := policy.Parse(raw)
	if err != nil {
		return "", nil, nil, err
	}
	if err := pol.Validate(); err != nil {
		return "", nil, nil, err
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return "", nil, nil, fmt.Errorf("tsr: repository id: %w", err)
	}
	repoID = "r" + hex.EncodeToString(idBytes[:])

	signKey, err := keys.Generate("tsr-" + repoID)
	if err != nil {
		return "", nil, nil, err
	}
	repo, err := newRepo(repoID, pol, signKey, s)
	if err != nil {
		return "", nil, nil, err
	}
	if s.cfg.AutoPersist {
		// Journal the repository's identity before announcing it: a
		// deploy that cannot be made durable must fail now, not as a
		// silently-missing tenant after the next restart.
		if err := s.persistMeta(repo, raw); err != nil {
			return "", nil, nil, fmt.Errorf("tsr: persisting repository metadata: %w", err)
		}
	}
	s.mu.Lock()
	s.repos[repoID] = repo
	s.mu.Unlock()

	publicKeyPEM, err = signKey.Public().MarshalPEM()
	if err != nil {
		return "", nil, nil, err
	}
	var rd [64]byte
	sum := sha256.Sum256(publicKeyPEM)
	copy(rd[:], sum[:])
	report, err = s.enclave.Attest(rd)
	if err != nil {
		return "", nil, nil, err
	}
	return repoID, publicKeyPEM, report, nil
}

// Repo returns the tenant repository with the given id.
func (s *Service) Repo(id string) (*Repo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRepo, id)
	}
	return r, nil
}

// RepoIDs lists the deployed repositories.
func (s *Service) RepoIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.repos))
	for id := range s.repos {
		out = append(out, id)
	}
	return out
}

// Seal seals data to this TSR enclave identity.
func (s *Service) Seal(data []byte) ([]byte, error) { return s.enclave.Seal(data) }

// Unseal recovers enclave-sealed data.
func (s *Service) Unseal(blob []byte) ([]byte, error) { return s.enclave.Unseal(blob) }
