package tsr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/osimage"
	"tsr/internal/pkgmgr"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
	"tsr/internal/tpm"
)

// world wires the full paper topology: original repository, mirrors, a
// TSR service, and policy text.
type world struct {
	repo    *repo.Repository
	mirrors []*mirror.Mirror
	svc     *Service
	store   *MemStore // nil when worldCfg injected a non-Mem store
	backing Store
	policy  []byte
	signer  *keys.Pair // distribution key (signs index AND packages)
}

// worldCfg overrides the world's host-side pieces — store, TPM,
// platform — so persistence tests can share them across simulated
// restarts. Zero value: fresh MemStore, fresh TPM, fresh platform.
type worldCfg struct {
	store          Store
	tpm            *tpm.TPM
	platform       *enclave.Platform
	autoPersist    bool
	refreshWorkers int
	schedMaxActive int
	workers        int
}

func newWorld(t *testing.T, nMirrors int) *world {
	t.Helper()
	return newWorldCfg(t, nMirrors, worldCfg{})
}

func newWorldCfg(t *testing.T, nMirrors int, wc worldCfg) *world {
	t.Helper()
	signer := keys.Shared.MustGet("alpine-distro-key")
	if wc.store == nil {
		wc.store = NewMemStore()
	}
	w := &world{
		repo:    repo.New("alpine-main", signer),
		signer:  signer,
		backing: wc.store,
	}
	if ms, ok := wc.store.(*MemStore); ok {
		w.store = ms
	}
	byHost := make(map[string]*mirror.Mirror)
	var mirrorsYAML strings.Builder
	mirrorsYAML.WriteString("mirrors:\n")
	for i := 0; i < nMirrors; i++ {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, netsim.Europe)
		w.mirrors = append(w.mirrors, m)
		byHost[host] = m
		fmt.Fprintf(&mirrorsYAML, "  - hostname: %s\n", host)
	}
	pem, err := signer.Public().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	var pol strings.Builder
	pol.WriteString(mirrorsYAML.String())
	pol.WriteString("signers_keys:\n  - |-\n")
	for _, line := range strings.Split(strings.TrimRight(string(pem), "\n"), "\n") {
		pol.WriteString("    " + line + "\n")
	}
	pol.WriteString(`init_config_files:
  - path: /etc/passwd
    content: |-
      root:x:0:0:root:/root:/bin/ash
  - path: /etc/group
    content: |-
      root:x:0:
`)
	w.policy = []byte(pol.String())

	platform := wc.platform
	if platform == nil {
		var err error
		platform, err = enclave.NewPlatform(keys.Shared.MustGet("sgx-quoting"))
		if err != nil {
			t.Fatal(err)
		}
	}
	hostTPM := wc.tpm
	if hostTPM == nil {
		hostTPM = tpmForTest(t)
	}
	svc, err := New(Config{
		Platform:       platform,
		TPM:            hostTPM,
		Clock:          netsim.NewVirtualClock(time.Time{}),
		Link:           netsim.DefaultLinkModel(netsim.NewRNG(7)),
		Local:          netsim.Europe,
		Store:          w.backing,
		AutoPersist:    wc.autoPersist,
		Workers:        wc.workers,
		RefreshWorkers: wc.refreshWorkers,
		SchedMaxActive: wc.schedMaxActive,
		EPC:            enclave.DefaultCostModel(),
		Resolve: func(m policy.Mirror) (quorum.Source, PackageFetcher, error) {
			mm, ok := byHost[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("no mirror %q", m.Hostname)
			}
			return mm, mm, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.svc = svc
	return w
}

func (w *world) publish(t *testing.T, pkgs ...*apk.Package) {
	t.Helper()
	for _, p := range pkgs {
		if err := apk.Sign(p, w.signer); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.repo.Publish(pkgs...); err != nil {
		t.Fatal(err)
	}
	for _, m := range w.mirrors {
		m.Sync(w.repo)
	}
}

func (w *world) deploy(t *testing.T) *Repo {
	t.Helper()
	id, pub, report, err := w.svc.DeployPolicy(w.policy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pub), "BEGIN PUBLIC KEY") {
		t.Fatalf("public key = %q", pub)
	}
	// OS owner verifies the enclave before trusting the key (Figure 7).
	platformKey := keys.Shared.MustGet("sgx-quoting").Public()
	if err := report.Verify(platformKey, Measurement()); err != nil {
		t.Fatal(err)
	}
	r, err := w.svc.Repo(id)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func pkgWithScript(name, version, scriptSrc string) *apk.Package {
	p := &apk.Package{
		Name: name, Version: version,
		Files: []apk.File{{Path: "/usr/bin/" + name, Mode: 0o755, Content: []byte(name + version)}},
	}
	if scriptSrc != "" {
		p.Scripts = map[string]string{"post-install": scriptSrc}
	}
	return p
}

// --- tests -------------------------------------------------------------

func TestDeployPolicyGeneratesDistinctKeys(t *testing.T) {
	w := newWorld(t, 3)
	r1 := w.deploy(t)
	r2 := w.deploy(t)
	if r1.ID == r2.ID {
		t.Fatal("repository ids collide")
	}
	if r1.PublicKey().Fingerprint() == r2.PublicKey().Fingerprint() {
		t.Fatal("tenants share a signing key")
	}
	if len(w.svc.RepoIDs()) != 2 {
		t.Fatalf("repo ids = %v", w.svc.RepoIDs())
	}
}

func TestDeployPolicyRejectsInvalid(t *testing.T) {
	w := newWorld(t, 3)
	if _, _, _, err := w.svc.DeployPolicy([]byte("mirrors:\n")); err == nil {
		t.Fatal("want error for empty mirror list")
	}
	if _, _, _, err := w.svc.DeployPolicy([]byte("not yaml at all")); err == nil {
		t.Fatal("want parse error")
	}
}

func TestRefreshSanitizesAndServes(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t,
		pkgWithScript("plain", "1.0-r0", ""),
		pkgWithScript("svc", "1.0-r0", "addgroup -S svc\nadduser -S -G svc svc\n"),
		pkgWithScript("shelly", "1.0-r0", "add-shell /bin/zsh\n"),
	)
	r := w.deploy(t)
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 2 || stats.Rejected != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The served index lists only sanitized packages and verifies
	// against the repository key.
	signed, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Entries) != 2 {
		t.Fatalf("index = %v", ix.Names())
	}
	if _, err := ix.Lookup("shelly"); !errors.Is(err, index.ErrNotFound) {
		t.Fatal("rejected package leaked into the index")
	}
	// The sanitized package verifies against the TSR key, and its
	// files carry IMA signatures.
	raw, err := r.FetchPackage("svc")
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := apk.VerifyRaw(raw, keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Files {
		if _, ok := f.Xattrs[apk.XattrIMA]; !ok {
			t.Fatalf("%s: missing IMA signature", f.Path)
		}
	}
	if !strings.Contains(p.Scripts["post-install"], "TSR canonical account provisioning") {
		t.Fatal("script not rewritten")
	}
	// Rejected package fetch is a clean error.
	if _, err := r.FetchPackage("shelly"); !errors.Is(err, ErrUnsupportedPkg) {
		t.Fatalf("err = %v", err)
	}
	// Index and hash agreement: wire bytes hash to the index entry.
	e, _ := ix.Lookup("svc")
	if int64(len(raw)) != e.Size {
		t.Fatal("wire size != index size")
	}
}

func TestFetchBeforeRefresh(t *testing.T) {
	w := newWorld(t, 3)
	r := w.deploy(t)
	if _, err := r.FetchIndex(); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.FetchPackage("x"); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v", err)
	}
}

func TestIncrementalRefresh(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("a", "1.0-r0", ""), pkgWithScript("b", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Update only b.
	w.publish(t, pkgWithScript("b", "1.1-r0", ""))
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || stats.Unchanged != 1 {
		t.Fatalf("stats = %+v (want only b re-sanitized)", stats)
	}
	signed, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := ix.Lookup("b")
	if err != nil || e.Version != "1.1-r0" {
		t.Fatalf("b = %+v, %v", e, err)
	}
}

func TestRefreshReplansWhenAccountsChange(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("svc-a", "1.0-r0", "adduser -S ua\n"))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	preamble1 := r.Plan().Preamble
	// A new package introduces a new account: the plan must change and
	// ALL account packages must be re-sanitized with the wider preamble.
	w.publish(t, pkgWithScript("svc-b", "1.0-r0", "adduser -S ub\n"))
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan().Preamble == preamble1 {
		t.Fatal("plan not rebuilt")
	}
	if stats.Sanitized != 2 {
		t.Fatalf("stats = %+v (want full re-sanitization)", stats)
	}
	// Both packages' scripts now provision both accounts.
	for _, name := range []string{"svc-a", "svc-b"} {
		raw, err := r.FetchPackage(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := apk.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Scripts["post-install"]
		if !strings.Contains(s, "ua") || !strings.Contains(s, "ub") {
			t.Fatalf("%s preamble incomplete:\n%s", name, s)
		}
	}
}

func TestCacheModesServedFrom(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Default CacheBoth: served from the sanitized cache.
	_, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From != ServedSanitizedCache {
		t.Fatalf("from = %v", res.From)
	}
	// Original-only: re-sanitized from the cached original.
	r.SetCacheMode(CacheOriginalOnly)
	_, res, err = r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From != ServedOriginalCache {
		t.Fatalf("from = %v", res.From)
	}
	// None: downloaded from a mirror again.
	r.SetCacheMode(CacheNone)
	_, res, err = r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From != ServedMirror {
		t.Fatalf("from = %v", res.From)
	}
}

func TestCacheTamperDetected(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Root adversary flips bytes in the sanitized cache: TSR must not
	// serve the tampered bytes — it transparently re-sanitizes from the
	// original and the result matches the trusted index again.
	r.mu.Lock()
	sanEntry, err := r.local.Lookup("app")
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.store.Tamper(r.sanitizedKey("app", sanEntry.Hash)); err != nil {
		t.Fatal(err)
	}
	raw, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From == ServedSanitizedCache {
		t.Fatal("served from tampered cache")
	}
	if _, _, err := apk.VerifyRaw(raw, keys.NewRing(r.PublicKey())); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRollbackDetected(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	snapshot := w.store.Snapshot() // adversary keeps the old cache
	w.publish(t, pkgWithScript("app", "1.1-r0", ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	w.store.Restore(snapshot) // rollback attack on the disk cache
	raw, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From == ServedSanitizedCache {
		t.Fatal("rolled-back cache entry served")
	}
	p, err := apk.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != "1.1-r0" {
		t.Fatalf("served version %s after rollback", p.Version)
	}
}

func TestSealRestoreRoundtrip(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	sealed, err := r.SealState()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a restart: wipe in-memory state, restore from the seal.
	r.mu.Lock()
	r.upstream, r.local, r.localSig = nil, nil, nil
	r.mu.Unlock()
	if err := r.RestoreState(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FetchIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestSealedStateRollbackDetected(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	oldSeal, err := r.SealState() // MC -> 1
	if err != nil {
		t.Fatal(err)
	}
	w.publish(t, pkgWithScript("app", "1.1-r0", ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SealState(); err != nil { // MC -> 2
		t.Fatal(err)
	}
	// Adversary restarts TSR with the OLD sealed file.
	if err := r.RestoreState(oldSeal); !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v", err)
	}
}

func TestSealedStateWrongEnclaveRejected(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	sealed, err := r.SealState()
	if err != nil {
		t.Fatal(err)
	}
	// A different platform cannot unseal.
	otherPlatform, err := enclave.NewPlatform(keys.Shared.MustGet("other-quoting"))
	if err != nil {
		t.Fatal(err)
	}
	other := otherPlatform.Launch(Measurement())
	if _, err := other.Unseal(sealed); !errors.Is(err, enclave.ErrSealBroken) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuorumToleratesReplayMirrors(t *testing.T) {
	w := newWorld(t, 5)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Two mirrors turn Byzantine and replay the old index.
	w.mirrors[0].SetBehavior(mirror.Replay)
	w.mirrors[1].SetBehavior(mirror.Replay)
	w.publish(t, pkgWithScript("app", "1.1-r0", "")) // security update
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	raw, err := r.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	p, err := apk.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != "1.1-r0" {
		t.Fatalf("served %s despite honest majority", p.Version)
	}
}

func TestEndToEndThroughPackageManager(t *testing.T) {
	// The full Figure 6 flow: publish -> TSR sanitize -> package
	// manager installs from TSR -> remote attestation accepts.
	w := newWorld(t, 3)
	w.publish(t,
		pkgWithScript("ntpd", "4.2-r0", "addgroup -S ntp\nadduser -S -G ntp ntp\nmkdir -p /var/lib/ntp\n"),
	)
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	img, err := osimage.New(keys.Shared.MustGet("os-ak"), r.Policy().InitConfigFiles)
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(img, r,
		keys.NewRing(r.PublicKey()), // index signed by TSR
		keys.NewRing(r.PublicKey())) // packages signed by TSR
	if err := mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Install("ntpd"); err != nil {
		t.Fatal(err)
	}
	// The OS got the canonical account state.
	passwd, err := img.FS.ReadFile(osimage.PasswdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(passwd), "ntp:x:200:") {
		t.Fatalf("passwd = %q", passwd)
	}
	// The config file carries the TSR signature installed via setfattr.
	sig, err := img.FS.GetXattr(osimage.PasswdPath, apk.XattrIMA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := keys.NewRing(r.PublicKey()).VerifyAny(passwd, sig); err != nil {
		t.Fatalf("config signature does not verify: %v", err)
	}
}

func TestHTTPAPI(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", "adduser -S app\n"))
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()

	// Deploy a policy over HTTP.
	resp, err := srv.Client().Post(srv.URL+"/policies", "application/yaml", strings.NewReader(string(w.policy)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
		PublicKey    string `json:"public_key"`
	}
	if err := jsonDecode(resp, &deployed); err != nil {
		t.Fatal(err)
	}
	if deployed.RepositoryID == "" || !strings.Contains(deployed.PublicKey, "BEGIN PUBLIC KEY") {
		t.Fatalf("deployed = %+v", deployed)
	}

	// Refresh over HTTP; the response carries the pipeline stats.
	resp, err = srv.Client().Post(srv.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("refresh status = %d", resp.StatusCode)
	}
	var refreshed struct {
		Sanitized int `json:"sanitized"`
		CacheHits int `json:"cache_hits"`
		Workers   int `json:"workers"`
	}
	if err := jsonDecode(resp, &refreshed); err != nil {
		t.Fatal(err)
	}
	if refreshed.Sanitized != 1 || refreshed.Workers < 1 {
		t.Fatalf("refresh response = %+v", refreshed)
	}

	// Cumulative counters over HTTP.
	resp, err = srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var totals CacheStats
	if err := jsonDecode(resp, &totals); err != nil {
		t.Fatal(err)
	}
	if totals.Refreshes != 1 || totals.Sanitized != 1 {
		t.Fatalf("stats = %+v", totals)
	}

	// The package manager consumes TSR through the HTTP client.
	pub, err := keys.ParsePEM("tsr-"+deployed.RepositoryID, []byte(deployed.PublicKey))
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{BaseURL: srv.URL, RepoID: deployed.RepositoryID, HTTPClient: srv.Client()}
	img, err := osimage.New(keys.Shared.MustGet("os-ak"), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(img, client, keys.NewRing(pub), keys.NewRing(pub))
	if err := mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Install("app"); err != nil {
		t.Fatal(err)
	}
	if !img.FS.Exists("/usr/bin/app") {
		t.Fatal("binary missing after HTTP install")
	}

	// 404 for unknown repo; health check.
	resp, err = srv.Client().Get(srv.URL + "/repos/nope/index")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("unknown repo status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func tpmForTest(t *testing.T) *tpm.TPM {
	t.Helper()
	return tpm.New(keys.Shared.MustGet("tsr-host-tpm-ak"))
}

func TestOriginalCacheTamperFallsBackToMirror(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	r.SetCacheMode(CacheOriginalOnly)
	// Root adversary corrupts the ORIGINAL cache entry; TSR must detect
	// the hash mismatch against the upstream index and re-download.
	r.mu.Lock()
	upEntry, err := r.upstream.Lookup("app")
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.store.Tamper(r.origKey("app", upEntry.Hash)); err != nil {
		t.Fatal(err)
	}
	raw, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From != ServedMirror {
		t.Fatalf("from = %v, want mirror re-download", res.From)
	}
	if _, _, err := apk.VerifyRaw(raw, keys.NewRing(r.PublicKey())); err != nil {
		t.Fatal(err)
	}
}

func TestFetchSurvivesMirrorOutage(t *testing.T) {
	// With the sanitized cache populated, mirror outages do not affect
	// package serving at all.
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, m := range w.mirrors {
		m.SetBehavior(mirror.Offline)
	}
	if _, err := r.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	// But a no-cache fetch needs a mirror and fails cleanly.
	r.SetCacheMode(CacheNone)
	if _, err := r.FetchPackage("app"); err == nil {
		t.Fatal("expected error with all mirrors offline and no cache")
	}
}

func TestRefreshFailsClosedWhenQuorumUnavailable(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	w.mirrors[0].SetBehavior(mirror.Offline)
	w.mirrors[1].SetBehavior(mirror.Offline)
	if _, err := r.Refresh(); !errors.Is(err, quorum.ErrNoQuorum) {
		t.Fatalf("err = %v", err)
	}
	// The previously refreshed state keeps serving.
	if _, err := r.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
}

func TestFindingsSurfaceCVEPackages(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("cve-pkg", "1.0-r0",
		"adduser -S -s /bin/ash alpine\npasswd -d alpine\nadd-shell /bin/ash\n"))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	// The package is rejected (shell activation), AND its empty
	// password is reported as a finding — mirroring §4.2's disclosure
	// to the Alpine community.
	if _, ok := r.RejectedPackages()["cve-pkg"]; !ok {
		t.Fatalf("rejected = %v", r.RejectedPackages())
	}
	var sawPassword bool
	for _, f := range r.Findings() {
		if f.Package == "cve-pkg" && strings.Contains(f.Detail, "EMPTY password") {
			sawPassword = true
		}
	}
	if !sawPassword {
		t.Fatalf("findings = %+v", r.Findings())
	}
}

func TestHTTPScriptPreviewAndDiagnostics(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t,
		pkgWithScript("svc", "1.0-r0", "adduser -S svc\n"),
		pkgWithScript("shelly", "1.0-r0", "add-shell /bin/zsh\n"),
	)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/policies", "application/yaml", strings.NewReader(string(w.policy)))
	if err != nil {
		t.Fatal(err)
	}
	var deployed struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := jsonDecode(resp, &deployed); err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Client().Post(srv.URL+"/repos/"+deployed.RepositoryID+"/refresh", "", nil)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("refresh: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Sanitized script preview.
	resp, err = srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/scripts/svc")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "TSR canonical account provisioning") {
		t.Fatalf("script preview: %d %q", resp.StatusCode, body)
	}

	// Rejected listing includes the shell package.
	resp, err = srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/rejected")
	if err != nil {
		t.Fatal(err)
	}
	var rejected map[string]string
	if err := jsonDecode(resp, &rejected); err != nil {
		t.Fatal(err)
	}
	if _, ok := rejected["shelly"]; !ok {
		t.Fatalf("rejected = %v", rejected)
	}

	// Fetching the rejected package through HTTP is a 403.
	resp, err = srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/packages/shelly")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("rejected package status = %d", resp.StatusCode)
	}

	// Findings endpoint returns JSON.
	resp, err = srv.Client().Get(srv.URL + "/repos/" + deployed.RepositoryID + "/findings")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("findings: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Index before refresh of a fresh tenant: 503.
	resp, err = srv.Client().Post(srv.URL+"/policies", "application/yaml", strings.NewReader(string(w.policy)))
	if err != nil {
		t.Fatal(err)
	}
	var fresh struct {
		RepositoryID string `json:"repository_id"`
	}
	if err := jsonDecode(resp, &fresh); err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Client().Get(srv.URL + "/repos/" + fresh.RepositoryID + "/index")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("uninitialized index status = %d", resp.StatusCode)
	}
}

func TestPolicyWhitelistBlacklist(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t,
		pkgWithScript("allowed", "1.0-r0", ""),
		pkgWithScript("blocked", "1.0-r0", ""),
		pkgWithScript("unlisted", "1.0-r0", ""),
	)
	// Private/closed policy variant (§4.5): whitelist two, blacklist one.
	pol := string(w.policy) +
		"package_whitelist:\n  - allowed\n  - blocked\npackage_blacklist:\n  - blocked\n"
	id, _, _, err := w.svc.DeployPolicy([]byte(pol))
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.svc.Repo(id)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || stats.Rejected != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if _, err := r.FetchPackage("allowed"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"blocked", "unlisted"} {
		if _, err := r.FetchPackage(name); err == nil {
			t.Fatalf("%s served despite policy", name)
		}
	}
	reasons := r.RejectedPackages()
	if !strings.Contains(reasons["blocked"], "policy") || !strings.Contains(reasons["unlisted"], "policy") {
		t.Fatalf("reasons = %v", reasons)
	}
}

func TestParallelDownloadReducesModeledTime(t *testing.T) {
	build := func(parallel int) time.Duration {
		w := newWorld(t, 3)
		var pkgs []*apk.Package
		for i := 0; i < 8; i++ {
			p := pkgWithScript(fmt.Sprintf("pkg%d", i), "1.0-r0", "")
			p.Files[0].Content = make([]byte, 512<<10) // meaningful transfer time
			pkgs = append(pkgs, p)
		}
		w.publish(t, pkgs...)
		r := w.deploy(t)
		r.SetDownloadParallelism(parallel)
		stats, err := r.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Downloaded != 8 {
			t.Fatalf("downloaded = %d", stats.Downloaded)
		}
		return stats.DownloadTime
	}
	sequential := build(1)
	parallel := build(4)
	// Parallel transfers share bandwidth, so the win comes from
	// overlapping round trips: expect a clear but sub-linear speedup.
	if parallel >= sequential {
		t.Fatalf("parallel download %v not faster than sequential %v", parallel, sequential)
	}
}

func TestAppraisalEnforcedInstallThroughTSR(t *testing.T) {
	// IMA-appraisal (§3.2): the kernel refuses to load files without a
	// valid signature. Packages sanitized by TSR carry per-file
	// signatures, so installation under enforcement succeeds; a package
	// fetched from a plain mirror has none and is refused.
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("tool", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Through TSR: succeeds under appraisal.
	provisioning := keys.Shared.MustGet("os-provisioning")
	appraisalRing := keys.NewRing(r.PublicKey(), provisioning.Public())
	newEnforcedImage := func() *osimage.Image {
		img, err := osimage.New(keys.Shared.MustGet("os-ak"), r.Policy().InitConfigFiles)
		if err != nil {
			t.Fatal(err)
		}
		// Provision the golden image: label every base file before
		// enabling enforcement, as real IMA-appraisal deployments do.
		if err := img.LabelTree("/", provisioning); err != nil {
			t.Fatal(err)
		}
		img.IMA.EnableAppraisal(appraisalRing)
		return img
	}

	img := newEnforcedImage()
	mgr := pkgmgr.New(img, r, keys.NewRing(r.PublicKey()), keys.NewRing(r.PublicKey()))
	if err := mgr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Install("tool"); err != nil {
		t.Fatalf("appraised install through TSR failed: %v", err)
	}

	// Straight from the mirror: the binary has no security.ima
	// signature, so IMA-appraisal denies it at measurement time.
	img2 := newEnforcedImage()
	distroRing := keys.NewRing(w.signer.Public())
	mgr2 := pkgmgr.New(img2, w.mirrors[0], distroRing, distroRing)
	if err := mgr2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.Install("tool"); err == nil {
		t.Fatal("unsigned install passed under IMA-appraisal enforcement")
	}
}
