package tsr

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsr/internal/apk"
	"tsr/internal/flight"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/sanitize"
	"tsr/internal/sched"
	"tsr/internal/script"
	"tsr/internal/store"
	"tsr/internal/trace"
)

// Cache behaviour errors.
var (
	ErrCacheTampered  = errors.New("tsr: cached package does not match the trusted index (tamper or rollback)")
	ErrRollback       = errors.New("tsr: sealed state is older than the TPM monotonic counter (rollback attack)")
	ErrUnsupportedPkg = errors.New("tsr: package rejected by sanitization policy")
	// ErrUpstream marks refresh failures caused by the mirror fleet —
	// quorum reads, upstream index verification, upstream replay. The
	// HTTP layer maps these to 502 Bad Gateway; local failures
	// (planning, sealing, signing) are not wrapped and map to 500.
	ErrUpstream = errors.New("tsr: upstream mirror failure")
)

// CacheMode selects which cache levels are active — the three scenarios
// of Figure 10 (None / Original / Sanitized).
type CacheMode int

const (
	// CacheBoth keeps original and sanitized packages (default).
	CacheBoth CacheMode = iota
	// CacheOriginalOnly caches upstream packages but re-sanitizes on
	// every download request.
	CacheOriginalOnly
	// CacheNone always re-downloads and re-sanitizes.
	CacheNone
)

// ServedFrom reports how a package request was satisfied.
type ServedFrom int

const (
	// ServedSanitizedCache: returned straight from the sanitized cache.
	ServedSanitizedCache ServedFrom = iota
	// ServedOriginalCache: original was cached; sanitized on demand.
	ServedOriginalCache
	// ServedMirror: downloaded from a mirror, then sanitized.
	ServedMirror
)

// String implements fmt.Stringer.
func (s ServedFrom) String() string {
	switch s {
	case ServedSanitizedCache:
		return "sanitized-cache"
	case ServedOriginalCache:
		return "original-cache"
	case ServedMirror:
		return "mirror"
	default:
		return fmt.Sprintf("ServedFrom(%d)", int(s))
	}
}

// RefreshStats describes one Refresh run — the Table 3 decomposition.
type RefreshStats struct {
	// QuorumLatency is the modeled time to read the metadata index
	// from the mirror quorum (Figure 13).
	QuorumLatency time.Duration
	// MirrorsContacted is how many mirrors the quorum consulted.
	MirrorsContacted int
	// DownloadTime is the modeled time to download changed packages.
	DownloadTime time.Duration
	// SanitizeTime is the measured CPU time sanitizing changed packages
	// (native, excluding the SGX model), summed over workers.
	SanitizeTime time.Duration
	// SGXOverhead is the modeled additional in-enclave time, charged
	// per worker batch: concurrent sanitizations share the EPC, so the
	// paging factor is driven by the batch's combined working set.
	SGXOverhead time.Duration
	// Downloaded, Sanitized, Rejected, Unchanged count packages.
	Downloaded, Sanitized, Rejected, Unchanged int
	// CacheHits counts packages whose sanitized result was reused from
	// the content-addressed sanitization cache — keyed by (original
	// digest, plan hash) — instead of being re-sanitized.
	CacheHits int
	// Workers is the pipeline concurrency this run used.
	Workers int
	// Errors lists per-package failures (mirror downloads, internal
	// sanitization errors). They no longer abort the cycle: a failed
	// package keeps its previous index entry while the plan is
	// unchanged and is retried on the next refresh.
	Errors []PackageError
	// Results holds the per-package sanitization results of this run
	// (consumed by the experiment harness; nil-able for big runs).
	Results []*sanitize.Result
}

// PackageError is one per-package refresh failure.
type PackageError struct {
	Name string `json:"name"`
	Err  string `json:"error"`
}

// Repo is one tenant repository inside a TSR service.
type Repo struct {
	ID string

	svc      *Service
	policy   *policy.Policy
	signKey  *keys.Pair
	trust    *keys.Ring // policy signer keys: verifies indexes and packages
	reader   *quorum.Reader
	fetchers []PackageFetcher

	// mu guards the refresh-side (trusted pipeline) state below. The
	// serving path never takes it: reads go through the atomically
	// published snapshot instead, so a cold refresh holding mu for its
	// whole cycle does not block a single client request.
	mu             sync.Mutex
	mode           CacheMode
	workers        int           // refresh pipeline concurrency (1 = the paper's sequential prototype)
	upstream       *index.Index  // latest verified upstream index
	upstreamDigest [32]byte      // digest of the signed upstream index last planned against
	local          *index.Index  // index of sanitized packages
	localSig       *index.Signed // signed local index served to clients
	plan           *sanitize.Plan
	planHash       [32]byte                // content hash of the plan; half of every cache key
	rejected       map[string]string       // package -> rejection reason
	rejectedKey    map[string]string       // package -> cache key it was rejected under (negative cache)
	scripts        map[string]scriptsEntry // package -> last decoded hook scripts (plan scan cache)
	pinned         map[string]index.Entry  // packages serving a previous version after a failed refresh: name -> the upstream entry that version came from
	planDebt       map[string]bool         // packages whose current-version scripts did not inform the plan (fetch failed); re-fetched and re-planned next refresh
	registered     map[string]index.Entry  // operator-registered original packages (batched ingest): name -> entry describing the ORIGINAL bytes; refresh sanitizes them alongside upstream targets unless an upstream package of the same name shadows the registration
	keepStats      bool
	seq            uint64             // local index sequence
	history        []index.Generation // recent published generations, for delta sync (see snapshot.go)

	// served is the published read state; see snapshot.go. Swapped in
	// one atomic store at the end of a successful Refresh/RestoreState.
	served atomic.Pointer[snapshot]
	// fills coalesces concurrent cache-fill work on the serving path
	// (see fillCoalesced in snapshot.go): N concurrent cold requests
	// for the same content run ONE download+re-sanitization.
	fills flight.Group[fillResult]
	// totals are the cumulative serving/pipeline counters. All-atomic,
	// so CacheStats never touches mu either.
	totals counters

	// servedWrites records every store key the lock-free serving path
	// wrote (cache repairs, re-downloads). A reader racing a publish can
	// re-create a blob the refresh's eviction pass just deleted; each
	// refresh reconciles these records against the keep-set it publishes
	// and deletes the resurrected stale generations, so the race costs
	// at most one refresh interval of extra storage, never a leak.
	servedWritesMu sync.Mutex
	servedWrites   map[string]struct{}

	// manifests memoizes chunk manifests by content hash for the
	// differential-sync endpoint; see stream.go. Bounded by
	// maxManifestMemo, cleared wholesale when full.
	manifestMu sync.Mutex
	manifests  map[[32]byte]*store.ChunkManifest
}

// newRepo builds the tenant repository and its quorum reader.
func newRepo(id string, pol *policy.Policy, signKey *keys.Pair, svc *Service) (*Repo, error) {
	trust, err := pol.SignerRing()
	if err != nil {
		return nil, err
	}
	r := &Repo{
		ID:           id,
		svc:          svc,
		policy:       pol,
		signKey:      signKey,
		trust:        trust,
		workers:      max(svc.cfg.Workers, 1),
		rejected:     make(map[string]string),
		rejectedKey:  make(map[string]string),
		scripts:      make(map[string]scriptsEntry),
		pinned:       make(map[string]index.Entry),
		planDebt:     make(map[string]bool),
		registered:   make(map[string]index.Entry),
		servedWrites: make(map[string]struct{}),
	}
	members := make([]quorum.Member, 0, len(pol.Mirrors))
	for _, m := range pol.Mirrors {
		if svc.cfg.Resolve == nil {
			return nil, fmt.Errorf("%w: no resolver configured", ErrNoMirror)
		}
		src, fetcher, err := svc.cfg.Resolve(m)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoMirror, m.Hostname, err)
		}
		cont, err := m.Continent()
		if err != nil {
			return nil, err
		}
		members = append(members, quorum.Member{Host: m.Hostname, Continent: cont, Source: src})
		r.fetchers = append(r.fetchers, fetcher)
	}
	r.reader = &quorum.Reader{
		Local:     svc.cfg.Local,
		Link:      svc.cfg.Link,
		Clock:     svc.cfg.Clock,
		TrustRing: trust,
		Members:   members,
	}
	return r, nil
}

// PublicKey returns the repository's public signing key.
func (r *Repo) PublicKey() *keys.Public { return r.signKey.Public() }

// Policy returns the deployed policy.
func (r *Repo) Policy() *policy.Policy { return r.policy }

// SetCacheMode selects the Figure 10 cache scenario. The published
// snapshot is republished with the new mode so the serving path picks
// it up immediately.
func (r *Repo) SetCacheMode(m CacheMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mode = m
	if snap := r.served.Load(); snap != nil {
		cp := *snap // maps/indexes are immutable; sharing them is safe
		//lint:allow snapfreeze cp is a private copy, mutated before the Store publishes it; no reader can hold it yet
		cp.mode = m
		r.served.Store(&cp)
	}
}

// SetWorkers bounds this repository's refresh pipeline concurrency:
// downloads and sanitizations run in batches of n goroutines. The
// paper's prototype is sequential and notes that "the download time
// can be greatly reduced by enabling parallel downloading. This
// performance improvement is left as part of future work" (Table 3) —
// the worker pool implements that future work and extends it to
// sanitization. Parallel transfers share the path bandwidth in the
// network model, so the modeled download saving comes from overlapping
// round trips, not free bandwidth; the sanitization saving is real CPU
// parallelism.
func (r *Repo) SetWorkers(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers = max(n, 1)
}

// SetDownloadParallelism is the historical name of SetWorkers, kept for
// the parallel-download ablation.
func (r *Repo) SetDownloadParallelism(n int) { r.SetWorkers(n) }

// ForceReplan drops the in-memory sanitization plan and upstream
// fingerprint so the next Refresh rebuilds the plan from scratch. When
// the rebuilt plan comes out unchanged, every package returns as a
// content-cache hit, so forcing a replan is cheap insurance rather than
// a full re-sanitization.
func (r *Repo) ForceReplan() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.plan = nil
	r.planHash = [32]byte{}
	r.upstreamDigest = [32]byte{}
}

// KeepStats makes Refresh retain per-package sanitization results.
func (r *Repo) KeepStats(keep bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keepStats = keep
}

// RejectedPackages returns the packages rejected by sanitization and
// their reasons, as of the published snapshot — lock-free, so the
// endpoint answers instantly while a refresh runs. Before the first
// publish it falls back to the refresh-side state.
func (r *Repo) RejectedPackages() map[string]string {
	if snap := r.served.Load(); snap != nil {
		out := make(map[string]string, len(snap.rejected))
		for k, v := range snap.rejected {
			out[k] = v
		}
		return out
	}
	if !r.mu.TryLock() {
		// Nothing published yet and the first refresh is in flight:
		// report the empty pre-publish state instead of blocking a read
		// on the pipeline.
		return map[string]string{}
	}
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.rejected))
	for k, v := range r.rejected {
		out[k] = v
	}
	return out
}

// Findings returns the security findings of the published plan
// (lock-free; falls back to the refresh-side plan before the first
// publish).
func (r *Repo) Findings() []sanitize.Finding {
	if snap := r.served.Load(); snap != nil {
		if snap.plan == nil {
			return nil
		}
		return append([]sanitize.Finding(nil), snap.plan.Findings...)
	}
	if !r.mu.TryLock() {
		return nil // first refresh in flight; nothing published yet
	}
	defer r.mu.Unlock()
	if r.plan == nil {
		return nil
	}
	return append([]sanitize.Finding(nil), r.plan.Findings...)
}

// Cache key builders. Package byte caches are content-addressed per
// generation: the key embeds the (truncated) content hash of the exact
// bytes it should hold, so a refresh writing a package's next version
// never overwrites the bytes the previously published snapshot still
// references — stale-snapshot readers keep hitting their own
// generation until it is evicted after the next publish.
func (r *Repo) origKey(name string, hash [32]byte) string {
	return r.ID + "/orig/" + name + "@" + hex.EncodeToString(hash[:16])
}
func (r *Repo) sanitizedKey(name string, hash [32]byte) string {
	return r.ID + "/san/" + name + "@" + hex.EncodeToString(hash[:16])
}

// stages sequences a refresh cycle's child spans without nesting the
// cycle's body in closures: next ends the stage span in flight and
// opens the named one, and close ends the last stage, attributing the
// cycle's error to it. Every stage span is a direct child of the
// caller's context span, so the refresh renders as one flat tree.
type stages struct {
	ctx context.Context
	sp  *trace.Span
}

func newStages(ctx context.Context) *stages { return &stages{ctx: ctx} }

func (t *stages) next(name string) {
	t.sp.End()
	_, t.sp = trace.Start(t.ctx, name) //lint:allow spanend every stage span is ended by the following next or by the deferred close
}

func (t *stages) close(err error) {
	t.sp.SetError(err)
	t.sp.End()
}

// Refresh performs the §5.4 cycle: quorum-read the upstream metadata
// index, download packages that changed since the previous refresh,
// (re)build the sanitization plan, sanitize, cache, and publish a new
// signed local index.
//
// The cycle runs as a bounded-concurrency pipeline: originals are
// fetched and packages sanitized in batches of SetWorkers goroutines,
// with modeled download and EPC costs charged per batch. The signed
// local index is rebuilt incrementally from the content-addressed
// sanitization cache plus fresh results, so a refresh over an unchanged
// upstream — or after a forced replan or restart that left the plan
// intact — performs zero sanitizations. Per-package failures are
// collected in RefreshStats.Errors instead of aborting the cycle.
//
// Refresh holds the repository lock for the whole cycle, but the
// serving path reads the previously published snapshot, so clients are
// never blocked: the new state becomes visible all at once via
// publishLocked, and any early error return keeps the old snapshot
// serving.
func (r *Repo) Refresh() (*RefreshStats, error) {
	return r.RefreshCtx(context.Background())
}

// RefreshCtx is Refresh under a caller-supplied context: when the
// context carries a tracer the cycle is recorded as one
// "origin.refresh" span with a child span per stage (quorum, fetch,
// plan, sanitize, sign, publish, seal), so a refresh shows up as a
// single inspectable tree under /debug/traces.
//
// The cycle is admitted through the service's global scheduler at
// Interactive priority: an operator-triggered refresh jumps queued
// background work. With a zero scheduler config (the single-tenant
// default) admission is a pass-through.
func (r *Repo) RefreshCtx(ctx context.Context) (*RefreshStats, error) {
	return r.refreshScheduled(ctx, sched.Interactive)
}

// RefreshBackgroundCtx is RefreshCtx at Background priority — the band
// the auto-refresh loop uses, so periodic fleet-wide refreshes queue
// behind (and are preempted by) operator-triggered work.
func (r *Repo) RefreshBackgroundCtx(ctx context.Context) (*RefreshStats, error) {
	return r.refreshScheduled(ctx, sched.Background)
}

// refreshScheduled wraps the refresh cycle in its trace span and runs
// it as one scheduler job: admission (weighted-fair, priority-banded)
// happens first, then the cycle leases worker slots from the global
// pool batch by batch via the Grant.
func (r *Repo) refreshScheduled(ctx context.Context, pri sched.Priority) (stats *RefreshStats, err error) {
	ctx, sp := trace.Start(ctx, "origin.refresh")
	defer func() {
		if stats != nil {
			sp.SetAttrInt("sanitized", int64(stats.Sanitized))
			sp.SetAttrInt("cache_hits", int64(stats.CacheHits))
			sp.SetAttrInt("rejected", int64(stats.Rejected))
			sp.SetAttrInt("failed", int64(len(stats.Errors)))
		}
		sp.SetError(err)
		sp.End()
	}()
	sp.SetTier("origin")
	err = r.svc.sched.Run(ctx, r.ID, pri, func(ctx context.Context, g *sched.Grant) error {
		var ferr error
		stats, ferr = r.refreshGranted(ctx, g)
		return ferr
	})
	return stats, err
}

// refreshGranted is the refresh cycle body, already admitted by the
// scheduler and holding g for worker-slot leases.
func (r *Repo) refreshGranted(ctx context.Context, g *sched.Grant) (stats *RefreshStats, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	workers := r.workers
	mode := r.mode
	stats = &RefreshStats{Workers: workers}
	// Stage spans: each st.next ends the previous stage's span and
	// opens the named one; the deferred close ends whichever stage is
	// in flight when the cycle returns — including early error
	// unwinds — and attributes the cycle's error to it.
	st := newStages(ctx)
	defer func() { st.close(err) }()

	st.next("refresh.quorum")
	qres, err := r.reader.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUpstream, err)
	}
	stats.QuorumLatency = qres.Elapsed
	stats.MirrorsContacted = qres.Contacted
	newUpstream, err := qres.Index.Verify(r.trust)
	if err != nil {
		return nil, fmt.Errorf("%w: verifying upstream index: %w", ErrUpstream, err)
	}
	if r.upstream != nil && newUpstream.Sequence < r.upstream.Sequence {
		// A quorum of mirrors agreeing on an older index than one we
		// already verified: treat as replay and refuse.
		return nil, fmt.Errorf("%w: %w: upstream sequence %d < %d", ErrUpstream, ErrRollback, newUpstream.Sequence, r.upstream.Sequence)
	}
	upstreamDigest := qres.Index.Digest()

	// Determine work: on the first refresh everything is "added".
	var added, changed []string
	if r.upstream == nil {
		added = newUpstream.Names()
	} else {
		added, changed, _ = index.Diff(r.upstream, newUpstream)
	}
	work := make([]string, 0, len(added)+len(changed))
	inWork := make(map[string]bool, len(added)+len(changed))
	for _, name := range append(append([]string(nil), added...), changed...) {
		// The §4.5 private/closed policy variant: packages outside the
		// whitelist (or on the blacklist) are excluded up front.
		if !r.policy.Allows(name) {
			r.rejected[name] = "excluded by policy whitelist/blacklist"
			stats.Rejected++
			continue
		}
		work = append(work, name)
		inWork[name] = true
	}
	// Re-fetch packages carrying plan debt: their current scripts never
	// informed the plan (the fetch failed), so they must be retried
	// even though the upstream diff does not list them.
	for name := range r.planDebt {
		if inWork[name] || !r.policy.Allows(name) {
			continue
		}
		if _, err := newUpstream.Lookup(name); err != nil {
			continue
		}
		work = append(work, name)
		inWork[name] = true
	}
	stats.Unchanged = len(newUpstream.Entries) - len(work)

	st.next("refresh.fetch")
	// Stage 1: fetch originals of added/changed packages in worker
	// batches and decode their scripts for the plan scan. Each batch of
	// concurrent transfers costs one round trip plus its aggregate
	// payload at the path bandwidth. Failures are per-package, not
	// fatal.
	failed := make(map[string]string)
	raws := make(map[string][]byte, len(work))
	type fetchOut struct {
		raw     []byte
		dlBytes int64
		scripts map[string]string
		decoded bool
		err     error
	}
	fouts := make([]fetchOut, len(work))
	for base := 0; base < len(work); {
		// Lease this batch's goroutines from the global pool: the batch
		// shrinks below the per-repo workers cap when other tenants hold
		// slots, so the fleet-wide in-flight total stays bounded.
		lease := g.Acquire(min(workers, len(work)-base))
		batch := work[base : base+lease]
		var wg sync.WaitGroup
		for j := range batch {
			wg.Add(1)
			go func(out *fetchOut, name string) {
				defer wg.Done()
				entry, err := newUpstream.Lookup(name)
				if err != nil {
					out.err = err
					return
				}
				out.raw, out.dlBytes, out.err = r.obtainOriginal(mode, name, entry)
				if out.err != nil {
					return
				}
				if p, err := apk.Decode(out.raw); err == nil {
					out.scripts, out.decoded = p.Scripts, true
				}
			}(&fouts[base+j], batch[j])
		}
		wg.Wait()
		batchDl := make([]int64, 0, len(batch))
		for j := range batch {
			batchDl = append(batchDl, fouts[base+j].dlBytes)
		}
		r.chargeBatchDownloads(stats, batchDl)
		g.Release(lease)
		base += lease
	}
	// Plan debt: packages whose scripts at the current upstream version
	// are still unknown after stage 1. They keep forcing plan rebuilds
	// and re-fetches until they heal — reusing a plan that never saw a
	// package's scripts would strip its account commands without
	// provisioning the accounts.
	newPlanDebt := make(map[string]bool)
	for i, name := range work {
		if fouts[i].err != nil {
			failed[name] = fouts[i].err.Error()
			newPlanDebt[name] = true
			continue
		}
		raws[name] = fouts[i].raw
		if fouts[i].decoded {
			if entry, err := newUpstream.Lookup(name); err == nil {
				r.scripts[name] = scriptsEntry{digest: entry.Hash, scripts: fouts[i].scripts}
			}
		} else {
			newPlanDebt[name] = true
		}
	}

	st.next("refresh.plan")
	// (Re)build the sanitization plan from ALL package scripts (the
	// repository-wide scan of §4.2). When the upstream index is
	// byte-identical to the last one planned against — and no package
	// carries plan debt — the existing plan is reused outright;
	// otherwise the scan runs over the script cache, decoding only
	// packages it has not seen.
	plan := r.plan
	if plan == nil || upstreamDigest != r.upstreamDigest || len(r.planDebt) > 0 || len(newPlanDebt) > 0 {
		plan, err = sanitize.BuildPlan(&scriptCacheSource{repo: r, idx: newUpstream, failed: failed}, r.policy.InitConfigFiles, r.signKey)
		if err != nil {
			return nil, err
		}
	}
	planHash := plan.Hash()
	replanned := planHash != r.planHash

	san := &sanitize.Sanitizer{
		Plan:      plan,
		TrustRing: r.trust,
		SignKey:   r.signKey,
		EPC:       r.svc.cfg.EPC,
	}

	st.next("refresh.sanitize")
	// Stage 2 targets: every policy-allowed package in the upstream
	// index. The content-addressed cache — keyed by (original digest,
	// plan hash) — decides which actually get sanitized, so unchanged
	// packages under an unchanged plan cost one sealed-metadata read
	// regardless of why they were targeted. Packages that failed stage
	// 1 are skipped here; previously rejected packages stay rejected
	// without a new attempt while their (digest, plan) pair is
	// unchanged. Under CacheNone the sanitization cache is off, so
	// unchanged packages carry their previous index entries forward
	// instead of being re-sanitized (CacheNone is a Figure 10 package
	// *serving* scenario; the refresh stays incremental).
	var carried []index.Entry
	targets := make([]index.Entry, 0, len(newUpstream.Entries))
	for _, e := range newUpstream.Entries {
		if !r.policy.Allows(e.Name) {
			continue
		}
		if _, ok := failed[e.Name]; ok {
			continue
		}
		if r.rejectedKey[e.Name] == r.sanCacheKey(e.Hash, planHash) {
			continue
		}
		if mode == CacheNone && !replanned && !inWork[e.Name] && r.local != nil {
			if old, err := r.local.Lookup(e.Name); err == nil {
				carried = append(carried, old)
				continue
			}
		}
		targets = append(targets, e)
	}
	// Operator-registered packages (batched ingest) join the targets —
	// their originals sit in the cache under the same content-addressed
	// keys, so the sanitization cache treats them exactly like upstream
	// packages. An upstream package of the same name shadows the
	// registration (the mirror fleet outranks the operator).
	if len(r.registered) > 0 {
		regNames := make([]string, 0, len(r.registered))
		for name := range r.registered {
			regNames = append(regNames, name)
		}
		sort.Strings(regNames)
		for _, name := range regNames {
			e := r.registered[name]
			if _, err := newUpstream.Lookup(name); err == nil {
				continue
			}
			if !r.policy.Allows(name) {
				continue
			}
			if r.rejectedKey[name] == r.sanCacheKey(e.Hash, planHash) {
				continue
			}
			targets = append(targets, e)
		}
	}

	// Workers keep only the result metadata needed for accounting; the
	// full Result (sanitized bytes plus the decoded package) is
	// retained only under KeepStats, and each fetched original is
	// released once its stage-2 batch completes. Peak memory is the
	// stage-1 originals still awaiting sanitization plus one batch of
	// in-flight packages — not the whole repository's results.
	type sanOut struct {
		newEntry   index.Entry
		ok         bool
		fresh      bool          // a cache miss that was sanitized
		native     time.Duration // measured sanitization CPU time
		workingSet int64         // modeled enclave working set
		res        *sanitize.Result
		cacheHit   bool
		dlBytes    int64
		reject     string
		err        error
	}
	keepStats := r.keepStats
	souts := make([]sanOut, len(targets))
	for base := 0; base < len(targets); {
		lease := g.Acquire(min(workers, len(targets)-base))
		batch := targets[base : base+lease]
		var wg sync.WaitGroup
		for j := range batch {
			wg.Add(1)
			go func(out *sanOut, e index.Entry) {
				defer wg.Done()
				key := r.sanCacheKey(e.Hash, planHash)
				if mode != CacheNone {
					if ce, err := r.loadCacheEntry(key); err == nil {
						out.newEntry = index.Entry{Name: e.Name, Version: e.Version, Size: ce.Size, Hash: ce.Hash, Depends: e.Depends}
						out.ok, out.cacheHit = true, true
						return
					}
				}
				raw := raws[e.Name]
				if raw == nil {
					var err error
					raw, out.dlBytes, err = r.obtainOriginal(mode, e.Name, e)
					if err != nil {
						out.err = err
						return
					}
				}
				res, err := san.Sanitize(raw)
				if err != nil {
					// Policy enforcement (§4.5): packages with
					// unsupported scripts or not "created by trusted
					// entities" are excluded from the repository, not
					// fatal to the refresh.
					if errors.Is(err, sanitize.ErrUnsupported) || errors.Is(err, apk.ErrUntrusted) {
						out.reject = err.Error()
						return
					}
					out.err = fmt.Errorf("tsr: sanitizing %s: %w", e.Name, err)
					return
				}
				sum := sha256.Sum256(res.Raw)
				if err := r.svc.cfg.Store.Put(r.sanitizedKey(e.Name, sum), res.Raw); err != nil {
					out.err = err
					return
				}
				if mode != CacheNone {
					if err := r.storeCacheEntry(cacheEntry{Key: key, Size: int64(len(res.Raw)), Hash: sum}); err != nil {
						out.err = err
						return
					}
				}
				out.fresh = true
				out.native = res.Phases.Total()
				out.workingSet = res.WorkingSet
				if keepStats {
					out.res = res
				}
				out.newEntry = index.Entry{Name: e.Name, Version: e.Version, Size: int64(len(res.Raw)), Hash: sum, Depends: e.Depends}
				out.ok = true
			}(&souts[base+j], batch[j])
		}
		wg.Wait()
		// Charge the batch's modeled costs: downloads as one round of
		// concurrent transfers, and SGX paging from the batch's
		// combined working set (worker threads share the EPC).
		batchDl := make([]int64, 0, len(batch))
		var workingSets []int64
		for j := range batch {
			batchDl = append(batchDl, souts[base+j].dlBytes)
			if souts[base+j].fresh {
				workingSets = append(workingSets, souts[base+j].workingSet)
			}
		}
		r.chargeBatchDownloads(stats, batchDl)
		if f := r.svc.cfg.EPC.SharedFactor(workingSets); f > 1 && len(workingSets) > 0 {
			for j := range batch {
				if souts[base+j].fresh {
					stats.SGXOverhead += time.Duration(float64(souts[base+j].native) * (f - 1))
				}
			}
		}
		// The originals of this batch are no longer needed in memory
		// (serving paths re-read them from the original cache).
		for j := range batch {
			delete(raws, batch[j].Name)
		}
		g.Release(lease)
		base += lease
	}

	st.next("refresh.sign")
	// Rebuild the local index from cache hits plus fresh results.
	newLocal := &index.Index{Origin: "tsr-" + r.ID, Sequence: r.seq + 1}
	for i := range souts {
		out := &souts[i]
		name := targets[i].Name
		switch {
		case out.err != nil:
			failed[name] = out.err.Error()
		case out.reject != "":
			r.rejected[name] = out.reject
			r.rejectedKey[name] = r.sanCacheKey(targets[i].Hash, planHash)
			stats.Rejected++
		case out.ok:
			delete(r.rejected, name)
			delete(r.rejectedKey, name)
			newLocal.Add(out.newEntry)
			if out.cacheHit {
				stats.CacheHits++
			} else {
				stats.Sanitized++
				stats.SanitizeTime += out.native
				if out.res != nil {
					stats.Results = append(stats.Results, out.res)
				}
			}
		}
	}
	// CacheNone carries unchanged packages' previous entries forward.
	for _, e := range carried {
		newLocal.Add(e)
	}
	// Per-package failures are surfaced, not fatal. While the plan is
	// unchanged the previous (still consistent) entry keeps serving;
	// after a replan a stale entry would carry the old preamble, so the
	// package drops out until a later refresh succeeds. The upstream
	// entry the served version came from is pinned so that on-demand
	// re-sanitization keeps verifying against the right original until
	// the update succeeds — without the pin, a fetch would rebuild the
	// NEW version and raise a spurious tamper alarm when its hash does
	// not match the carried index entry.
	newPinned := make(map[string]index.Entry)
	for name, msg := range failed {
		stats.Errors = append(stats.Errors, PackageError{Name: name, Err: msg})
		if !replanned && r.local != nil {
			if old, err := r.local.Lookup(name); err == nil {
				newLocal.Add(old)
				if pe, ok := r.pinned[name]; ok {
					newPinned[name] = pe
				} else if r.upstream != nil {
					if pe, err := r.upstream.Lookup(name); err == nil {
						newPinned[name] = pe
					}
				}
			}
		}
	}
	sort.Slice(stats.Errors, func(i, j int) bool { return stats.Errors[i].Name < stats.Errors[j].Name })

	signedLocal, err := index.Sign(newLocal, r.signKey)
	if err != nil {
		return nil, err
	}

	st.next("refresh.publish")
	// Evict state for packages that left the upstream: script cache and
	// rejection bookkeeping would otherwise grow forever under churn.
	// Registered packages live outside the upstream index, so their
	// state survives until Unregister.
	for name := range r.scripts {
		if _, ok := r.registered[name]; ok {
			continue
		}
		if _, err := newUpstream.Lookup(name); err != nil {
			delete(r.scripts, name)
		}
	}
	for name := range r.rejected {
		if _, ok := r.registered[name]; ok {
			continue
		}
		if _, err := newUpstream.Lookup(name); err != nil {
			delete(r.rejected, name)
			delete(r.rejectedKey, name)
		}
	}

	oldLocal, oldUpstream, oldPinned := r.local, r.upstream, r.pinned
	oldPlanHash := r.planHash
	r.upstream = newUpstream
	r.upstreamDigest = upstreamDigest
	r.plan = plan
	r.planHash = planHash
	r.local = newLocal
	r.localSig = signedLocal
	r.seq = newLocal.Sequence
	r.pinned = newPinned
	r.planDebt = newPlanDebt
	// Build-then-publish: the new read state becomes visible to clients
	// in one atomic store, only now that the whole cycle succeeded.
	r.publishLocked()

	// Evict cache generations nothing references anymore: byte blobs
	// addressed by (name, hash) pairs that appear in the outgoing
	// indexes but in neither the incoming ones nor the pinned set that
	// on-demand rebuilds still need. Old-snapshot readers in flight at
	// publish time can race an eviction; FetchPackageTraced retries
	// against the fresh snapshot when that happens.
	if oldLocal != nil {
		for _, e := range oldLocal.Entries {
			if ne, err := newLocal.Lookup(e.Name); err == nil && ne.Hash == e.Hash {
				continue
			}
			_ = r.svc.cfg.Store.Delete(r.sanitizedKey(e.Name, e.Hash))
		}
	}
	evictOrig := func(name string, hash [32]byte) {
		if pe, ok := newPinned[name]; ok && pe.Hash == hash {
			return
		}
		if re, ok := r.registered[name]; ok && re.Hash == hash {
			return
		}
		if ne, err := newUpstream.Lookup(name); err == nil && ne.Hash == hash {
			return
		}
		_ = r.svc.cfg.Store.Delete(r.origKey(name, hash))
	}
	if oldUpstream != nil {
		for _, e := range oldUpstream.Entries {
			evictOrig(e.Name, e.Hash)
		}
	}
	for name, pe := range oldPinned {
		evictOrig(name, pe.Hash)
	}
	// The sealed sanitization-cache metadata follows its generation:
	// (digest, plan) pairs the new state no longer produces are deleted
	// together with their byte blobs. Otherwise a recurring pair — e.g.
	// an upstream version rollback A→B→A — would cache-hit metadata
	// whose sanitized bytes were evicted with the old generation and
	// publish an index entry with no bytes behind it. (After a
	// ForceReplan oldPlanHash is zero and these deletes address keys
	// that never existed — harmless no-ops.)
	if oldPlanHash != planHash {
		// Registered packages' cache metadata under the outgoing plan is
		// equally stale (their bytes were re-sanitized above).
		for _, e := range r.registered {
			_ = r.svc.cfg.Store.Delete(r.sanCacheKey(e.Hash, oldPlanHash))
		}
	}
	if oldUpstream != nil && oldPlanHash != planHash {
		for _, e := range oldUpstream.Entries {
			_ = r.svc.cfg.Store.Delete(r.sanCacheKey(e.Hash, oldPlanHash))
		}
	} else if oldUpstream != nil {
		for _, e := range oldUpstream.Entries {
			if ne, err := newUpstream.Lookup(e.Name); err == nil && ne.Hash == e.Hash {
				continue
			}
			_ = r.svc.cfg.Store.Delete(r.sanCacheKey(e.Hash, oldPlanHash))
		}
	}
	// Reconcile serving-path writes: a reader racing an earlier publish
	// may have re-created a blob its eviction pass had already deleted
	// (repairing a tampered cache, or re-downloading an original). Any
	// recorded key the state just published does not reference is such
	// a resurrected stale generation — delete it now. Steady state has
	// no recorded writes, so the keep-set is only built when needed.
	r.servedWritesMu.Lock()
	recorded := r.servedWrites
	if len(recorded) > 0 {
		r.servedWrites = make(map[string]struct{})
	}
	r.servedWritesMu.Unlock()
	if len(recorded) > 0 {
		keep := make(map[string]struct{}, len(newLocal.Entries)+len(newUpstream.Entries)+len(newPinned))
		for _, e := range newLocal.Entries {
			keep[r.sanitizedKey(e.Name, e.Hash)] = struct{}{}
		}
		for _, e := range newUpstream.Entries {
			keep[r.origKey(e.Name, e.Hash)] = struct{}{}
		}
		for name, pe := range newPinned {
			keep[r.origKey(name, pe.Hash)] = struct{}{}
		}
		for name, re := range r.registered {
			keep[r.origKey(name, re.Hash)] = struct{}{}
		}
		for key := range recorded {
			if _, ok := keep[key]; !ok {
				_ = r.svc.cfg.Store.Delete(key)
			}
		}
	}

	r.totals.refreshes.Add(1)
	r.totals.cacheHits.Add(int64(stats.CacheHits))
	r.totals.sanitized.Add(int64(stats.Sanitized))
	r.totals.rejected.Add(int64(stats.Rejected))
	r.totals.downloaded.Add(int64(stats.Downloaded))
	r.totals.failed.Add(int64(len(stats.Errors)))
	// Under AutoPersist every successful refresh checkpoints the sealed
	// state, so a crash at any later instant restarts warm into this
	// generation. The refresh itself has already published — a
	// checkpoint failure is surfaced as an operational error (the
	// in-memory service keeps serving; durability is degraded until a
	// checkpoint succeeds).
	if r.svc.cfg.AutoPersist {
		st.next("refresh.seal")
		if err := r.checkpointLocked(); err != nil {
			return stats, fmt.Errorf("tsr: refresh published but checkpoint failed: %w", err)
		}
	}
	return stats, nil
}

// obtainOriginal returns the original package bytes, from the
// original cache when allowed, else from a mirror (verifying size and
// hash against the trusted upstream index entry). The returned count is
// the number of bytes downloaded over the network (zero on cache hit);
// the caller charges the modeled transfer time via chargeDownload.
// It takes the cache mode explicitly so refresh workers can call it
// without holding the repository lock.
func (r *Repo) obtainOriginal(mode CacheMode, name string, entry index.Entry) ([]byte, int64, error) {
	if mode != CacheNone {
		if raw, err := r.svc.cfg.Store.Get(r.origKey(name, entry.Hash)); err == nil {
			if int64(len(raw)) == entry.Size && sha256.Sum256(raw) == entry.Hash {
				return raw, 0, nil
			}
			// Tampered original cache: fall through to re-download.
		}
	}
	var lastErr error
	for _, f := range r.fetchers {
		raw, err := f.FetchPackage(name)
		if err != nil {
			lastErr = err
			continue
		}
		if int64(len(raw)) != entry.Size || sha256.Sum256(raw) != entry.Hash {
			lastErr = fmt.Errorf("tsr: mirror served wrong bytes for %s", name)
			continue
		}
		if mode != CacheNone {
			if err := r.svc.cfg.Store.Put(r.origKey(name, entry.Hash), raw); err != nil {
				return nil, 0, err
			}
		}
		return raw, entry.Size, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("tsr: no mirrors configured")
	}
	return nil, 0, fmt.Errorf("tsr: downloading %s: %w", name, lastErr)
}

// chargeBatchDownloads accounts one worker batch's downloads: per-item
// byte counts are summed (zero means a cache hit) and charged as one
// round of concurrent transfers.
func (r *Repo) chargeBatchDownloads(stats *RefreshStats, dlBytes []int64) {
	var total int64
	n := 0
	for _, b := range dlBytes {
		if b > 0 {
			total += b
			n++
		}
	}
	stats.Downloaded += n
	stats.DownloadTime += r.chargeDownload(total, n)
}

// chargeDownload charges the modeled transfer time for a batch of
// packageCount transfers totaling bytes, issued concurrently: one round
// trip for the batch plus the payload at the path bandwidth (the link
// is work-conserving, so concurrent transfers do not waste capacity —
// batching saves the per-package round trips).
func (r *Repo) chargeDownload(bytes int64, packageCount int) time.Duration {
	if r.svc.cfg.Link == nil || packageCount == 0 {
		return 0
	}
	remote := netsim.Europe
	if len(r.reader.Members) > 0 {
		remote = r.reader.Members[0].Continent
	}
	d := r.svc.cfg.Link.RequestResponseBatch(r.svc.cfg.Local, remote, bytes, packageCount)
	if r.svc.cfg.Clock != nil {
		r.svc.cfg.Clock.Sleep(d)
	}
	return d
}

// scriptsEntry caches one package's hook scripts together with the
// original digest they were decoded from.
type scriptsEntry struct {
	digest  [32]byte
	scripts map[string]string
}

// scriptCacheSource feeds BuildPlan the scripts of every package in the
// upstream index through the repository's script cache: freshly fetched
// packages were decoded in stage 1, unchanged packages hit the cache
// from earlier refreshes, and anything else (e.g. the first replan
// after a restart) is decoded from the original cache once and
// remembered. For a package whose download failed this cycle, the
// previous version's cached scripts stand in — a transient mirror
// failure must not shift the account plan (and with it every package's
// canonical uid/gid assignment and cache key). It runs under the
// repository lock.
type scriptCacheSource struct {
	repo   *Repo
	idx    *index.Index
	failed map[string]string
	pos    int
}

// NextScripts implements sanitize.PackageSource.
func (s *scriptCacheSource) NextScripts() (string, map[string]string, bool) {
	for s.pos < len(s.idx.Entries) {
		entry := s.idx.Entries[s.pos]
		s.pos++
		ce, cached := s.repo.scripts[entry.Name]
		if cached && ce.digest == entry.Hash {
			return entry.Name, ce.scripts, true
		}
		if scripts, ok := s.fromStore(entry); ok {
			return entry.Name, scripts, true
		}
		if _, fetchFailed := s.failed[entry.Name]; fetchFailed && cached {
			// Stale but plan-stabilizing: the last version this package
			// contributed to the plan. Retried next refresh.
			return entry.Name, ce.scripts, true
		}
		continue // no script info available; skip
	}
	return "", nil, false
}

// fromStore decodes a package's scripts from the cached original,
// verifying the bytes against the trusted index entry first.
func (s *scriptCacheSource) fromStore(entry index.Entry) (map[string]string, bool) {
	cached, err := s.repo.svc.cfg.Store.Get(s.repo.origKey(entry.Name, entry.Hash))
	if err != nil {
		return nil, false
	}
	if int64(len(cached)) != entry.Size || sha256.Sum256(cached) != entry.Hash {
		return nil, false // stale or tampered original cache; do not trust
	}
	p, err := apk.Decode(cached)
	if err != nil {
		return nil, false
	}
	s.repo.scripts[entry.Name] = scriptsEntry{digest: entry.Hash, scripts: p.Scripts}
	return p.Scripts, true
}

// --- sealed state (§5.5) ----------------------------------------------

// SealState increments the repository's TPM monotonic counter (see
// counterID in persist.go: one NV counter per tenant) and seals the
// repository's metadata indexes together with the counter value, so the
// state survives TSR restarts without trusting the disk.
func (r *Repo) SealState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sealStateLocked()
}

// sealStateLocked is SealState with r.mu held. A repository that has
// published only ingested packages (no refresh yet) checkpoints with
// an empty upstream index.
func (r *Repo) sealStateLocked() ([]byte, error) {
	if r.localSig == nil {
		return nil, ErrNotInitialized
	}
	up := r.upstream
	if up == nil {
		up = &index.Index{}
	}
	mc := r.svc.cfg.TPM.IncrementCounter(r.counterID())
	blob := encodeState(mc, up.Encode(), r.localSig, r.seq, r.registeredEntriesLocked())
	return r.svc.Seal(blob)
}

// registeredEntriesLocked returns the operator-registered entries in
// name order (deterministic checkpoints).
func (r *Repo) registeredEntriesLocked() []index.Entry {
	if len(r.registered) == 0 {
		return nil
	}
	names := make([]string, 0, len(r.registered))
	for name := range r.registered {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]index.Entry, 0, len(names))
	for _, name := range names {
		out = append(out, r.registered[name])
	}
	return out
}

// RestoreState unseals a blob and verifies its monotonic counter value
// matches the TPM's current value, rejecting rolled-back state files.
func (r *Repo) RestoreState(sealed []byte) error {
	blob, err := r.svc.Unseal(sealed)
	if err != nil {
		return err
	}
	mc, upstreamRaw, localSig, seq, registered, err := decodeState(blob)
	if err != nil {
		return err
	}
	current := r.svc.cfg.TPM.ReadCounter(r.counterID())
	if mc != current {
		return fmt.Errorf("%w: sealed MC %d, TPM MC %d", ErrRollback, mc, current)
	}
	upstream, err := index.Decode(upstreamRaw)
	if err != nil {
		return err
	}
	local, err := localSig.Verify(keys.NewRing(r.signKey.Public()))
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.upstream = upstream
	r.local = local
	r.localSig = localSig
	r.seq = seq
	r.registered = make(map[string]index.Entry, len(registered))
	for _, e := range registered {
		r.registered[e.Name] = e
	}
	// Publish the restored state so serving resumes immediately (the
	// sanitization plan is rebuilt by the next refresh; until then,
	// requests are answered from the sanitized cache).
	r.publishLocked()
	return nil
}

// encodeState serializes (mc, upstream, localSigned, seq, registered).
// The registered chunk is appended only when non-empty, so checkpoints
// of tenants that never ingested are byte-identical to the historical
// format (and historical checkpoints decode cleanly).
func encodeState(mc uint64, upstream []byte, localSig *index.Signed, seq uint64, registered []index.Entry) []byte {
	var buf bytes.Buffer
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], mc)
	buf.Write(n[:])
	binary.BigEndian.PutUint64(n[:], seq)
	buf.Write(n[:])
	writeChunk(&buf, upstream)
	writeChunk(&buf, localSig.Raw)
	writeChunk(&buf, []byte(localSig.KeyName))
	writeChunk(&buf, localSig.Sig)
	if len(registered) > 0 {
		reg := &index.Index{Origin: "registered"}
		for _, e := range registered {
			reg.Add(e)
		}
		writeChunk(&buf, reg.Encode())
	}
	return buf.Bytes()
}

func decodeState(blob []byte) (mc uint64, upstream []byte, localSig *index.Signed, seq uint64, registered []index.Entry, err error) {
	buf := bytes.NewReader(blob)
	var n [8]byte
	if _, err = buf.Read(n[:]); err != nil {
		return 0, nil, nil, 0, nil, fmt.Errorf("tsr: sealed state: %w", err)
	}
	mc = binary.BigEndian.Uint64(n[:])
	if _, err = buf.Read(n[:]); err != nil {
		return 0, nil, nil, 0, nil, fmt.Errorf("tsr: sealed state: %w", err)
	}
	seq = binary.BigEndian.Uint64(n[:])
	upstream, err = readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, nil, err
	}
	raw, err := readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, nil, err
	}
	keyName, err := readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, nil, err
	}
	sig, err := readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, nil, err
	}
	if buf.Len() > 0 {
		regRaw, rerr := readChunk(buf)
		if rerr != nil {
			return 0, nil, nil, 0, nil, rerr
		}
		reg, rerr := index.Decode(regRaw)
		if rerr != nil {
			return 0, nil, nil, 0, nil, fmt.Errorf("tsr: sealed state: registered entries: %w", rerr)
		}
		registered = reg.Entries
	}
	return mc, upstream, &index.Signed{Raw: raw, KeyName: string(keyName), Sig: sig}, seq, registered, nil
}

func writeChunk(buf *bytes.Buffer, data []byte) { store.WriteChunk(buf, data) }

func readChunk(buf *bytes.Reader) ([]byte, error) {
	out, err := store.ReadChunk(buf)
	if err != nil {
		return nil, fmt.Errorf("tsr: sealed state: %w", err)
	}
	return out, nil
}

// Plan exposes the published sanitization plan (for examples and
// experiments); lock-free, with a refresh-side fallback before the
// first publish.
func (r *Repo) Plan() *sanitize.Plan {
	if snap := r.served.Load(); snap != nil {
		return snap.plan
	}
	if !r.mu.TryLock() {
		return nil // first refresh in flight; nothing published yet
	}
	defer r.mu.Unlock()
	return r.plan
}

// scriptPreview returns the sanitized post-install script of a package
// (diagnostic helper used by the HTTP API).
func (r *Repo) scriptPreview(name string) (string, error) {
	raw, err := r.FetchPackage(name)
	if err != nil {
		return "", err
	}
	p, err := apk.Decode(raw)
	if err != nil {
		return "", err
	}
	var out string
	for _, hook := range p.ScriptNames() {
		out += "# hook: " + hook + "\n" + p.Scripts[hook]
	}
	if out == "" {
		return "", nil
	}
	if _, err := script.Parse(out); err != nil {
		return "", err
	}
	return out, nil
}
