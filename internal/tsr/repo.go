package tsr

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/sanitize"
	"tsr/internal/script"
)

// Cache behaviour errors.
var (
	ErrCacheTampered  = errors.New("tsr: cached package does not match the trusted index (tamper or rollback)")
	ErrRollback       = errors.New("tsr: sealed state is older than the TPM monotonic counter (rollback attack)")
	ErrUnsupportedPkg = errors.New("tsr: package rejected by sanitization policy")
)

// CacheMode selects which cache levels are active — the three scenarios
// of Figure 10 (None / Original / Sanitized).
type CacheMode int

const (
	// CacheBoth keeps original and sanitized packages (default).
	CacheBoth CacheMode = iota
	// CacheOriginalOnly caches upstream packages but re-sanitizes on
	// every download request.
	CacheOriginalOnly
	// CacheNone always re-downloads and re-sanitizes.
	CacheNone
)

// ServedFrom reports how a package request was satisfied.
type ServedFrom int

const (
	// ServedSanitizedCache: returned straight from the sanitized cache.
	ServedSanitizedCache ServedFrom = iota
	// ServedOriginalCache: original was cached; sanitized on demand.
	ServedOriginalCache
	// ServedMirror: downloaded from a mirror, then sanitized.
	ServedMirror
)

// String implements fmt.Stringer.
func (s ServedFrom) String() string {
	switch s {
	case ServedSanitizedCache:
		return "sanitized-cache"
	case ServedOriginalCache:
		return "original-cache"
	case ServedMirror:
		return "mirror"
	default:
		return fmt.Sprintf("ServedFrom(%d)", int(s))
	}
}

// RefreshStats describes one Refresh run — the Table 3 decomposition.
type RefreshStats struct {
	// QuorumLatency is the modeled time to read the metadata index
	// from the mirror quorum (Figure 13).
	QuorumLatency time.Duration
	// MirrorsContacted is how many mirrors the quorum consulted.
	MirrorsContacted int
	// DownloadTime is the modeled time to download changed packages.
	DownloadTime time.Duration
	// SanitizeTime is the measured time sanitizing changed packages
	// (native, excluding the SGX model).
	SanitizeTime time.Duration
	// SGXOverhead is the modeled additional in-enclave time.
	SGXOverhead time.Duration
	// Downloaded, Sanitized, Rejected, Unchanged count packages.
	Downloaded, Sanitized, Rejected, Unchanged int
	// Results holds the per-package sanitization results of this run
	// (consumed by the experiment harness; nil-able for big runs).
	Results []*sanitize.Result
}

// Repo is one tenant repository inside a TSR service.
type Repo struct {
	ID string

	svc      *Service
	policy   *policy.Policy
	signKey  *keys.Pair
	trust    *keys.Ring // policy signer keys: verifies indexes and packages
	reader   *quorum.Reader
	fetchers []PackageFetcher

	mu        sync.Mutex
	mode      CacheMode
	parallel  int           // download parallelism (1 = sequential, the paper's default)
	upstream  *index.Index  // latest verified upstream index
	local     *index.Index  // index of sanitized packages
	localSig  *index.Signed // signed local index served to clients
	plan      *sanitize.Plan
	preamble  string            // account plan fingerprint; changes force re-sanitization
	rejected  map[string]string // package -> rejection reason
	keepStats bool
	seq       uint64 // local index sequence
}

// newRepo builds the tenant repository and its quorum reader.
func newRepo(id string, pol *policy.Policy, signKey *keys.Pair, svc *Service) (*Repo, error) {
	trust, err := pol.SignerRing()
	if err != nil {
		return nil, err
	}
	r := &Repo{
		ID:       id,
		svc:      svc,
		policy:   pol,
		signKey:  signKey,
		trust:    trust,
		rejected: make(map[string]string),
	}
	members := make([]quorum.Member, 0, len(pol.Mirrors))
	for _, m := range pol.Mirrors {
		if svc.cfg.Resolve == nil {
			return nil, fmt.Errorf("%w: no resolver configured", ErrNoMirror)
		}
		src, fetcher, err := svc.cfg.Resolve(m)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoMirror, m.Hostname, err)
		}
		cont, err := m.Continent()
		if err != nil {
			return nil, err
		}
		members = append(members, quorum.Member{Host: m.Hostname, Continent: cont, Source: src})
		r.fetchers = append(r.fetchers, fetcher)
	}
	r.reader = &quorum.Reader{
		Local:     svc.cfg.Local,
		Link:      svc.cfg.Link,
		Clock:     svc.cfg.Clock,
		TrustRing: trust,
		Members:   members,
	}
	return r, nil
}

// PublicKey returns the repository's public signing key.
func (r *Repo) PublicKey() *keys.Public { return r.signKey.Public() }

// Policy returns the deployed policy.
func (r *Repo) Policy() *policy.Policy { return r.policy }

// SetCacheMode selects the Figure 10 cache scenario.
func (r *Repo) SetCacheMode(m CacheMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mode = m
}

// SetDownloadParallelism sets how many packages Refresh downloads
// concurrently. The paper's prototype downloads sequentially and notes
// that "the download time can be greatly reduced by enabling parallel
// downloading. This performance improvement is left as part of future
// work" (Table 3) — this implements that future work. Parallel
// transfers share the path bandwidth in the network model, so the
// saving comes from overlapping round trips, not free bandwidth.
func (r *Repo) SetDownloadParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = 1
	}
	r.parallel = n
}

// KeepStats makes Refresh retain per-package sanitization results.
func (r *Repo) KeepStats(keep bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keepStats = keep
}

// RejectedPackages returns the packages rejected by sanitization and
// their reasons.
func (r *Repo) RejectedPackages() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.rejected))
	for k, v := range r.rejected {
		out[k] = v
	}
	return out
}

// Findings returns the security findings of the current plan.
func (r *Repo) Findings() []sanitize.Finding {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.plan == nil {
		return nil
	}
	return append([]sanitize.Finding(nil), r.plan.Findings...)
}

// cacheKey builders.
func (r *Repo) origKey(name string) string      { return r.ID + "/orig/" + name }
func (r *Repo) sanitizedKey(name string) string { return r.ID + "/san/" + name }

// Refresh performs the §5.4 cycle: quorum-read the upstream metadata
// index, download packages that changed since the previous refresh,
// (re)build the sanitization plan, sanitize, cache, and publish a new
// signed local index.
func (r *Repo) Refresh() (*RefreshStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	stats := &RefreshStats{}

	qres, err := r.reader.Read()
	if err != nil {
		return nil, err
	}
	stats.QuorumLatency = qres.Elapsed
	stats.MirrorsContacted = qres.Contacted
	newUpstream, err := qres.Index.Verify(r.trust)
	if err != nil {
		return nil, err
	}
	if r.upstream != nil && newUpstream.Sequence < r.upstream.Sequence {
		// A quorum of mirrors agreeing on an older index than one we
		// already verified: treat as replay and refuse.
		return nil, fmt.Errorf("%w: upstream sequence %d < %d", ErrRollback, newUpstream.Sequence, r.upstream.Sequence)
	}

	// Determine work: on the first refresh everything is "added".
	var added, changed []string
	if r.upstream == nil {
		added = newUpstream.Names()
	} else {
		added, changed, _ = index.Diff(r.upstream, newUpstream)
	}
	work := make([]string, 0, len(added)+len(changed))
	for _, name := range append(append([]string(nil), added...), changed...) {
		// The §4.5 private/closed policy variant: packages outside the
		// whitelist (or on the blacklist) are excluded up front.
		if !r.policy.Allows(name) {
			r.rejected[name] = "excluded by policy whitelist/blacklist"
			stats.Rejected++
			continue
		}
		work = append(work, name)
	}
	stats.Unchanged = len(newUpstream.Entries) - len(work)

	// Download (or reuse cached originals for) the packages to process.
	// With parallelism p the transfers are issued in batches of p; each
	// batch costs one round trip plus its total payload at the path
	// bandwidth, so parallelism saves the per-package round trips.
	parallel := r.parallel
	if parallel < 1 {
		parallel = 1
	}
	raws := make(map[string][]byte, len(work))
	var batchBytes int64
	inBatch := 0
	for _, name := range work {
		entry, err := newUpstream.Lookup(name)
		if err != nil {
			return nil, err
		}
		raw, dlBytes, err := r.obtainOriginalLocked(name, entry)
		if err != nil {
			return nil, err
		}
		if dlBytes > 0 {
			stats.Downloaded++
			batchBytes += dlBytes
			inBatch++
			if inBatch == parallel {
				stats.DownloadTime += r.chargeDownload(batchBytes, inBatch)
				batchBytes, inBatch = 0, 0
			}
		}
		raws[name] = raw
	}
	stats.DownloadTime += r.chargeDownload(batchBytes, inBatch)

	// (Re)build the sanitization plan from ALL package scripts (the
	// repository-wide scan of §4.2). Unchanged packages' scripts come
	// from the original cache.
	planSrc := &repoScriptSource{repo: r, idx: newUpstream, fresh: raws}
	plan, err := sanitize.BuildPlan(planSrc, r.policy.InitConfigFiles, r.signKey)
	if err != nil {
		return nil, err
	}
	replanned := r.plan == nil || plan.Preamble != r.preamble
	r.plan = plan
	r.preamble = plan.Preamble

	san := &sanitize.Sanitizer{
		Plan:      plan,
		TrustRing: r.trust,
		SignKey:   r.signKey,
		EPC:       r.svc.cfg.EPC,
	}

	// Decide the sanitization set: changed packages always; everything
	// when the account plan changed (stale preambles must not survive).
	targets := work
	if replanned {
		targets = newUpstream.Names()
	}

	newLocal := &index.Index{Origin: "tsr-" + r.ID, Sequence: r.seq + 1}
	if r.local != nil && !replanned {
		// Start from the previous local index; changed entries are
		// replaced below.
		newLocal.Entries = append(newLocal.Entries, r.local.Entries...)
	}
	for _, name := range targets {
		if !r.policy.Allows(name) {
			// Replans iterate the whole upstream index; policy-excluded
			// packages stay excluded (already counted in Rejected).
			continue
		}
		entry, err := newUpstream.Lookup(name)
		if err != nil {
			return nil, err
		}
		raw := raws[name]
		if raw == nil {
			var dlBytes int64
			raw, dlBytes, err = r.obtainOriginalLocked(name, entry)
			if err != nil {
				return nil, err
			}
			if dlBytes > 0 {
				stats.Downloaded++
				stats.DownloadTime += r.chargeDownload(dlBytes, 1)
			}
			raws[name] = raw
		}
		res, err := san.Sanitize(raw)
		if err != nil {
			// Policy enforcement (§4.5): packages with unsupported
			// scripts or not "created by trusted entities" are excluded
			// from the repository, not fatal to the refresh.
			if errors.Is(err, sanitize.ErrUnsupported) || errors.Is(err, apk.ErrUntrusted) {
				r.rejected[name] = err.Error()
				stats.Rejected++
				continue
			}
			return nil, fmt.Errorf("tsr: sanitizing %s: %w", name, err)
		}
		delete(r.rejected, name)
		stats.Sanitized++
		stats.SanitizeTime += res.Phases.Total()
		stats.SGXOverhead += res.SGXOverhead
		if r.keepStats {
			stats.Results = append(stats.Results, res)
		}
		if err := r.svc.cfg.Store.Put(r.sanitizedKey(name), res.Raw); err != nil {
			return nil, err
		}
		newLocal.Add(index.Entry{
			Name:    name,
			Version: entry.Version,
			Size:    int64(len(res.Raw)),
			Hash:    sha256.Sum256(res.Raw),
			Depends: entry.Depends,
		})
	}
	// Drop removed/rejected packages from the local index.
	pruned := &index.Index{Origin: newLocal.Origin, Sequence: newLocal.Sequence}
	for _, e := range newLocal.Entries {
		if _, err := newUpstream.Lookup(e.Name); err != nil {
			continue
		}
		if _, rejectedNow := r.rejected[e.Name]; rejectedNow {
			continue
		}
		pruned.Add(e)
	}

	signedLocal, err := index.Sign(pruned, r.signKey)
	if err != nil {
		return nil, err
	}
	r.upstream = newUpstream
	r.local = pruned
	r.localSig = signedLocal
	r.seq = pruned.Sequence
	return stats, nil
}

// obtainOriginalLocked returns the original package bytes, from the
// original cache when allowed, else from a mirror (verifying size and
// hash against the trusted upstream index entry). The returned count is
// the number of bytes downloaded over the network (zero on cache hit);
// the caller charges the modeled transfer time via chargeDownload.
func (r *Repo) obtainOriginalLocked(name string, entry index.Entry) ([]byte, int64, error) {
	if r.mode != CacheNone {
		if raw, err := r.svc.cfg.Store.Get(r.origKey(name)); err == nil {
			if int64(len(raw)) == entry.Size && sha256.Sum256(raw) == entry.Hash {
				return raw, 0, nil
			}
			// Tampered original cache: fall through to re-download.
		}
	}
	var lastErr error
	for _, f := range r.fetchers {
		raw, err := f.FetchPackage(name)
		if err != nil {
			lastErr = err
			continue
		}
		if int64(len(raw)) != entry.Size || sha256.Sum256(raw) != entry.Hash {
			lastErr = fmt.Errorf("tsr: mirror served wrong bytes for %s", name)
			continue
		}
		if r.mode != CacheNone {
			if err := r.svc.cfg.Store.Put(r.origKey(name), raw); err != nil {
				return nil, 0, err
			}
		}
		return raw, entry.Size, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("tsr: no mirrors configured")
	}
	return nil, 0, fmt.Errorf("tsr: downloading %s: %w", name, lastErr)
}

// chargeDownload charges the modeled transfer time for a batch of
// packageCount transfers totaling bytes, issued concurrently: one round
// trip for the batch plus the payload at the path bandwidth (the link
// is work-conserving, so concurrent transfers do not waste capacity —
// batching saves the per-package round trips).
func (r *Repo) chargeDownload(bytes int64, packageCount int) time.Duration {
	if r.svc.cfg.Link == nil || packageCount == 0 {
		return 0
	}
	remote := netsim.Europe
	if len(r.reader.Members) > 0 {
		remote = r.reader.Members[0].Continent
	}
	d := r.svc.cfg.Link.RequestResponse(r.svc.cfg.Local, remote, bytes)
	if r.svc.cfg.Clock != nil {
		r.svc.cfg.Clock.Sleep(d)
	}
	return d
}

// repoScriptSource feeds BuildPlan the scripts of every package in the
// upstream index: fresh downloads first, then cached originals.
type repoScriptSource struct {
	repo  *Repo
	idx   *index.Index
	fresh map[string][]byte
	pos   int
}

// NextScripts implements sanitize.PackageSource.
func (s *repoScriptSource) NextScripts() (string, map[string]string, bool) {
	for s.pos < len(s.idx.Entries) {
		entry := s.idx.Entries[s.pos]
		s.pos++
		raw := s.fresh[entry.Name]
		if raw == nil {
			cached, err := s.repo.svc.cfg.Store.Get(s.repo.origKey(entry.Name))
			if err != nil {
				continue // no script info available; skip
			}
			raw = cached
		}
		p, err := apk.Decode(raw)
		if err != nil {
			continue
		}
		return entry.Name, p.Scripts, true
	}
	return "", nil, false
}

// FetchIndex implements pkgmgr.Source: serves the signed local index.
func (r *Repo) FetchIndex() (*index.Signed, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.localSig == nil {
		return nil, ErrNotInitialized
	}
	return r.localSig.Clone(), nil
}

// FetchResult describes how a FetchPackage request was served.
type FetchResult struct {
	From ServedFrom
	// Latency is the server-side time to produce the bytes: real time
	// for cache reads and sanitization plus modeled download time.
	Latency time.Duration
}

// FetchPackage implements pkgmgr.Source.
func (r *Repo) FetchPackage(name string) ([]byte, error) {
	raw, _, err := r.FetchPackageTraced(name)
	return raw, err
}

// FetchPackageTraced serves a sanitized package and reports how.
// Before returning cached bytes it re-verifies them against the
// in-enclave local index — the §5.5 defense against cache tampering.
func (r *Repo) FetchPackageTraced(name string) ([]byte, *FetchResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.local == nil {
		return nil, nil, ErrNotInitialized
	}
	start := time.Now()
	entry, err := r.local.Lookup(name)
	if err != nil {
		if reason, rejected := r.rejected[name]; rejected {
			return nil, nil, fmt.Errorf("%w: %s: %s", ErrUnsupportedPkg, name, reason)
		}
		return nil, nil, err
	}
	if r.mode == CacheBoth {
		if raw, err := r.svc.cfg.Store.Get(r.sanitizedKey(name)); err == nil {
			if int64(len(raw)) == entry.Size && sha256.Sum256(raw) == entry.Hash {
				return raw, &FetchResult{From: ServedSanitizedCache, Latency: time.Since(start)}, nil
			}
			// Cache tampered or rolled back. Re-sanitize from original.
			if raw, res, err := r.resanitizeLocked(name, entry, start); err == nil {
				return raw, res, nil
			}
			return nil, nil, fmt.Errorf("%w: %s", ErrCacheTampered, name)
		}
	}
	raw, res, err := r.resanitizeLocked(name, entry, start)
	if err != nil {
		return nil, nil, err
	}
	return raw, res, nil
}

// resanitizeLocked rebuilds the sanitized package from the original
// (cached or downloaded) and checks it matches the local index. The
// result must be byte-identical to the indexed version because both
// sanitization and encoding are deterministic.
func (r *Repo) resanitizeLocked(name string, entry index.Entry, start time.Time) ([]byte, *FetchResult, error) {
	upEntry, err := r.upstream.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	from := ServedOriginalCache
	orig, dlBytes, err := r.obtainOriginalLocked(name, upEntry)
	if err != nil {
		return nil, nil, err
	}
	var dl time.Duration
	if dlBytes > 0 {
		from = ServedMirror
		dl = r.chargeDownload(dlBytes, 1)
	}
	san := &sanitize.Sanitizer{
		Plan:      r.plan,
		TrustRing: r.trust,
		SignKey:   r.signKey,
		EPC:       r.svc.cfg.EPC,
	}
	res, err := san.Sanitize(orig)
	if err != nil {
		return nil, nil, err
	}
	// Sanitization is fully deterministic (PKCS#1 v1.5 signatures and
	// the archive encoding are both deterministic), so the re-sanitized
	// bytes must hash to exactly the in-enclave index entry.
	if int64(len(res.Raw)) != entry.Size || sha256.Sum256(res.Raw) != entry.Hash {
		return nil, nil, fmt.Errorf("%w: %s (re-sanitized bytes differ from index)", ErrCacheTampered, name)
	}
	if r.mode == CacheBoth {
		if err := r.svc.cfg.Store.Put(r.sanitizedKey(name), res.Raw); err != nil {
			return nil, nil, err
		}
	}
	return res.Raw, &FetchResult{From: from, Latency: time.Since(start) + dl}, nil
}

// --- sealed state (§5.5) ----------------------------------------------

// mcCounterID is the TPM monotonic counter TSR uses.
const mcCounterID uint32 = 0x5453 // "TS"

// SealState increments the TPM monotonic counter and seals the
// repository's metadata indexes together with the counter value, so the
// state survives TSR restarts without trusting the disk.
func (r *Repo) SealState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.upstream == nil || r.localSig == nil {
		return nil, ErrNotInitialized
	}
	mc := r.svc.cfg.TPM.IncrementCounter(mcCounterID)
	blob := encodeState(mc, r.upstream.Encode(), r.localSig, r.seq)
	return r.svc.Seal(blob)
}

// RestoreState unseals a blob and verifies its monotonic counter value
// matches the TPM's current value, rejecting rolled-back state files.
func (r *Repo) RestoreState(sealed []byte) error {
	blob, err := r.svc.Unseal(sealed)
	if err != nil {
		return err
	}
	mc, upstreamRaw, localSig, seq, err := decodeState(blob)
	if err != nil {
		return err
	}
	current := r.svc.cfg.TPM.ReadCounter(mcCounterID)
	if mc != current {
		return fmt.Errorf("%w: sealed MC %d, TPM MC %d", ErrRollback, mc, current)
	}
	upstream, err := index.Decode(upstreamRaw)
	if err != nil {
		return err
	}
	local, err := localSig.Verify(keys.NewRing(r.signKey.Public()))
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.upstream = upstream
	r.local = local
	r.localSig = localSig
	r.seq = seq
	return nil
}

// encodeState serializes (mc, upstream, localSigned, seq).
func encodeState(mc uint64, upstream []byte, localSig *index.Signed, seq uint64) []byte {
	var buf bytes.Buffer
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], mc)
	buf.Write(n[:])
	binary.BigEndian.PutUint64(n[:], seq)
	buf.Write(n[:])
	writeChunk(&buf, upstream)
	writeChunk(&buf, localSig.Raw)
	writeChunk(&buf, []byte(localSig.KeyName))
	writeChunk(&buf, localSig.Sig)
	return buf.Bytes()
}

func decodeState(blob []byte) (mc uint64, upstream []byte, localSig *index.Signed, seq uint64, err error) {
	buf := bytes.NewReader(blob)
	var n [8]byte
	if _, err = buf.Read(n[:]); err != nil {
		return 0, nil, nil, 0, fmt.Errorf("tsr: sealed state: %w", err)
	}
	mc = binary.BigEndian.Uint64(n[:])
	if _, err = buf.Read(n[:]); err != nil {
		return 0, nil, nil, 0, fmt.Errorf("tsr: sealed state: %w", err)
	}
	seq = binary.BigEndian.Uint64(n[:])
	upstream, err = readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	raw, err := readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	keyName, err := readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	sig, err := readChunk(buf)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	return mc, upstream, &index.Signed{Raw: raw, KeyName: string(keyName), Sig: sig}, seq, nil
}

func writeChunk(buf *bytes.Buffer, data []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(data)))
	buf.Write(n[:])
	buf.Write(data)
}

func readChunk(buf *bytes.Reader) ([]byte, error) {
	var n [8]byte
	if _, err := buf.Read(n[:]); err != nil {
		return nil, fmt.Errorf("tsr: sealed state: %w", err)
	}
	size := binary.BigEndian.Uint64(n[:])
	if size > uint64(buf.Len()) {
		return nil, fmt.Errorf("tsr: sealed state: chunk size %d exceeds remainder", size)
	}
	out := make([]byte, size)
	if _, err := buf.Read(out); err != nil {
		return nil, fmt.Errorf("tsr: sealed state: %w", err)
	}
	return out, nil
}

// Plan exposes the current sanitization plan (for examples/experiments).
func (r *Repo) Plan() *sanitize.Plan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.plan
}

// scriptPreview returns the sanitized post-install script of a package
// (diagnostic helper used by the HTTP API).
func (r *Repo) scriptPreview(name string) (string, error) {
	raw, err := r.FetchPackage(name)
	if err != nil {
		return "", err
	}
	p, err := apk.Decode(raw)
	if err != nil {
		return "", err
	}
	var out string
	for _, hook := range p.ScriptNames() {
		out += "# hook: " + hook + "\n" + p.Scripts[hook]
	}
	if out == "" {
		return "", nil
	}
	if _, err := script.Parse(out); err != nil {
		return "", err
	}
	return out, nil
}
