package tsr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"tsr/internal/keys"
	"tsr/internal/policy"
	"tsr/internal/store"
)

// Durable warm restart (§5.5 applied to the whole service).
//
// With Config.AutoPersist set, the service journals everything a
// restarted process needs into the (untrusted!) Store, alongside the
// package caches:
//
//	tsrmeta/<id>   sealed {repo id, policy bytes, signing key} —
//	               written once at DeployPolicy;
//	tsrstate/<id>  the SealState blob (indexes + TPM monotonic
//	               counter) — rewritten after every successful Refresh.
//
// Both blobs are AES-GCM sealed to the enclave identity, so the root
// adversary who owns the store can delete them (degrading restart to
// cold) but cannot forge or modify them; and because each state blob
// embeds the TPM monotonic counter value at its checkpoint, replaying
// an older data dir is caught by RestoreState (ErrRollback) — the disk
// can lie about the past, the counter cannot.
//
// RestoreAll is the boot path: it scans the store for meta blobs,
// re-creates each tenant repository with its original id, policy, and
// signing key, and restores the newest checkpoint into a published
// snapshot. A warm repository serves its previous signed index — and,
// via the persisted byte caches and sealed sancache entries, answers
// package requests and the next refresh without re-sanitizing anything.

// Store key prefixes for persisted service state. They live outside
// every repository's "<id>/..." cache namespace.
const (
	metaKeyPrefix  = "tsrmeta/"
	stateKeyPrefix = "tsrstate/"
)

// MetaStoreKey returns the store key of a repository's sealed metadata.
func MetaStoreKey(id string) string { return metaKeyPrefix + id }

// StateStoreKey returns the store key of a repository's sealed
// checkpoint (used by experiments to play rollback attacks).
func StateStoreKey(id string) string { return stateKeyPrefix + id }

// counterID derives the repository's TPM monotonic counter index. Each
// tenant gets its own NV counter so sealing state for one repository
// does not invalidate every other tenant's checkpoint.
func (r *Repo) counterID() uint32 {
	h := fnv.New32a()
	h.Write([]byte("tsr-mc/" + r.ID))
	return h.Sum32()
}

// persistMeta seals the repository's identity — id, policy, signing
// key — and writes it under the meta key. Called once at deploy time.
func (s *Service) persistMeta(r *Repo, policyRaw []byte) error {
	privPEM, err := r.signKey.MarshalPrivatePEM()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	writeChunk(&buf, []byte(r.ID))
	writeChunk(&buf, policyRaw)
	writeChunk(&buf, privPEM)
	sealed, err := s.Seal(buf.Bytes())
	if err != nil {
		return err
	}
	return s.cfg.Store.Put(MetaStoreKey(r.ID), sealed)
}

// decodeMeta parses an unsealed meta blob.
func decodeMeta(blob []byte) (id string, policyRaw, privPEM []byte, err error) {
	buf := bytes.NewReader(blob)
	rawID, err := readChunk(buf)
	if err != nil {
		return "", nil, nil, err
	}
	policyRaw, err = readChunk(buf)
	if err != nil {
		return "", nil, nil, err
	}
	privPEM, err = readChunk(buf)
	if err != nil {
		return "", nil, nil, err
	}
	return string(rawID), policyRaw, privPEM, nil
}

// Checkpoint seals the repository's current state and writes it to the
// store, advancing the TPM monotonic counter. Refresh calls it
// automatically under AutoPersist; it is exported for operators (and
// tests) that want an explicit save point.
//
// The counter advances BEFORE the blob is written, deliberately: a
// crash (or failed Put) between the two leaves a disk checkpoint whose
// counter is one behind the hardware, which the next restore refuses
// exactly like a rollback. That costs one cold start after a
// worst-case crash, but the alternative — accepting a checkpoint one
// counter step behind — would let a real adversary revert to the
// previous generation inside the same window. Integrity over
// availability, as §5.5 resolves every such ambiguity.
func (r *Repo) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpointLocked()
}

// checkpointLocked is Checkpoint with r.mu held.
func (r *Repo) checkpointLocked() error {
	sealed, err := r.sealStateLocked()
	if err != nil {
		return err
	}
	return r.svc.cfg.Store.Put(StateStoreKey(r.ID), sealed)
}

// RestoredRepo reports the outcome of restoring one repository.
type RestoredRepo struct {
	// ID is the restored tenant repository id.
	ID string
	// Warm is true when a sealed checkpoint was verified and published:
	// the repository serves its previous signed index immediately.
	Warm bool
	// Err, when non-nil, says why the repository came up cold: a
	// rolled-back data dir (ErrRollback), a tampered checkpoint, or a
	// missing state blob. The repository is still deployed and heals on
	// its next Refresh.
	Err error
	// ReplayedIngests counts journaled bulk-ingest batches (crashed
	// mid-apply) that were replayed to completion for this repository.
	ReplayedIngests int
	// ReplayErr, when non-nil, says why a journaled batch could not be
	// replayed; the batch stays pending and is retried next restart.
	ReplayErr error
}

// RestoreAll scans the store for persisted repositories and restores
// them — the boot path of a `tsrd -data-dir` restart. Every per-repo
// failure is reported, none is fatal: a repository whose sealed
// checkpoint fails verification (tamper, rollback) is deployed cold
// with its error, and one whose meta blob is unreadable (deleted host
// state, tampered blob) is reported un-deployed — an adversary who
// owns the store can always make a tenant vanish by deleting its
// blobs, so refusing to boot the remaining tenants would punish the
// operator without constraining the attacker. RestoreAll itself only
// errors when the store cannot be enumerated at all.
func (s *Service) RestoreAll() ([]RestoredRepo, error) {
	it, ok := s.cfg.Store.(store.Iterable)
	if !ok {
		return nil, fmt.Errorf("tsr: store %T does not support iteration; cannot restore", s.cfg.Store)
	}
	var metaKeys []string
	err := it.Iterate(func(info store.Info) bool {
		if strings.HasPrefix(info.Key, metaKeyPrefix) {
			metaKeys = append(metaKeys, info.Key)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(metaKeys)
	out := make([]RestoredRepo, 0, len(metaKeys))
	for _, mk := range metaKeys {
		out = append(out, s.restoreOne(mk))
	}
	s.replayIngests(out)
	return out, nil
}

// replayIngests re-runs journaled bulk-ingest batches that crashed
// between their append and their commit. Undecodable payloads and
// batches addressed to vanished tenants are dropped (committed); a
// batch whose apply fails stays pending for the next restart and is
// surfaced on its repository's RestoredRepo.
func (s *Service) replayIngests(restored []RestoredRepo) {
	if s.journal == nil {
		return
	}
	byID := make(map[string]*RestoredRepo, len(restored))
	for i := range restored {
		byID[restored[i].ID] = &restored[i]
	}
	_ = s.journal.Replay(func(e store.JournalEntry) error {
		id, raws, err := decodeIngestPayload(s, e.Payload)
		if err != nil {
			return nil // tampered/foreign payload: drop it
		}
		s.mu.RLock()
		r, ok := s.repos[id]
		s.mu.RUnlock()
		if !ok {
			return nil // tenant undeployed since the append: drop it
		}
		_, err = r.registerReplay(context.Background(), raws)
		rr := byID[id]
		if err != nil {
			if rr != nil && rr.ReplayErr == nil {
				rr.ReplayErr = err
			}
			return err
		}
		if rr != nil {
			rr.ReplayedIngests++
		}
		return nil
	})
}

// restoreOne rebuilds a single repository from its sealed meta blob and
// newest checkpoint. A failure before the repository can be deployed
// is reported under the id implied by the store key (the tenant is NOT
// deployed and will 404); later failures leave the repository deployed
// but cold.
func (s *Service) restoreOne(metaKey string) RestoredRepo {
	keyID := strings.TrimPrefix(metaKey, metaKeyPrefix)
	fail := func(err error) RestoredRepo { return RestoredRepo{ID: keyID, Err: err} }
	sealed, err := s.cfg.Store.Get(metaKey)
	if err != nil {
		return fail(err)
	}
	blob, err := s.Unseal(sealed)
	if err != nil {
		return fail(fmt.Errorf("tsr: repo meta %s: %w (wrong host state, or tampered blob)", metaKey, err))
	}
	id, policyRaw, privPEM, err := decodeMeta(blob)
	if err != nil {
		return fail(err)
	}
	if metaKey != MetaStoreKey(id) {
		// Sealed under one key, stored under another: the same
		// entry-swapping defense the sancache uses.
		return fail(fmt.Errorf("tsr: repo meta %s claims id %q", metaKey, id))
	}
	pol, err := policy.Parse(policyRaw)
	if err != nil {
		return fail(err)
	}
	signKey, err := keys.ParsePrivatePEM("tsr-"+id, privPEM)
	if err != nil {
		return fail(err)
	}
	repo, err := newRepo(id, pol, signKey, s)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	if _, exists := s.repos[id]; exists {
		s.mu.Unlock()
		return RestoredRepo{ID: id, Err: fmt.Errorf("tsr: repository %s already deployed", id)}
	}
	s.repos[id] = repo
	s.mu.Unlock()

	stateBlob, err := s.cfg.Store.Get(StateStoreKey(id))
	if err != nil {
		// No checkpoint (deleted, or deploy crashed before the first
		// refresh): the repository starts cold and heals on refresh.
		return RestoredRepo{ID: id, Err: fmt.Errorf("tsr: no checkpoint: %w", err)}
	}
	if err := repo.RestoreState(stateBlob); err != nil {
		// Tampered or rolled-back checkpoint: REFUSE the state (the
		// §5.5 guarantee) but keep the repository deployed cold. Note
		// ErrRollback here can also be an ordinary crash that landed
		// between the TPM counter increment and the checkpoint write —
		// the two are indistinguishable from the disk alone, and the
		// check deliberately fails CLOSED: a cold re-sanitization,
		// never possibly-stale state.
		return RestoredRepo{ID: id, Err: err}
	}
	return RestoredRepo{ID: id, Warm: true}
}

// Errors.Is helper used by daemons to summarize restore outcomes.
func (r RestoredRepo) RolledBack() bool { return errors.Is(r.Err, ErrRollback) }
