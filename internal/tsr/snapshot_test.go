package tsr

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/quorum"
)

// TestReadsServeSnapshotDuringRefresh is the acceptance test for the
// non-blocking read path: while a cold refresh (full re-sanitization
// after a plan change) holds the repository lock, index and package
// reads keep being served from the previously published snapshot. Run
// under -race in CI, it also exercises the snapshot swap against a
// storm of concurrent readers.
func TestReadsServeSnapshotDuringRefresh(t *testing.T) {
	w := newWorld(t, 3)
	populate(t, w, 24)
	r := w.deploy(t)
	r.SetWorkers(4)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	signed, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	oldIx, err := index.Decode(signed.Raw)
	if err != nil {
		t.Fatal(err)
	}
	oldSeq := oldIx.Sequence

	// A new account-creating package invalidates the sanitization plan:
	// the next refresh re-sanitizes the whole population — the longest
	// cycle the pipeline has — while the old snapshot keeps serving.
	w.publish(t, pkgWithScript("zzz-acct", "1.0-r0", "adduser -S zzz\n"))

	refreshStart := time.Now()
	refreshDone := make(chan struct{})
	go func() {
		defer close(refreshDone)
		if _, err := r.Refresh(); err != nil {
			t.Errorf("refresh: %v", err)
		}
	}()

	// Background hammer: package fetches and stats reads racing the
	// refresh (package bytes may be mid-overwrite, which must resolve
	// to a deterministic re-sanitize of the snapshot's version — never
	// an error).
	var hammering sync.WaitGroup
	for i := 0; i < 3; i++ {
		hammering.Add(1)
		go func() {
			defer hammering.Done()
			for {
				select {
				case <-refreshDone:
					return
				default:
				}
				if _, err := r.FetchPackage("pkg00"); err != nil {
					t.Errorf("package read during refresh: %v", err)
					return
				}
				r.CacheStats()
				r.RejectedPackages()
			}
		}()
	}

	// Foreground: time index reads until the refresh publishes.
	var during []time.Duration
	sawOldSnapshot := false
	for {
		start := time.Now()
		signed, err := r.FetchIndex()
		lat := time.Since(start)
		if err != nil {
			t.Fatalf("index read during refresh: %v", err)
		}
		select {
		case <-refreshDone:
			// The read may have raced the publish; stop sampling.
		default:
			during = append(during, lat)
			ix, err := index.Decode(signed.Raw)
			if err != nil {
				t.Fatal(err)
			}
			if ix.Sequence == oldSeq {
				sawOldSnapshot = true
			}
			continue
		}
		break
	}
	refreshWall := time.Since(refreshStart)
	hammering.Wait()

	if len(during) == 0 {
		t.Skip("refresh finished before any read was sampled (machine too fast for this population)")
	}
	if !sawOldSnapshot {
		t.Fatal("no read observed the previous snapshot while the refresh was in flight")
	}
	sort.Slice(during, func(i, j int) bool { return during[i] < during[j] })
	median := during[len(during)/2]
	// Under the old design every read waited for the remaining refresh,
	// putting the median near half the cycle. Snapshot reads are pointer
	// loads plus a small clone; give a wide margin for -race and a
	// loaded CPU, but stay far below lock-wait territory.
	if limit := refreshWall / 10; median >= limit {
		t.Fatalf("median index read %v during a %v refresh (limit %v): reads are blocking on the refresh",
			median, refreshWall, limit)
	}
	t.Logf("%d index reads during a %v refresh: median %v, max %v",
		len(during), refreshWall, median, during[len(during)-1])

	// The refresh published: reads now see the new sequence.
	signed, err = r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Decode(signed.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Sequence != oldSeq+1 {
		t.Fatalf("sequence after refresh = %d, want %d", ix.Sequence, oldSeq+1)
	}
}

// TestVersionUpdateDoesNotBreakStaleSnapshotReads updates every
// package's version upstream and reads one of them continuously while
// the refresh ingests the new generation. The byte caches are
// content-addressed per generation, so the old snapshot's bytes stay
// servable until after publish: no read may ever fail, and each must
// return a decodable package at either the old or the new version.
func TestVersionUpdateDoesNotBreakStaleSnapshotReads(t *testing.T) {
	build := func(version string) []*apk.Package {
		var pkgs []*apk.Package
		for i := 0; i < 16; i++ {
			p := pkgWithScript(fmt.Sprintf("pkg%02d", i), version, "adduser -S u00\n")
			p.Files[0].Content = []byte(fmt.Sprintf("%s-%s", p.Name, version))
			pkgs = append(pkgs, p)
		}
		return pkgs
	}
	w := newWorld(t, 3)
	w.publish(t, build("1.0-r0")...)
	r := w.deploy(t)
	r.SetWorkers(4)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	w.publish(t, build("1.1-r0")...)
	refreshDone := make(chan struct{})
	go func() {
		defer close(refreshDone)
		if _, err := r.Refresh(); err != nil {
			t.Errorf("refresh: %v", err)
		}
	}()
	versions := make(map[string]bool)
	for sampled := 0; ; sampled++ {
		raw, err := r.FetchPackage("pkg05")
		if err != nil {
			t.Fatalf("read %d during version-update refresh: %v", sampled, err)
		}
		p, err := apk.Decode(raw)
		if err != nil {
			t.Fatalf("read %d returned undecodable bytes: %v", sampled, err)
		}
		if p.Version != "1.0-r0" && p.Version != "1.1-r0" {
			t.Fatalf("read %d served version %q", sampled, p.Version)
		}
		versions[p.Version] = true
		select {
		case <-refreshDone:
		default:
			continue
		}
		break
	}
	if !versions["1.0-r0"] {
		t.Log("refresh published before any stale-generation read was sampled")
	}
	raw, err := r.FetchPackage("pkg05")
	if err != nil {
		t.Fatal(err)
	}
	if p, err := apk.Decode(raw); err != nil || p.Version != "1.1-r0" {
		t.Fatalf("post-publish read = %+v, %v", p, err)
	}
}

// TestFailedRefreshKeepsServingPreviousSnapshot takes the whole mirror
// fleet offline: the refresh fails, and both the index and package
// reads keep answering from the last published snapshot.
func TestFailedRefreshKeepsServingPreviousSnapshot(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	before, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range w.mirrors {
		m.SetBehavior(mirror.Offline)
	}
	if _, err := r.Refresh(); !errors.Is(err, ErrUpstream) {
		t.Fatalf("refresh err = %v, want ErrUpstream", err)
	}
	after, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	if string(after.Raw) != string(before.Raw) {
		t.Fatal("failed refresh changed the served index")
	}
	if _, err := r.FetchPackage("app"); err != nil {
		t.Fatalf("package unservable after failed refresh: %v", err)
	}
}

// TestRefreshReconcilesServedWrites: a serving-path write that
// resurrected an already-evicted cache generation (a reader racing a
// publish) must be cleaned up by the next refresh's reconcile, while
// recorded writes the published state still references survive.
func TestRefreshReconcilesServedWrites(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Simulate the race: a blob of a generation no published state
	// references, written (and recorded) by a stale-snapshot reader.
	staleKey := r.sanitizedKey("app", [32]byte{0xde, 0xad})
	if err := w.store.Put(staleKey, []byte("resurrected stale generation")); err != nil {
		t.Fatal(err)
	}
	r.noteServedWrite(staleKey)
	// And a recorded repair of the CURRENT generation.
	r.mu.Lock()
	entry, err := r.local.Lookup("app")
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	currentKey := r.sanitizedKey("app", entry.Hash)
	r.noteServedWrite(currentKey)

	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.store.Get(staleKey); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("stale generation not reconciled away: %v", err)
	}
	if _, err := w.store.Get(currentKey); err != nil {
		t.Fatalf("current generation evicted by reconcile: %v", err)
	}
	if _, err := r.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
}

// TestVersionRollbackResanitizes: when upstream reverts a package to a
// previously seen version (A→B→A), the sanitization-cache metadata of
// the A generation was evicted together with its bytes at the B
// refresh, so the rollback refresh must re-sanitize A — not count a
// cache hit for an entry whose bytes no longer exist.
func TestVersionRollbackResanitizes(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	w.publish(t, pkgWithScript("app", "1.1-r0", ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	w.publish(t, pkgWithScript("app", "1.0-r0", "")) // upstream rollback
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || stats.CacheHits != 0 {
		t.Fatalf("rollback refresh = %+v (cache hit on an evicted generation?)", stats)
	}
	// The published entry has real bytes behind it: served straight
	// from the sanitized cache, no on-demand repair.
	_, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From != ServedSanitizedCache {
		t.Fatalf("from = %v, want sanitized-cache", res.From)
	}
}

// TestHTTPConditionalRequests exercises the ETag / If-None-Match / 304
// semantics on both the index and package endpoints, and the not_modified
// counter they feed.
func TestHTTPConditionalRequests(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	get := func(path, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Index: 200 with a strong ETag, then 304 on revalidation.
	indexPath := "/repos/" + r.ID + "/index"
	resp := get(indexPath, "")
	if resp.StatusCode != 200 {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || resp.Header.Get("Cache-Control") != "no-cache" {
		t.Fatalf("index caching headers = %q / %q", etag, resp.Header.Get("Cache-Control"))
	}
	resp = get(indexPath, etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", resp.Header.Get("ETag"), etag)
	}
	// Weak-prefixed and multi-value If-None-Match also match.
	if resp := get(indexPath, `"bogus", W/`+etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("multi-value revalidation status = %d", resp.StatusCode)
	}
	// A stale tag re-downloads.
	if resp := get(indexPath, `"stale"`); resp.StatusCode != 200 {
		t.Fatalf("stale tag status = %d", resp.StatusCode)
	}

	// Package: same dance; the ETag is the content hash.
	pkgPath := "/repos/" + r.ID + "/packages/app"
	resp = get(pkgPath, "")
	if resp.StatusCode != 200 {
		t.Fatalf("package status = %d", resp.StatusCode)
	}
	pkgTag := resp.Header.Get("ETag")
	if wantTag, err := r.PackageETag("app"); err != nil || pkgTag != wantTag {
		t.Fatalf("package ETag = %q, want %q (%v)", pkgTag, wantTag, err)
	}
	if resp := get(pkgPath, pkgTag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("package revalidation status = %d", resp.StatusCode)
	}

	stats := r.CacheStats()
	if stats.NotModified != 3 {
		t.Fatalf("not_modified = %d, want 3", stats.NotModified)
	}
	if stats.IndexReads == 0 || stats.PackageReads == 0 {
		t.Fatalf("read counters = %+v", stats)
	}

	// A refresh that changes the index rotates the ETag.
	w.publish(t, pkgWithScript("app", "1.1-r0", ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	resp = get(indexPath, etag)
	if resp.StatusCode != 200 {
		t.Fatalf("post-refresh revalidation = %d, want 200 (new index)", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("ETag did not rotate after the index changed")
	}
}

// TestClientRevalidatesIndex drives tsr.Client against the live
// handler: the second FetchIndex must be answered 304 from the server
// and return the cached (still signed, still verifiable) index.
func TestClientRevalidatesIndex(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	client := &Client{BaseURL: srv.URL, RepoID: r.ID, HTTPClient: srv.Client()}
	first, err := client.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheStats().NotModified != 1 {
		t.Fatalf("not_modified = %d, want 1 (client did not revalidate)", r.CacheStats().NotModified)
	}
	if string(second.Raw) != string(first.Raw) {
		t.Fatal("cached index differs from the original")
	}
	if _, err := second.Verify(keys.NewRing(r.PublicKey())); err != nil {
		t.Fatalf("cached index no longer verifies: %v", err)
	}

	// After a refresh the ETag rotates and the client transparently
	// downloads the new index.
	w.publish(t, pkgWithScript("app", "1.1-r0", ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	third, err := client.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := third.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := ix.Lookup("app"); e.Version != "1.1-r0" {
		t.Fatalf("app = %+v after refresh", e)
	}
}

// TestClientRejectsMissingSignatureHeaders is the signature-header
// bugfix: a 200 response without X-Tsr-Signature/X-Tsr-Key-Name used to
// decode into an index.Signed with empty Sig that failed verification
// mysteriously downstream. The client must fail fast instead.
func TestClientRejectsMissingSignatureHeaders(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A plain mirror (or a misconfigured proxy) serving an index
		// body without the TSR signature headers.
		fmt.Fprint(w, "origin = nope\nsequence = 1\n")
	}))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL, RepoID: "r0", HTTPClient: srv.Client()}
	_, err := client.FetchIndex()
	if err == nil {
		t.Fatal("index without signature headers accepted")
	}
	if !strings.Contains(err.Error(), headerSignature) {
		t.Fatalf("err = %v, want a mention of the missing %s header", err, headerSignature)
	}
}

// TestPolicyBodyTooLarge is the body-limit bugfix: an oversized policy
// must be refused with 413, not silently truncated at 10 MiB and parsed
// as if it were complete.
func TestPolicyBodyTooLarge(t *testing.T) {
	w := newWorld(t, 3)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	huge := strings.NewReader("mirrors:\n" + strings.Repeat("# padding\n", maxPolicyBytes/10+1))
	resp, err := srv.Client().Post(srv.URL+"/policies", "application/yaml", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized policy status = %d, want 413", resp.StatusCode)
	}
}

// TestRefreshErrorStatusCodes: 502 is reserved for upstream failures
// (mirror quorum unreachable); a repository that cannot even quorum-read
// surfaces as Bad Gateway, while unknown repositories stay 404.
func TestRefreshErrorStatusCodes(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	r := w.deploy(t)

	for _, m := range w.mirrors {
		m.SetBehavior(mirror.Offline)
	}
	resp, err := srv.Client().Post(srv.URL+"/repos/"+r.ID+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("offline-quorum refresh status = %d, want 502", resp.StatusCode)
	}
	// The sentinel chain stays inspectable for programmatic callers.
	if _, err := r.Refresh(); !errors.Is(err, ErrUpstream) || !errors.Is(err, quorum.ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrUpstream wrapping quorum.ErrNoQuorum", err)
	}

	resp, err = srv.Client().Post(srv.URL+"/repos/nope/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown repo refresh status = %d, want 404", resp.StatusCode)
	}
}

// TestSetCacheModeRepublishesSnapshot: changing the Figure 10 scenario
// must reach the lock-free serving path immediately, including while
// concurrent reads are in flight.
func TestSetCacheModeRepublishesSnapshot(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := r.FetchPackageTraced("app"); err != nil {
				t.Errorf("read during mode flips: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		r.SetCacheMode(CacheOriginalOnly)
		r.SetCacheMode(CacheBoth)
	}
	r.SetCacheMode(CacheOriginalOnly)
	stop.Store(true)
	wg.Wait()
	_, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res.From != ServedOriginalCache {
		t.Fatalf("from = %v, want original-cache after SetCacheMode", res.From)
	}
}
