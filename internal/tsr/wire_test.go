package tsr

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsr/internal/apk"
	"tsr/internal/store"
)

// bigPackage builds a package large enough to span many content-defined
// chunks: nFiles incompressible (seeded-random) payloads. Only the
// LAST-sorted file's content depends on version, so a version bump
// changes a small suffix of the sanitized wire bytes and the rest of
// the chunks are reusable by a differential fetch.
func bigPackage(name, version string, nFiles, fileSize int) *apk.Package {
	p := &apk.Package{Name: name, Version: version}
	for i := 0; i < nFiles; i++ {
		seed := int64(i + 1)
		path := fmt.Sprintf("/usr/share/%s/%03d.bin", name, i)
		if i == nFiles-1 {
			// Sorts after the numbered files; content tied to version.
			path = "/usr/share/" + name + "/zz-last.bin"
			for _, c := range version {
				seed = seed*131 + int64(c)
			}
		}
		content := make([]byte, fileSize)
		rand.New(rand.NewSource(seed)).Read(content)
		p.Files = append(p.Files, apk.File{Path: path, Mode: 0o644, Content: content})
	}
	return p
}

// rawRequest performs a GET with explicit headers, bypassing the
// transport's transparent gzip so tests see the wire form.
func rawRequest(t *testing.T, client *http.Client, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestIndexGzipIsTransferEncodingOnly: the negotiated gzip response
// must decompress to the exact canonical signed text, under the exact
// same ETag and signature headers as the identity response — gzip is
// transfer encoding after signing, not a second representation.
func TestIndexGzipIsTransferEncodingOnly(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	signed, _, err := r.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}

	url := srv.URL + "/repos/" + r.ID + "/index"
	idResp := rawRequest(t, srv.Client(), url, map[string]string{"Accept-Encoding": "identity"})
	idBody := readAll(t, idResp)
	if idResp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity response Content-Encoding = %q", idResp.Header.Get("Content-Encoding"))
	}
	if !bytes.Equal(idBody, signed.Raw) {
		t.Fatal("identity index body is not the canonical signed text")
	}

	gzResp := rawRequest(t, srv.Client(), url, map[string]string{"Accept-Encoding": "gzip"})
	gzBody := readAll(t, gzResp)
	if ce := gzResp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	if !strings.Contains(gzResp.Header.Get("Vary"), "Accept-Encoding") {
		t.Fatalf("Vary = %q", gzResp.Header.Get("Vary"))
	}
	if len(gzBody) >= len(idBody) {
		t.Fatalf("gzip body %d bytes, identity %d: no savings", len(gzBody), len(idBody))
	}
	// Signatures and ETags are computed over the canonical text: both
	// responses must carry identical validators.
	for _, h := range []string{"ETag", headerKeyName, headerSignature} {
		if idResp.Header.Get(h) != gzResp.Header.Get(h) {
			t.Fatalf("%s differs between identity (%q) and gzip (%q)", h, idResp.Header.Get(h), gzResp.Header.Get(h))
		}
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzBody))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, signed.Raw) {
		t.Fatal("gzip index does not decompress to the exact signed canonical form")
	}
}

// TestIndexDeltaGzip: the delta endpoint negotiates gzip the same way.
func TestIndexDeltaGzip(t *testing.T) {
	w, r := refreshedWorld(t)
	_, baseTag, err := r.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	advance(t, w, r, "app", "1.1-r0")
	d, err := r.FetchIndexDelta(baseTag)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	url := srv.URL + "/repos/" + r.ID + "/index/delta?since=" + strings.ReplaceAll(baseTag, `"`, "%22")
	resp := rawRequest(t, srv.Client(), url, map[string]string{"Accept-Encoding": "gzip"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var plain []byte
	if resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if plain, err = io.ReadAll(zr); err != nil {
			t.Fatal(err)
		}
	} else {
		// A delta too small to shrink under gzip is served identity.
		plain = body
	}
	if !bytes.Equal(plain, d.Encode()) {
		t.Fatal("delta body does not match the canonical delta encoding")
	}
}

// TestIfNoneMatchPrecedesRange: RFC 9110 — when both If-None-Match and
// Range are present, the conditional wins: a revalidating client gets
// its 304, never a 206 of bytes it already holds.
func TestIfNoneMatchPrecedesRange(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	etag, err := r.PackageETag("app")
	if err != nil {
		t.Fatal(err)
	}
	resp := rawRequest(t, srv.Client(), srv.URL+"/repos/"+r.ID+"/packages/app", map[string]string{
		"If-None-Match": etag,
		"Range":         "bytes=0-9",
	})
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304 (If-None-Match takes precedence over Range)", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}
}

// TestPackageRangeServing covers the 206 surface: correct slice and
// Content-Range, the FULL representation's strong ETag on partial
// responses, suffix ranges, open-ended ranges, 416 for unsatisfiable,
// and full-200 fallbacks for If-Range mismatch, multi-range, and
// malformed headers.
func TestPackageRangeServing(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	url := srv.URL + "/repos/" + r.ID + "/packages/app"

	full := readAll(t, rawRequest(t, srv.Client(), url, nil))
	etag, err := r.PackageETag("app")
	if err != nil {
		t.Fatal(err)
	}
	size := len(full)
	if fmt.Sprintf("%q", sha256.Sum256(full)) == "" {
		t.Fatal("unreachable")
	}

	cases := []struct {
		name       string
		hdr        map[string]string
		status     int
		wantBody   []byte
		wantCRange string
	}{
		{"closed range", map[string]string{"Range": "bytes=10-49"},
			206, full[10:50], fmt.Sprintf("bytes 10-49/%d", size)},
		{"open-ended", map[string]string{"Range": fmt.Sprintf("bytes=%d-", size-20)},
			206, full[size-20:], fmt.Sprintf("bytes %d-%d/%d", size-20, size-1, size)},
		{"suffix", map[string]string{"Range": "bytes=-25"},
			206, full[size-25:], fmt.Sprintf("bytes %d-%d/%d", size-25, size-1, size)},
		{"end clipped", map[string]string{"Range": fmt.Sprintf("bytes=5-%d", size+1000)},
			206, full[5:], fmt.Sprintf("bytes 5-%d/%d", size-1, size)},
		{"unsatisfiable", map[string]string{"Range": fmt.Sprintf("bytes=%d-", size)},
			416, nil, fmt.Sprintf("bytes */%d", size)},
		{"if-range match", map[string]string{"Range": "bytes=0-9", "If-Range": etag},
			206, full[:10], fmt.Sprintf("bytes 0-9/%d", size)},
		{"if-range mismatch", map[string]string{"Range": "bytes=0-9", "If-Range": `"stale"`},
			200, full, ""},
		{"multi-range ignored", map[string]string{"Range": "bytes=0-9,20-29"},
			200, full, ""},
		{"malformed ignored", map[string]string{"Range": "bytes=abc-def"},
			200, full, ""},
		{"non-bytes unit ignored", map[string]string{"Range": "chunks=0-1"},
			200, full, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := rawRequest(t, srv.Client(), url, tc.hdr)
			body := readAll(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if tc.wantCRange != "" {
				if got := resp.Header.Get("Content-Range"); got != tc.wantCRange {
					t.Fatalf("Content-Range = %q, want %q", got, tc.wantCRange)
				}
			}
			if tc.status == 206 {
				// The ETag on a 206 is the full representation's strong
				// tag — the content hash from the signed index.
				if got := resp.Header.Get("ETag"); got != etag {
					t.Fatalf("206 ETag = %q, want full-body tag %q", got, etag)
				}
			}
			if tc.wantBody != nil && !bytes.Equal(body, tc.wantBody) {
				t.Fatalf("body = %d bytes, want %d (mismatch)", len(body), len(tc.wantBody))
			}
		})
	}
}

// TestParseRange pins the header parser's edge cases directly.
func TestParseRange(t *testing.T) {
	cases := []struct {
		header      string
		size        int64
		off, length int64
		ok          bool
		unsat       bool
	}{
		{"bytes=0-9", 100, 0, 10, true, false},
		{"bytes=90-", 100, 90, 10, true, false},
		{"bytes=-10", 100, 90, 10, true, false},
		{"bytes=-200", 100, 0, 100, true, false}, // suffix longer than body: whole body
		{"bytes=0-0", 100, 0, 1, true, false},
		{"bytes=50-200", 100, 50, 50, true, false}, // end clipped
		{"bytes=100-", 100, 0, 0, false, true},
		{"bytes=-0", 100, 0, 0, false, true},
		{"bytes=-5", 0, 0, 0, false, true},
		{"bytes=0-9,20-29", 100, 0, 0, false, false}, // multi-range: ignore
		{"bytes=9-0", 100, 0, 0, false, false},
		{"bytes=abc", 100, 0, 0, false, false},
		{"chunks=0-9", 100, 0, 0, false, false},
		{"", 100, 0, 0, false, false},
	}
	for _, tc := range cases {
		off, length, ok, err := ParseRange(tc.header, tc.size)
		if tc.unsat {
			if err == nil {
				t.Errorf("%q: err = nil, want ErrUnsatisfiable", tc.header)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: err = %v", tc.header, err)
			continue
		}
		if ok != tc.ok || (ok && (off != tc.off || length != tc.length)) {
			t.Errorf("%q: (%d,%d,%v), want (%d,%d,%v)", tc.header, off, length, ok, tc.off, tc.length, tc.ok)
		}
	}
}

// TestChunkManifestEndpoint: the manifest decodes, tiles the package
// exactly, is rooted in the signed entry (PackageHash, per-chunk
// hashes), and revalidates under the package's strong ETag.
func TestChunkManifestEndpoint(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	url := srv.URL + "/repos/" + r.ID + "/packages/app/chunks"

	body, _, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	resp := rawRequest(t, srv.Client(), url, nil)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	name, m, err := DecodeChunkManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if name != "app" {
		t.Fatalf("manifest package = %q", name)
	}
	if m.PackageHash != sha256.Sum256(body) || m.TotalSize != int64(len(body)) {
		t.Fatal("manifest is not rooted in the served package bytes")
	}
	for i, ch := range m.Chunks {
		if got := sha256.Sum256(body[ch.Offset : ch.Offset+ch.Size]); got != ch.Hash {
			t.Fatalf("chunk %d hash mismatch", i)
		}
	}

	etag := resp.Header.Get("ETag")
	pkgTag, err := r.PackageETag("app")
	if err != nil {
		t.Fatal(err)
	}
	if etag != pkgTag {
		t.Fatalf("manifest ETag = %q, want the package's %q", etag, pkgTag)
	}
	resp304 := rawRequest(t, srv.Client(), url, map[string]string{"If-None-Match": etag})
	readAll(t, resp304)
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp304.StatusCode)
	}
}

// TestClientDifferentialFetch: with a PkgCache, a version bump that
// changes one file of a many-chunk package transfers only the changed
// chunks (plus manifest): the second download is differential, reuses
// most chunks, and moves far fewer package bytes than the first.
func TestClientDifferentialFetch(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, bigPackage("blob", "1.0-r0", 16, 32<<10))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, RepoID: r.ID, HTTPClient: srv.Client(), PkgCache: store.NewMem()}

	v1, err := c.FetchPackage("blob")
	if err != nil {
		t.Fatal(err)
	}
	s1 := c.WireStats()
	if s1.FullFetches != 1 || s1.DiffFetches != 0 {
		t.Fatalf("after cold fetch: %+v", s1)
	}
	coldBytes := s1.PackageBytes

	// Same version again: served from the verified local cache, zero
	// wire bytes.
	if _, err := c.FetchPackage("blob"); err != nil {
		t.Fatal(err)
	}
	if s := c.WireStats(); s.CacheHits != 1 || s.PackageBytes != coldBytes {
		t.Fatalf("after warm fetch: %+v", s)
	}

	// Version bump changing only the last-sorted file, then revalidate
	// the index so the client sees the new entry.
	w.publish(t, bigPackage("blob", "1.1-r0", 16, 32<<10))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchIndexTagged(); err != nil {
		t.Fatal(err)
	}
	v2, err := c.FetchPackage("blob")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(v1, v2) {
		t.Fatal("version bump did not change the served bytes")
	}
	want, _, err := r.FetchPackageTraced("blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2, want) {
		t.Fatal("differentially fetched bytes differ from the served package")
	}
	s2 := c.WireStats()
	if s2.DiffFetches != 1 || s2.DiffFallbacks != 0 {
		t.Fatalf("after version bump: %+v", s2)
	}
	if s2.ChunksReused == 0 || s2.ChunksFetched == 0 {
		t.Fatalf("diff fetch reused %d chunks, fetched %d — want both > 0", s2.ChunksReused, s2.ChunksFetched)
	}
	diffBytes := (s2.PackageBytes - coldBytes) + s2.ManifestBytes
	if diffBytes*2 >= coldBytes {
		t.Fatalf("differential update moved %d bytes vs %d full — want < 0.5x", diffBytes, coldBytes)
	}
	t.Logf("cold %d bytes, differential %d bytes (%.1f%%), chunks reused %d fetched %d",
		coldBytes, diffBytes, 100*float64(diffBytes)/float64(coldBytes), s2.ChunksReused, s2.ChunksFetched)
}

// TestClientDiffTamperedManifestFallsBack: a manifest that does not
// root in the signed entry is rejected and the client degrades to a
// full verified fetch — wrong bytes are never returned.
func TestClientDiffTamperedManifestFallsBack(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, bigPackage("blob", "1.0-r0", 8, 32<<10))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	inner := Handler(w.svc)
	// A corrupting middlebox: chunk-manifest responses get their
	// package hash flipped; everything else passes through.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !strings.HasSuffix(req.URL.Path, "/chunks") {
			inner.ServeHTTP(w, req)
			return
		}
		req.Header.Del("Accept-Encoding") // keep the recorded body identity-coded
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, req)
		var doc map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err == nil {
			doc["hash"] = strings.Repeat("00", 32)
			tampered, _ := json.Marshal(doc)
			w.Header().Set("Content-Type", "application/json")
			w.Write(tampered)
			return
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, RepoID: r.ID, HTTPClient: srv.Client(), PkgCache: store.NewMem()}

	if _, err := c.FetchPackage("blob"); err != nil {
		t.Fatal(err)
	}
	w.publish(t, bigPackage("blob", "1.1-r0", 8, 32<<10))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchIndexTagged(); err != nil {
		t.Fatal(err)
	}
	v2, err := c.FetchPackage("blob")
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := r.FetchPackageTraced("blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2, want) {
		t.Fatal("client returned bytes that do not match the served package")
	}
	s := c.WireStats()
	if s.DiffFallbacks != 1 || s.DiffFetches != 0 {
		t.Fatalf("wire stats = %+v, want the diff rejected and one fallback", s)
	}
	if s.FullFetches != 2 {
		t.Fatalf("full fetches = %d, want 2 (cold + fallback)", s.FullFetches)
	}
}

// TestStreamedServeTamperAbortsAndHeals: a tampered sanitized-cache
// entry under the streaming serve path must abort the response before
// the body completes — the client sees a truncated transfer, never a
// complete-but-wrong body — and the poisoned entry is dropped so the
// next request serves verified bytes again.
func TestStreamedServeTamperAbortsAndHeals(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, bigPackage("blob", "1.0-r0", 8, 32<<10))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	url := srv.URL + "/repos/" + r.ID + "/packages/blob"

	r.mu.Lock()
	entry, err := r.local.Lookup("blob")
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.store.Tamper(r.sanitizedKey("blob", entry.Hash)); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(url)
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && int64(len(body)) == entry.Size {
			t.Fatal("tampered stream delivered a complete body")
		}
	}

	// Self-heal: the poisoned cache key was dropped on the failed
	// stream, so this request re-sanitizes and serves verified bytes.
	resp2, err := srv.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after heal = %d", resp2.StatusCode)
	}
	if int64(len(body)) != entry.Size || sha256.Sum256(body) != entry.Hash {
		t.Fatal("healed response does not match the signed index entry")
	}
}

// TestStreamedServeCounts: the buffered-free serve path is actually
// taken (MemStore implements store.Streamer) and verified bytes arrive
// intact with a correct Content-Length.
func TestStreamedServeCounts(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	before := r.CacheStats().StreamedServes
	resp := rawRequest(t, srv.Client(), srv.URL+"/repos/"+r.ID+"/packages/app", nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag, err := r.PackageETag("app")
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%q", fmt.Sprintf("%x", sha256.Sum256(body))); got != etag {
		t.Fatalf("body hash %s != ETag %s", got, etag)
	}
	if after := r.CacheStats().StreamedServes; after != before+1 {
		t.Fatalf("streamed serves %d -> %d, want +1", before, after)
	}
}
