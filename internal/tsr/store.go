// Package tsr implements the trusted software repository service — the
// secure proxy of Figure 6. A single Service instance (running inside a
// simulated SGX enclave) hosts one logical repository per deployed
// security policy (§5.2): each gets its own signing key, quorum reader
// over the policy's mirrors, sanitization plan, and two-level package
// cache with rollback protection (§5.5).
package tsr

import "tsr/internal/store"

// ErrCacheMiss is returned by Store.Get for absent keys. It is the
// shared store sentinel: errors.Is works across tsr, edge, and store.
var ErrCacheMiss = store.ErrNotFound

// Store is the untrusted on-disk cache. An adversary with root access
// may tamper with or roll back its contents — TSR never trusts what it
// reads back and re-verifies against in-enclave state. It is the
// shared abstraction of internal/store: give the service a
// store.Mem for diskless runs or a store.FS (tsrd -data-dir) for a
// durable cache that makes restarts warm.
type Store = store.Store

// MemStore is the sharded in-memory Store (see store.Mem). The Tamper
// and Snapshot/Restore hooks let tests and experiments play the §5.5
// cache attacks.
type MemStore = store.Mem

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return store.NewMem() }
