// Package tsr implements the trusted software repository service — the
// secure proxy of Figure 6. A single Service instance (running inside a
// simulated SGX enclave) hosts one logical repository per deployed
// security policy (§5.2): each gets its own signing key, quorum reader
// over the policy's mirrors, sanitization plan, and two-level package
// cache with rollback protection (§5.5).
package tsr

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCacheMiss is returned by Store.Get for absent keys.
var ErrCacheMiss = errors.New("tsr: cache miss")

// Store is the untrusted on-disk cache. An adversary with root access
// may tamper with or roll back its contents — TSR never trusts what it
// reads back and re-verifies against in-enclave state.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
}

// MemStore is an in-memory Store. The Tamper and Snapshot/Restore hooks
// let tests and experiments play the §5.5 cache attacks.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrCacheMiss, key)
	}
	return append([]byte(nil), d...), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	return nil
}

// Tamper flips a byte in the stored value — the root adversary
// corrupting the cache.
func (s *MemStore) Tamper(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.data[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrCacheMiss, key)
	}
	if len(d) > 0 {
		d[len(d)/2] ^= 0xFF
	}
	return nil
}

// Snapshot copies the full store state (for rollback attacks).
func (s *MemStore) Snapshot() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// Restore overwrites the store with a previous snapshot (the rollback
// attack of §5.5: "reverting software packages and the metadata index
// to the outdated versions").
func (s *MemStore) Restore(snap map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte, len(snap))
	for k, v := range snap {
		s.data[k] = append([]byte(nil), v...)
	}
}

// Len returns the number of stored entries.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
