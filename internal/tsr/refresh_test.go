package tsr

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tsr/internal/apk"
	"tsr/internal/enclave"
	"tsr/internal/index"
	"tsr/internal/keys"
	"tsr/internal/mirror"
	"tsr/internal/netsim"
	"tsr/internal/policy"
	"tsr/internal/quorum"
	"tsr/internal/repo"
)

// populate publishes n packages; every third creates an account so the
// plan scan and preamble rewriting are exercised, and one package is
// unsupported (rejected).
func populate(t *testing.T, w *world, n int) (supported int) {
	t.Helper()
	var pkgs []*apk.Package
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("pkg%02d", i)
		script := ""
		switch {
		case i == n-1:
			script = "add-shell /bin/zsh\n" // unsupported: rejected
		case i%3 == 0:
			script = fmt.Sprintf("addgroup -S g%02d\nadduser -S -G g%02d u%02d\n", i, i, i)
		}
		pkgs = append(pkgs, pkgWithScript(name, "1.0-r0", script))
	}
	w.publish(t, pkgs...)
	return n - 1
}

// TestConcurrentRefreshPipeline drives a refresh over many changed
// packages through the worker pool (run under -race in CI), then
// asserts that repeated refreshes and a forced replan are satisfied
// from the content-addressed sanitization cache.
func TestConcurrentRefreshPipeline(t *testing.T) {
	w := newWorld(t, 3)
	supported := populate(t, w, 24)
	r := w.deploy(t)
	r.SetWorkers(8)

	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 8 {
		t.Fatalf("workers = %d", stats.Workers)
	}
	if stats.Sanitized != supported || stats.Rejected != 1 || stats.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", stats)
	}
	if len(stats.Errors) != 0 {
		t.Fatalf("unexpected per-package errors: %v", stats.Errors)
	}
	signed, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Entries) != supported {
		t.Fatalf("index has %d entries, want %d", len(ix.Entries), supported)
	}

	// Second refresh, unchanged upstream: zero sanitizations, all
	// served from the cache.
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 0 || stats.CacheHits != supported || stats.Downloaded != 0 {
		t.Fatalf("warm stats = %+v", stats)
	}
	if stats.SanitizeTime != 0 {
		t.Fatalf("warm refresh spent %v sanitizing", stats.SanitizeTime)
	}

	// Forced replan: the plan is rebuilt from scratch but hashes
	// identically, so the cache still answers everything.
	r.ForceReplan()
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 0 || stats.CacheHits != supported {
		t.Fatalf("replan stats = %+v", stats)
	}

	// An account change invalidates the plan hash: everything under the
	// new preamble is a cache miss and re-sanitizes concurrently.
	w.publish(t, pkgWithScript("newacct", "1.0-r0", "adduser -S brandnew\n"))
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != supported+1 || stats.CacheHits != 0 {
		t.Fatalf("post-replan stats = %+v", stats)
	}

	// Packages still verify after the concurrent rebuild.
	raw, err := r.FetchPackage("pkg00")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := apk.VerifyRaw(raw, keys.NewRing(r.PublicKey())); err != nil {
		t.Fatal(err)
	}

	totals := r.CacheStats()
	if totals.Refreshes != 4 || totals.CacheHits != int64(2*supported) {
		t.Fatalf("totals = %+v", totals)
	}
}

// flakyFetcher injects per-package download failures.
type flakyFetcher struct {
	inner PackageFetcher
	mu    *sync.Mutex
	fail  map[string]bool
}

func (f *flakyFetcher) FetchPackage(name string) ([]byte, error) {
	f.mu.Lock()
	bad := f.fail[name]
	f.mu.Unlock()
	if bad {
		return nil, fmt.Errorf("injected fetch failure for %s", name)
	}
	return f.inner.FetchPackage(name)
}

// flakyWorld is a world whose package downloads can be failed per name
// across every mirror.
func flakyWorld(t *testing.T) (*world, map[string]bool, *sync.Mutex) {
	t.Helper()
	w := &world{
		signer: keys.Shared.MustGet("alpine-distro-key"),
		store:  NewMemStore(),
	}
	w.repo = repo.New("alpine-main", w.signer)
	fail := make(map[string]bool)
	mu := &sync.Mutex{}
	byHost := make(map[string]*mirror.Mirror)
	var pol strings.Builder
	pol.WriteString("mirrors:\n")
	for i := 0; i < 3; i++ {
		host := fmt.Sprintf("https://mirror%d/", i)
		m := mirror.New(host, netsim.Europe)
		w.mirrors = append(w.mirrors, m)
		byHost[host] = m
		fmt.Fprintf(&pol, "  - hostname: %s\n", host)
	}
	pem, err := w.signer.Public().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	pol.WriteString("signers_keys:\n  - |-\n")
	for _, line := range strings.Split(strings.TrimRight(string(pem), "\n"), "\n") {
		pol.WriteString("    " + line + "\n")
	}
	w.policy = []byte(pol.String())

	platform, err := enclave.NewPlatform(keys.Shared.MustGet("sgx-quoting"))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Platform: platform,
		TPM:      tpmForTest(t),
		Clock:    netsim.NewVirtualClock(time.Time{}),
		Link:     netsim.DefaultLinkModel(netsim.NewRNG(11)),
		Local:    netsim.Europe,
		Store:    w.store,
		EPC:      enclave.DefaultCostModel(),
		Workers:  4,
		Resolve: func(m policy.Mirror) (quorum.Source, PackageFetcher, error) {
			mm, ok := byHost[m.Hostname]
			if !ok {
				return nil, nil, fmt.Errorf("no mirror %q", m.Hostname)
			}
			return mm, &flakyFetcher{inner: mm, mu: mu, fail: fail}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.svc = svc
	return w, fail, mu
}

// TestRefreshSurvivesPerPackageFailures asserts that download failures
// of individual packages are reported in RefreshStats.Errors without
// aborting the cycle, and that the affected packages heal on later
// refreshes.
func TestRefreshSurvivesPerPackageFailures(t *testing.T) {
	w, fail, mu := flakyWorld(t)
	var pkgs []*apk.Package
	for i := 0; i < 8; i++ {
		script := ""
		if i == 0 {
			// Account-creating: a lost download of this package must not
			// shift the canonical account plan.
			script = "addgroup -S g0\nadduser -S -G g0 u0\n"
		}
		pkgs = append(pkgs, pkgWithScript(fmt.Sprintf("pkg%d", i), "1.0-r0", script))
	}
	w.publish(t, pkgs...)
	r := w.deploy(t)

	mu.Lock()
	fail["pkg3"] = true
	mu.Unlock()
	stats, err := r.Refresh()
	if err != nil {
		t.Fatalf("refresh aborted on a per-package failure: %v", err)
	}
	if stats.Sanitized != 7 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.Errors) != 1 || stats.Errors[0].Name != "pkg3" ||
		!strings.Contains(stats.Errors[0].Err, "injected fetch failure") {
		t.Fatalf("errors = %v", stats.Errors)
	}
	// pkg3 never made it into the repository: a clean not-found.
	if _, err := r.FetchPackage("pkg3"); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}

	// The mirror recovers: the next refresh picks pkg3 up (it is
	// unchanged upstream but has no cache entry) while the other seven
	// stay cache hits.
	mu.Lock()
	fail["pkg3"] = false
	mu.Unlock()
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || stats.CacheHits != 7 || len(stats.Errors) != 0 {
		t.Fatalf("healed stats = %+v", stats)
	}
	if _, err := r.FetchPackage("pkg3"); err != nil {
		t.Fatal(err)
	}

	// A failed UPDATE of an already-served package keeps the previous
	// version online, and — because the plan scan falls back to the
	// previous version's scripts — the account plan stays stable even
	// though the failed package is the one creating accounts: every
	// other package remains a cache hit instead of being re-sanitized
	// under a shifted uid/gid assignment.
	w.publish(t, pkgWithScript("pkg0", "1.1-r0", "addgroup -S g0\nadduser -S -G g0 u0\n"))
	mu.Lock()
	fail["pkg0"] = true
	mu.Unlock()
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Errors) != 1 || stats.Errors[0].Name != "pkg0" {
		t.Fatalf("errors = %v", stats.Errors)
	}
	if stats.Sanitized != 0 || stats.CacheHits != 7 {
		t.Fatalf("plan shifted on a failed account-package update: %+v", stats)
	}
	signed, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := ix.Lookup("pkg0")
	if err != nil || e.Version != "1.0-r0" {
		t.Fatalf("pkg0 entry = %+v, %v (want previous version kept)", e, err)
	}
	// Serving the carried-forward version forces an on-demand rebuild
	// (original-only cache): it must re-sanitize against the pinned
	// previous upstream entry — not raise a spurious tamper alarm by
	// rebuilding the new version the mirrors failed to deliver.
	r.SetCacheMode(CacheOriginalOnly)
	raw, _, err := r.FetchPackageTraced("pkg0")
	if err != nil {
		t.Fatalf("carried-forward package unservable: %v", err)
	}
	if p, err := apk.Decode(raw); err != nil || p.Version != "1.0-r0" {
		t.Fatalf("served %+v, %v after failed update", p, err)
	}
	r.SetCacheMode(CacheBoth)

	// And it heals too.
	mu.Lock()
	fail["pkg0"] = false
	mu.Unlock()
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || len(stats.Errors) != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	signed, _ = r.FetchIndex()
	ix, err = signed.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := ix.Lookup("pkg0"); e.Version != "1.1-r0" {
		t.Fatalf("pkg0 = %+v", e)
	}
}

// TestRefreshAfterRestoreHitsCache simulates a TSR restart: state is
// sealed, wiped, and restored; the next refresh rebuilds the plan from
// scratch but re-admits every package from the sanitization cache.
func TestRefreshAfterRestoreHitsCache(t *testing.T) {
	w := newWorld(t, 3)
	supported := populate(t, w, 9)
	r := w.deploy(t)
	r.SetWorkers(4)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	sealed, err := r.SealState()
	if err != nil {
		t.Fatal(err)
	}
	// Restart: all in-memory state is gone; the plan must be rebuilt.
	r.mu.Lock()
	r.upstream, r.local, r.localSig, r.plan = nil, nil, nil, nil
	r.planHash = [32]byte{}
	r.upstreamDigest = [32]byte{}
	r.mu.Unlock()
	if err := r.RestoreState(sealed); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 0 || stats.CacheHits != supported {
		t.Fatalf("post-restore stats = %+v", stats)
	}
}

// TestHealedPackageJoinsPlan covers the plan-debt path: a new
// account-creating package whose first download fails must, once it
// heals — even with the upstream index unchanged in between — force a
// plan rebuild so its accounts enter the canonical preamble. Reusing
// the stale plan would strip its adduser commands without provisioning
// the account.
func TestHealedPackageJoinsPlan(t *testing.T) {
	w, fail, mu := flakyWorld(t)
	w.publish(t, pkgWithScript("base", "1.0-r0", "adduser -S ubase\n"))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}

	w.publish(t, pkgWithScript("newsvc", "1.0-r0", "adduser -S unew\n"))
	mu.Lock()
	fail["newsvc"] = true
	mu.Unlock()
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Errors) != 1 || stats.Errors[0].Name != "newsvc" {
		t.Fatalf("errors = %v", stats.Errors)
	}

	// Heal with an UNCHANGED upstream index. The rebuilt plan gains the
	// new account, which replans every package.
	mu.Lock()
	fail["newsvc"] = false
	mu.Unlock()
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 2 || len(stats.Errors) != 0 {
		t.Fatalf("healed stats = %+v (want both packages under the new plan)", stats)
	}
	for _, name := range []string{"base", "newsvc"} {
		raw, err := r.FetchPackage(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := apk.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Scripts["post-install"]
		if !strings.Contains(s, "ubase") || !strings.Contains(s, "unew") {
			t.Fatalf("%s sanitized under a stale plan:\n%s", name, s)
		}
	}
}

// TestCacheNoneRefreshStaysIncremental asserts that CacheNone — a
// package-serving scenario — does not turn refreshes into full
// rebuilds: unchanged packages keep their previous index entries and
// only changed packages are re-downloaded and re-sanitized.
func TestCacheNoneRefreshStaysIncremental(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t,
		pkgWithScript("a", "1.0-r0", ""),
		pkgWithScript("b", "1.0-r0", ""),
		pkgWithScript("c", "1.0-r0", ""),
	)
	r := w.deploy(t)
	r.SetCacheMode(CacheNone)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 0 || stats.Downloaded != 0 {
		t.Fatalf("CacheNone second refresh rebuilt: %+v", stats)
	}
	w.publish(t, pkgWithScript("b", "1.1-r0", ""))
	stats, err = r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || stats.Downloaded != 1 {
		t.Fatalf("CacheNone incremental refresh = %+v (want only b)", stats)
	}
	signed, err := r.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := signed.Verify(keys.NewRing(r.PublicKey()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Entries) != 3 {
		t.Fatalf("index = %v", ix.Names())
	}
	if e, _ := ix.Lookup("b"); e.Version != "1.1-r0" {
		t.Fatalf("b = %+v", e)
	}
}

// TestCacheEntryTamperForcesResanitize flips bytes in a sealed cache
// entry: the unseal fails, the entry is treated as a miss, and the
// package is re-sanitized to an identical result.
func TestCacheEntryTamperForcesResanitize(t *testing.T) {
	w := newWorld(t, 3)
	w.publish(t, pkgWithScript("app", "1.0-r0", "adduser -S app\n"))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	entry, err := r.upstream.Lookup("app")
	key := r.sanCacheKey(entry.Hash, r.planHash)
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.store.Tamper(key); err != nil {
		t.Fatal(err)
	}
	r.ForceReplan()
	stats, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized != 1 || stats.CacheHits != 0 {
		t.Fatalf("stats after cache tamper = %+v", stats)
	}
	raw, err := r.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := apk.VerifyRaw(raw, keys.NewRing(r.PublicKey())); err != nil {
		t.Fatal(err)
	}
}
