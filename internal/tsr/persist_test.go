package tsr

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tsr/internal/enclave"
	"tsr/internal/keys"
	"tsr/internal/store"
	"tsr/internal/tpm"
)

// persistWorld builds a world on a disk store with AutoPersist, plus
// the host-side pieces (platform seal root, TPM) that survive a
// process restart in a real deployment.
type persistHost struct {
	dir      string
	platform *enclave.Platform
	tpm      *tpm.TPM
}

func newPersistHost(t *testing.T) *persistHost {
	t.Helper()
	platform, err := enclave.NewPlatform(keys.Shared.MustGet("sgx-quoting"))
	if err != nil {
		t.Fatal(err)
	}
	return &persistHost{
		dir:      t.TempDir(),
		platform: platform,
		tpm:      tpm.New(keys.Shared.MustGet("persist-tpm-ak")),
	}
}

func (h *persistHost) openStore(t *testing.T) *store.FS {
	t.Helper()
	st, err := store.OpenFS(h.dir, store.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// boot is one "process start": a fresh service over the (re-scrubbed)
// disk store, with the host-persistent platform and TPM.
func (h *persistHost) boot(t *testing.T) *world {
	t.Helper()
	return newWorldCfg(t, 2, worldCfg{
		store:       h.openStore(t),
		tpm:         h.tpm,
		platform:    h.platform,
		autoPersist: true,
	})
}

// TestWarmRestartServesWithoutResanitization: deploy + refresh on a
// disk store, "kill" the process, boot a fresh service over the same
// data dir, RestoreAll — the restored repository serves the same
// signed index immediately and the next refresh is all cache hits.
func TestWarmRestartServesWithoutResanitization(t *testing.T) {
	h := newPersistHost(t)
	w1 := h.boot(t)
	w1.publish(t,
		pkgWithScript("app", "1.0-r0", ""),
		pkgWithScript("svc", "1.0-r0", "adduser -S svc\n"),
	)
	r1 := w1.deploy(t)
	stats, err := r1.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sanitized == 0 {
		t.Fatal("cold refresh sanitized nothing")
	}
	_, wantTag, err := r1.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	wantPkg, err := r1.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new world over the same dir/TPM/platform. The
	// mirror fleet is rebuilt with the same (pooled) signer key and the
	// same deterministic packages, as a restarted tsrd would see the
	// same upstream world.
	w2 := h.boot(t)
	w2.publish(t,
		pkgWithScript("app", "1.0-r0", ""),
		pkgWithScript("svc", "1.0-r0", "adduser -S svc\n"),
	)
	restored, err := w2.svc.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || !restored[0].Warm || restored[0].ID != r1.ID {
		t.Fatalf("RestoreAll = %+v", restored)
	}
	r2, err := w2.svc.Repo(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, gotTag, err := r2.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if gotTag != wantTag {
		t.Fatalf("restored index tag = %s, want %s", gotTag, wantTag)
	}
	got, err := r2.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantPkg) {
		t.Fatal("restored package bytes differ")
	}
	if cs := r2.CacheStats(); cs.Sanitized != 0 {
		t.Fatalf("warm restart sanitized %d packages", cs.Sanitized)
	}
	// The next refresh re-enters every package from the persisted
	// sealed sancache: zero sanitizations.
	stats2, err := r2.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Sanitized != 0 || stats2.CacheHits == 0 {
		t.Fatalf("post-restart refresh: %d sanitized, %d cache hits", stats2.Sanitized, stats2.CacheHits)
	}
}

// TestDiskTamperHealsOnServe: a root adversary rewriting a sanitized
// blob on disk (consistently with the frame CRC, so the store cannot
// tell) is caught by the §5.5 hash re-verification and healed by
// on-demand re-sanitization.
func TestDiskTamperHealsOnServe(t *testing.T) {
	h := newPersistHost(t)
	w := h.boot(t)
	w.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	entry, err := r.local.Lookup("app")
	if err != nil {
		t.Fatal(err)
	}
	key := r.sanitizedKey("app", entry.Hash)
	// The adversary rewrites the entry THROUGH the store, i.e. with a
	// valid frame and CRC — only the content hash check can catch it.
	if err := w.backing.Put(key, []byte("malicious payload")); err != nil {
		t.Fatal(err)
	}
	raw, res, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatalf("tampered entry not healed: %v", err)
	}
	if res.From != ServedOriginalCache && res.From != ServedMirror {
		t.Fatalf("served from %v, want re-sanitization path", res.From)
	}
	if int64(len(raw)) != entry.Size {
		t.Fatalf("healed bytes wrong size: %d != %d", len(raw), entry.Size)
	}
	// Healed in place: the next read hits the repaired cache.
	_, res2, err := r.FetchPackageTraced("app")
	if err != nil {
		t.Fatal(err)
	}
	if res2.From != ServedSanitizedCache {
		t.Fatalf("second read served from %v, want sanitized cache", res2.From)
	}
}

// TestDataDirRollbackTripsErrRollback: the §5.5 rollback attack against
// the durable tier. The adversary snapshots the whole data dir after
// refresh N, lets refresh N+1 happen (TPM counter advances), then
// restores the old dir and restarts. The TPM monotonic counter — which
// lives in host hardware, not in the rolled-back dir — rejects the
// stale checkpoint.
func TestDataDirRollbackTripsErrRollback(t *testing.T) {
	h := newPersistHost(t)
	w1 := h.boot(t)
	w1.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r1 := w1.deploy(t)
	if _, err := r1.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Adversary snapshots the data dir (checkpoint N).
	snapDir := t.TempDir()
	copyTree(t, h.dir, snapDir)
	// Refresh N+1 over a changed upstream: new checkpoint, counter up.
	w1.publish(t, pkgWithScript("app", "1.1-r0", ""))
	if _, err := r1.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Rollback: replace the data dir contents with the old snapshot.
	if err := os.RemoveAll(h.dir); err != nil {
		t.Fatal(err)
	}
	copyTree(t, snapDir, h.dir)

	w2 := h.boot(t)
	w2.publish(t, pkgWithScript("app", "1.1-r0", ""))
	restored, err := w2.svc.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 {
		t.Fatalf("RestoreAll = %+v", restored)
	}
	if restored[0].Warm || !errors.Is(restored[0].Err, ErrRollback) {
		t.Fatalf("rolled-back dir restored as %+v, want ErrRollback", restored[0])
	}
	if !restored[0].RolledBack() {
		t.Fatal("RolledBack() = false")
	}
	// The repository is deployed but cold: serving refuses until the
	// next refresh rebuilds trusted state.
	r2, err := w2.svc.Repo(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.FetchIndex(); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("cold repo FetchIndex = %v", err)
	}
	if _, err := r2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.FetchIndex(); err != nil {
		t.Fatalf("repo did not heal after refresh: %v", err)
	}
}

// TestRestoreSkipsDeletedCheckpoint: deleting the sealed blobs (the
// denial attack) degrades restart to cold, never to wrong data.
func TestRestoreSkipsDeletedCheckpoint(t *testing.T) {
	h := newPersistHost(t)
	w1 := h.boot(t)
	w1.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r1 := w1.deploy(t)
	if _, err := r1.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := w1.backing.Delete(StateStoreKey(r1.ID)); err != nil {
		t.Fatal(err)
	}
	w2 := h.boot(t)
	w2.publish(t, pkgWithScript("app", "1.0-r0", ""))
	restored, err := w2.svc.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0].Warm || restored[0].Err == nil {
		t.Fatalf("RestoreAll = %+v, want one cold repo", restored)
	}
	r2, err := w2.svc.Repo(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Refresh(); err != nil {
		t.Fatal(err)
	}
}

// TestTamperedCheckpointComesUpCold: flipping bytes inside the sealed
// state blob breaks the AES-GCM seal; the repository comes up cold
// with an explicit error instead of trusting the blob.
func TestTamperedCheckpointComesUpCold(t *testing.T) {
	h := newPersistHost(t)
	w1 := h.boot(t)
	w1.publish(t, pkgWithScript("app", "1.0-r0", ""))
	r1 := w1.deploy(t)
	if _, err := r1.Refresh(); err != nil {
		t.Fatal(err)
	}
	blob, err := w1.backing.Get(StateStoreKey(r1.ID))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := w1.backing.Put(StateStoreKey(r1.ID), blob); err != nil {
		t.Fatal(err)
	}
	w2 := h.boot(t)
	restored, err := w2.svc.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0].Warm || restored[0].Err == nil {
		t.Fatalf("RestoreAll = %+v, want tampered checkpoint rejected", restored)
	}
}

// copyTree copies a directory recursively (the adversary's dir
// snapshot/restore primitive).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, info.Mode())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}
