package tsr

import (
	"strings"
	"testing"
)

// wellFormedTag reports whether etag is a plain RFC 9110 entity-tag: a
// quoted string with no inner quotes (the shape every ETag in this
// codebase has — quoted hex). The fuzz properties below only bind for
// such tags; arbitrary etag arguments still must not panic.
func wellFormedTag(etag string) bool {
	return len(etag) >= 2 &&
		strings.HasPrefix(etag, `"`) && strings.HasSuffix(etag, `"`) &&
		!strings.Contains(etag[1:len(etag)-1], `"`)
}

// FuzzETagMatch asserts the If-None-Match tokenizer's contract on
// arbitrary header bytes: no panic, `*` matches everything, a
// well-formed tag always matches itself (strongly, weakly, and at the
// head of any list), and a match is never invented — a non-wildcard
// header can only match a tag it literally contains.
func FuzzETagMatch(f *testing.F) {
	f.Add(`"abc"`, `"abc"`)
	f.Add(`W/"abc"`, `"abc"`)
	f.Add(`"a", "b", "c"`, `"b"`)
	f.Add(`*`, `"anything"`)
	f.Add(`"comma,inside", "plain"`, `"plain"`)
	f.Add(`"unterminated`, `"x"`)
	f.Add(``, ``)
	f.Add(`W/`, `""`)

	f.Fuzz(func(t *testing.T, header, etag string) {
		got := ETagMatch(header, etag)

		if strings.TrimSpace(header) == "*" && !got {
			t.Fatalf("ETagMatch(%q, %q) = false, * must match any tag", header, etag)
		}
		if got && strings.TrimSpace(header) != "*" && !strings.Contains(header, etag) {
			t.Fatalf("ETagMatch(%q, %q) = true but the header does not contain the tag", header, etag)
		}
		if wellFormedTag(etag) {
			if !ETagMatch(etag, etag) {
				t.Fatalf("ETagMatch(%q, %q) = false, tag must match itself", etag, etag)
			}
			if !ETagMatch("W/"+etag, etag) {
				t.Fatalf(`ETagMatch("W/%s", %q) = false, comparison must be weak`, etag, etag)
			}
			// A well-formed tag at the head of a list matches no matter
			// what garbage follows it.
			if !ETagMatch(etag+", "+header, etag) {
				t.Fatalf("ETagMatch(%q, %q) = false, head-of-list tag must match", etag+", "+header, etag)
			}
		}
	})
}
