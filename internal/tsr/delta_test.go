package tsr

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsr/internal/index"
	"tsr/internal/keys"
)

// refreshedWorld returns a deployed, refreshed tenant.
func refreshedWorld(t *testing.T) (*world, *Repo) {
	t.Helper()
	w := newWorld(t, 3)
	w.publish(t,
		pkgWithScript("app", "1.0-r0", ""),
		pkgWithScript("lib", "1.0-r0", ""),
		pkgWithScript("tool", "1.0-r0", ""))
	r := w.deploy(t)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w, r
}

// advance publishes a new version and refreshes, creating a generation.
func advance(t *testing.T, w *world, r *Repo, name, version string) {
	t.Helper()
	w.publish(t, pkgWithScript(name, version, ""))
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
}

func TestFetchIndexDeltaAcrossGenerations(t *testing.T) {
	w, r := refreshedWorld(t)
	base, baseTag, err := r.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	baseIx, err := index.Decode(base.Raw)
	if err != nil {
		t.Fatal(err)
	}

	// Same generation: nothing to send.
	if _, err := r.FetchIndexDelta(baseTag); !errors.Is(err, index.ErrDeltaUnchanged) {
		t.Fatalf("err = %v, want ErrDeltaUnchanged", err)
	}

	// Two generations ahead: one delta spans both.
	advance(t, w, r, "app", "1.1-r0")
	advance(t, w, r, "lib", "1.1-r0")
	d, err := r.FetchIndexDelta(baseTag)
	if err != nil {
		t.Fatal(err)
	}
	signed, ix, err := d.Apply(baseIx)
	if err != nil {
		t.Fatal(err)
	}
	cur, curTag, err := r.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if signed.ETag() != curTag || string(signed.Raw) != string(cur.Raw) {
		t.Fatal("applied delta does not reproduce the current signed index")
	}
	if e, _ := ix.Lookup("lib"); e.Version != "1.1-r0" {
		t.Fatalf("lib = %+v after delta", e)
	}
	// The reconstructed index verifies with the tenant key, like a full
	// fetch.
	if _, err := signed.Verify(keys.NewRing(r.PublicKey())); err != nil {
		t.Fatal(err)
	}

	// A generation pushed out of the retained history: full fetch
	// required.
	for i := 0; i < index.HistoryWindow+1; i++ {
		advance(t, w, r, "tool", fmt.Sprintf("1.%d-r0", i+1))
	}
	if _, err := r.FetchIndexDelta(baseTag); !errors.Is(err, index.ErrNoDelta) {
		t.Fatalf("err = %v, want ErrNoDelta for an expired base", err)
	}
	// Stats counted the delta reads.
	if s := r.CacheStats(); s.DeltaReads == 0 {
		t.Fatalf("delta_reads = %d", s.DeltaReads)
	}
}

func TestDeltaHTTPEndpoint(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	_, baseTag, err := r.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	deltaURL := func(since string) string {
		return srv.URL + "/repos/" + r.ID + "/index/delta?since=" + strings.ReplaceAll(since, `"`, "%22")
	}

	// Current base: 304.
	resp, err := srv.Client().Get(deltaURL(baseTag))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("current base status = %d, want 304", resp.StatusCode)
	}

	// Missing since: 400.
	resp, err = srv.Client().Get(srv.URL + "/repos/" + r.ID + "/index/delta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing since status = %d, want 400", resp.StatusCode)
	}

	// Unknown base: 404 (caller falls back to a full fetch).
	resp, err = srv.Client().Get(deltaURL(`"feedfeed"`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown base status = %d, want 404", resp.StatusCode)
	}

	// One generation ahead: the delta decodes and carries the new tag.
	advance(t, w, r, "app", "1.1-r0")
	resp, err = srv.Client().Get(deltaURL(baseTag))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status = %d, err %v", resp.StatusCode, err)
	}
	d, err := index.DecodeDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, curTag, err := r.FetchIndexTagged()
	if err != nil {
		t.Fatal(err)
	}
	if d.ToETag != curTag || resp.Header.Get("ETag") != curTag {
		t.Fatalf("delta to = %s, header = %s, want %s", d.ToETag, resp.Header.Get("ETag"), curTag)
	}

	// The client wrapper agrees with the raw endpoint.
	client := &Client{BaseURL: srv.URL, RepoID: r.ID, HTTPClient: srv.Client()}
	if _, err := client.FetchIndexDelta(curTag); !errors.Is(err, index.ErrDeltaUnchanged) {
		t.Fatalf("client err = %v, want ErrDeltaUnchanged", err)
	}
	if _, err := client.FetchIndexDelta(`"feedfeed"`); !errors.Is(err, index.ErrNoDelta) {
		t.Fatalf("client err = %v, want ErrNoDelta", err)
	}
	cd, err := client.FetchIndexDelta(baseTag)
	if err != nil {
		t.Fatal(err)
	}
	if cd.ToETag != curTag {
		t.Fatalf("client delta to = %s, want %s", cd.ToETag, curTag)
	}
}

// TestClientFetchPackageRejectsCorruptBytes: the HTTP client verifies
// package bytes against the signed index entry and fails fast on a
// corrupting server instead of handing tampered bytes to the caller.
func TestClientFetchPackageRejectsCorruptBytes(t *testing.T) {
	w, r := refreshedWorld(t)
	inner := Handler(w.svc)
	corrupt := false
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if corrupt && strings.Contains(req.URL.Path, "/packages/") {
			raw, err := r.FetchPackage("app")
			if err != nil {
				rw.WriteHeader(http.StatusInternalServerError)
				return
			}
			raw[len(raw)/2] ^= 0xFF
			rw.Write(raw)
			return
		}
		inner.ServeHTTP(rw, req)
	}))
	defer srv.Close()

	client := &Client{BaseURL: srv.URL, RepoID: r.ID, HTTPClient: srv.Client()}
	// Honest server: bytes verify.
	if _, err := client.FetchPackage("app"); err != nil {
		t.Fatal(err)
	}
	// Corrupting server: fail fast.
	corrupt = true
	_, err := client.FetchPackage("app")
	if err == nil || !strings.Contains(err.Error(), "do not match the signed index entry") {
		t.Fatalf("err = %v, want an index-entry mismatch", err)
	}
	// A package the index does not list is refused before any download.
	corrupt = false
	if _, err := client.FetchPackage("not-a-package"); err == nil ||
		!strings.Contains(err.Error(), "not in the repository index") {
		t.Fatalf("err = %v, want not-in-index", err)
	}
}

// TestClientFetchPackageSurvivesOriginRefresh: a long-lived client (or
// a tsredge replica whose embedded client stays current via deltas that
// never touch its own cached index) holds an index generation from
// before an origin refresh. Fetching a package whose hash changed must
// revalidate the index and retry — not fail verification forever
// against the stale entry.
func TestClientFetchPackageSurvivesOriginRefresh(t *testing.T) {
	w, r := refreshedWorld(t)
	srv := httptest.NewServer(Handler(w.svc))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL, RepoID: r.ID, HTTPClient: srv.Client()}

	// Prime the client's cached index at the current generation.
	before, err := client.FetchPackage("app")
	if err != nil {
		t.Fatal(err)
	}
	// The origin republishes app with different content (new hash).
	advance(t, w, r, "app", "1.1-r0")
	after, err := client.FetchPackage("app")
	if err != nil {
		t.Fatalf("fetch across origin refresh: %v", err)
	}
	if string(after) == string(before) {
		t.Fatal("client served the old generation after the origin refreshed")
	}
}
