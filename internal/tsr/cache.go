package tsr

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// The content-addressed sanitization cache maps (original package
// digest, sanitization plan hash) to the size and hash of the sanitized
// output. Because sanitization is deterministic, the pair fully
// determines the result: an unchanged package under an unchanged plan
// can re-enter the local index without being re-sanitized — or even
// re-read — regardless of how the refresh was triggered (incremental
// update, forced replan, restart).
//
// Entries live in the untrusted Store, so they are sealed to the
// enclave identity (AES-GCM): a root adversary can delete entries
// (a denial of cache, degrading to re-sanitization) but cannot forge or
// swap them — the cache key is embedded in the sealed payload and
// re-checked after unsealing, so an entry copied under a different key
// is rejected.

// sanCacheKey returns the Store key of the sanitization cache entry for
// one (original digest, plan hash) pair.
func (r *Repo) sanCacheKey(orig, plan [32]byte) string {
	return r.ID + "/sancache/" + hex.EncodeToString(orig[:]) + "-" + hex.EncodeToString(plan[:])
}

// cacheEntry is the sealed payload of one sanitization cache entry.
type cacheEntry struct {
	// Key echoes the Store key the entry was sealed under, defeating
	// entry-swapping by the untrusted store.
	Key string
	// Size and Hash describe the sanitized wire bytes; the bytes
	// themselves live under the (also untrusted, index-verified)
	// sanitized package key.
	Size int64
	Hash [32]byte
}

// storeCacheEntry seals and writes one cache entry.
func (r *Repo) storeCacheEntry(e cacheEntry) error {
	var buf bytes.Buffer
	writeChunk(&buf, []byte(e.Key))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(e.Size))
	buf.Write(n[:])
	buf.Write(e.Hash[:])
	sealed, err := r.svc.Seal(buf.Bytes())
	if err != nil {
		return err
	}
	return r.svc.cfg.Store.Put(e.Key, sealed)
}

// loadCacheEntry reads, unseals and validates the entry stored under
// key. Any failure — absent, tampered, or swapped from another key —
// is reported as an error; the caller falls back to sanitizing.
func (r *Repo) loadCacheEntry(key string) (cacheEntry, error) {
	sealed, err := r.svc.cfg.Store.Get(key)
	if err != nil {
		return cacheEntry{}, err
	}
	blob, err := r.svc.Unseal(sealed)
	if err != nil {
		return cacheEntry{}, fmt.Errorf("%w: %v", ErrCacheTampered, err)
	}
	buf := bytes.NewReader(blob)
	rawKey, err := readChunk(buf)
	if err != nil {
		return cacheEntry{}, err
	}
	e := cacheEntry{Key: string(rawKey)}
	var n [8]byte
	if _, err := buf.Read(n[:]); err != nil {
		return cacheEntry{}, fmt.Errorf("tsr: cache entry: %w", err)
	}
	e.Size = int64(binary.BigEndian.Uint64(n[:]))
	if _, err := buf.Read(e.Hash[:]); err != nil {
		return cacheEntry{}, fmt.Errorf("tsr: cache entry: %w", err)
	}
	if e.Key != key {
		return cacheEntry{}, fmt.Errorf("%w: cache entry moved from %q", ErrCacheTampered, e.Key)
	}
	return e, nil
}

// counters are the cumulative per-repository counters. They are plain
// atomics — updated by the refresh pipeline and the lock-free serving
// path alike — so reading them never touches Repo.mu: GET /stats stays
// responsive while a cold refresh holds the repository lock.
type counters struct {
	// Refresh pipeline (RefreshStats aggregates).
	refreshes, cacheHits, sanitized, rejected, downloaded, failed atomic.Int64
	// Read tier (snapshot serving path).
	indexReads, packageReads, notModified atomic.Int64
	// deltaReads counts index reads answered as a delta (edge replica
	// sync); each is also counted in indexReads.
	deltaReads atomic.Int64
	// coalescedFills counts serving-path cache fills that shared
	// another in-flight request's download+re-sanitization instead of
	// running their own (flash-crowd coalescing).
	coalescedFills atomic.Int64
	// Wire-efficiency read tier: chunk-manifest reads, byte-range
	// reads, and packages served streaming off the store instead of
	// buffered whole.
	manifestReads, rangeReads, streamedServes atomic.Int64
	// ingested counts operator-registered packages accepted through the
	// batched ingest path (RegisterPackages), including journal replays.
	ingested atomic.Int64
}

// CacheStats are cumulative per-repository counters, exposed over the
// REST API (GET /repos/{id}/stats).
type CacheStats struct {
	// Refreshes counts completed Refresh cycles.
	Refreshes int64 `json:"refreshes"`
	// CacheHits counts packages whose sanitized result was reused from
	// the content-addressed cache instead of being re-sanitized.
	CacheHits int64 `json:"cache_hits"`
	// Sanitized counts fresh (cache-miss) sanitizations.
	Sanitized int64 `json:"sanitized"`
	// Rejected counts packages excluded by policy or sanitization.
	Rejected int64 `json:"rejected"`
	// Downloaded counts mirror downloads.
	Downloaded int64 `json:"downloaded"`
	// Failed counts per-package errors that were surfaced in
	// RefreshStats.Errors without aborting the cycle.
	Failed int64 `json:"failed"`
	// IndexReads and PackageReads count read-tier requests served from
	// the published snapshot (including conditional revalidations).
	IndexReads   int64 `json:"index_reads"`
	PackageReads int64 `json:"package_reads"`
	// NotModified counts If-None-Match revalidations answered with
	// 304 Not Modified by the HTTP layer.
	NotModified int64 `json:"not_modified"`
	// DeltaReads counts index reads answered as a delta (edge replica
	// sync); each is also counted in IndexReads.
	DeltaReads int64 `json:"delta_reads"`
	// CoalescedFills counts package requests that shared a concurrent
	// identical cache fill instead of re-running it (flash-crowd
	// request coalescing on the serving path).
	CoalescedFills int64 `json:"coalesced_fills"`
	// ManifestReads counts chunk-manifest requests (differential sync).
	ManifestReads int64 `json:"manifest_reads"`
	// RangeReads counts byte-range package reads (chunk fetches).
	RangeReads int64 `json:"range_reads"`
	// StreamedServes counts packages served streaming from the store
	// (hash-as-you-copy) instead of buffered whole.
	StreamedServes int64 `json:"streamed_serves"`
	// Ingested counts operator-registered packages accepted through the
	// batched ingest path, including crash-recovery journal replays.
	Ingested int64 `json:"ingested"`
}

// add returns the element-wise sum, for service-level totals.
func (c CacheStats) add(o CacheStats) CacheStats {
	return CacheStats{
		Refreshes:      c.Refreshes + o.Refreshes,
		CacheHits:      c.CacheHits + o.CacheHits,
		Sanitized:      c.Sanitized + o.Sanitized,
		Rejected:       c.Rejected + o.Rejected,
		Downloaded:     c.Downloaded + o.Downloaded,
		Failed:         c.Failed + o.Failed,
		IndexReads:     c.IndexReads + o.IndexReads,
		PackageReads:   c.PackageReads + o.PackageReads,
		NotModified:    c.NotModified + o.NotModified,
		DeltaReads:     c.DeltaReads + o.DeltaReads,
		CoalescedFills: c.CoalescedFills + o.CoalescedFills,
		ManifestReads:  c.ManifestReads + o.ManifestReads,
		RangeReads:     c.RangeReads + o.RangeReads,
		StreamedServes: c.StreamedServes + o.StreamedServes,
		Ingested:       c.Ingested + o.Ingested,
	}
}

// CacheStats returns the cumulative counters. Lock-free: safe to call
// at any rate while a refresh runs.
func (r *Repo) CacheStats() CacheStats {
	return CacheStats{
		Refreshes:      r.totals.refreshes.Load(),
		CacheHits:      r.totals.cacheHits.Load(),
		Sanitized:      r.totals.sanitized.Load(),
		Rejected:       r.totals.rejected.Load(),
		Downloaded:     r.totals.downloaded.Load(),
		Failed:         r.totals.failed.Load(),
		IndexReads:     r.totals.indexReads.Load(),
		PackageReads:   r.totals.packageReads.Load(),
		NotModified:    r.totals.notModified.Load(),
		DeltaReads:     r.totals.deltaReads.Load(),
		CoalescedFills: r.totals.coalescedFills.Load(),
		ManifestReads:  r.totals.manifestReads.Load(),
		RangeReads:     r.totals.rangeReads.Load(),
		StreamedServes: r.totals.streamedServes.Load(),
		Ingested:       r.totals.ingested.Load(),
	}
}
