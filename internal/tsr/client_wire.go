package tsr

import (
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"tsr/internal/index"
	"tsr/internal/store"
	"tsr/internal/trace"
)

// Client-side wire efficiency: compressed index transfer accounting,
// chunk-manifest + byte-range fetches, and chunk-aware differential
// package download. The trust model is unchanged — the manifest is
// untrusted transfer metadata, and every reassembled package must hash
// to the signed index entry before it is returned or cached; any
// failure on the differential path falls back to a verified full
// fetch.

// wireCounters are the client's cumulative wire-traffic counters.
type wireCounters struct {
	indexBytes    atomic.Int64 // index + delta body bytes, as transferred (compressed when negotiated)
	packageBytes  atomic.Int64 // package body bytes: full downloads + range fetches
	manifestBytes atomic.Int64 // chunk-manifest body bytes
	fullFetches   atomic.Int64
	diffFetches   atomic.Int64
	diffFallbacks atomic.Int64
	cacheHits     atomic.Int64
	chunksReused  atomic.Int64
	chunksFetched atomic.Int64
	rangeRequests atomic.Int64
}

// WireStats is a point-in-time snapshot of the client's wire traffic.
// Byte counts are response-body bytes as transferred: gzip-encoded
// indexes count their compressed size, differential fetches count
// manifest + fetched ranges only.
type WireStats struct {
	IndexBytes    int64 `json:"index_bytes"`
	PackageBytes  int64 `json:"package_bytes"`
	ManifestBytes int64 `json:"manifest_bytes"`
	FullFetches   int64 `json:"full_fetches"`
	DiffFetches   int64 `json:"diff_fetches"`
	DiffFallbacks int64 `json:"diff_fallbacks"`
	CacheHits     int64 `json:"cache_hits"`
	ChunksReused  int64 `json:"chunks_reused"`
	ChunksFetched int64 `json:"chunks_fetched"`
	RangeRequests int64 `json:"range_requests"`
}

// TotalBytes is every response-body byte the client pulled.
func (s WireStats) TotalBytes() int64 { return s.IndexBytes + s.PackageBytes + s.ManifestBytes }

// WireStats reads the client's cumulative wire counters.
func (c *Client) WireStats() WireStats {
	return WireStats{
		IndexBytes:    c.wire.indexBytes.Load(),
		PackageBytes:  c.wire.packageBytes.Load(),
		ManifestBytes: c.wire.manifestBytes.Load(),
		FullFetches:   c.wire.fullFetches.Load(),
		DiffFetches:   c.wire.diffFetches.Load(),
		DiffFallbacks: c.wire.diffFallbacks.Load(),
		CacheHits:     c.wire.cacheHits.Load(),
		ChunksReused:  c.wire.chunksReused.Load(),
		ChunksFetched: c.wire.chunksFetched.Load(),
		RangeRequests: c.wire.rangeRequests.Load(),
	}
}

// countReader counts raw wire bytes as they are read.
type countReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// readBodyCounted reads a (possibly gzip transfer-encoded) response
// body: wire bytes — the compressed form when the server negotiated
// gzip — are counted into n, and the DECODED bytes are returned, so
// callers verify signatures/hashes over the canonical representation.
func readBodyCounted(resp *http.Response, limit int64, n *atomic.Int64) ([]byte, error) {
	var r io.Reader = &countReader{r: io.LimitReader(resp.Body, limit), n: n}
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("tsr client: gzip body: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	//lint:allow streamserve client buffers the decoded body to verify it against the signed form; bounded by limit
	return io.ReadAll(r)
}

// maxIndexWireBytes bounds an index/delta response body (wire form).
const maxIndexWireBytes = 256 << 20

// maxManifestWireBytes bounds a chunk-manifest response body: ~128
// bytes per chunk at the minimum chunk size puts any real manifest far
// under this.
const maxManifestWireBytes = 16 << 20

// FetchChunkManifest fetches the package's chunk manifest
// (GET .../packages/{name}/chunks). The result's shape is validated
// but its hashes are UNTRUSTED until reassembled bytes verify against
// the signed entry.
func (c *Client) FetchChunkManifest(name string) (*store.ChunkManifest, error) {
	return c.FetchChunkManifestCtx(nil, name)
}

// FetchChunkManifestCtx is FetchChunkManifest under a caller context.
func (c *Client) FetchChunkManifestCtx(ctx context.Context, name string) (_ *store.ChunkManifest, err error) {
	ctx, sp := trace.Start(ctx, "http.chunks")
	defer func() { sp.SetError(err); sp.End() }()
	sp.SetAttr("package", name)
	req, err := c.newRequest(ctx, c.BaseURL+"/repos/"+c.RepoID+"/packages/"+name+"/chunks")
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tsr client: chunks %s: %s", name, readErr(resp))
	}
	raw, err := readBodyCounted(resp, maxManifestWireBytes, &c.wire.manifestBytes)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	_, m, err := DecodeChunkManifest(raw)
	return m, err
}

// FetchPackageRange fetches length bytes of a package starting at off
// via an HTTP Range request. etag, when non-empty, is sent as If-Range
// so a republished package yields the full new body (detected by
// length) instead of a spliced range.
func (c *Client) FetchPackageRange(name string, off, length int64) ([]byte, error) {
	return c.FetchPackageRangeCtx(nil, name, off, length, "")
}

// FetchPackageRangeCtx is FetchPackageRange under a caller context.
func (c *Client) FetchPackageRangeCtx(ctx context.Context, name string, off, length int64, etag string) (_ []byte, err error) {
	ctx, sp := trace.Start(ctx, "http.package_range")
	defer func() { sp.SetError(err); sp.End() }()
	sp.SetAttr("package", name)
	req, err := c.newRequest(ctx, c.BaseURL+"/repos/"+c.RepoID+"/packages/"+name)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	if etag != "" {
		req.Header.Set("If-Range", etag)
	}
	c.wire.rangeRequests.Add(1)
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		wantCR := fmt.Sprintf("bytes %d-%d/", off, off+length-1)
		if cr := resp.Header.Get("Content-Range"); !strings.HasPrefix(cr, wantCR) {
			return nil, fmt.Errorf("tsr client: range %s: Content-Range %q does not match requested [%d,%d)", name, cr, off, off+length)
		}
		raw, err := readBodyCounted(resp, length+1, &c.wire.packageBytes)
		if err != nil {
			return nil, fmt.Errorf("tsr client: %w", err)
		}
		if int64(len(raw)) != length {
			return nil, fmt.Errorf("tsr client: range %s: got %d bytes, want %d", name, len(raw), length)
		}
		return raw, nil
	case http.StatusOK:
		// The server ignored the Range (or If-Range failed): the full
		// body arrived. Satisfy the caller from it when possible.
		raw, err := readBodyCounted(resp, maxRangeFallbackBytes, &c.wire.packageBytes)
		if err != nil {
			return nil, fmt.Errorf("tsr client: %w", err)
		}
		if off+length > int64(len(raw)) {
			return nil, fmt.Errorf("tsr client: range %s: full body shorter than requested range", name)
		}
		return raw[off : off+length], nil
	default:
		return nil, fmt.Errorf("tsr client: range %s: %s", name, readErr(resp))
	}
}

// maxRangeFallbackBytes bounds the 200 fallback of a range request.
const maxRangeFallbackBytes = 1 << 30

// pkgCacheKey is the content-addressed PkgCache key for a verified
// package body — the same shape the edge replica uses.
func pkgCacheKey(hash [sha256.Size]byte) string {
	return "pkg/" + hex.EncodeToString(hash[:])
}

// cachedPackage returns the exact requested bytes from PkgCache when
// present and verifying (the cache is untrusted), or nil.
func (c *Client) cachedPackage(entry index.Entry) []byte {
	raw, err := c.PkgCache.Get(pkgCacheKey(entry.Hash))
	if err != nil || int64(len(raw)) != entry.Size || sha256.Sum256(raw) != entry.Hash {
		return nil
	}
	return raw
}

// rememberPackage caches verified package bytes and records the
// name→hash association the next differential fetch diffs against.
func (c *Client) rememberPackage(name string, entry index.Entry, raw []byte) {
	_ = c.PkgCache.Put(pkgCacheKey(entry.Hash), raw)
	c.mu.Lock()
	if c.lastHash == nil {
		c.lastHash = make(map[string][sha256.Size]byte)
	}
	c.lastHash[name] = entry.Hash
	c.mu.Unlock()
}

// previousPackage returns the verified bytes of the version of name
// this client last fetched, when they are still cached and differ from
// the wanted entry.
func (c *Client) previousPackage(name string, entry index.Entry) []byte {
	c.mu.Lock()
	prev, ok := c.lastHash[name]
	c.mu.Unlock()
	if !ok || prev == entry.Hash {
		return nil
	}
	raw, err := c.PkgCache.Get(pkgCacheKey(prev))
	if err != nil || sha256.Sum256(raw) != prev {
		return nil
	}
	return raw
}

// fetchPackageAny serves one package using the cheapest trustworthy
// path: cached exact bytes, then chunk-differential fetch against the
// previous cached version, then a verified full download. Only
// index-verified bytes are ever returned or cached.
func (c *Client) fetchPackageAny(ctx context.Context, name string, entry index.Entry) ([]byte, error) {
	if c.PkgCache == nil {
		return c.fetchPackageVerified(ctx, name, entry)
	}
	if raw := c.cachedPackage(entry); raw != nil {
		c.wire.cacheHits.Add(1)
		return raw, nil
	}
	if old := c.previousPackage(name, entry); old != nil {
		raw, err := c.fetchPackageDiff(ctx, name, entry, old)
		if err == nil {
			c.wire.diffFetches.Add(1)
			c.rememberPackage(name, entry, raw)
			return raw, nil
		}
		// Any differential failure — tampered manifest, stale ranges,
		// reassembly mismatch — degrades to a full verified fetch.
		c.wire.diffFallbacks.Add(1)
	}
	raw, err := c.fetchPackageVerified(ctx, name, entry)
	if err != nil {
		return nil, err
	}
	c.rememberPackage(name, entry, raw)
	return raw, nil
}

// fetchPackageDiff reassembles the wanted package from the previous
// version's chunks plus range-fetched changed chunks, then verifies
// the whole against the signed entry. Any inconsistency is an error —
// the caller falls back to a full fetch.
func (c *Client) fetchPackageDiff(ctx context.Context, name string, entry index.Entry, old []byte) (_ []byte, err error) {
	ctx, sp := trace.Start(ctx, "http.package_diff")
	defer func() { sp.SetError(err); sp.End() }()
	sp.SetAttr("package", name)
	m, err := c.FetchChunkManifestCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	// Root the manifest in the signed entry before trusting its shape
	// for anything: a manifest for different bytes is useless at best.
	if m.PackageHash != entry.Hash || m.TotalSize != entry.Size {
		return nil, fmt.Errorf("tsr client: package %s: chunk manifest does not match the signed index entry", name)
	}
	out, st, err := ReassembleChunks(m, old, func(off, length int64) ([]byte, error) {
		return c.FetchPackageRangeCtx(ctx, name, off, length, entry.ETag())
	})
	if err != nil {
		return nil, err
	}
	if int64(len(out)) != entry.Size || sha256.Sum256(out) != entry.Hash {
		return nil, fmt.Errorf("tsr client: package %s: differentially reassembled bytes do not match the signed index entry", name)
	}
	c.wire.chunksReused.Add(st.ChunksReused)
	c.wire.chunksFetched.Add(st.ChunksFetched)
	sp.SetAttr("chunks_reused", strconv.FormatInt(st.ChunksReused, 10))
	sp.SetAttr("chunks_fetched", strconv.FormatInt(st.ChunksFetched, 10))
	return out, nil
}
