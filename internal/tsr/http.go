package tsr

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"tsr/internal/index"
)

// HTTP wire headers for the signed index.
const (
	headerKeyName   = "X-Tsr-Key-Name"
	headerSignature = "X-Tsr-Signature"
)

// Handler exposes the Service as the REST API of §5.2:
//
//	POST /policies                  deploy a policy, returns repo id +
//	                                public key + attestation report
//	POST /repos/{id}/refresh        pull upstream and re-sanitize
//	GET  /repos/{id}/index          the signed metadata index
//	GET  /repos/{id}/packages/{pkg} a sanitized package
//	GET  /repos/{id}/rejected       rejected packages and reasons
//	GET  /repos/{id}/findings       security findings
//	GET  /repos/{id}/stats          cumulative refresh/cache counters
//	GET  /healthz                   liveness
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /policies", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 10<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, pub, report, err := s.DeployPolicy(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"repository_id":       id,
			"public_key":          string(pub),
			"enclave_measurement": hex.EncodeToString(report.Measurement[:]),
			"report_data":         hex.EncodeToString(report.ReportData[:]),
			"report_signature":    base64.StdEncoding.EncodeToString(report.Sig),
			"report_key_name":     report.KeyName,
		})
	})
	mux.HandleFunc("POST /repos/{id}/refresh", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		stats, err := repo.Refresh()
		if err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, map[string]any{
			"sanitized":         stats.Sanitized,
			"rejected":          stats.Rejected,
			"downloaded":        stats.Downloaded,
			"unchanged":         stats.Unchanged,
			"cache_hits":        stats.CacheHits,
			"workers":           stats.Workers,
			"errors":            stats.Errors,
			"quorum_latency_ms": stats.QuorumLatency.Milliseconds(),
			"mirrors_contacted": stats.MirrorsContacted,
		})
	})
	mux.HandleFunc("GET /repos/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.CacheStats())
	})
	mux.HandleFunc("GET /repos/{id}/index", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		signed, err := repo.FetchIndex()
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set(headerKeyName, signed.KeyName)
		w.Header().Set(headerSignature, base64.StdEncoding.EncodeToString(signed.Sig))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(signed.Raw)
	})
	mux.HandleFunc("GET /repos/{id}/packages/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		raw, res, err := repo.FetchPackageTraced(r.PathValue("pkg"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("X-Tsr-Served-From", res.From.String())
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(raw)
	})
	mux.HandleFunc("GET /repos/{id}/scripts/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		preview, err := repo.scriptPreview(r.PathValue("pkg"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, preview)
	})
	mux.HandleFunc("GET /repos/{id}/rejected", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.RejectedPackages())
	})
	mux.HandleFunc("GET /repos/{id}/findings", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.Findings())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotInitialized):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnsupportedPkg):
		return http.StatusForbidden
	case errors.Is(err, index.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// Client is a package-manager-side HTTP client for one TSR repository.
// It implements pkgmgr.Source, so an OS can be pointed at TSR exactly
// like at a plain mirror (§4.3: "Package managers recognize TSR as a
// standard repository mirror").
type Client struct {
	// BaseURL is the TSR server base (e.g. "http://host:8473").
	BaseURL string
	// RepoID is the tenant repository id from policy deployment.
	RepoID string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// FetchIndex implements pkgmgr.Source.
func (c *Client) FetchIndex() (*index.Signed, error) {
	resp, err := c.client().Get(c.BaseURL + "/repos/" + c.RepoID + "/index")
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tsr client: index: %s", readErr(resp))
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(resp.Header.Get(headerSignature))
	if err != nil {
		return nil, fmt.Errorf("tsr client: bad signature header: %w", err)
	}
	return &index.Signed{
		Raw:     raw,
		KeyName: resp.Header.Get(headerKeyName),
		Sig:     sig,
	}, nil
}

// FetchPackage implements pkgmgr.Source.
func (c *Client) FetchPackage(name string) ([]byte, error) {
	resp, err := c.client().Get(c.BaseURL + "/repos/" + c.RepoID + "/packages/" + name)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tsr client: package %s: %s", name, readErr(resp))
	}
	return io.ReadAll(resp.Body)
}

func readErr(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return strings.TrimSpace(resp.Status + " " + string(body))
}
