package tsr

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"tsr/internal/index"
)

// HTTP wire headers for the signed index.
const (
	headerKeyName   = "X-Tsr-Key-Name"
	headerSignature = "X-Tsr-Signature"
)

// maxPolicyBytes caps POST /policies request bodies; larger bodies are
// refused with 413 rather than silently truncated.
const maxPolicyBytes = 10 << 20

// Handler exposes the Service as the REST API of §5.2:
//
//	POST /policies                  deploy a policy, returns repo id +
//	                                public key + attestation report
//	POST /repos/{id}/refresh        pull upstream and re-sanitize
//	GET  /repos/{id}/index          the signed metadata index
//	GET  /repos/{id}/packages/{pkg} a sanitized package
//	GET  /repos/{id}/rejected       rejected packages and reasons
//	GET  /repos/{id}/findings       security findings
//	GET  /repos/{id}/stats          cumulative refresh/cache counters
//	GET  /healthz                   liveness
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /policies", func(w http.ResponseWriter, r *http.Request) {
		// MaxBytesReader (unlike a silent LimitReader) fails the read
		// when the body exceeds the cap, instead of truncating the
		// policy and parsing the prefix as if it were complete.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPolicyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("policy body exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, pub, report, err := s.DeployPolicy(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"repository_id":       id,
			"public_key":          string(pub),
			"enclave_measurement": hex.EncodeToString(report.Measurement[:]),
			"report_data":         hex.EncodeToString(report.ReportData[:]),
			"report_signature":    base64.StdEncoding.EncodeToString(report.Sig),
			"report_key_name":     report.KeyName,
		})
	})
	mux.HandleFunc("POST /repos/{id}/refresh", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		stats, err := repo.Refresh()
		if err != nil {
			// 502 is reserved for upstream mirror/quorum failures;
			// local validation/seal/plan errors map to 500 and a
			// replay-detected refusal surfaces the rollback sentinel.
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]any{
			"sanitized":         stats.Sanitized,
			"rejected":          stats.Rejected,
			"downloaded":        stats.Downloaded,
			"unchanged":         stats.Unchanged,
			"cache_hits":        stats.CacheHits,
			"workers":           stats.Workers,
			"errors":            stats.Errors,
			"quorum_latency_ms": stats.QuorumLatency.Milliseconds(),
			"mirrors_contacted": stats.MirrorsContacted,
		})
	})
	mux.HandleFunc("GET /repos/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.CacheStats())
	})
	mux.HandleFunc("GET /repos/{id}/index", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		// The ETag is the digest of the signed index: it changes exactly
		// when a refresh publishes a new snapshot, so clients revalidate
		// with If-None-Match instead of re-downloading the full index. A
		// match is answered from the tag alone — the index body is never
		// even cloned.
		etag, err := repo.IndexETag()
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Cache-Control", "no-cache")
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			repo.noteIndexNotModified()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		signed, etag, err := repo.FetchIndexTagged()
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set(headerKeyName, signed.KeyName)
		w.Header().Set(headerSignature, base64.StdEncoding.EncodeToString(signed.Sig))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(signed.Raw)
	})
	mux.HandleFunc("GET /repos/{id}/packages/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		pkg := r.PathValue("pkg")
		// Conditional fast path: the package ETag is its content hash
		// from the signed index, so a match skips the cache read (and
		// any re-sanitization) entirely.
		if etag, err := repo.PackageETag(pkg); err == nil &&
			etagMatch(r.Header.Get("If-None-Match"), etag) {
			repo.notePackageNotModified()
			w.Header().Set("ETag", etag)
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		raw, res, err := repo.FetchPackageTraced(pkg)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("ETag", res.ETag)
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Tsr-Served-From", res.From.String())
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(raw)
	})
	mux.HandleFunc("GET /repos/{id}/scripts/{pkg}", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		preview, err := repo.scriptPreview(r.PathValue("pkg"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, preview)
	})
	mux.HandleFunc("GET /repos/{id}/rejected", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.RejectedPackages())
	})
	mux.HandleFunc("GET /repos/{id}/findings", func(w http.ResponseWriter, r *http.Request) {
		repo, err := s.Repo(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, repo.Findings())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotInitialized):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnsupportedPkg):
		return http.StatusForbidden
	case errors.Is(err, index.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrUpstream):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// etagMatch implements If-None-Match matching against a strong ETag
// (RFC 9110 §13.1.2: the comparison is weak, so W/ prefixes on listed
// tags are ignored).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

// Client is a package-manager-side HTTP client for one TSR repository.
// It implements pkgmgr.Source, so an OS can be pointed at TSR exactly
// like at a plain mirror (§4.3: "Package managers recognize TSR as a
// standard repository mirror"). The client revalidates the index with
// If-None-Match: an unchanged index costs a 304 round trip instead of a
// full download. Callers still verify the returned signature — the
// cached copy carries it, so a 304 answer is exactly as trustworthy as
// a fresh 200.
type Client struct {
	// BaseURL is the TSR server base (e.g. "http://host:8473").
	BaseURL string
	// RepoID is the tenant repository id from policy deployment.
	RepoID string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	mu        sync.Mutex
	cached    *index.Signed // last 200 index response (body + signature)
	cachedTag string        // its ETag, sent as If-None-Match
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// FetchIndex implements pkgmgr.Source.
func (c *Client) FetchIndex() (*index.Signed, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/repos/"+c.RepoID+"/index", nil)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	c.mu.Lock()
	prevTag := c.cachedTag
	c.mu.Unlock()
	if prevTag != "" {
		req.Header.Set("If-None-Match", prevTag)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		c.mu.Lock()
		cached := c.cached
		c.mu.Unlock()
		if cached == nil {
			return nil, fmt.Errorf("tsr client: index: 304 Not Modified without a cached index")
		}
		return cached.Clone(), nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tsr client: index: %s", readErr(resp))
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	// A response without the signature headers cannot be verified: fail
	// fast with the cause instead of returning an index whose empty
	// signature mysteriously fails verification downstream.
	keyName := resp.Header.Get(headerKeyName)
	sigB64 := resp.Header.Get(headerSignature)
	if keyName == "" || sigB64 == "" {
		return nil, fmt.Errorf("tsr client: index response missing %s/%s headers (not a TSR signed index?)",
			headerKeyName, headerSignature)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return nil, fmt.Errorf("tsr client: bad signature header: %w", err)
	}
	signed := &index.Signed{Raw: raw, KeyName: keyName, Sig: sig}
	if etag := resp.Header.Get("ETag"); etag != "" {
		c.mu.Lock()
		// Store only if no concurrent FetchIndex cached a different
		// (necessarily newer-or-equal) response meanwhile: a slow older
		// 200 must not clobber a fresher tag and silently defeat future
		// revalidations.
		if c.cachedTag == prevTag {
			c.cached, c.cachedTag = signed.Clone(), etag
		}
		c.mu.Unlock()
	}
	return signed, nil
}

// FetchPackage implements pkgmgr.Source.
func (c *Client) FetchPackage(name string) ([]byte, error) {
	resp, err := c.client().Get(c.BaseURL + "/repos/" + c.RepoID + "/packages/" + name)
	if err != nil {
		return nil, fmt.Errorf("tsr client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tsr client: package %s: %s", name, readErr(resp))
	}
	return io.ReadAll(resp.Body)
}

func readErr(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return strings.TrimSpace(resp.Status + " " + string(body))
}
